package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunFig1AnalyticOnly(t *testing.T) {
	if err := run([]string{"fig1", "-trials", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig2AnalyticOnly(t *testing.T) {
	if err := run([]string{"fig2", "-trials", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOrdering(t *testing.T) {
	if err := run([]string{"ordering", "-trials", "0", "-alpha", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFortify(t *testing.T) {
	if err := run([]string{"fortify", "-trials", "5000", "-alpha", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAlphas(t *testing.T) {
	if err := run([]string{"alphas", "-steps", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"alphas", "-alpha", "-3"}); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAttack(t *testing.T) {
	if err := run([]string{"attack", "-chi", "16", "-steps", "40", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAttackPO(t *testing.T) {
	if err := run([]string{"attack", "-chi", "12", "-steps", "8", "-po", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCampaign(t *testing.T) {
	if err := run([]string{"campaign",
		"-chi", "16", "-reps", "2", "-steps", "20",
		"-proxies", "2", "-pacing", "1", "-detector", "off",
		"-servers", "2", "-workers", "4", "-seed", "2",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCampaignCSV(t *testing.T) {
	path := t.TempDir() + "/campaign.csv"
	if err := run([]string{"campaign",
		"-chi", "16", "-reps", "2", "-steps", "20",
		"-proxies", "2", "-pacing", "0", "-detector", "off",
		"-servers", "2", "-workers", "4", "-csv", path,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "backend,proxies,detector,omega_indirect") {
		t.Fatalf("campaign csv header wrong: %.60s", data)
	}
}

func TestRunCampaignBadFlags(t *testing.T) {
	if err := run([]string{"campaign", "-detector", "sideways"}); err == nil {
		t.Fatal("bad -detector value accepted")
	}
	if err := run([]string{"campaign", "-proxies", "2,x"}); err == nil {
		t.Fatal("bad -proxies list accepted")
	}
	if err := run([]string{"campaign", "-proxies", "2x"}); err == nil {
		t.Fatal("trailing garbage in -proxies entry accepted")
	}
	if err := run([]string{"campaign", "-pacing", "3.5"}); err == nil {
		t.Fatal("fractional -pacing entry accepted")
	}
	if err := run([]string{"campaign", "-pacing", "1,,2"}); err == nil {
		t.Fatal("bad -pacing list accepted")
	}
}

func TestFlagErrorsSurface(t *testing.T) {
	err := run([]string{"fig1", "-trials", "not-a-number"})
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("flag parse error not surfaced: %v", err)
	}
}

func TestRunFig1CSV(t *testing.T) {
	path := t.TempDir() + "/fig1.csv"
	if err := run([]string{"fig1", "-trials", "0", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "system,alpha,kappa") {
		t.Fatalf("csv header wrong: %.60s", data)
	}
	if !strings.Contains(string(data), "S2PO") {
		t.Fatal("csv missing S2PO series")
	}
}

func TestRunCampaignRejectsExplicitZeros(t *testing.T) {
	if err := run([]string{"campaign", "-reps", "0"}); err == nil {
		t.Fatal("-reps 0 accepted")
	}
	if err := run([]string{"campaign", "-detector-threshold", "0"}); err == nil {
		t.Fatal("-detector-threshold 0 accepted")
	}
}
