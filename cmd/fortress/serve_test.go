package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/metrics"
	"fortress/internal/service"
)

// TestServeMuxEndpoints drives the serve subcommand's HTTP surface against
// a live instrumented system: Prometheus text on /metrics (with at least
// ten distinct instrument families), the JSON status document on
// /status.json, the plain-text dashboard on /, and 404s elsewhere.
func TestServeMuxEndpoints(t *testing.T) {
	space, err := keyspace.NewSpace(64)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	sys, err := fortress.New(fortress.Config{
		Servers:           3,
		Proxies:           2,
		Space:             space,
		Seed:              9,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
		Metrics:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	client, err := sys.Client("serve-test", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("w1", []byte(`{"op":"put","key":"k","value":"v"}`)); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newServeMux(sys))
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, prom := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	families := map[string]bool{}
	for _, line := range strings.Split(prom, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, _ := strings.Cut(rest, " ")
			families[name] = true
		}
	}
	if len(families) < 10 {
		t.Errorf("/metrics exposes %d instrument families, want >= 10: %v", len(families), families)
	}
	for _, want := range []string{"proxy_requests_total", "pb_updates_delta_total",
		"core_flush_batches_total", "fortress_rerandomize_total"} {
		if !families[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}

	code, body := get("/status.json")
	if code != http.StatusOK {
		t.Fatalf("/status.json: status %d", code)
	}
	var doc struct {
		Status struct {
			Epoch uint64
		} `json:"status"`
		Metrics metrics.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/status.json did not decode: %v", err)
	}
	var proxied uint64
	for name, v := range doc.Metrics.Timing {
		if strings.HasPrefix(name, "proxy_requests_total") {
			proxied += v
		}
	}
	if proxied == 0 {
		t.Error("/status.json shows no proxied requests after a client invoke")
	}

	code, dash := get("/")
	if code != http.StatusOK {
		t.Fatalf("/: status %d", code)
	}
	if !strings.Contains(dash, "fortress status — epoch") ||
		!strings.Contains(dash, "== counters (deterministic) ==") {
		t.Errorf("dashboard missing expected sections:\n%s", dash)
	}

	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", code)
	}
}
