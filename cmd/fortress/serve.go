package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/metrics"
	"fortress/internal/replica"
	"fortress/internal/service"
)

// runServe deploys a live in-process FORTRESS system, drives a light
// background client workload through it, and exposes its metrics registry
// over HTTP: a plain-text dashboard on /, a JSON status document on
// /status.json and the Prometheus text exposition format on /metrics. It
// serves until SIGINT/SIGTERM, then shuts the HTTP server and the system
// down cleanly.
//
// With -groups N > 1 the keyspace is consistent-hash sharded across N
// independent replica groups and the dashboard grows per-group series:
//
//	proxy_shard_requests_total{node=...,group="g"}  keyed requests each
//	                                                proxy routed to group g
//	campaign_shard_probes_total{group="g"}          per-shard campaign
//	campaign_shard_available_steps_total{group="g"} probe outcomes (sweeps)
//
// Alongside them ride the replication-tier instruments added with the
// sharded runtime: core_outbox_sheds_total{node=...,peer="N"} (staged
// updates dropped by the bounded per-peer outbox) and
// pb_updates_delta_fast_total{node=...} (primary executes that took the
// service's own delta instead of Snapshot+DiffSnapshot).
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address for the status endpoints")
	servers := fs.Int("servers", 3, "per-group server count n_s")
	proxies := fs.Int("proxies", 3, "proxy count n_p")
	groups := fs.Int("groups", 1,
		"replica-group count: consistent-hash the request keyspace across this many independent replica groups behind the shared proxy tier (1 = classic single-group fortress)")
	backendName := fs.String("backend", "pb", "server-tier replication backend (pb, smr)")
	chi := fs.Uint64("chi", 1<<16, "key space size χ")
	seed := fs.Uint64("seed", uint64(time.Now().UnixNano()), "deployment seed")
	leases := fs.Bool("leases", false,
		"deploy the server tier with heartbeat-bounded read leases (smr backend only; pb ignores it)")
	workload := fs.Duration("workload-every", 25*time.Millisecond,
		"background client workload cadence: alternating keyed writes and lease-aware reads through the doubly-signed path (0 = no workload)")
	rerand := fs.Duration("rerandomize-every", 0,
		"proactive re-randomization cadence: rotate every key assignment this often (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *servers <= 0 || *proxies <= 0 {
		return errors.New("-servers and -proxies must be at least 1")
	}
	if *groups < 1 {
		return fmt.Errorf("-groups must be at least 1, got %d", *groups)
	}
	backend, err := replica.ParseBackend(*backendName)
	if err != nil {
		return fmt.Errorf("-backend: %w", err)
	}
	space, err := keyspace.NewSpace(*chi)
	if err != nil {
		return err
	}

	reg := metrics.New()
	sys, err := fortress.New(fortress.Config{
		Servers:           *servers,
		Proxies:           *proxies,
		Groups:            *groups,
		Backend:           backend,
		Space:             space,
		Seed:              *seed,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
		Leases:            *leases,
		Metrics:           reg,
	})
	if err != nil {
		return err
	}
	defer sys.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workload > 0 {
		go serveWorkload(ctx, sys, *workload)
	}
	if *rerand > 0 {
		go serveRerandomize(ctx, sys, *rerand)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newServeMux(sys)}
	fmt.Printf("fortress serve: %d group(s) × %d %s servers, %d proxies, χ=%d — dashboard http://%s/ metrics http://%s/metrics\n",
		*groups, *servers, backend, *proxies, *chi, ln.Addr(), ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		fmt.Println("fortress serve: shutting down")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// serveWorkload issues one client request per tick — alternating keyed
// writes and reads over a small key set — so a served system has live
// traffic behind its dashboard. Clients are re-resolved every request to
// track re-randomization epochs; individual request failures (mid-epoch
// races, crashed nodes) are expected and skipped.
func serveWorkload(ctx context.Context, sys *fortress.System, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for i := uint64(0); ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		client, err := sys.Client(fmt.Sprintf("serve-client-%d", i%4), time.Second)
		if err != nil {
			continue
		}
		key := fmt.Sprintf("k%d", i%16)
		if i%2 == 0 {
			_, _ = client.Invoke(fmt.Sprintf("w%d", i),
				[]byte(fmt.Sprintf(`{"op":"put","key":%q,"value":"v%d"}`, key, i)))
		} else {
			_, _ = client.InvokeRead(fmt.Sprintf("r%d", i),
				[]byte(fmt.Sprintf(`{"op":"get","key":%q}`, key)))
		}
	}
}

// serveRerandomize rotates the deployment's key assignments on a timer —
// the proactive-obfuscation regime, observable live through the
// fortress_rerandomize_total counter and per-node trace rings.
func serveRerandomize(ctx context.Context, sys *fortress.System, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = sys.Rerandomize()
		}
	}
}

// serveStatus is the JSON document /status.json serves.
type serveStatus struct {
	Status  fortress.Status  `json:"status"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// newServeMux builds the serve subcommand's HTTP handler against a live
// system: "/" renders the plain-text dashboard, "/status.json" the JSON
// status document, "/metrics" the Prometheus text exposition.
func newServeMux(sys *fortress.System) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := sys.Status()
		fmt.Fprintf(w, "fortress status — epoch %d\n", st.Epoch)
		if st.Groups > 1 {
			fmt.Fprintf(w, "replica groups: %d (consistent-hash sharded keyspace)\n", st.Groups)
		}
		fmt.Fprintf(w, "servers: %d compromised, %d crashed, %d down\n",
			st.ServersCompromised, st.ServersCrashed, st.ServersDown)
		fmt.Fprintf(w, "proxies: %d compromised, %d crashed, %d down\n",
			st.ProxiesCompromised, st.ProxiesCrashed, st.ProxiesDown)
		fmt.Fprintf(w, "compromised: %v\n\n", st.Compromised)
		sys.Metrics().Snapshot().WriteDashboard(w)
	})
	mux.HandleFunc("/status.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(serveStatus{Status: sys.Status(), Metrics: sys.Metrics().Snapshot()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		sys.Metrics().Snapshot().WritePrometheus(w)
	})
	return mux
}
