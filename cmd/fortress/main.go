// Command fortress regenerates the paper's evaluation artifacts and runs
// the executable FORTRESS demos.
//
// Usage:
//
//	fortress fig1 [-trials N] [-seed S] [-workers W]     Figure 1: EL vs α
//	fortress fig2 [-trials N] [-seed S] [-workers W]     Figure 2: EL of S2PO vs κ
//	fortress ordering [-alpha A] [-kappa K] [-workers W] §6 resilience chain check
//	fortress fortify [-alpha A] [-trials N] [-workers W] E4: S2SO vs S0SO across κ
//	fortress alphas [-alpha A] [-steps N]                E6: αᵢ growth, SO vs PO
//	fortress demo                                        end-to-end FORTRESS service
//	fortress attack [-chi N] [-steps N] [-po]            one campaign vs one live deployment
//	fortress campaign [-reps N] [-workers W] [-po]       live-campaign sweep: (backend ×
//	                                                     proxies × detector × pacing) grid,
//	                                                     N campaign repetitions per cell
//	fortress faults [-preset P[,P...]] [-reps N]         degraded-network sweep: (backend ×
//	                                                     fault schedule × drop rate ×
//	                                                     proxies × persistence × jitter ×
//	                                                     read mix × leases) grid with
//	                                                     per-step availability
//	fortress serve [-addr HOST:PORT] [-backend B]        live system with an HTTP ops
//	                                                     surface: plain-text dashboard on /,
//	                                                     JSON status on /status.json,
//	                                                     Prometheus text on /metrics
//
// The campaign and faults sweeps take -metrics-out FILE to dump each grid
// cell's merged runtime-metrics snapshot (per-repetition counters, timing,
// gauges, histograms and trace rings) as a JSON array next to the CSV. The
// metrics are observational only — collection never changes sweep results —
// and the deterministic "counters" section is identical at any -workers
// value for a given seed.
//
// The campaign and faults sweeps also take -checkpoint-every and
// -update-window, the server tier's resync knobs: the PB primary ships
// ack-windowed incremental state deltas with a full snapshot checkpoint
// every k-th update, and both engines bound the history they retain for
// resyncing a lagging replica (PB delta retransmission, SMR catch-up).
//
// Both sweeps share the measurement-workload axes -workload, -read-frac and
// -leases. -workload names open-loop workload presets from
// internal/workload — closed (the legacy one-probe-per-step health check),
// uniform-closed, uniform-poisson, zipf-poisson, zipf-bursty and
// diurnal-ramp — and every measured cell reports availability plus virtual
// request latency as p50ms/p99ms/p999ms columns (failed requests charged
// the spec's deadline; sharded cells add per-shard p99). Generation is
// O(active requests) with no per-client goroutines, so a million-client
// Poisson preset costs the same handful of cohort streams as ten thousand,
// and the sampled stream is bit-identical at any -workers value.
// -read-frac overrides each preset's read share (reads ride the
// lease-aware path, the rest are keyed writes) and -leases deploys the
// server tier with heartbeat-bounded SMR read leases, so lease holders
// answer reads locally and only writes enter the order protocol (the PB
// backend ignores it). On the faults sweep all three are grid axes:
// `-backend smr -workload zipf-poisson -leases both` compares lease-on vs
// lease-off latency under every selected fault schedule at a skewed
// read-mostly mix. The campaign sweep defaults to no measurement workload
// (its historical behaviour); naming a -workload or -read-frac turns
// measurement on.
//
// Both sweeps take -groups, the sharding axis: each cell deploys that many
// independent replica groups behind the shared proxy tier and
// consistent-hashes the request keyspace across them, so aggregate write
// throughput scales with the group count while each key keeps single-group
// consistency. Sharded fault-sweep cells report per-shard availability next
// to the aggregate; `-preset shard-cut -groups 4` darkens exactly one shard
// and shows the other three holding availability 1.0.
//
// The faults sweep additionally takes the durability axes -persist (mem,
// wal), -fsync-every (WAL sync cadence) and -jitter (per-repetition fault
// timing perturbation): `-preset blackout -persist mem,wal` reproduces the
// headline whole-cluster power-loss comparison, where WAL-backed tiers
// recover their replica state from disk and return to full availability
// while the in-memory default restarts empty.
//
// Every Monte-Carlo subcommand takes -workers (default: runtime.GOMAXPROCS,
// i.e. all cores): experiment cells and the trial shards within each cell
// run on that many workers through the deterministic engine in internal/sim,
// so the output for a given -seed and -trials is bit-identical at any
// -workers value — including -workers 1. Use -workers to bound CPU usage,
// never to pin results. The campaign sweep follows the same contract — its
// repetitions run whole live deployments, sharded across workers with
// pre-split random streams — and, being latency-bound rather than CPU-bound,
// profits from -workers above the core count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fortress/internal/attack"
	"fortress/internal/experiments"
	"fortress/internal/faults"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/replica"
	"fortress/internal/service"
	"fortress/internal/workload"
	"fortress/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fortress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand; one of fig1, fig2, ordering, fortify, alphas, demo, attack, campaign, faults, serve")
	}
	switch args[0] {
	case "fig1":
		return runFig1(args[1:])
	case "fig2":
		return runFig2(args[1:])
	case "ordering":
		return runOrdering(args[1:])
	case "fortify":
		return runFortify(args[1:])
	case "alphas":
		return runAlphas(args[1:])
	case "demo":
		return runDemo(args[1:])
	case "attack":
		return runAttack(args[1:])
	case "campaign":
		return runCampaign(args[1:])
	case "faults":
		return runFaults(args[1:])
	case "serve":
		return runServe(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// resyncFlags registers the server-tier resync knobs shared by the live
// sweeps: the PB delta stream's checkpoint cadence and the retained resync
// window (PB unacked-delta retransmission, SMR catch-up log suffix).
func resyncFlags(fs *flag.FlagSet) (checkpointEvery, updateWindow *int) {
	checkpointEvery = fs.Int("checkpoint-every", 0,
		"PB update-stream checkpoint cadence: every k-th update ships a full snapshot instead of a delta (0 = engine default 32, 1 = classic full-snapshot-per-update stream)")
	updateWindow = fs.Int("update-window", 0,
		"retained resync history: the PB primary's unacked deltas and the SMR leader's catch-up log suffix (0 = engine defaults 256/512, negative = retain nothing, forcing checkpoint/snapshot resyncs)")
	return checkpointEvery, updateWindow
}

func commonFlags(fs *flag.FlagSet) (trials, seed *uint64, workers *int) {
	trials = fs.Uint64("trials", 100000, "Monte-Carlo trials per cell (0 = analytic only)")
	seed = fs.Uint64("seed", 1, "simulation seed")
	workers = fs.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent workers for cells and trial shards (results are identical at any value)")
	return trials, seed, workers
}

func runFig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ContinueOnError)
	trials, seed, workers := commonFlags(fs)
	csvPath := fs.String("csv", "", "also write the series to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, LaunchPadFraction: -1, Workers: *workers}
	results, err := experiments.Figure1(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 1 — expected lifetime comparison (κ =", experiments.Figure1Kappa, "for S2PO)")
	fmt.Print(experiments.FormatResults(results))
	return writeCSVFile(*csvPath, results)
}

func runFig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ContinueOnError)
	trials, seed, workers := commonFlags(fs)
	csvPath := fs.String("csv", "", "also write the series to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, LaunchPadFraction: -1, Workers: *workers}
	results, err := experiments.Figure2(cfg, nil, nil)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 2 — EL of S2PO as κ varies (plot on a log scale)")
	fmt.Print(experiments.FormatResults(results))
	return writeCSVFile(*csvPath, results)
}

// writeCSVFile writes results to path, or does nothing for an empty path.
func writeCSVFile(path string, results []experiments.Result) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, results); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Println("# CSV written to", path)
	return nil
}

func runOrdering(args []string) error {
	fs := flag.NewFlagSet("ordering", flag.ContinueOnError)
	alpha := fs.Float64("alpha", 0.001, "per-step direct-attack success probability α")
	kappa := fs.Float64("kappa", 0.5, "indirect attack coefficient κ")
	trials, seed, workers := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, LaunchPadFraction: -1, Workers: *workers}
	rep, err := experiments.OrderingChain(cfg, *alpha, *kappa)
	if err != nil {
		return err
	}
	fmt.Printf("# §6 ordering chain at α=%g κ=%g\n", rep.Alpha, rep.Kappa)
	for i, name := range rep.Order {
		fmt.Printf("%d. %-5s EL=%.6g\n", i+1, name, rep.ELs[i])
	}
	fmt.Println(rep.Detail)
	return nil
}

func runFortify(args []string) error {
	fs := flag.NewFlagSet("fortify", flag.ContinueOnError)
	alpha := fs.Float64("alpha", 0.001, "per-step direct-attack success probability α")
	trials, seed, workers := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, LaunchPadFraction: -1, Workers: *workers}
	rows, err := experiments.Fortify(cfg, *alpha, nil)
	if err != nil {
		return err
	}
	fmt.Printf("# E4 — fortified PB (S2SO) vs proactively recovered SMR (S0SO) at α=%g\n", *alpha)
	fmt.Printf("%-6s %-14s %-10s %-14s %s\n", "kappa", "EL(S2SO)", "±", "EL(S0SO)", "S2SO outlives?")
	for _, r := range rows {
		fmt.Printf("%-6g %-14.6g %-10.3g %-14.6g %v\n", r.Kappa, r.S2SO, r.S2SOCI, r.S0SO, r.Outlive)
	}
	return nil
}

func runAlphas(args []string) error {
	fs := flag.NewFlagSet("alphas", flag.ContinueOnError)
	alpha := fs.Float64("alpha", 0.001, "initial per-step success probability α₁")
	steps := fs.Int("steps", 20, "steps to tabulate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.AlphaGrowth(*alpha, *steps)
	if err != nil {
		return err
	}
	fmt.Println("# E6 — per-step success probability: SO grows (sampling without")
	fmt.Println("# replacement), PO is flat (sampling with replacement)")
	fmt.Printf("%-6s %-14s %-14s\n", "step", "alpha_SO", "alpha_PO")
	for _, r := range rows {
		fmt.Printf("%-6d %-14.8f %-14.8f\n", r.Step, r.AlphaSO, r.AlphaPO)
	}
	return nil
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	space, err := keyspace.NewSpace(1 << 16)
	if err != nil {
		return err
	}
	sys, err := fortress.New(fortress.Config{
		Servers:           3,
		Proxies:           3,
		Space:             space,
		Seed:              uint64(time.Now().UnixNano()),
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
		DetectorWindow:    time.Minute,
		DetectorThreshold: 10,
	})
	if err != nil {
		return err
	}
	defer sys.Stop()

	client, err := sys.Client("demo-client", 2*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("FORTRESS up: 3 PB servers (shared key), 3 proxies (distinct keys), trusted NS")
	if _, err := client.Invoke("w1", []byte(`{"op":"put","key":"motto","value":"fortify, then randomize"}`)); err != nil {
		return err
	}
	got, err := client.Invoke("r1", []byte(`{"op":"get","key":"motto"}`))
	if err != nil {
		return err
	}
	fmt.Printf("write+read through doubly-signed path: %s\n", got)

	fmt.Println("re-randomizing (proactive obfuscation epoch)...")
	if err := sys.Rerandomize(); err != nil {
		return err
	}
	client2, err := sys.Client("demo-client-2", 2*time.Second)
	if err != nil {
		return err
	}
	got, err = client2.Invoke("r2", []byte(`{"op":"get","key":"motto"}`))
	if err != nil {
		return err
	}
	fmt.Printf("state preserved across epoch %d: %s\n", sys.Epoch(), got)
	return nil
}

// parseIntList parses a comma-separated list of non-negative ints ("2,3,4").
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 31)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid list entry %q", p)
		}
		out = append(out, int(v))
	}
	return out, nil
}

// parseGroupList parses a comma-separated replica-group-count grid,
// rejecting entries below one.
func parseGroupList(s string) ([]int, error) {
	out, err := parseIntList(s)
	if err != nil {
		return nil, err
	}
	for _, g := range out {
		if g < 1 {
			return nil, fmt.Errorf("group count %d must be at least 1", g)
		}
	}
	return out, nil
}

// parseUint64List parses a comma-separated list of uint64s ("0,1,2").
func parseUint64List(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid list entry %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func runCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	reps := fs.Int("reps", 8, "campaign repetitions per grid cell")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent repetitions/cells (results are identical at any value; repetitions are latency-bound, so values above the core count help)")
	chi := fs.Uint64("chi", 24, "key space size χ (small so live campaigns terminate)")
	steps := fs.Uint64("steps", 40, "campaign horizon in unit time-steps")
	po := fs.Bool("po", false, "re-randomize every step (proactive obfuscation)")
	omegaD := fs.Uint64("omega-direct", 2, "direct probes per step")
	servers := fs.Int("servers", 3, "per-group server count n_s")
	backendList := fs.String("backend", "pb",
		"comma-separated server-tier replication backends (pb, smr); smr cells replay the same campaigns against a state-machine-replicated tier with leader-driven catch-up")
	proxiesList := fs.String("proxies", "2,3,4", "comma-separated proxy-count grid")
	groupsList := fs.String("groups", "1",
		"comma-separated replica-group-count grid: each cell consistent-hashes the request keyspace across this many independent replica groups behind the shared proxy tier (1 = classic single-group fortress)")
	pacingList := fs.String("pacing", "0,1,2", "comma-separated indirect-probe (κ·ω) grid")
	detector := fs.String("detector", "both", "detector grid: off, on, or both")
	threshold := fs.Int("detector-threshold", 8, "invalid requests before a probe source is flagged")
	workloadList := fs.String("workload", "", workloadFlagHelp()+
		"\nempty = no measurement workload at all (the historical sweep); naming presets (or setting -read-frac) turns availability + latency measurement on")
	readFracList := fs.String("read-frac", "",
		"comma-separated read-share grid overriding each workload preset's own mix ([0,1]; 0 = all writes); empty keeps every preset's mix")
	leasesGrid := fs.String("leases", "off",
		"read-lease grid: off, on, or both — on deploys the server tier with heartbeat-bounded read leases (smr backend only; pb ignores it) so lease holders answer reads locally instead of ordering them")
	checkpointEvery, updateWindow := resyncFlags(fs)
	seed := fs.Uint64("seed", 1, "simulation seed")
	csvPath := fs.String("csv", "", "also write the sweep to this CSV file")
	metricsOut := fs.String("metrics-out", "",
		"also write each cell's merged runtime-metrics snapshot (JSON array; observational only, the counters section is deterministic at any -workers) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be non-negative, got %d", *checkpointEvery)
	}
	// The sweep config treats zero fields as "use the default", so explicit
	// zeros on the command line must be rejected here, not silently
	// rewritten — except -omega-direct, where zero is a real configuration
	// (an indirect-only sweep) the config layer passes through untouched.
	if *reps <= 0 {
		return fmt.Errorf("-reps must be at least 1, got %d", *reps)
	}
	if *threshold <= 0 {
		return fmt.Errorf("-detector-threshold must be at least 1, got %d", *threshold)
	}
	if *chi == 0 {
		return errors.New("-chi must be at least 1")
	}
	if *steps == 0 {
		return errors.New("-steps must be at least 1")
	}
	if *servers <= 0 {
		return fmt.Errorf("-servers must be at least 1, got %d", *servers)
	}
	backends, err := parseBackendList(*backendList)
	if err != nil {
		return fmt.Errorf("-backend: %w", err)
	}
	proxyCounts, err := parseIntList(*proxiesList)
	if err != nil {
		return fmt.Errorf("-proxies: %w", err)
	}
	groups, err := parseGroupList(*groupsList)
	if err != nil {
		return fmt.Errorf("-groups: %w", err)
	}
	pacings, err := parseUint64List(*pacingList)
	if err != nil {
		return fmt.Errorf("-pacing: %w", err)
	}
	var detectors []bool
	switch *detector {
	case "off":
		detectors = []bool{false}
	case "on":
		detectors = []bool{true}
	case "both":
		detectors = []bool{false, true}
	default:
		return fmt.Errorf("-detector must be off, on or both, got %q", *detector)
	}
	workloads, err := parseWorkloadList(*workloadList)
	if err != nil {
		return fmt.Errorf("-workload: %w", err)
	}
	readFracs, err := parseReadFracList(*readFracList)
	if err != nil {
		return fmt.Errorf("-read-frac: %w", err)
	}
	leases, err := parseLeasesGrid(*leasesGrid)
	if err != nil {
		return fmt.Errorf("-leases: %w", err)
	}
	cfg := experiments.LiveCampaignConfig{
		Chi:               *chi,
		Reps:              *reps,
		Seed:              *seed,
		Workers:           *workers,
		MaxSteps:          *steps,
		Rerandomize:       *po,
		OmegaDirect:       *omegaD,
		Servers:           *servers,
		Groups:            groups,
		Backends:          backends,
		ProxyCounts:       proxyCounts,
		Detectors:         detectors,
		Pacings:           pacings,
		DetectorThreshold: *threshold,
		CheckpointEvery:   *checkpointEvery,
		UpdateWindow:      *updateWindow,
		WorkloadAxes: experiments.WorkloadAxes{
			Workloads: workloads,
			ReadFracs: readFracs,
			Leases:    leases,
		},
		CollectMetrics: *metricsOut != "",
	}
	rows, err := experiments.LiveCampaign(cfg)
	if err != nil {
		return err
	}
	mode := "SO (start-up-only randomization)"
	if *po {
		mode = "PO (re-randomize every step)"
	}
	fmt.Printf("# live-campaign sweep: χ=%d, %d reps/cell, horizon %d steps, ω_direct=%d, %s\n",
		*chi, *reps, *steps, *omegaD, mode)
	fmt.Print(experiments.FormatLiveCampaign(rows))
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *csvPath, err)
		}
		defer f.Close()
		if err := experiments.WriteLiveCampaignCSV(f, rows); err != nil {
			return fmt.Errorf("write %s: %w", *csvPath, err)
		}
		fmt.Println("# CSV written to", *csvPath)
	}
	if *metricsOut != "" {
		cells := make([]experiments.CellMetrics, 0, len(rows))
		for _, r := range rows {
			if r.Metrics == nil {
				continue
			}
			cells = append(cells, experiments.CellMetrics{
				Cell: fmt.Sprintf("backend=%s proxies=%d groups=%d detector=%t pace=%d workload=%s readfrac=%g leases=%t",
					r.Backend, r.Proxies, r.Groups, r.Detector, r.OmegaIndirect, r.Workload, r.ReadFrac, r.Leases),
				Snapshot: *r.Metrics,
			})
		}
		if err := experiments.WriteCellMetricsJSON(*metricsOut, cells); err != nil {
			return err
		}
		fmt.Println("# metrics written to", *metricsOut)
	}
	return nil
}

// parseBackendList parses a comma-separated list of replication backend
// names, validating each against the known backends.
func parseBackendList(s string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(s, ",") {
		name := strings.TrimSpace(p)
		if name == "" {
			continue
		}
		if _, err := replica.ParseBackend(name); err != nil {
			return nil, fmt.Errorf("%w (available: %s)", err, strings.Join(replica.BackendNames(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, errors.New("must name at least one backend")
	}
	return out, nil
}

// parseFloatList parses a comma-separated list of non-negative floats.
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid list entry %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// workloadFlagHelp documents the named workload presets shared by the
// campaign and faults -workload flags.
func workloadFlagHelp() string {
	var b strings.Builder
	b.WriteString("comma-separated measurement-workload presets (each cell reports availability plus virtual-latency p50/p99/p999 columns); available:")
	for _, p := range workload.Presets() {
		fmt.Fprintf(&b, "\n  %-16s %s", p.Spec.Name, p.Description)
	}
	return b.String()
}

// parseWorkloadList validates a comma-separated preset list against the
// workload catalog.
func parseWorkloadList(s string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(s, ",") {
		name := strings.TrimSpace(p)
		if name == "" {
			continue
		}
		if _, err := workload.PresetByName(name); err != nil {
			return nil, fmt.Errorf("%w (available: %s)", err, strings.Join(workload.PresetNames(), ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

// parseReadFracList parses the shared -read-frac grid of [0,1] fractions.
func parseReadFracList(s string) ([]float64, error) {
	fracs, err := parseFloatList(s)
	if err != nil {
		return nil, err
	}
	for _, f := range fracs {
		if f > 1 {
			return nil, fmt.Errorf("entries must be in [0,1], got %g", f)
		}
	}
	return fracs, nil
}

// parseLeasesGrid parses the shared off/on/both read-lease grid flag.
func parseLeasesGrid(s string) ([]bool, error) {
	switch s {
	case "off":
		return []bool{false}, nil
	case "on":
		return []bool{true}, nil
	case "both":
		return []bool{false, true}, nil
	}
	return nil, fmt.Errorf("must be off, on or both, got %q", s)
}

func runFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	var presetHelp strings.Builder
	presetHelp.WriteString("comma-separated fault-schedule presets; available:")
	for _, p := range faults.Presets() {
		fmt.Fprintf(&presetHelp, "\n  %-18s %s", p.Name, p.Description)
	}
	presets := fs.String("preset", strings.Join(experiments.DefaultFaultSweepConfig().Presets, ","), presetHelp.String())
	reps := fs.Int("reps", 4, "campaign repetitions per grid cell")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent repetitions/cells (zero-drop cells are byte-identical at any value)")
	chi := fs.Uint64("chi", 24, "key space size χ (small so live campaigns terminate)")
	steps := fs.Uint64("steps", 24, "campaign horizon in unit time-steps (presets scale to it)")
	po := fs.Bool("po", false, "re-randomize every step (proactive obfuscation)")
	omegaD := fs.Uint64("omega-direct", 2, "direct probes per step")
	omegaI := fs.Uint64("omega-indirect", 1, "indirect probes per step")
	servers := fs.Int("servers", 3, "per-group server count n_s")
	backendList := fs.String("backend", "pb",
		"comma-separated server-tier replication backends (pb, smr); pb,smr replays every fault schedule against both tiers for a PB-vs-SMR availability comparison, with restarted smr replicas catching up from the leader")
	proxiesList := fs.String("proxies", "3", "comma-separated proxy-count grid")
	groupsList := fs.String("groups", "1",
		"comma-separated replica-group-count grid: each cell consistent-hashes the request keyspace across this many independent replica groups behind the shared proxy tier, reporting per-shard availability next to the aggregate (1 = classic single-group fortress; pair with -preset shard-cut to dark one shard)")
	dropsList := fs.String("drops", "0", "comma-separated drop-rate grid (per-directed-pair drop streams keep positive-rate cells bitwise reproducible at any -workers)")
	persistList := fs.String("persist", "mem",
		"comma-separated persistence grid (mem, wal); mem is the zero-allocation in-memory default that a blackout wipes, wal gives every server a write-ahead log plus snapshot recovered from disk on restart — mem,wal turns the sweep into a durability comparison")
	fsyncList := fs.String("fsync-every", "1",
		"comma-separated WAL sync-cadence grid: every n-th append fsyncs, so a power failure loses at most n-1 records; only wal cells fan out over it")
	jitterList := fs.String("jitter", "0",
		"comma-separated schedule-jitter grid: max forward delay, in steps, applied per fault event from each repetition's own stream (0 = replay presets exactly)")
	workloadList := fs.String("workload", "closed", workloadFlagHelp())
	readFracList := fs.String("read-frac", "",
		"comma-separated read-share grid overriding each workload preset's own mix ([0,1]; 0 = all writes); empty keeps every preset's mix")
	leasesGrid := fs.String("leases", "off",
		"read-lease grid: off, on, or both — on deploys the server tier with heartbeat-bounded read leases (smr backend only; pb ignores it)")
	persistRoot := fs.String("persist-root", "",
		"root directory for wal cell stores, kept for inspection (default: a temporary directory removed after the sweep)")
	checkpointEvery, updateWindow := resyncFlags(fs)
	seed := fs.Uint64("seed", 1, "simulation seed")
	csvPath := fs.String("csv", "", "also write the sweep to this CSV file")
	metricsOut := fs.String("metrics-out", "",
		"also write each cell's merged runtime-metrics snapshot (JSON array; observational only, the counters section is deterministic at any -workers) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be non-negative, got %d", *checkpointEvery)
	}
	if *reps <= 0 {
		return fmt.Errorf("-reps must be at least 1, got %d", *reps)
	}
	if *chi == 0 {
		return errors.New("-chi must be at least 1")
	}
	if *steps == 0 {
		return errors.New("-steps must be at least 1")
	}
	if *servers <= 0 {
		return fmt.Errorf("-servers must be at least 1, got %d", *servers)
	}
	var presetNames []string
	for _, p := range strings.Split(*presets, ",") {
		name := strings.TrimSpace(p)
		if name == "" {
			continue
		}
		if _, err := faults.PresetByName(name); err != nil {
			return fmt.Errorf("-preset: %w (available: %s)", err, strings.Join(faults.PresetNames(), ", "))
		}
		presetNames = append(presetNames, name)
	}
	if len(presetNames) == 0 {
		return errors.New("-preset must name at least one preset")
	}
	backends, err := parseBackendList(*backendList)
	if err != nil {
		return fmt.Errorf("-backend: %w", err)
	}
	proxyCounts, err := parseIntList(*proxiesList)
	if err != nil {
		return fmt.Errorf("-proxies: %w", err)
	}
	groups, err := parseGroupList(*groupsList)
	if err != nil {
		return fmt.Errorf("-groups: %w", err)
	}
	drops, err := parseFloatList(*dropsList)
	if err != nil {
		return fmt.Errorf("-drops: %w", err)
	}
	var persist []string
	for _, p := range strings.Split(*persistList, ",") {
		if name := strings.TrimSpace(p); name != "" {
			persist = append(persist, name)
		}
	}
	fsyncs, err := parseIntList(*fsyncList)
	if err != nil {
		return fmt.Errorf("-fsync-every: %w", err)
	}
	jitters, err := parseUint64List(*jitterList)
	if err != nil {
		return fmt.Errorf("-jitter: %w", err)
	}
	workloads, err := parseWorkloadList(*workloadList)
	if err != nil {
		return fmt.Errorf("-workload: %w", err)
	}
	if len(workloads) == 0 {
		return errors.New("-workload must name at least one preset")
	}
	readFracs, err := parseReadFracList(*readFracList)
	if err != nil {
		return fmt.Errorf("-read-frac: %w", err)
	}
	leases, err := parseLeasesGrid(*leasesGrid)
	if err != nil {
		return fmt.Errorf("-leases: %w", err)
	}
	cfg := experiments.FaultSweepConfig{
		Chi:             *chi,
		Reps:            *reps,
		Seed:            *seed,
		Workers:         *workers,
		MaxSteps:        *steps,
		Rerandomize:     *po,
		OmegaDirect:     *omegaD,
		OmegaIndirect:   *omegaI,
		Servers:         *servers,
		Backends:        backends,
		Presets:         presetNames,
		DropRates:       drops,
		ProxyCounts:     proxyCounts,
		Groups:          groups,
		CheckpointEvery: *checkpointEvery,
		UpdateWindow:    *updateWindow,
		Persist:         persist,
		FsyncEvery:      fsyncs,
		Jitters:         jitters,
		WorkloadAxes: experiments.WorkloadAxes{
			Workloads: workloads,
			ReadFracs: readFracs,
			Leases:    leases,
		},
		PersistRoot:    *persistRoot,
		CollectMetrics: *metricsOut != "",
	}
	rows, err := experiments.FaultSweep(cfg)
	if err != nil {
		return err
	}
	mode := "SO (start-up-only randomization)"
	if *po {
		mode = "PO (re-randomize every step)"
	}
	fmt.Printf("# fault sweep: χ=%d, %d reps/cell, horizon %d steps, ω_direct=%d, ω_indirect=%d, %s\n",
		*chi, *reps, *steps, *omegaD, *omegaI, mode)
	fmt.Print(experiments.FormatFaultSweep(rows))
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *csvPath, err)
		}
		defer f.Close()
		if err := experiments.WriteFaultSweepCSV(f, rows); err != nil {
			return fmt.Errorf("write %s: %w", *csvPath, err)
		}
		fmt.Println("# CSV written to", *csvPath)
	}
	if *metricsOut != "" {
		cells := make([]experiments.CellMetrics, 0, len(rows))
		for _, r := range rows {
			if r.Metrics == nil {
				continue
			}
			cells = append(cells, experiments.CellMetrics{
				Cell: fmt.Sprintf("backend=%s preset=%s drop=%g proxies=%d groups=%d persist=%s fsync=%d jitter=%d workload=%s readfrac=%g leases=%t",
					r.Backend, r.Preset, r.DropRate, r.Proxies, r.Groups, r.Persist, r.FsyncEvery, r.Jitter, r.Workload, r.ReadFrac, r.Leases),
				Snapshot: *r.Metrics,
			})
		}
		if err := experiments.WriteCellMetricsJSON(*metricsOut, cells); err != nil {
			return err
		}
		fmt.Println("# metrics written to", *metricsOut)
	}
	return nil
}

func runAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	chi := fs.Uint64("chi", 64, "key space size χ (small so the demo terminates)")
	steps := fs.Uint64("steps", 200, "campaign horizon in unit time-steps")
	po := fs.Bool("po", false, "re-randomize every step (proactive obfuscation)")
	omegaD := fs.Uint64("omega-direct", 2, "direct probes per step")
	omegaI := fs.Uint64("omega-indirect", 1, "indirect probes per step")
	seed := fs.Uint64("seed", uint64(time.Now().UnixNano()), "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	space, err := keyspace.NewSpace(*chi)
	if err != nil {
		return err
	}
	sys, err := fortress.New(fortress.Config{
		Servers:           3,
		Proxies:           3,
		Space:             space,
		Seed:              *seed,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
	})
	if err != nil {
		return err
	}
	defer sys.Stop()

	mode := "SO (start-up-only randomization)"
	if *po {
		mode = "PO (re-randomize every step)"
	}
	fmt.Printf("campaign vs live FORTRESS: χ=%d, ω_direct=%d, ω_indirect=%d, %s\n",
		*chi, *omegaD, *omegaI, mode)
	res, err := attack.Campaign(sys, space, attack.CampaignConfig{
		OmegaDirect:   *omegaD,
		OmegaIndirect: *omegaI,
		MaxSteps:      *steps,
		Rerandomize:   *po,
	}, xrand.New(*seed))
	if err != nil {
		return err
	}
	if res.Compromised {
		fmt.Printf("system COMPROMISED after %d whole steps via route %q\n", res.StepsElapsed, res.Route)
	} else {
		fmt.Printf("system SURVIVED the full %d-step horizon\n", res.StepsElapsed)
	}
	report := []string{
		fmt.Sprintf("epochs completed: %d", sys.Epoch()),
		fmt.Sprintf("final status: %+v", sys.Status()),
	}
	fmt.Println(strings.Join(report, "\n"))
	return nil
}
