#!/bin/sh
# benchdiff.sh — compare two BENCH_<date>.json files (scripts/bench.sh
# output): per-benchmark ns/op ratio against a configurable threshold, plus
# an optional completeness check that every benchmark present in the old
# (baseline) file still ran in the new one.
#
# Usage:
#   scripts/benchdiff.sh [-t ratio] [-m] old.json new.json
#   scripts/benchdiff.sh -T [file.json ...]
#
#   -t ratio   flag benchmarks whose new/old ns_per_op ratio exceeds ratio
#              (default 1.5); 0 disables ratio flagging entirely. Exits 1
#              when any benchmark is flagged — CI wires this in as a
#              non-blocking report step (continue-on-error), since 1x
#              benchtime on shared runners is noisy.
#   -m         fail (exit 2) when a benchmark present in old.json is
#              missing from new.json — the blocking half of the bench-smoke
#              gate: a vanished benchmark means a deleted/renamed benchmark
#              or a package that stopped compiling, which bench.sh itself
#              only warns about.
#   -T         trajectory mode: instead of a pairwise diff, print one row
#              per benchmark with its ns/op across every given file — or,
#              with no file arguments, across every checked-in
#              BENCH_*.json in the repo root in name (i.e. date) order —
#              so the whole perf history of a benchmark reads as one line.
#              Rows keep first-seen order; a file that lacks a benchmark
#              shows "-". Informational only: always exits 0.
#
# New benchmarks (present only in new.json) are listed informationally and
# never fail either check.
set -eu

THRESHOLD=1.5
CHECK_MISSING=0
TRAJECTORY=0
while getopts "t:mT" opt; do
    case "$opt" in
        t) THRESHOLD="$OPTARG" ;;
        m) CHECK_MISSING=1 ;;
        T) TRAJECTORY=1 ;;
        *) echo "usage: $0 [-t ratio] [-m] old.json new.json | $0 -T [file...]" >&2; exit 64 ;;
    esac
done
shift $((OPTIND - 1))

if [ "$TRAJECTORY" -eq 1 ]; then
    if [ "$#" -eq 0 ]; then
        cd "$(dirname "$0")/.."
        set -- BENCH_*.json
    fi
    [ -r "$1" ] || { echo "benchdiff: no readable BENCH_*.json files" >&2; exit 66; }
    awk '
    # Columns come from ARGV, not from FNR==1 firing per file: a file that
    # contributes no parsed benchmark lines (empty, truncated, or predating
    # a benchmark entirely) must still own its column — every row then shows
    # "-" there instead of silently shifting later files left.
    BEGIN {
        for (i = 1; i < ARGC; i++) {
            nf++
            label[nf] = ARGV[i]
            sub(/^.*BENCH_/, "", label[nf])
            sub(/\.json$/, "", label[nf])
            fileidx[ARGV[i]] = nf
        }
    }
    FNR == 1           { inb = 0 }
    /"benchmarks": \{/ { inb = 1; next }
    inb && /^  \}/     { inb = 0 }
    inb && /"ns_per_op"/ {
        line = $0
        sub(/^[ \t]*"/, "", line)
        name = line; sub(/".*/, "", name)
        nsv = line
        sub(/.*"ns_per_op": */, "", nsv)
        sub(/[,}].*/, "", nsv)
        if (!(name in seen)) { seen[name] = ++count; order[count] = name }
        val[name, fileidx[FILENAME]] = nsv + 0
    }
    END {
        printf "%-55s", "benchmark (ns/op)"
        for (f = 1; f <= nf; f++) printf " %14s", label[f]
        printf "\n"
        for (i = 1; i <= count; i++) {
            name = order[i]
            printf "%-55s", name
            for (f = 1; f <= nf; f++) {
                if ((name, f) in val) printf " %14.0f", val[name, f]
                else                  printf " %14s", "-"
            }
            printf "\n"
        }
    }' "$@"
    exit 0
fi

if [ "$#" -ne 2 ]; then
    echo "usage: $0 [-t ratio] [-m] old.json new.json | $0 -T [file...]" >&2
    exit 64
fi
OLD="$1"
NEW="$2"
[ -r "$OLD" ] || { echo "benchdiff: cannot read $OLD" >&2; exit 66; }
[ -r "$NEW" ] || { echo "benchdiff: cannot read $NEW" >&2; exit 66; }

# Both files come from bench.sh's fixed emitter: one benchmark per line
# inside the "benchmarks" object, `"name": {"ns_per_op": N, ...}`.
awk -v threshold="$THRESHOLD" -v checkmissing="$CHECK_MISSING" \
    -v oldfile="$OLD" -v newfile="$NEW" '
function parse_line(line, kv) {        # returns name via kv[1], ns via kv[2]
    sub(/^[ \t]*"/, "", line)
    kv[1] = line
    sub(/".*/, "", kv[1])
    kv[2] = line
    sub(/.*"ns_per_op": */, "", kv[2])
    sub(/[,}].*/, "", kv[2])
    return
}
/"benchmarks": \{/ { inb = 1; next }
inb && /^  \}/     { inb = 0 }
inb && /"ns_per_op"/ {
    parse_line($0, kv)
    if (NR == FNR) {
        oldns[kv[1]] = kv[2] + 0
        oldorder[++oldcount] = kv[1]
    } else {
        newns[kv[1]] = kv[2] + 0
        if (!(kv[1] in oldns)) added[++addcount] = kv[1]
    }
}
END {
    printf "%-55s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio"
    regressions = 0
    missing = 0
    for (i = 1; i <= oldcount; i++) {
        name = oldorder[i]
        if (!(name in newns)) {
            printf "%-55s %14.0f %14s %8s\n", name, oldns[name], "MISSING", "-"
            missing++
            continue
        }
        ratio = (oldns[name] > 0) ? newns[name] / oldns[name] : 0
        flag = ""
        if (threshold + 0 > 0 && ratio > threshold + 0) {
            flag = "  << REGRESSION"
            regressions++
        }
        printf "%-55s %14.0f %14.0f %8.3f%s\n", name, oldns[name], newns[name], ratio, flag
    }
    for (i = 1; i <= addcount; i++)
        printf "%-55s %14s %14.0f %8s\n", added[i], "(new)", newns[added[i]], "-"
    if (missing > 0) {
        printf "\n%d benchmark(s) from %s missing in %s\n", missing, oldfile, newfile
        if (checkmissing) exit 2
    }
    if (regressions > 0) {
        printf "\n%d benchmark(s) over the %.2fx ns/op threshold\n", regressions, threshold + 0
        exit 1
    }
}' "$OLD" "$NEW"
