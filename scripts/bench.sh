#!/bin/sh
# bench.sh — run the repository's benchmarks and record the perf trajectory.
#
# Runs `go test -bench -benchmem` across every package and emits
# BENCH_<date>.json in the repo root: one entry per benchmark (ns/op,
# B/op, allocs/op, custom metrics) plus a "speedups" section with the
# serial-vs-parallel ratio for every benchmark that has both variants
# (BenchmarkFigure1, BenchmarkFigure2, BenchmarkOrderingChain,
# BenchmarkFortify, BenchmarkEstimateSOParallel, the live-system
# BenchmarkCampaignSeries, and BenchmarkFaultCampaignSeries/pb and /smr —
# the fault-campaign sub-benchmarks: one series per replication backend
# under the rolling-partition schedule with availability measurement on,
# so the PB-vs-SMR cost and availability comparison is part of the
# recorded trajectory). Compare files across dates to see whether a PR
# moved the hot paths — e.g. BenchmarkSendRecv tracks the netsim
# batched-delivery work, BenchmarkCampaignSeries the campaign-level
# parallelism, BenchmarkFaultCampaignSeries the fault-injection overhead,
# BenchmarkWALAppend (internal/replica/store) the durable-log append at
# three sync cadences, BenchmarkFaultCampaignPersistence what the WAL
# costs a whole blackout campaign versus the in-memory store,
# and BenchmarkUpdateFanout the primary's update fan-out along two axes:
# flush shape (per-message vs batched outbox flush) and payload shape
# (snapshot vs delta — the full-state encoding against the ack-windowed
# incremental diff the PB primary now ships, whose B/op tracks the state
# touched per request rather than total state size), and
# BenchmarkReadScaling the lease tier's read-scalability claim: a 0.95
# read-fraction workload over 3/5/7-replica SMR clusters, leases off vs
# on — leases-on cost should stay flat as replicas grow while leases-off
# (every read ordered through the leader) climbs with the fan-out, and
# BenchmarkMetricsHotPath (internal/metrics) the zero-allocation pledge on
# the counter/gauge/histogram/trace-ring hot paths: its recorded allocs/op
# must stay 0, and the benchmark itself fails if an allocation sneaks in,
# and BenchmarkShardScaling the sharded fortress's aggregate-throughput
# claim: a fixed 64-op write-heavy keyed budget per iteration split across
# 1/2/4/8 consistent-hash replica groups (pb and smr), one closed-loop
# client per shard over a 2ms-link-delay network — the recorded "ops/s"
# metric should scale near-linearly in the group count until the host CPU
# saturates on signature verification, and BenchmarkWorkloadGen the
# open-loop workload engine's O(active requests) claim: arrivals/s drawn
# from the zipf-poisson preset at 10⁴ vs 10⁶ simulated clients plus a
# bytes/client metric (heap held by a warm generator over its population)
# that must stay roughly flat across the two orders of magnitude, because
# cohort superposition caps per-client state at zero and only the per-step
# arrival buffer scales with offered load.
#
# scripts/benchdiff.sh compares two of these files (per-benchmark ns/op
# ratio, configurable threshold, baseline-completeness check); the CI
# bench-smoke job runs it on every pull request against the newest
# checked-in BENCH_<date>.json. `benchdiff.sh -T` prints the whole
# trajectory — per-benchmark ns/op across every checked-in BENCH_*.json.
#
# Usage:
#   scripts/bench.sh [bench-regex]        # default: . (all benchmarks)
# Environment:
#   BENCHTIME=1s scripts/bench.sh         # default: 1x (one artifact
#                                         # regeneration per benchmark —
#                                         # these are whole-figure runs,
#                                         # already seconds long)
#   TIMEOUT=10m scripts/bench.sh          # per-package go test timeout
#
# A failing (or timed-out) package does not abort the run: its benchmarks
# are simply absent from the JSON and a warning is printed, so one flaky
# live-system bench cannot lose the whole day's perf record.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-.}"
BENCHTIME="${BENCHTIME:-1x}"
TIMEOUT="${TIMEOUT:-10m}"
DATE="$(date +%Y-%m-%d)"
OUT="BENCH_${DATE}.json"
if [ "$PATTERN" != "." ]; then
    # A scoped run must not clobber the day's full record.
    OUT="BENCH_${DATE}_$(printf '%s' "$PATTERN" | tr -c 'A-Za-z0-9' _).json"
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "# go test -run ^\$ -bench $PATTERN -benchmem -benchtime $BENCHTIME -timeout $TIMEOUT ./..." >&2
status=0
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -timeout "$TIMEOUT" ./... >"$RAW" 2>&1 || status=$?
cat "$RAW" >&2
if [ "$status" -ne 0 ]; then
    echo "WARNING: go test exited $status; failing packages are missing from $OUT" >&2
fi

awk -v date="$DATE" -v goversion="$(go version)" -v cpus="$(getconf _NPROCESSORS_ONLN)" '
function esc(s) { gsub(/["\\]/, "", s); return s }
/^Benchmark/ {
    name = $1
    # Strip the -GOMAXPROCS suffix. go test appends it only when
    # GOMAXPROCS > 1, and sub-benchmark names may themselves end in
    # -<number> (e.g. WALAppend/fsync-every-64), so strip exactly the
    # proc count — a blanket -[0-9]+$ strip collides those names.
    if (cpus > 1) sub("-" cpus "$", "", name)
    order[++count] = name
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op")          ns[name] = val
        else if (unit == "B/op")      bytes[name] = val
        else if (unit == "allocs/op") allocs[name] = val
        else                          metrics[name] = metrics[name] sprintf("%s\"%s\": %s", \
                                          (metrics[name] == "" ? "" : ", "), esc(unit), val)
    }
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", esc(goversion)
    printf "  \"cpus\": %s,\n", cpus
    printf "  \"benchtime\": \"%s\",\n", "'"$BENCHTIME"'"
    printf "  \"benchmarks\": {\n"
    for (k = 1; k <= count; k++) {
        name = order[k]
        printf "    \"%s\": {\"ns_per_op\": %s", esc(name), ns[name]
        if (name in bytes)   printf ", \"bytes_per_op\": %s", bytes[name]
        if (name in allocs)  printf ", \"allocs_per_op\": %s", allocs[name]
        if (name in metrics) printf ", \"metrics\": {%s}", metrics[name]
        printf "}%s\n", (k < count ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedups\": {\n"
    nsp = 0
    for (k = 1; k <= count; k++) {
        name = order[k]
        if (name ~ /\/serial$/) {
            base = name
            sub(/\/serial$/, "", base)
            par = base "/parallel"
            if ((par in ns) && ns[par] > 0)
                pair[++nsp] = sprintf("    \"%s\": %.3f", esc(base), ns[name] / ns[par])
        }
    }
    for (k = 1; k <= nsp; k++) printf "%s%s\n", pair[k], (k < nsp ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
