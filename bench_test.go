// Package main_test holds the benchmark harness: one testing.B benchmark
// per evaluation artifact of the paper (see DESIGN.md §2 for the experiment
// index). Each benchmark regenerates its artifact end-to-end — workload,
// sweep, baselines — so `go test -bench .` reproduces every figure's data.
//
// Reported metrics: ns/op for the full artifact regeneration, plus custom
// ReportMetric series for the headline lifetimes so shapes are visible in
// bench output.
package main_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fortress/internal/attack"
	"fortress/internal/experiments"
	"fortress/internal/faults"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/memlayout"
	"fortress/internal/model"
	"fortress/internal/netsim"
	"fortress/internal/proxy"
	"fortress/internal/replica"
	"fortress/internal/replica/core"
	"fortress/internal/replica/pb"
	"fortress/internal/replica/smr"
	"fortress/internal/replica/store"
	"fortress/internal/service"
	"fortress/internal/sig"
	"fortress/internal/sim"
	"fortress/internal/workload"
	"fortress/internal/xrand"
)

// benchTrials keeps Monte-Carlo budgets benchmark-sized; the CLI uses
// larger defaults for publication-quality confidence intervals.
const benchTrials = 20000

// workerVariants pairs each Monte-Carlo benchmark with a serial and a
// parallel sub-benchmark so the speedup of the sharded engine is a tracked
// metric (see scripts/bench.sh, which records serial/parallel ratios). The
// engine guarantees both variants produce bit-identical estimates.
var workerVariants = []struct {
	name    string
	workers int
}{
	{"serial", 1},
	{"parallel", runtime.GOMAXPROCS(0)},
}

func benchConfig(workers int) experiments.Config {
	return experiments.Config{Trials: benchTrials, Seed: 1, LaunchPadFraction: -1, Workers: workers}
}

// BenchmarkFigure1 regenerates E1: the Figure 1 EL-vs-α comparison of
// S0SO, S1SO, S1PO, S2PO and S0PO (analytic + Monte-Carlo cross-check).
func BenchmarkFigure1(b *testing.B) {
	for _, v := range workerVariants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig(v.workers)
			var results []experiments.Result
			for i := 0; i < b.N; i++ {
				var err error
				results, err = experiments.Figure1(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			// Surface the α=0.001 column as metrics.
			for _, r := range results {
				if r.Alpha == 0.001 {
					b.ReportMetric(r.EL(), "EL("+r.System+")@a=1e-3")
				}
			}
		})
	}
}

// BenchmarkFigure2 regenerates E2: EL of S2PO as κ varies.
func BenchmarkFigure2(b *testing.B) {
	for _, v := range workerVariants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig(v.workers)
			var results []experiments.Result
			for i := 0; i < b.N; i++ {
				var err error
				results, err = experiments.Figure2(cfg, []float64{0.001}, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range results {
				switch r.Kappa {
				case 0, 0.5, 1:
					b.ReportMetric(r.EL(), fmt.Sprintf("EL(S2PO)@k=%g", r.Kappa))
				}
			}
		})
	}
}

// BenchmarkOrderingChain regenerates E3: the §6 summary ordering
// S0PO → S2PO → S1PO → S1SO → S0SO.
func BenchmarkOrderingChain(b *testing.B) {
	for _, v := range workerVariants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig(v.workers)
			var rep experiments.OrderingReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = experiments.OrderingChain(cfg, 0.001, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Holds {
					b.Fatalf("ordering chain broken: %s", rep.Detail)
				}
			}
			for i, name := range rep.Order {
				b.ReportMetric(rep.ELs[i], "EL("+name+")")
			}
		})
	}
}

// BenchmarkFortify regenerates E4: fortified PB under SO vs proactively
// recovered SMR, the background [7] claim the paper builds on.
func BenchmarkFortify(b *testing.B) {
	for _, v := range workerVariants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig(v.workers)
			var rows []experiments.FortifyComparison
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.Fortify(cfg, 0.001, []float64{0, 0.5, 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range rows {
				b.ReportMetric(r.S2SO, fmt.Sprintf("EL(S2SO)@k=%g", r.Kappa))
			}
			b.ReportMetric(rows[0].S0SO, "EL(S0SO)")
		})
	}
}

// BenchmarkEstimateSOParallel isolates the engine itself (no sweep logic):
// one 200k-trial S2SO estimate, serial vs sharded-parallel.
func BenchmarkEstimateSOParallel(b *testing.B) {
	sys := model.S2SO{P: model.DefaultParams(0.001, 0.5)}
	for _, v := range workerVariants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := sim.EstimateSO(sys, 200000, xrand.New(9), sim.Config{Workers: v.workers})
				if err != nil {
					b.Fatal(err)
				}
				if est.Trials != 200000 {
					b.Fatalf("trials = %d", est.Trials)
				}
			}
		})
	}
}

// BenchmarkDerandomization regenerates E5: phase-1 probe cost of the
// [10, 12] de-randomization attack against a directly exposed forking
// server — the baseline FORTRESS removes.
func BenchmarkDerandomization(b *testing.B) {
	space, err := keyspace.NewSpace(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	var totalProbes uint64
	for i := 0; i < b.N; i++ {
		daemon := memlayout.NewForkingDaemon(space, rng.Split())
		res, err := attack.Derandomize(space, daemon, rng.Split())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Compromised {
			b.Fatal("attack failed")
		}
		totalProbes += res.ProbesUsed
	}
	b.ReportMetric(float64(totalProbes)/float64(b.N), "probes/compromise")
}

// BenchmarkCampaignSOvsPO regenerates the executable-stack half of E5: a
// full campaign against a live FORTRESS deployment, once per obfuscation
// regime, on a small key space.
func BenchmarkCampaignSOvsPO(b *testing.B) {
	for _, po := range []bool{false, true} {
		name := "SO"
		if po {
			name = "PO"
		}
		b.Run(name, func(b *testing.B) {
			var totalSteps uint64
			for i := 0; i < b.N; i++ {
				space, err := keyspace.NewSpace(24)
				if err != nil {
					b.Fatal(err)
				}
				sys, err := fortress.New(fortress.Config{
					Servers:           3,
					Proxies:           3,
					Space:             space,
					Seed:              uint64(i) + 1,
					ServiceFactory:    func() service.Service { return service.NewKV() },
					HeartbeatInterval: 5 * time.Millisecond,
					HeartbeatTimeout:  50 * time.Millisecond,
					ServerTimeout:     time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := attack.Campaign(sys, space, attack.CampaignConfig{
					OmegaDirect:   2,
					OmegaIndirect: 1,
					MaxSteps:      60,
					Rerandomize:   po,
				}, xrand.New(uint64(i)+100))
				sys.Stop()
				if err != nil {
					b.Fatal(err)
				}
				totalSteps += res.StepsElapsed
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "lifetime-steps")
		})
	}
}

// campaignVariants pairs the campaign-series benchmark with a serial and a
// parallel sub-benchmark, like workerVariants does for the Monte-Carlo
// sweeps — scripts/bench.sh records the serial/parallel ratio. Unlike the
// CPU-bound trial shards, campaign repetitions are latency-bound (heartbeat,
// recovery and teardown waits inside each live deployment), so the parallel
// variant uses a fixed worker count above GOMAXPROCS: overlapping those
// waits shows a real speedup even on a single-core machine.
var campaignVariants = []struct {
	name    string
	workers int
}{
	{"serial", 1},
	{"parallel", 4},
}

// BenchmarkCampaignSeries measures live-campaign throughput end-to-end: a
// series of full de-randomization campaigns, each against its own FORTRESS
// deployment on its own simulated network, sharded across workers. Both
// variants produce bit-identical merged results (see
// attack.TestCampaignSeriesBitIdenticalAcrossWorkers).
func BenchmarkCampaignSeries(b *testing.B) {
	for _, v := range campaignVariants {
		b.Run(v.name, func(b *testing.B) {
			var series attack.SeriesResult
			for i := 0; i < b.N; i++ {
				space, err := keyspace.NewSpace(24)
				if err != nil {
					b.Fatal(err)
				}
				tmpl := fortress.Config{
					Servers:           3,
					Proxies:           3,
					ServiceFactory:    func() service.Service { return service.NewKV() },
					HeartbeatInterval: 5 * time.Millisecond,
					HeartbeatTimeout:  50 * time.Millisecond,
					ServerTimeout:     time.Second,
				}
				// Fixed seed: both variants run the identical repetition
				// set (and, per the determinism contract, produce the
				// identical merged result), so the serial/parallel ratio
				// in BENCH_<date>.json compares equal work.
				series, err = attack.CampaignSeries(tmpl, space, attack.SeriesConfig{
					Campaign: attack.CampaignConfig{
						OmegaDirect:   2,
						OmegaIndirect: 1,
						MaxSteps:      60,
					},
					Workers: v.workers,
				}, 4, xrand.New(100))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(series.Lifetime.Mean, "lifetime-steps")
			b.ReportMetric(float64(series.Compromised)/float64(series.Reps), "compromise-rate")
		})
	}
}

// BenchmarkFaultCampaignSeries measures live-campaign throughput under an
// active fault schedule: the rolling-partition preset replayed by a
// per-repetition injector, with per-step availability measurement on — the
// degraded-network counterpart of BenchmarkCampaignSeries. The benchmark
// runs once per replication backend, so BENCH_<date>.json tracks PB-vs-SMR
// fault-campaign cost and availability side by side. All variants produce
// bit-identical merged results per backend (see
// attack.TestCampaignSeriesWithInjectorBitIdentical and
// experiments.TestFaultSweepSMRBitIdenticalAcrossWorkers).
func BenchmarkFaultCampaignSeries(b *testing.B) {
	preset, err := faults.PresetByName("rolling-partition")
	if err != nil {
		b.Fatal(err)
	}
	const (
		servers  = 3
		proxies  = 3
		maxSteps = 30
	)
	sched := preset.Build(faults.Shape{Servers: servers, Proxies: proxies}, maxSteps)
	for _, backend := range []replica.Backend{replica.BackendPB, replica.BackendSMR} {
		for _, v := range campaignVariants {
			b.Run(backend.String()+"/"+v.name, func(b *testing.B) {
				var series attack.SeriesResult
				for i := 0; i < b.N; i++ {
					space, err := keyspace.NewSpace(24)
					if err != nil {
						b.Fatal(err)
					}
					tmpl := fortress.Config{
						Servers:           servers,
						Proxies:           proxies,
						Backend:           backend,
						ServiceFactory:    func() service.Service { return service.NewKV() },
						HeartbeatInterval: 5 * time.Millisecond,
						HeartbeatTimeout:  400 * time.Millisecond,
						ServerTimeout:     150 * time.Millisecond,
					}
					series, err = attack.CampaignSeries(tmpl, space, attack.SeriesConfig{
						Campaign: attack.CampaignConfig{
							OmegaDirect:         2,
							OmegaIndirect:       1,
							MaxSteps:            maxSteps,
							MeasureAvailability: true,
							HealthTimeout:       600 * time.Millisecond,
							ProbeTimeout:        2 * time.Second,
						},
						Workers: v.workers,
						MakeInjector: func(rep int, sys *fortress.System, rng *xrand.RNG) attack.StepInjector {
							inj, err := faults.NewInjector(sched, sys, rng)
							if err != nil {
								b.Fatal(err)
							}
							return inj
						},
					}, 4, xrand.New(100))
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(series.Lifetime.Mean, "lifetime-steps")
				b.ReportMetric(series.Availability.Mean, "availability")
			})
		}
	}
}

// BenchmarkFaultCampaignPersistence prices durability under the headline
// blackout scenario: the whole-cluster power-loss preset replayed against
// the in-memory store (data gone, zero write cost) and against per-server
// WALs at two fsync cadences (real fsyncs — the cadence is the durability
// knob CrashAll's power failure makes measurable). ns/op tracks what the
// persistent write path adds to a live campaign; the campaign-measured
// availability rides along per variant. The recovery semantics themselves —
// WAL tiers reconverging with pre-blackout data, the in-memory tier
// re-forming empty — are pinned by the blackout tests in internal/faults.
func BenchmarkFaultCampaignPersistence(b *testing.B) {
	preset, err := faults.PresetByName("blackout")
	if err != nil {
		b.Fatal(err)
	}
	const (
		servers  = 3
		proxies  = 3
		maxSteps = 20
		reps     = 2
	)
	sched := preset.Build(faults.Shape{Servers: servers, Proxies: proxies}, maxSteps)
	for _, v := range []struct {
		name      string
		wal       bool
		syncEvery int
	}{
		{"mem", false, 0},
		{"wal-fsync-1", true, 1},
		{"wal-fsync-64", true, 64},
	} {
		b.Run(v.name, func(b *testing.B) {
			var series attack.SeriesResult
			for i := 0; i < b.N; i++ {
				space, err := keyspace.NewSpace(24)
				if err != nil {
					b.Fatal(err)
				}
				tmpl := fortress.Config{
					Servers:           servers,
					Proxies:           proxies,
					ServiceFactory:    func() service.Service { return service.NewKV() },
					HeartbeatInterval: 5 * time.Millisecond,
					HeartbeatTimeout:  400 * time.Millisecond,
					ServerTimeout:     150 * time.Millisecond,
				}
				var customize func(rep int, fc *fortress.Config)
				if v.wal {
					root := b.TempDir()
					syncEvery := v.syncEvery
					customize = func(rep int, fc *fortress.Config) {
						fc.StoreFactory = func(server int) (store.Store, error) {
							return store.Open(store.WALConfig{
								Dir:       filepath.Join(root, fmt.Sprintf("r%d", rep), fmt.Sprintf("s%d", server)),
								SyncEvery: syncEvery,
							})
						}
					}
				}
				series, err = attack.CampaignSeries(tmpl, space, attack.SeriesConfig{
					Campaign: attack.CampaignConfig{
						OmegaDirect:         2,
						OmegaIndirect:       1,
						MaxSteps:            maxSteps,
						MeasureAvailability: true,
						HealthTimeout:       600 * time.Millisecond,
						ProbeTimeout:        2 * time.Second,
					},
					Workers:   runtime.GOMAXPROCS(0),
					Customize: customize,
					MakeInjector: func(rep int, sys *fortress.System, rng *xrand.RNG) attack.StepInjector {
						inj, err := faults.NewInjector(sched, sys, rng)
						if err != nil {
							b.Fatal(err)
						}
						return inj
					},
				}, reps, xrand.New(100))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(series.Availability.Mean, "availability")
		})
	}
}

// fanoutHandler is the no-op protocol for BenchmarkUpdateFanout receivers.
type fanoutHandler struct{}

func (fanoutHandler) HandleMessage(conn *netsim.Conn, raw []byte, replies [][]byte) [][]byte {
	return replies
}
func (fanoutHandler) HandlePeerReply(peer int, raw []byte) {}
func (fanoutHandler) Tick()                                {}
func (fanoutHandler) Rejoin()                              {}

// BenchmarkUpdateFanout measures the primary's per-request fan-out cost
// through the shared node runtime, along two axes.
//
// Flush shape (fixed 256-byte payload): per-message (one flush per staged
// update — one SendBatch of one message per backup, the old
// broadcastToBackups shape) versus batched (a whole drained batch's updates
// staged per backup, shipped with a single SendBatch flush).
//
// Payload shape (batched flushes, payloads derived from a live KV service):
// snapshot (every update carries the full state encoding, the pre-delta PB
// stream) versus delta (each update carries the pb prefix/suffix diff of
// consecutive snapshots, the incremental stream the PB primary now ships).
// With a 256-key store and single-key writes, delta B/op tracks the state
// actually touched per request while snapshot B/op tracks total state size.
func BenchmarkUpdateFanout(b *testing.B) {
	const (
		backups     = 3
		perBatch    = 32  // updates executed per drained inbound batch
		payloadSize = 256 // roughly a small KV snapshot update
	)
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	const rounds = 16 // fan-out bursts per op, so a 1x run still averages
	setup := func(b *testing.B, warm []byte) *core.Node {
		b.Helper()
		net := netsim.NewNetwork()
		peers := make(map[int]string, backups+1)
		for i := 0; i <= backups; i++ {
			peers[i] = fmt.Sprintf("fanout-%d", i)
		}
		var nodes []*core.Node
		for i := 0; i <= backups; i++ {
			n, err := core.NewNode(core.Config{
				Index: i, Addr: peers[i], Peers: peers, Net: net,
				TickInterval: time.Hour, // timers out of the measurement
			}, fanoutHandler{})
			if err != nil {
				b.Fatal(err)
			}
			if err := n.Start(); err != nil {
				b.Fatal(err)
			}
			nodes = append(nodes, n)
		}
		b.Cleanup(func() {
			for _, n := range nodes {
				n.Stop()
			}
		})
		// Warm the peer-connection cache and the outbox/payload pools, so
		// the measurement is steady-state fan-out, not dial setup.
		nodes[0].Broadcast(warm)
		nodes[0].Flush()
		return nodes[0]
	}
	b.Run("per-message", func(b *testing.B) {
		primary := setup(b, payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rounds; r++ {
				for m := 0; m < perBatch; m++ {
					primary.Broadcast(payload)
					primary.Flush()
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		primary := setup(b, payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rounds; r++ {
				for m := 0; m < perBatch; m++ {
					primary.Broadcast(payload)
				}
				primary.Flush()
			}
		}
	})

	// The payload-shape variants replay the same perBatch single-key writes
	// against a 256-key KV store and precompute both encodings of each
	// executed update: the full snapshot and the pb snapshot delta.
	kv := service.NewKV()
	for i := 0; i < 256; i++ {
		if _, err := kv.Apply([]byte(fmt.Sprintf(`{"op":"put","key":"key-%03d","value":"v-%03d-0000"}`, i, i))); err != nil {
			b.Fatal(err)
		}
	}
	prev, err := kv.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	snapshots := make([][]byte, perBatch)
	deltas := make([][]byte, perBatch)
	for m := 0; m < perBatch; m++ {
		if _, err := kv.Apply([]byte(fmt.Sprintf(`{"op":"put","key":"key-%03d","value":"v-%03d-%04d"}`, m*7%256, m*7%256, m+1))); err != nil {
			b.Fatal(err)
		}
		snap, err := kv.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		prefix, patch, suffix := pb.DiffSnapshot(prev, snap)
		deltas[m] = append([]byte(fmt.Sprintf("delta:%d:%d:", prefix, suffix)), patch...)
		snapshots[m] = snap
		prev = snap
	}
	for _, v := range []struct {
		name     string
		payloads [][]byte
	}{{"snapshot", snapshots}, {"delta", deltas}} {
		b.Run(v.name, func(b *testing.B) {
			primary := setup(b, v.payloads[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < rounds; r++ {
					for m := 0; m < perBatch; m++ {
						primary.Broadcast(v.payloads[m])
					}
					primary.Flush()
				}
			}
		})
	}
}

// BenchmarkReadScaling regenerates the read-scalability artifact of the
// lease tier: a read-mostly workload (read fraction 0.95) against direct
// SMR clusters of 3, 5 and 7 replicas, leases off versus on. With leases
// on, each read is a single round trip to a single replica, rotated across
// the group, so concurrent readers spread over the whole cluster and
// aggregate throughput grows with replica count. With leases off every
// read falls back to the fan-out-and-vote ordered path through the leader,
// so adding replicas adds fan-out cost instead of read capacity — the flat
// baseline the lease tier is measured against.
func BenchmarkReadScaling(b *testing.B) {
	const readEvery = 20 // one write per 20 requests: read fraction 0.95
	for _, n := range []int{3, 5, 7} {
		for _, leases := range []bool{false, true} {
			b.Run(fmt.Sprintf("replicas=%d/leases=%t", n, leases), func(b *testing.B) {
				net := netsim.NewNetwork()
				peers := make(map[int]string, n)
				for i := 0; i < n; i++ {
					peers[i] = fmt.Sprintf("smr-%d", i)
				}
				replicas := make([]*smr.Replica, n)
				pubKeys := make(map[int][]byte, n)
				for i := 0; i < n; i++ {
					keys, err := sig.NewKeyPair()
					if err != nil {
						b.Fatal(err)
					}
					r, err := smr.New(smr.Config{
						Index: i, Addr: peers[i], Peers: peers,
						Service: service.NewKV(), Keys: keys, Net: net,
						HeartbeatInterval: 2 * time.Millisecond,
						HeartbeatTimeout:  50 * time.Millisecond,
						Leases:            leases,
					})
					if err != nil {
						b.Fatal(err)
					}
					replicas[i] = r
					pubKeys[i] = r.PublicKey()
					b.Cleanup(r.Stop)
				}
				f := (n - 1) / 3
				if f < 1 {
					f = 1
				}
				client, err := smr.NewClient(net, "bench", peers, pubKeys, f, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := client.Invoke("seed", []byte(`{"op":"put","key":"k","value":"v"}`)); err != nil {
					b.Fatal(err)
				}
				if leases {
					// Measure the steady state: every replica holds a lease.
					deadline := time.Now().Add(5 * time.Second)
					for _, r := range replicas {
						for !r.LeaseValid() {
							if time.Now().After(deadline) {
								b.Fatal("leases never settled")
							}
							time.Sleep(time.Millisecond)
						}
					}
				}
				read := []byte(`{"op":"get","key":"k"}`)
				write := []byte(`{"op":"put","key":"k","value":"w"}`)
				var ops atomic.Uint64
				// The scaling axis is concurrent readers spread across
				// replicas, so overlap round trips beyond GOMAXPROCS — the
				// reads are latency-bound, not CPU-bound.
				b.SetParallelism(4)
				b.ResetTimer()
				b.RunParallel(func(tpb *testing.PB) {
					for tpb.Next() {
						i := ops.Add(1)
						var err error
						if i%readEvery == 0 {
							_, err = client.Invoke(fmt.Sprintf("w-%d", i), write)
						} else {
							_, err = client.InvokeRead(fmt.Sprintf("r-%d", i), read)
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkShardScaling regenerates the sharding throughput artifact: a
// write-heavy keyed workload (9 puts per get) driven through the full
// doubly-signed proxy path against deployments of 1, 2, 4 and 8
// consistent-hash replica groups, per replication backend. The network
// carries a simulated link delay, so a request's latency is dominated by
// its round trips — as on any real network — and each shard runs one
// closed-loop client (a fixed per-shard population, the standard
// partitioned-store methodology): a single group is then bounded by one
// ordering pipeline's round-trip cadence, while M groups overlap M
// independent pipelines, so aggregate ops/s (the inverse of ns/op) grows
// near-linearly with the group count until the simulation host's CPU
// saturates on signature verification. Keys come from the deployment's
// own ring, an equal share per group.
func BenchmarkShardScaling(b *testing.B) {
	const (
		servers      = 3
		proxies      = 3
		keysPerGroup = 8
		linkDelay    = 2 * time.Millisecond
	)
	for _, backend := range []replica.Backend{replica.BackendPB, replica.BackendSMR} {
		for _, groups := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/groups=%d", backend, groups), func(b *testing.B) {
				space, err := keyspace.NewSpace(24)
				if err != nil {
					b.Fatal(err)
				}
				sys, err := fortress.New(fortress.Config{
					Servers:           servers,
					Proxies:           proxies,
					Groups:            groups,
					Backend:           backend,
					Space:             space,
					Seed:              7,
					ServiceFactory:    func() service.Service { return service.NewKV() },
					HeartbeatInterval: 5 * time.Millisecond,
					HeartbeatTimeout:  400 * time.Millisecond,
					ServerTimeout:     2 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(sys.Stop)
				ring := sys.Ring()
				byGroup := make([][]string, groups)
				for g := 0; g < groups; g++ {
					for n := 0; len(byGroup[g]) < keysPerGroup; n++ {
						k := fmt.Sprintf("bench-%d-%d", g, n)
						if ring.Owner(k) == g {
							byGroup[g] = append(byGroup[g], k)
						}
					}
				}
				// One closed-loop client per shard; warm each shard's
				// pipeline (connection caches, first checkpoint) before
				// the measurement, then turn the link delay on.
				clients := make([]*proxy.Client, groups)
				for g := range clients {
					cl, err := sys.Client(fmt.Sprintf("bench-shard-c%d", g), 5*time.Second)
					if err != nil {
						b.Fatal(err)
					}
					body := fmt.Sprintf(`{"op":"put","key":%q,"value":"seed"}`, byGroup[g][0])
					if _, err := cl.Invoke(fmt.Sprintf("warm-%d", g), []byte(body)); err != nil {
						b.Fatal(err)
					}
					clients[g] = cl
				}
				sys.Net().SetLinkDelay(linkDelay)
				// Each iteration spends a fixed total budget of opsPerIter
				// requests, split across the shards (Σ_g (K+g)/groups ==
				// K), so ns/op is the wall time of the same workload at
				// every group count — the 1-group/M-group ratio IS the
				// aggregate throughput scaling, even at -benchtime 1x.
				const opsPerIter = 64
				errs := make([]error, groups)
				b.ResetTimer()
				for iter := 0; iter < b.N; iter++ {
					var wg sync.WaitGroup
					for g := 0; g < groups; g++ {
						wg.Add(1)
						go func(iter, g int) {
							defer wg.Done()
							cl, keys := clients[g], byGroup[g]
							for i := 0; i < (opsPerIter+g)/groups; i++ {
								key := keys[i%len(keys)]
								id := fmt.Sprintf("%d-%d-%d", iter, g, i)
								var err error
								if i%10 == 9 {
									body := fmt.Sprintf(`{"op":"get","key":%q}`, key)
									_, err = cl.InvokeRead("r-"+id, []byte(body))
								} else {
									body := fmt.Sprintf(`{"op":"put","key":%q,"value":"v"}`, key)
									_, err = cl.Invoke("w-"+id, []byte(body))
								}
								if err != nil {
									errs[g] = err
									return
								}
							}
						}(iter, g)
					}
					wg.Wait()
				}
				b.StopTimer()
				b.ReportMetric(float64(opsPerIter)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
				sys.Net().SetLinkDelay(0)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLaunchPadAblation quantifies the λ design knob from DESIGN.md
// §5: how the same-step launch-pad fraction moves EL(S2PO).
func BenchmarkLaunchPadAblation(b *testing.B) {
	for _, lp := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("lambda=%g", lp), func(b *testing.B) {
			var el float64
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams(0.01, 0.2)
				p.LaunchPadFraction = lp
				var err error
				el, err = model.S2PO{P: p}.AnalyticEL()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(el, "EL(S2PO)")
		})
	}
}

// BenchmarkChiSweep regenerates E7 (extension): EL sensitivity to key
// entropy, 12..20 bits, for the two headline PO systems. The paper fixes
// χ = 2¹⁶; this sweep shows the shape is entropy-scaled, not entropy-bound.
func BenchmarkChiSweep(b *testing.B) {
	for _, bits := range []uint{12, 16, 20} {
		b.Run(fmt.Sprintf("chi=2^%d", bits), func(b *testing.B) {
			var s1, s2 float64
			for i := 0; i < b.N; i++ {
				p := model.DefaultParams(0.001, 0.5)
				p.Chi = 1 << bits
				var err error
				s1, err = (model.S1PO{P: p}).AnalyticEL()
				if err != nil {
					b.Fatal(err)
				}
				s2, err = (model.S2PO{P: p}).AnalyticEL()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(s1, "EL(S1PO)")
			b.ReportMetric(s2, "EL(S2PO)")
		})
	}
}

// BenchmarkStaggeredObfuscation quantifies the §2.3 extension: how much
// lifetime Roeder–Schneider-style batched re-randomization costs S0
// relative to the paper's idealized instantaneous re-randomization.
func BenchmarkStaggeredObfuscation(b *testing.B) {
	p := model.DefaultParams(0.01, 0)
	rng := xrand.New(7)
	var stag model.Estimate
	for i := 0; i < b.N; i++ {
		var err error
		stag, err = model.EstimateSO(model.S0Staggered{P: p}, benchTrials, rng.Split())
		if err != nil {
			b.Fatal(err)
		}
	}
	ideal, err := (model.S0PO{P: p}).AnalyticEL()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(stag.EL, "EL(staggered)")
	b.ReportMetric(ideal, "EL(ideal-PO)")
	b.ReportMetric(ideal/stag.EL, "ideal/staggered")
}

// BenchmarkAlphaGrowth regenerates E6: the SO-vs-PO per-step success
// probability table.
func BenchmarkAlphaGrowth(b *testing.B) {
	var rows []experiments.AlphaGrowthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AlphaGrowth(0.001, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].AlphaSO/rows[0].AlphaPO, "alpha500/alpha1")
}

// BenchmarkWorkloadGen pins the workload engine's two headline claims: the
// arrival stream is cheap to draw (arrivals/s) and generator state is
// O(active requests), never O(clients) — the bytes/client metric, the heap
// held by a warm generator divided by its simulated population, must stay
// roughly flat from 10⁴ to 10⁶ clients because cohort superposition caps
// the per-client state at zero and only the per-step arrival buffer (rate ×
// clients requests) scales.
func BenchmarkWorkloadGen(b *testing.B) {
	spec, err := workload.PresetByName("zipf-poisson")
	if err != nil {
		b.Fatal(err)
	}
	for _, clients := range []int{10_000, 1_000_000} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			s := spec
			s.Clients = clients
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			g, err := workload.NewGen(s, xrand.New(1))
			if err != nil {
				b.Fatal(err)
			}
			buf := g.Arrivals(0, nil) // warm the arrival buffer to steady state
			runtime.GC()
			runtime.ReadMemStats(&after)
			perClient := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(clients)
			var arrivals uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = g.Arrivals(uint64(i)+1, buf[:0])
				arrivals += uint64(len(buf))
			}
			b.StopTimer()
			if arrivals == 0 {
				b.Fatal("no arrivals generated")
			}
			b.ReportMetric(float64(arrivals)/b.Elapsed().Seconds(), "arrivals/s")
			b.ReportMetric(perClient, "bytes/client")
		})
	}
}
