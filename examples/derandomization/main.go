// Derandomization: reproduce the §2 story end-to-end.
//
// Act 1 — the [10, 12] attack: an attacker with a direct connection to a
// forking server probes every candidate randomization key, using the
// connection-closure crash oracle, and compromises the server in ~χ/2
// probes.
//
// Act 2 — the same attacker against a FORTRESS deployment: the proxies hide
// the servers (no crash oracle), log every invalid request, and flag the
// probe source long before phase 1 completes.
package main

import (
	"fmt"
	"log"
	"time"

	"fortress/internal/attack"
	"fortress/internal/exploit"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/memlayout"
	"fortress/internal/proxy"
	"fortress/internal/service"
	"fortress/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A modest χ keeps the demo fast; scale it up to feel the pain.
	const chi = 4096
	space, err := keyspace.NewSpace(chi)
	if err != nil {
		return err
	}
	rng := xrand.New(uint64(time.Now().UnixNano()))

	// --- Act 1: direct attack on an exposed forking server -------------
	fmt.Printf("Act 1: de-randomization against a directly exposed server (χ=%d)\n", chi)
	daemon := memlayout.NewForkingDaemon(space, rng.Split())
	crashes := 0
	daemon.SetCrashObserver(func() { crashes++ })
	res, err := attack.Derandomize(space, daemon, rng.Split())
	if err != nil {
		return err
	}
	fmt.Printf("  compromised=%v after %d probes (%d observed child crashes)\n",
		res.Compromised, res.ProbesUsed, crashes)
	fmt.Printf("  expected ~χ/2 = %d probes — the forking daemon and the TCP\n", chi/2)
	fmt.Println("  crash oracle make every wrong guess cheap for the attacker")

	// --- Act 2: the same probes against FORTRESS -----------------------
	fmt.Println("\nAct 2: the same probing against a FORTRESS deployment")
	sys, err := fortress.New(fortress.Config{
		Servers:           3,
		Proxies:           3,
		Space:             space,
		Seed:              rng.Uint64(),
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
		DetectorWindow:    time.Hour, // proxies log for long horizons (§2.2)
		DetectorThreshold: 20,
	})
	if err != nil {
		return err
	}
	defer sys.Stop()

	guesser, err := keyspace.NewGuesser(space, rng.Split())
	if err != nil {
		return err
	}
	target := sys.Proxies()[0]
	sent, blocked := 0, false
	for !blocked {
		guess, ok := guesser.NextCandidate()
		if !ok {
			break
		}
		conn, err := sys.Net().Dial("mallory", target.Addr())
		if err != nil {
			blocked = true
			break
		}
		payload := exploit.NewPayload(exploit.TierServer, guess)
		if err := conn.Send(proxy.EncodeRequest(fmt.Sprintf("p%d", sent), payload)); err != nil {
			conn.Close()
			blocked = true
			break
		}
		if _, err := conn.RecvTimeout(2 * time.Second); err != nil {
			blocked = true
		}
		conn.Close()
		sent++
		if sys.Detector().Flagged("mallory") {
			blocked = true
		}
	}
	fmt.Printf("  attacker sent %d probes through the proxy before being flagged\n", sent)
	fmt.Printf("  flagged sources: %v\n", sys.Detector().FlaggedSources())
	st := sys.Status()
	fmt.Printf("  servers compromised: %d; system compromised: %v\n",
		st.ServersCompromised, st.Compromised)
	fmt.Println("  the proxy tier removed the crash oracle and capped the probe")
	fmt.Printf("  rate: κ ≈ %.3f of the direct rate at this detector setting\n",
		sys.Detector().Kappa(uint64(chi/2)))
	return nil
}
