// Failover: crash the primary of the PB server tier mid-workload and watch
// a backup take over with the service state intact — the classical
// crash-tolerance that FORTRESS builds on (and that the fortification does
// not disturb).
package main

import (
	"fmt"
	"log"
	"time"

	"fortress/internal/netsim"
	"fortress/internal/replica/pb"
	"fortress/internal/service"
	"fortress/internal/sig"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := netsim.NewNetwork()
	peers := map[int]string{0: "server-0", 1: "server-1", 2: "server-2"}

	var replicas []*pb.Replica
	for i := 0; i < 3; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			return err
		}
		r, err := pb.New(pb.Config{
			Index:             i,
			Addr:              peers[i],
			Peers:             peers,
			InitialPrimary:    0,
			Service:           service.NewBank(),
			Keys:              keys,
			Net:               net,
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()
	fmt.Println("3-replica primary-backup bank: replica 0 is primary")

	// Build up state through the primary.
	requests := []string{
		`{"op":"open","from":"alice"}`,
		`{"op":"open","from":"bob"}`,
		`{"op":"deposit","from":"alice","amount":100}`,
		`{"op":"transfer","from":"alice","to":"bob","amount":40}`,
	}
	for i, body := range requests {
		resp, err := pb.Request(net, "client", "server-0", fmt.Sprintf("r%d", i), []byte(body), 2*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("  %-55s -> %s\n", body, resp.Body)
	}

	fmt.Println("crashing the primary...")
	replicas[0].Crash()

	// Wait for failover: replica 1 promotes deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for replicas[1].Role() != pb.RolePrimary {
		if time.Now().After(deadline) {
			return fmt.Errorf("failover never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("replica 1 promoted to primary")

	// The new primary serves with the replicated state.
	resp, err := pb.Request(net, "client", "server-1", "post-failover",
		[]byte(`{"op":"balance","from":"bob"}`), 2*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("  bob's balance after failover: %s (want 40 — state survived)\n", resp.Body)
	return nil
}
