// Liveops: attach a runtime-metrics registry to a FORTRESS deployment,
// expose it over HTTP the way `fortress serve` does, and scrape it — the
// whole ops surface (Prometheus text, plain-text dashboard, trace rings)
// against a live system that just survived a crash/restart cycle.
//
// The production equivalent is the CLI:
//
//	fortress serve -addr 127.0.0.1:8080 &
//	curl http://127.0.0.1:8080/metrics      # Prometheus text exposition
//	curl http://127.0.0.1:8080/status.json  # JSON status + full snapshot
//	curl http://127.0.0.1:8080/             # plain-text dashboard
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/metrics"
	"fortress/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	space, err := keyspace.NewSpace(1 << 16)
	if err != nil {
		return err
	}

	// One registry observes the whole stack: pass it in Config and every
	// layer — replication core, PB/SMR engine, stores, proxies, the
	// simulated network — registers its instruments against it. Metrics
	// are observational only; the deployment behaves identically without
	// them.
	reg := metrics.New()
	sys, err := fortress.New(fortress.Config{
		Servers:           3,
		Proxies:           3,
		Space:             space,
		Seed:              42,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
		Metrics:           reg,
	})
	if err != nil {
		return err
	}
	defer sys.Stop()

	// Generate some traffic and some trouble so the instruments move:
	// writes and reads through the doubly-signed path, then a backup
	// crash/restart (catch-up shows up in the trace rings).
	client, err := sys.Client("liveops-client", 2*time.Second)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if _, err := client.Invoke(fmt.Sprintf("w%d", i),
			[]byte(fmt.Sprintf(`{"op":"put","key":"k%d","value":"v%d"}`, i, i))); err != nil {
			return err
		}
	}
	if err := sys.CrashServer(2); err != nil {
		return err
	}
	if _, err := client.Invoke("w-during-outage",
		[]byte(`{"op":"put","key":"k0","value":"rewritten"}`)); err != nil {
		return err
	}
	if err := sys.RestartServer(2); err != nil {
		return err
	}
	time.Sleep(100 * time.Millisecond) // let the restarted backup resync

	// Serve the registry exactly like `fortress serve`: Prometheus text on
	// /metrics, the aligned dashboard on /.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		reg.Snapshot().WriteDashboard(w)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, mux) }()

	// Scrape it back, as a Prometheus server (or curl) would.
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Println("scraped /metrics; a few families:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "proxy_requests_total") ||
			strings.HasPrefix(line, "fortress_server_fault_") ||
			strings.HasPrefix(line, "pb_updates_checkpoint_total") {
			fmt.Println(" ", line)
		}
	}

	// The dashboard's trace tails show the crash/restart/resync story the
	// counters only summarize.
	fmt.Println("\ndashboard:")
	reg.Snapshot().WriteDashboard(os.Stdout)
	return nil
}
