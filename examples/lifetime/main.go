// Lifetime: regenerate the paper's Figure 1 and Figure 2 series and check
// the §6 trends, printing paper-vs-measured shape assertions.
package main

import (
	"fmt"
	"log"

	"fortress/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := experiments.Config{Trials: 50000, Seed: 2026, LaunchPadFraction: -1}

	fmt.Println("=== Figure 1: expected lifetime vs α (κ=0.5 for S2PO) ===")
	fig1, err := experiments.Figure1(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatResults(fig1))

	fmt.Println("\n=== Figure 2: EL of S2PO vs κ (log scale when plotted) ===")
	fig2, err := experiments.Figure2(cfg, nil, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatResults(fig2))

	fmt.Println("\n=== §6 trends, paper vs measured ===")
	for _, alpha := range []float64{0.0001, 0.001, 0.01} {
		rep, err := experiments.OrderingChain(cfg, alpha, 0.5)
		if err != nil {
			return err
		}
		verdict := "REPRODUCED"
		if !rep.Holds {
			verdict = "NOT reproduced"
		}
		fmt.Printf("α=%-7g S0PO→S2PO→S1PO→S1SO→S0SO: %s (%s)\n", alpha, verdict, rep.Detail)
	}

	// The κ crossover: S2PO vs S1PO flips somewhere above κ=0.9.
	fmt.Println("\n=== S2PO vs S1PO crossover in κ (paper: S2PO wins for κ ≤ 0.9) ===")
	for _, kappa := range []float64{0.5, 0.9, 0.95, 1.0} {
		rows, err := experiments.Figure2(experiments.Config{Trials: 0, Seed: 1, LaunchPadFraction: -1},
			[]float64{0.01}, []float64{kappa})
		if err != nil {
			return err
		}
		s1Rows, err := experiments.Figure1(experiments.Config{Trials: 0, Seed: 1, LaunchPadFraction: -1},
			[]float64{0.01})
		if err != nil {
			return err
		}
		var s1 float64
		for _, r := range s1Rows {
			if r.System == "S1PO" {
				s1 = r.EL()
			}
		}
		winner := "S2PO"
		if rows[0].EL() <= s1 {
			winner = "S1PO"
		}
		fmt.Printf("κ=%-5g EL(S2PO)=%.6g EL(S1PO)=%.6g → %s wins\n", kappa, rows[0].EL(), s1, winner)
	}
	return nil
}
