// Quickstart: stand up a FORTRESS-fortified primary-backup KV service
// in-process, run requests end-to-end through the doubly-signed proxy path,
// and survive a proactive-obfuscation epoch.
package main

import (
	"fmt"
	"log"
	"time"

	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// χ = 2¹⁶ mirrors PaX-style ASLR entropy on 32-bit machines — the
	// configuration the paper evaluates.
	space, err := keyspace.NewSpace(1 << 16)
	if err != nil {
		return err
	}

	sys, err := fortress.New(fortress.Config{
		Servers:           3, // primary-backup tier, identically randomized
		Proxies:           3, // distinct keys; clients never see servers
		Space:             space,
		Seed:              42,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
		DetectorWindow:    time.Minute,
		DetectorThreshold: 10,
	})
	if err != nil {
		return err
	}
	defer sys.Stop()
	fmt.Println("FORTRESS deployed: 3 PB servers + 3 proxies + trusted name server")

	// Clients read the name server snapshot: proxy addresses and keys,
	// server indices and keys — never server addresses.
	client, err := sys.Client("quickstart-client", 2*time.Second)
	if err != nil {
		return err
	}

	// Every request fans out to all proxies; each response carries a
	// server signature over-signed by a proxy, and the client verifies
	// both before accepting.
	for _, req := range []struct{ id, body string }{
		{"w1", `{"op":"put","key":"paper","value":"DSN 2010"}`},
		{"w2", `{"op":"put","key":"system","value":"FORTRESS"}`},
		{"r1", `{"op":"get","key":"paper"}`},
	} {
		resp, err := client.Invoke(req.id, []byte(req.body))
		if err != nil {
			return fmt.Errorf("invoke %s: %w", req.id, err)
		}
		fmt.Printf("  %s -> %s\n", req.body, resp)
	}

	// One proactive-obfuscation period boundary: every node reboots with a
	// fresh randomization key; service state survives via the PB snapshot.
	fmt.Println("re-randomizing all nodes (proactive obfuscation)...")
	if err := sys.Rerandomize(); err != nil {
		return err
	}
	client2, err := sys.Client("quickstart-client-2", 2*time.Second)
	if err != nil {
		return err
	}
	resp, err := client2.Invoke("r2", []byte(`{"op":"get","key":"system"}`))
	if err != nil {
		return err
	}
	fmt.Printf("after epoch %d, state preserved: %s\n", sys.Epoch(), resp)
	return nil
}
