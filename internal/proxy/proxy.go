// Package proxy implements the FORTRESS proxy tier (§2.2, §3).
//
// Proxies stand between clients and the server tier: clients never learn
// server addresses, so a de-randomization attacker loses the direct TCP
// crash oracle of [10, 12]. Each proxy forwards every client request to
// every server, collects an authentic signed server response, over-signs it
// and returns the doubly-signed result to the client. Proxies do no request
// processing of their own, which is why (a) they can afford long-horizon
// logging of invalid-request observations (the Detector), and (b)
// compromising a proxy is assumed harder than compromising a directly
// accessible server (§3).
//
// The proxy itself runs on a randomized process image: a proxy-targeted
// probe with the wrong key crashes it, with the right key compromises it —
// after which the attacker can use RawForward as a launch pad for direct
// attacks on servers (§4, S2 compromise route 2).
package proxy

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"fortress/internal/exploit"
	"fortress/internal/memlayout"
	"fortress/internal/metrics"
	"fortress/internal/nameserver"
	"fortress/internal/netsim"
	"fortress/internal/replica/pb"
	"fortress/internal/shard"
	"fortress/internal/sig"
)

var (
	// ErrBlocked is reported to clients the detector has flagged.
	ErrBlocked = errors.New("proxy: source blocked")
	// ErrNoServerResponse is reported when no authentic server response
	// arrived within the timeout.
	ErrNoServerResponse = errors.New("proxy: no authentic server response")
	// ErrNotCompromised guards the attacker-only launch-pad API.
	ErrNotCompromised = errors.New("proxy: not compromised")
)

const (
	msgRequest  = "request"
	msgResponse = "response"
	msgError    = "error"
)

// clientMsg is the proxy↔client wire format.
type clientMsg struct {
	Type      string            `json:"type"`
	RequestID string            `json:"requestId,omitempty"`
	Body      []byte            `json:"body,omitempty"`
	Signed    *sig.DoublySigned `json:"signed,omitempty"`
	Reason    string            `json:"reason,omitempty"`
	// Read marks a request the client classified as a pure read; the proxy
	// carries the tag through to the servers, where the smr lease-read path
	// may answer it locally. The tag is advisory — the hosted service
	// re-classifies on the replica, so it never affects the signature path
	// or lets a write skip ordering.
	Read bool `json:"read,omitempty"`
}

func encode(m clientMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("proxy: marshal client message: %v", err))
	}
	return b
}

// EncodeRequest builds the raw wire form of a client request — the message
// a hand-rolled client (or an attacker) sends a proxy.
func EncodeRequest(requestID string, body []byte) []byte {
	return encode(clientMsg{Type: msgRequest, RequestID: requestID, Body: body})
}

// EncodeReadRequest builds the wire form of a read-tagged client request,
// eligible for the servers' lease-read fast path.
func EncodeReadRequest(requestID string, body []byte) []byte {
	return encode(clientMsg{Type: msgRequest, RequestID: requestID, Body: body, Read: true})
}

// Config describes one proxy.
type Config struct {
	// ID is the proxy's name-server identity.
	ID string
	// Addr is the netsim address clients dial.
	Addr string
	// Keys over-sign server responses.
	Keys *sig.KeyPair
	// NS resolves server indices to addresses and verification keys.
	NS *nameserver.NameServer
	// Net is the simulated network.
	Net *netsim.Network
	// Detector identifies probing clients. Optional; nil disables detection.
	Detector *Detector
	// Proc is the proxy's own randomized process image. Optional; nil makes
	// the proxy un-attackable (used by unit tests of forwarding logic).
	Proc *memlayout.Process
	// ServerTimeout bounds each server interaction.
	ServerTimeout time.Duration
	// Ring, with ServersPerGroup, shards the server tier: requests whose
	// body carries a "key" field are forwarded only to the replica group
	// the ring assigns that key, so each group orders a disjoint slice of
	// the keyspace. Keyless or non-JSON bodies (health probes without a
	// key, exploit payloads) route to group 0 by convention. A nil Ring —
	// or a single-group one — preserves the classic forward-to-every-
	// server behaviour exactly.
	Ring *shard.Ring
	// ServersPerGroup is the per-group server count: group g owns global
	// server indices [g·ServersPerGroup, (g+1)·ServersPerGroup). Required
	// when Ring has more than one group.
	ServersPerGroup int
	// Metrics, when non-nil, receives the proxy's instruments (request mix,
	// invalid observations, no-response outcomes), labelled by ID.
	// Observational only — screening and forwarding never read them back.
	Metrics *metrics.Registry
}

func (c Config) validate() error {
	switch {
	case c.ID == "":
		return errors.New("proxy: config needs ID")
	case c.Addr == "":
		return errors.New("proxy: config needs Addr")
	case c.Keys == nil:
		return errors.New("proxy: config needs Keys")
	case c.NS == nil:
		return errors.New("proxy: config needs NS")
	case c.Net == nil:
		return errors.New("proxy: config needs Net")
	case c.ServerTimeout <= 0:
		return errors.New("proxy: config needs positive ServerTimeout")
	case c.Ring != nil && c.Ring.Groups() > 1 && c.ServersPerGroup < 1:
		return errors.New("proxy: sharded Ring needs ServersPerGroup")
	}
	return nil
}

// Proxy is one FORTRESS proxy.
type Proxy struct {
	cfg Config

	mu          sync.Mutex
	compromised bool
	crashed     bool
	stopped     bool
	invalidObs  uint64

	listener *netsim.Listener
	stop     chan struct{}
	done     sync.WaitGroup

	// Instruments (nil no-ops when Config.Metrics is unset).
	mRequests   *metrics.Counter   // well-formed requests screened
	mReads      *metrics.Counter   // of those, read-tagged
	mBlocked    *metrics.Counter   // requests refused on a flagged source
	mInvalid    *metrics.Counter   // invalid observations logged
	mNoResponse *metrics.Counter   // forwards with no authentic response
	mShard      []*metrics.Counter // per-group routed requests (sharded only)
}

// New starts a proxy. Call Stop (or Crash) to shut it down.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l, err := cfg.Net.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: listen: %w", err)
	}
	p := &Proxy{cfg: cfg, listener: l, stop: make(chan struct{})}
	if reg := cfg.Metrics; reg != nil {
		node := fmt.Sprintf("{node=%q}", cfg.ID)
		p.mRequests = reg.Counter("proxy_requests_total"+node, metrics.Timing)
		p.mReads = reg.Counter("proxy_read_requests_total"+node, metrics.Timing)
		p.mBlocked = reg.Counter("proxy_blocked_total"+node, metrics.Timing)
		p.mInvalid = reg.Counter("proxy_invalid_observations_total"+node, metrics.Timing)
		p.mNoResponse = reg.Counter("proxy_no_response_total"+node, metrics.Timing)
		if cfg.Ring != nil && cfg.Ring.Groups() > 1 {
			p.mShard = make([]*metrics.Counter, cfg.Ring.Groups())
			for g := range p.mShard {
				p.mShard[g] = reg.Counter(
					fmt.Sprintf("proxy_shard_requests_total{node=%q,group=\"%d\"}", cfg.ID, g),
					metrics.Timing)
			}
		}
	}
	p.done.Add(1)
	go p.acceptLoop()
	return p, nil
}

// ID returns the proxy's identity.
func (p *Proxy) ID() string { return p.cfg.ID }

// Addr returns the proxy's client-facing address.
func (p *Proxy) Addr() string { return p.cfg.Addr }

// PublicKey exposes the over-signing verification key.
func (p *Proxy) PublicKey() []byte { return p.cfg.Keys.Public() }

// Compromised reports whether a proxy-targeted probe has succeeded.
func (p *Proxy) Compromised() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compromised
}

// Crashed reports whether the proxy process is down.
func (p *Proxy) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// InvalidObservations returns how many invalid requests this proxy has
// logged across all sources.
func (p *Proxy) InvalidObservations() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.invalidObs
}

// Stop shuts the proxy down gracefully and waits for its goroutines.
func (p *Proxy) Stop() {
	p.shutdown()
	p.done.Wait()
}

// shutdown makes the proxy inert without waiting for goroutines, so it is
// safe to call from the proxy's own request-handling path. Idempotent.
func (p *Proxy) shutdown() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.stop)
	p.listener.Close()
}

// Crash tears the proxy out of the network, closing all its connections
// observably — what a wrong-key probe does to it. The teardown is
// synchronous; goroutine shutdown completes in the background so Crash may
// be called from the proxy's own request-handling path.
func (p *Proxy) Crash() {
	p.mu.Lock()
	p.crashed = true
	p.mu.Unlock()
	p.shutdown()
	p.cfg.Net.CrashAddr(p.cfg.Addr)
}

func (p *Proxy) acceptLoop() {
	defer p.done.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		p.done.Add(1)
		go p.serveClient(conn)
	}
}

// serveClient drains the client connection's backlog a whole batch at a
// time (RecvBatch: one queue-lock acquisition per drain) and releases every
// decoded payload buffer back to the netsim pool — the batched-transport
// adoption for the proxy's hot loop. Requests inside a drained batch are
// still screened, forwarded and answered strictly in arrival order.
func (p *Proxy) serveClient(conn *netsim.Conn) {
	defer p.done.Done()
	defer conn.Close()
	source := conn.RemoteAddr()
	var batch [][]byte
	for {
		var err error
		batch, err = conn.RecvBatch(batch[:0])
		if err != nil {
			return
		}
		for _, raw := range batch {
			select {
			case <-p.stop:
				return
			default:
			}
			var m clientMsg
			uerr := json.Unmarshal(raw, &m)
			netsim.Release(raw) // decoded: json copied every field out of raw
			if uerr != nil {
				p.observeInvalid(source)
				continue
			}
			if m.Type != msgRequest {
				continue
			}
			p.mRequests.Inc()
			if m.Read {
				p.mReads.Inc()
			}
			if p.cfg.Detector != nil && p.cfg.Detector.Flagged(source) {
				p.mBlocked.Inc()
				_ = conn.Send(encode(clientMsg{Type: msgError, RequestID: m.RequestID, Reason: ErrBlocked.Error()}))
				conn.Close()
				return
			}
			if p.handleProxyProbe(conn, m) {
				return // the proxy died parsing the request
			}
			p.forward(conn, source, m)
		}
	}
}

// handleProxyProbe checks for a proxy-targeted exploit in the request.
// It reports true when the proxy crashed and the connection is gone.
func (p *Proxy) handleProxyProbe(conn *netsim.Conn, m clientMsg) bool {
	guess, tier, isProbe := exploit.Parse(m.Body)
	if !isProbe || tier != exploit.TierProxy || p.cfg.Proc == nil {
		return false
	}
	res, err := p.cfg.Proc.DeliverExploit(guess)
	if err != nil {
		return true
	}
	switch res {
	case memlayout.ProbeCompromised:
		p.mu.Lock()
		p.compromised = true
		p.mu.Unlock()
		_ = conn.Send(encode(clientMsg{
			Type: msgResponse, RequestID: m.RequestID,
			Body: []byte(exploit.CompromisedBanner),
		}))
		return false
	case memlayout.ProbeCrashed:
		p.Crash()
		return true
	default:
		return false
	}
}

// forward relays the request to every server of the owning replica group
// (every server outright when unsharded), over-signs the first authentic
// response and returns it to the client (§3).
func (p *Proxy) forward(conn *netsim.Conn, source string, m clientMsg) {
	view := p.cfg.NS.ClientSnapshot()
	serverKeys := make(map[int][]byte, len(view.Servers))
	for _, s := range view.Servers {
		serverKeys[s.Index] = s.PublicKey
	}

	type outcome struct {
		resp    sig.ServerResponse
		invalid bool
		ok      bool
	}
	indices := p.cfg.NS.ServerIndices()
	if r := p.cfg.Ring; r != nil && r.Groups() > 1 {
		group := routeGroup(r, m.Body)
		lo, hi := group*p.cfg.ServersPerGroup, (group+1)*p.cfg.ServersPerGroup
		owned := indices[:0]
		for _, idx := range indices {
			if idx >= lo && idx < hi {
				owned = append(owned, idx)
			}
		}
		indices = owned
		if p.mShard != nil {
			p.mShard[group].Inc()
		}
	}
	results := make(chan outcome, len(indices))
	for _, idx := range indices {
		addr, err := p.cfg.NS.ServerAddr(idx)
		if err != nil {
			results <- outcome{}
			continue
		}
		p.done.Add(1)
		go func(idx int, addr string) {
			defer p.done.Done()
			resp, err := pb.RequestTagged(p.cfg.Net, p.cfg.Addr, addr, m.RequestID, m.Body, m.Read, p.cfg.ServerTimeout)
			if err != nil {
				// Connection refused/closed without a response: the server
				// process crashed under this request — exactly the
				// observation that marks a probe (§2.2).
				results <- outcome{invalid: errors.Is(err, netsim.ErrClosed) || errors.Is(err, netsim.ErrRefused)}
				return
			}
			pk, ok := serverKeys[idx]
			if !ok || sig.VerifyServerResponse(pk, resp) != nil {
				results <- outcome{}
				return
			}
			results <- outcome{resp: resp, ok: true}
		}(idx, addr)
	}

	var first *sig.ServerResponse
	sawInvalid := false
	for range indices {
		o := <-results
		if o.ok && first == nil {
			r := o.resp
			first = &r
		}
		if o.invalid {
			sawInvalid = true
		}
	}
	if sawInvalid {
		p.observeInvalid(source)
	}
	if first == nil {
		p.mNoResponse.Inc()
		_ = conn.Send(encode(clientMsg{Type: msgError, RequestID: m.RequestID, Reason: ErrNoServerResponse.Error()}))
		return
	}
	signed, err := sig.OverSign(p.cfg.Keys, p.cfg.ID, *first)
	if err != nil {
		_ = conn.Send(encode(clientMsg{Type: msgError, RequestID: m.RequestID, Reason: err.Error()}))
		return
	}
	_ = conn.Send(encode(clientMsg{Type: msgResponse, RequestID: m.RequestID, Signed: &signed}))
}

// routeGroup maps a request body to its owning replica group: the ring
// owner of the body's "key" field. Bodies that are not JSON objects or
// carry no key — health probes without one, counter ops, exploit
// payloads — route to group 0 by convention, so every request has
// exactly one owning group and writes never execute twice.
func routeGroup(r *shard.Ring, body []byte) int {
	var k struct {
		Key string `json:"key"`
	}
	if json.Unmarshal(body, &k) != nil || k.Key == "" {
		return 0
	}
	return r.Owner(k.Key)
}

func (p *Proxy) observeInvalid(source string) {
	p.mInvalid.Inc()
	p.mu.Lock()
	p.invalidObs++
	p.mu.Unlock()
	if p.cfg.Detector != nil {
		p.cfg.Detector.ObserveInvalid(source)
	}
}

// RawForward is the launch pad a compromised proxy gives an attacker: a
// direct request to one server, bypassing screening and logging, with the
// raw server response (no over-signing). It fails unless the proxy is
// compromised — the engine refuses to help honest code skip the screen.
func (p *Proxy) RawForward(serverIndex int, requestID string, body []byte) (sig.ServerResponse, error) {
	p.mu.Lock()
	compromised := p.compromised
	p.mu.Unlock()
	if !compromised {
		return sig.ServerResponse{}, ErrNotCompromised
	}
	addr, err := p.cfg.NS.ServerAddr(serverIndex)
	if err != nil {
		return sig.ServerResponse{}, err
	}
	return pb.Request(p.cfg.Net, p.cfg.Addr, addr, requestID, body, p.cfg.ServerTimeout)
}

// --- Client ------------------------------------------------------------

// Client is a FORTRESS client: it learns proxies and server indices from
// the name server, sends every request to all proxies, and accepts the
// first response bearing two authentic signatures (§3).
type Client struct {
	net      *netsim.Network
	from     string
	view     nameserver.ClientView
	verifier *sig.VerifierSet
	timeout  time.Duration
}

// NewClient builds a client from the name server's read-only snapshot.
func NewClient(net *netsim.Network, from string, ns *nameserver.NameServer, timeout time.Duration) (*Client, error) {
	if net == nil || ns == nil {
		return nil, errors.New("proxy: client needs net and ns")
	}
	view := ns.ClientSnapshot()
	if len(view.Proxies) == 0 {
		return nil, errors.New("proxy: no proxies registered")
	}
	vs := sig.NewVerifierSet()
	for _, pr := range view.Proxies {
		vs.Proxies[pr.ID] = pr.PublicKey
	}
	for _, sr := range view.Servers {
		vs.Servers[sr.Index] = sr.PublicKey
	}
	return &Client{net: net, from: from, view: view, verifier: vs, timeout: timeout}, nil
}

// Invoke sends the request through all proxies and returns the body of the
// first doubly-authentic response.
func (c *Client) Invoke(requestID string, body []byte) ([]byte, error) {
	return c.invoke(requestID, body, false)
}

// InvokeRead is Invoke with the request tagged as a pure read: proxies
// carry the tag to the servers, where an smr replica holding a valid lease
// answers from local state without a sequence slot. A replica without a
// lease (or a pb deployment, which has no lease path) still serves the
// request through the ordered pipeline, so InvokeRead degrades to Invoke
// semantics rather than failing.
func (c *Client) InvokeRead(requestID string, body []byte) ([]byte, error) {
	return c.invoke(requestID, body, true)
}

func (c *Client) invoke(requestID string, body []byte, read bool) ([]byte, error) {
	type result struct {
		body []byte
		err  error
	}
	results := make(chan result, len(c.view.Proxies))
	for _, pr := range c.view.Proxies {
		go func(pr nameserver.ProxyRecord) {
			b, err := c.invokeVia(pr, requestID, body, read)
			results <- result{b, err}
		}(pr)
	}
	var firstErr error
	for range c.view.Proxies {
		r := <-results
		if r.err == nil {
			return r.body, nil
		}
		if firstErr == nil {
			firstErr = r.err
		}
	}
	return nil, fmt.Errorf("proxy: all proxies failed: %w", firstErr)
}

func (c *Client) invokeVia(pr nameserver.ProxyRecord, requestID string, body []byte, read bool) ([]byte, error) {
	conn, err := c.net.Dial(c.from, pr.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Send(encode(clientMsg{Type: msgRequest, RequestID: requestID, Body: body, Read: read})); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, netsim.ErrTimeout
		}
		raw, err := conn.RecvTimeout(remaining)
		if err != nil {
			return nil, err
		}
		var m clientMsg
		uerr := json.Unmarshal(raw, &m)
		netsim.Release(raw) // decoded: json copied every field out of raw
		if uerr != nil {
			continue
		}
		if m.RequestID != requestID {
			continue
		}
		switch m.Type {
		case msgResponse:
			if m.Signed == nil {
				return nil, errors.New("proxy: response without signatures")
			}
			if err := c.verifier.VerifyDoublySigned(*m.Signed); err != nil {
				return nil, err
			}
			return m.Signed.Response.Body, nil
		case msgError:
			return nil, fmt.Errorf("proxy: %s", m.Reason)
		}
	}
}
