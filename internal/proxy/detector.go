package proxy

import (
	"sort"
	"sync"
	"time"
)

// Detector is the proxy-side probe-source identifier the paper credits with
// reducing an attacker's usable probe rate (§2.2): proxies do no request
// processing, so they can afford to log invalid-request observations per
// source over long periods and flag sources whose invalid-request rate is
// inconsistent with an honest client.
//
// The rule: a source is flagged once it accumulates Threshold invalid
// observations within a sliding Window. A de-randomization attacker needs
// on the order of χ/2 wrong probes, so to stay under Threshold per Window
// it must pace probes to ω ≈ Threshold/Window — the mechanism behind the
// indirect-attack coefficient κ.
type Detector struct {
	mu        sync.Mutex
	window    time.Duration
	threshold int
	now       func() time.Time
	history   map[string][]time.Time
	flagged   map[string]bool
}

// NewDetector creates a detector flagging sources that produce threshold or
// more invalid requests within window.
func NewDetector(window time.Duration, threshold int) *Detector {
	return &Detector{
		window:    window,
		threshold: threshold,
		now:       time.Now,
		history:   make(map[string][]time.Time),
		flagged:   make(map[string]bool),
	}
}

// SetClock overrides the time source for deterministic tests.
func (d *Detector) SetClock(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
}

// ObserveInvalid records one invalid request from source and reports
// whether the source is now (or already was) flagged.
func (d *Detector) ObserveInvalid(source string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.flagged[source] {
		return true
	}
	now := d.now()
	events := append(d.history[source], now)
	cutoff := now.Add(-d.window)
	// Drop events older than the window; events are appended in time order,
	// so find the first one still inside it.
	first := sort.Search(len(events), func(i int) bool { return events[i].After(cutoff) })
	events = events[first:]
	d.history[source] = events
	if len(events) >= d.threshold {
		d.flagged[source] = true
		delete(d.history, source)
		return true
	}
	return false
}

// Flagged reports whether source has been identified as a probe source.
func (d *Detector) Flagged(source string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flagged[source]
}

// FlaggedSources returns all flagged sources, sorted.
func (d *Detector) FlaggedSources() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.flagged))
	for s := range d.flagged {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// InvalidCount returns the number of in-window invalid observations for
// source (0 once flagged, since history is dropped).
func (d *Detector) InvalidCount(source string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.history[source])
}

// MaxSafeProbeRate returns the highest per-window probe count an attacker
// can sustain without being flagged — the quantity that turns the detector
// threshold into the paper's κ (Definition 5): for a direct-attack budget
// ω_direct per unit time-step, an indirect attacker through this proxy is
// limited to min(ω_direct, Threshold−1) probes, i.e.
// κ = min(1, (Threshold−1)/ω_direct).
func (d *Detector) MaxSafeProbeRate() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.threshold <= 1 {
		return 0
	}
	return d.threshold - 1
}

// Kappa computes the effective indirect-attack coefficient for an attacker
// whose unhindered probe budget per unit time-step is omegaDirect and whose
// time-step equals the detector window.
func (d *Detector) Kappa(omegaDirect uint64) float64 {
	if omegaDirect == 0 {
		return 0
	}
	safe := d.MaxSafeProbeRate()
	k := float64(safe) / float64(omegaDirect)
	if k > 1 {
		return 1
	}
	return k
}
