package proxy

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"encoding/json"
	"fortress/internal/exploit"
	"fortress/internal/keyspace"
	"fortress/internal/memlayout"
	"fortress/internal/nameserver"
	"fortress/internal/netsim"
	"fortress/internal/replica/pb"
	"fortress/internal/service"
	"fortress/internal/sig"

	"fortress/internal/xrand"
)

const (
	hbInterval = 5 * time.Millisecond
	hbTimeout  = 50 * time.Millisecond
	srvTimeout = 2 * time.Second
)

// rig is a full 2-tier fixture: PB server tier + proxy tier + name server.
type rig struct {
	net     *netsim.Network
	ns      *nameserver.NameServer
	servers []*pb.Replica
	proxies []*Proxy
	space   *keyspace.Space
	// serverKey is the shared randomization key of the (identically
	// randomized) server tier; proxyKeys are per-proxy.
	serverKey keyspace.Key
	proxyKeys []keyspace.Key
	guards    []*exploit.Guard
}

func buildRig(t *testing.T, nServers, nProxies int, detector *Detector) *rig {
	t.Helper()
	net := netsim.NewNetwork()
	space, err := keyspace.NewSpace(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	ns, err := nameserver.New(nameserver.ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{net: net, ns: ns, space: space, serverKey: space.Draw(rng)}

	peers := make(map[int]string, nServers)
	for i := 0; i < nServers; i++ {
		peers[i] = fmt.Sprintf("server-%d", i)
	}
	for i := 0; i < nServers; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		proc := memlayout.NewProcess(r.serverKey)
		var replica *pb.Replica
		guard := exploit.NewGuard(service.NewKV(), exploit.TierServer, proc, func() {
			if replica != nil {
				replica.Crash()
			}
		}, nil)
		replica, err = pb.New(pb.Config{
			Index: i, Addr: peers[i], Peers: peers, InitialPrimary: 0,
			Service: guard, Keys: keys, Net: net,
			HeartbeatInterval: hbInterval, HeartbeatTimeout: hbTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, replica)
		r.guards = append(r.guards, guard)
		t.Cleanup(replica.Stop)
		if err := ns.RegisterServer(i, peers[i], replica.PublicKey()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nProxies; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		pKey := space.Draw(rng)
		r.proxyKeys = append(r.proxyKeys, pKey)
		p, err := New(Config{
			ID: fmt.Sprintf("proxy-%d", i), Addr: fmt.Sprintf("proxy-%d", i),
			Keys: keys, NS: ns, Net: net, Detector: detector,
			Proc:          memlayout.NewProcess(pKey),
			ServerTimeout: srvTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.proxies = append(r.proxies, p)
		t.Cleanup(p.Stop)
		if err := ns.RegisterProxy(p.ID(), p.Addr(), p.PublicKey()); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func kvPut(key, val string) []byte {
	return []byte(fmt.Sprintf(`{"op":"put","key":%q,"value":%q}`, key, val))
}

func kvGet(key string) []byte {
	return []byte(fmt.Sprintf(`{"op":"get","key":%q}`, key))
}

func TestConfigValidation(t *testing.T) {
	net := netsim.NewNetwork()
	ns, err := nameserver.New(nameserver.ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	good := Config{ID: "p", Addr: "p", Keys: keys, NS: ns, Net: net, ServerTimeout: time.Second}
	muts := []func(*Config){
		func(c *Config) { c.ID = "" },
		func(c *Config) { c.Addr = "" },
		func(c *Config) { c.Keys = nil },
		func(c *Config) { c.NS = nil },
		func(c *Config) { c.Net = nil },
		func(c *Config) { c.ServerTimeout = 0 },
	}
	for i, m := range muts {
		c := good
		m(&c)
		if _, err := New(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEndToEndDoublySignedResponse(t *testing.T) {
	r := buildRig(t, 3, 3, nil)
	client, err := NewClient(r.net, "client", r.ns, srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	body, err := client.Invoke("r1", kvPut("k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"found":true`) {
		t.Fatalf("body = %s", body)
	}
	got, err := client.Invoke("r2", kvGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), `"value":"v"`) {
		t.Fatalf("get = %s", got)
	}
}

func TestClientRejectsForgedProxy(t *testing.T) {
	r := buildRig(t, 3, 1, nil)
	// A rogue proxy not registered with the NS cannot satisfy the client.
	rogueKeys, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := New(Config{
		ID: "rogue", Addr: "rogue", Keys: rogueKeys, NS: r.ns, Net: r.net,
		ServerTimeout: srvTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rogue.Stop)
	// NOT registered in NS. Build a client that (maliciously) was pointed
	// at the rogue: simulate by asking rogue directly via raw protocol.
	conn, err := r.net.Dial("victim", "rogue")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encode(clientMsg{Type: msgRequest, RequestID: "x", Body: kvGet("k")})); err != nil {
		t.Fatal(err)
	}
	raw, err := conn.RecvTimeout(srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// The rogue can return a signed response, but a proper client's
	// verifier set rejects the unknown proxy ID.
	client, err := NewClient(r.net, "victim", r.ns, srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var m clientMsg
	if err := jsonUnmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Signed == nil {
		t.Skip("rogue returned error, nothing to verify")
	}
	if err := client.verifier.VerifyDoublySigned(*m.Signed); !errors.Is(err, sig.ErrUnknownSigner) {
		t.Fatalf("rogue over-signature accepted: %v", err)
	}
}

func TestProxyHidesServerCrashOracle(t *testing.T) {
	// An attacker probing THROUGH the proxy does not observe the server
	// crash: the proxy connection stays open; only an error message comes
	// back. The direct-TCP oracle of [10,12] is gone.
	r := buildRig(t, 3, 1, nil)
	conn, err := r.net.Dial("attacker", r.proxies[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wrong := keyspace.Key((uint64(r.serverKey) + 1) % r.space.Chi())
	probe := exploit.NewPayload(exploit.TierServer, wrong)
	if err := conn.Send(encode(clientMsg{Type: msgRequest, RequestID: "p1", Body: probe})); err != nil {
		t.Fatal(err)
	}
	raw, err := conn.RecvTimeout(srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var m clientMsg
	if err := jsonUnmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Type != msgError {
		t.Fatalf("probe response type = %q", m.Type)
	}
	if conn.Closed() {
		t.Fatal("attacker's proxy connection closed — oracle leaked")
	}
	// And the proxy logged the invalid request.
	if r.proxies[0].InvalidObservations() == 0 {
		t.Fatal("proxy did not log the probe")
	}
}

func TestDetectorBlocksProbingClient(t *testing.T) {
	det := NewDetector(time.Hour, 3)
	r := buildRig(t, 3, 1, det)
	conn, err := r.net.Dial("mallory", r.proxies[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	wrong := uint64(r.serverKey)
	blocked := false
	for i := 0; i < 10 && !blocked; i++ {
		wrong = (wrong + 1) % r.space.Chi()
		probe := exploit.NewPayload(exploit.TierServer, keyspace.Key(wrong))
		if err := conn.Send(encode(clientMsg{Type: msgRequest, RequestID: fmt.Sprintf("p%d", i), Body: probe})); err != nil {
			blocked = true
			break
		}
		raw, err := conn.RecvTimeout(srvTimeout)
		if err != nil {
			blocked = true
			break
		}
		var m clientMsg
		if err := jsonUnmarshal(raw, &m); err != nil {
			continue
		}
		if m.Type == msgError && strings.Contains(m.Reason, "blocked") {
			blocked = true
		}
	}
	if !blocked {
		t.Fatal("probing client never blocked")
	}
	if !det.Flagged("mallory") {
		t.Fatal("detector did not flag the prober")
	}
}

func TestProxyProbeWrongKeyCrashesProxy(t *testing.T) {
	r := buildRig(t, 3, 2, nil)
	conn, err := r.net.Dial("attacker", r.proxies[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	wrong := keyspace.Key((uint64(r.proxyKeys[0]) + 1) % r.space.Chi())
	probe := exploit.NewPayload(exploit.TierProxy, wrong)
	if err := conn.Send(encode(clientMsg{Type: msgRequest, RequestID: "x", Body: probe})); err != nil {
		t.Fatal(err)
	}
	// The attacker DOES observe a direct-attack crash: its own connection
	// to the proxy closes (it was attacking the thing it talks to).
	deadline := time.Now().Add(2 * time.Second)
	for !conn.Closed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !conn.Closed() {
		t.Fatal("proxy crash not observable on direct connection")
	}
	if !r.proxies[0].Crashed() {
		t.Fatal("proxy not marked crashed")
	}
	// The system survives: the other proxy still serves.
	client, err := NewClient(r.net, "client", r.ns, srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("after", kvPut("a", "b")); err != nil {
		t.Fatalf("surviving proxy failed: %v", err)
	}
}

func TestProxyProbeRightKeyCompromises(t *testing.T) {
	r := buildRig(t, 3, 1, nil)
	conn, err := r.net.Dial("attacker", r.proxies[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	probe := exploit.NewPayload(exploit.TierProxy, r.proxyKeys[0])
	if err := conn.Send(encode(clientMsg{Type: msgRequest, RequestID: "x", Body: probe})); err != nil {
		t.Fatal(err)
	}
	raw, err := conn.RecvTimeout(srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var m clientMsg
	if err := jsonUnmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if string(m.Body) != exploit.CompromisedBanner {
		t.Fatalf("body = %q", m.Body)
	}
	if !r.proxies[0].Compromised() {
		t.Fatal("proxy not compromised")
	}
}

func TestRawForwardRequiresCompromise(t *testing.T) {
	r := buildRig(t, 3, 1, nil)
	if _, err := r.proxies[0].RawForward(0, "x", kvGet("k")); !errors.Is(err, ErrNotCompromised) {
		t.Fatalf("launch pad open to honest code: %v", err)
	}
}

func TestCompromisedProxyIsLaunchPad(t *testing.T) {
	// Route 2 of S2 compromise: take the proxy, then attack the server
	// directly through it — the crash oracle works again via RawForward
	// errors, and the correct key compromises the primary.
	r := buildRig(t, 3, 1, nil)
	conn, err := r.net.Dial("attacker", r.proxies[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encode(clientMsg{Type: msgRequest, RequestID: "t", Body: exploit.NewPayload(exploit.TierProxy, r.proxyKeys[0])})); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.RecvTimeout(srvTimeout); err != nil {
		t.Fatal(err)
	}
	if !r.proxies[0].Compromised() {
		t.Fatal("setup: compromise failed")
	}
	resp, err := r.proxies[0].RawForward(0, "pwn", exploit.NewPayload(exploit.TierServer, r.serverKey))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != exploit.CompromisedBanner {
		t.Fatalf("server response = %q", resp.Body)
	}
	if !r.guards[0].Compromised() {
		t.Fatal("primary not compromised")
	}
}

func TestClientNeedsOnlyOneLiveProxy(t *testing.T) {
	r := buildRig(t, 3, 3, nil)
	r.proxies[0].Crash()
	r.proxies[1].Crash()
	client, err := NewClient(r.net, "client", r.ns, srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("r", kvPut("x", "y")); err != nil {
		t.Fatalf("one live proxy insufficient: %v", err)
	}
}

func TestClientFailsWhenAllProxiesDown(t *testing.T) {
	r := buildRig(t, 3, 2, nil)
	r.proxies[0].Crash()
	r.proxies[1].Crash()
	client, err := NewClient(r.net, "client", r.ns, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("r", kvGet("x")); err == nil {
		t.Fatal("client succeeded with no proxies — S2 compromise route 3 would be invisible")
	}
}

func TestNewClientValidation(t *testing.T) {
	net := netsim.NewNetwork()
	ns, err := nameserver.New(nameserver.ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(net, "c", ns, time.Second); err == nil {
		t.Fatal("client built with zero proxies")
	}
	if _, err := NewClient(nil, "c", ns, time.Second); err == nil {
		t.Fatal("nil network accepted")
	}
}

// jsonUnmarshal avoids importing encoding/json in every test function.
func jsonUnmarshal(raw []byte, v any) error {
	return json.Unmarshal(raw, v)
}
