package proxy

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock advances manually.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000000, 0)} }
func withClock(d *Detector, c *fakeClock) *Detector {
	d.SetClock(c.now)
	return d
}

func TestDetectorFlagsAtThreshold(t *testing.T) {
	c := newFakeClock()
	d := withClock(NewDetector(time.Minute, 5), c)
	for i := 0; i < 4; i++ {
		if d.ObserveInvalid("mallory") {
			t.Fatalf("flagged after %d observations", i+1)
		}
		c.advance(time.Second)
	}
	if !d.ObserveInvalid("mallory") {
		t.Fatal("not flagged at threshold")
	}
	if !d.Flagged("mallory") {
		t.Fatal("Flagged disagrees")
	}
}

func TestDetectorWindowExpiry(t *testing.T) {
	c := newFakeClock()
	d := withClock(NewDetector(time.Minute, 3), c)
	// Two invalids, then a long pause: the window forgets them.
	d.ObserveInvalid("alice")
	c.advance(time.Second)
	d.ObserveInvalid("alice")
	c.advance(2 * time.Minute)
	if d.ObserveInvalid("alice") {
		t.Fatal("stale observations counted")
	}
	if d.InvalidCount("alice") != 1 {
		t.Fatalf("in-window count = %d", d.InvalidCount("alice"))
	}
}

func TestDetectorPacedAttackerEvades(t *testing.T) {
	// The paper's point: pacing probes below threshold/window evades
	// detection — at the price of a uselessly low probe rate.
	c := newFakeClock()
	d := withClock(NewDetector(time.Minute, 10), c)
	for i := 0; i < 1000; i++ {
		if d.ObserveInvalid("patient") {
			t.Fatalf("paced attacker flagged at probe %d", i)
		}
		c.advance(7 * time.Second) // ~9 probes/minute < threshold 10
	}
}

func TestDetectorSeparatesSources(t *testing.T) {
	c := newFakeClock()
	d := withClock(NewDetector(time.Minute, 2), c)
	d.ObserveInvalid("a")
	d.ObserveInvalid("b")
	if d.Flagged("a") || d.Flagged("b") {
		t.Fatal("cross-source contamination")
	}
	d.ObserveInvalid("a")
	if !d.Flagged("a") {
		t.Fatal("a not flagged")
	}
	if d.Flagged("b") {
		t.Fatal("b flagged by a's behaviour")
	}
	got := d.FlaggedSources()
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("FlaggedSources = %v", got)
	}
}

func TestDetectorFlagIsSticky(t *testing.T) {
	c := newFakeClock()
	d := withClock(NewDetector(time.Minute, 2), c)
	d.ObserveInvalid("m")
	d.ObserveInvalid("m")
	c.advance(24 * time.Hour)
	if !d.ObserveInvalid("m") || !d.Flagged("m") {
		t.Fatal("flag expired; it must be sticky")
	}
}

func TestMaxSafeProbeRateAndKappa(t *testing.T) {
	d := NewDetector(time.Minute, 10)
	if d.MaxSafeProbeRate() != 9 {
		t.Fatalf("MaxSafeProbeRate = %d", d.MaxSafeProbeRate())
	}
	if k := d.Kappa(90); k != 0.1 {
		t.Fatalf("Kappa(90) = %v", k)
	}
	if k := d.Kappa(5); k != 1 {
		t.Fatalf("Kappa(5) = %v, want clamp to 1", k)
	}
	if k := d.Kappa(0); k != 0 {
		t.Fatalf("Kappa(0) = %v", k)
	}
	d1 := NewDetector(time.Minute, 1)
	if d1.MaxSafeProbeRate() != 0 {
		t.Fatalf("threshold-1 detector allows %d", d1.MaxSafeProbeRate())
	}
}

func TestDetectorManySources(t *testing.T) {
	c := newFakeClock()
	d := withClock(NewDetector(time.Minute, 3), c)
	for i := 0; i < 100; i++ {
		src := fmt.Sprintf("src-%d", i)
		d.ObserveInvalid(src)
		d.ObserveInvalid(src)
	}
	if n := len(d.FlaggedSources()); n != 0 {
		t.Fatalf("%d sources flagged below threshold", n)
	}
	for i := 0; i < 100; i++ {
		d.ObserveInvalid(fmt.Sprintf("src-%d", i))
	}
	if n := len(d.FlaggedSources()); n != 100 {
		t.Fatalf("%d sources flagged, want 100", n)
	}
}
