// Package integration_test exercises cross-module flows that no single
// package test covers: the executable stack (netsim + memlayout + sig +
// replicas + proxies + fortress + attack) validated against the abstract
// model, and end-to-end security properties of the full deployment.
package integration_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fortress/internal/attack"
	"fortress/internal/exploit"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/model"
	"fortress/internal/proxy"
	"fortress/internal/service"
	"fortress/internal/stats"
	"fortress/internal/xrand"
)

func newSystem(t *testing.T, chi uint64, seed uint64, detectorThreshold int) (*fortress.System, *keyspace.Space) {
	t.Helper()
	space, err := keyspace.NewSpace(chi)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fortress.Config{
		Servers:           3,
		Proxies:           3,
		Space:             space,
		Seed:              seed,
		ServiceFactory:    func() service.Service { return service.NewBank() },
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
	}
	if detectorThreshold > 0 {
		cfg.DetectorWindow = time.Hour
		cfg.DetectorThreshold = detectorThreshold
	}
	sys, err := fortress.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys, space
}

// TestBankThroughFortressAcrossEpochs runs a realistic workload (the bank
// service) through the doubly-signed path, interleaved with obfuscation
// epochs, and asserts ledger invariants end to end.
func TestBankThroughFortressAcrossEpochs(t *testing.T) {
	sys, _ := newSystem(t, 1<<16, 21, 0)
	client, err := sys.Client("teller", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mustOK := func(id string, req service.BankRequest) service.BankResponse {
		t.Helper()
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		out, err := client.Invoke(id, raw)
		if err != nil {
			t.Fatal(err)
		}
		var resp service.BankResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("%s rejected: %s", id, resp.Err)
		}
		return resp
	}

	mustOK("open-a", service.BankRequest{Op: "open", From: "a"})
	mustOK("open-b", service.BankRequest{Op: "open", From: "b"})
	mustOK("dep", service.BankRequest{Op: "deposit", From: "a", Amount: 1000})

	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 5; i++ {
			mustOK(fmt.Sprintf("x-%d-%d", epoch, i),
				service.BankRequest{Op: "transfer", From: "a", To: "b", Amount: 10})
		}
		if err := sys.Rerandomize(); err != nil {
			t.Fatal(err)
		}
		// New client per epoch: proxies re-registered, keys unchanged.
		client, err = sys.Client(fmt.Sprintf("teller-%d", epoch), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
	}

	balA := mustOK("bal-a", service.BankRequest{Op: "balance", From: "a"})
	balB := mustOK("bal-b", service.BankRequest{Op: "balance", From: "b"})
	if balA.Balance+balB.Balance != 1000 {
		t.Fatalf("funds not conserved across epochs: %d + %d", balA.Balance, balB.Balance)
	}
	if balB.Balance != 150 {
		t.Fatalf("b's balance = %d, want 150 (15 transfers of 10)", balB.Balance)
	}
}

// TestConcurrentClients hammers the deployment from several clients at
// once; every response must verify and the final state must be coherent.
func TestConcurrentClients(t *testing.T) {
	sys, _ := newSystem(t, 1<<16, 22, 0)
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := sys.Client(fmt.Sprintf("client-%d", c), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			acct := fmt.Sprintf("acct-%d", c)
			open := fmt.Sprintf(`{"op":"open","from":%q}`, acct)
			if _, err := client.Invoke(fmt.Sprintf("c%d-open", c), []byte(open)); err != nil {
				errs <- fmt.Errorf("client %d open: %w", c, err)
				return
			}
			for i := 0; i < 10; i++ {
				body := fmt.Sprintf(`{"op":"deposit","from":%q,"amount":1}`, acct)
				if _, err := client.Invoke(fmt.Sprintf("c%d-i%d", c, i), []byte(body)); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", c, i, err)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Every client's last deposit response must show a coherent balance.
	client, err := sys.Client("auditor", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < clients; c++ {
		out, err := client.Invoke(fmt.Sprintf("audit-%d", c),
			[]byte(fmt.Sprintf(`{"op":"balance","from":"acct-%d"}`, c)))
		if err != nil {
			t.Fatal(err)
		}
		var resp service.BankResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.OK || resp.Balance != 10 {
			t.Fatalf("acct-%d balance = %d (ok=%v), want 10", c, resp.Balance, resp.OK)
		}
	}
}

// TestCampaignLifetimesMatchModelOrdering cross-validates the executable
// stack against the abstract model: mean campaign lifetimes on a small χ
// must reproduce the SO < PO ordering with a sane margin.
func TestCampaignLifetimesMatchModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign ensemble skipped in -short")
	}
	const (
		chi    = 16
		trials = 8
	)
	mean := func(po bool, baseSeed uint64) float64 {
		var acc stats.Accumulator
		for i := uint64(0); i < trials; i++ {
			sys, space := newSystem(t, chi, baseSeed+i, 0)
			res, err := attack.Campaign(sys, space, attack.CampaignConfig{
				OmegaDirect:   2,
				OmegaIndirect: 1,
				MaxSteps:      40,
				Rerandomize:   po,
			}, xrand.New(baseSeed+1000+i))
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(float64(res.StepsElapsed))
			sys.Stop()
		}
		return acc.Mean()
	}
	so := mean(false, 500)
	po := mean(true, 600)
	if po <= so {
		t.Errorf("executable stack: PO mean lifetime %v ≤ SO mean %v", po, so)
	}
	// The model agrees on direction at the matching parameters.
	p := model.DefaultParams(2.0/16, 0.5)
	p.Chi = chi
	s2so, err := model.EstimateSO(model.S2SO{P: p}, 50000, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s2po, err := model.S2PO{P: p}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	if s2po <= s2so.EL {
		t.Errorf("model disagrees with itself: PO %v ≤ SO %v", s2po, s2so.EL)
	}
}

// TestDetectorChangesCampaignRoute shows the §2.2 mechanism end to end:
// with a strict detector the indirect route is starved, so compromises
// come through the proxy tier instead.
func TestDetectorChangesCampaignRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("route ensemble skipped in -short")
	}
	routes := func(threshold int, seed uint64) map[string]int {
		out := make(map[string]int)
		for i := uint64(0); i < 6; i++ {
			sys, space := newSystem(t, 24, seed+i, threshold)
			res, err := attack.Campaign(sys, space, attack.CampaignConfig{
				OmegaDirect:   1,
				OmegaIndirect: 2,
				MaxSteps:      40,
				Rerandomize:   false,
			}, xrand.New(seed+2000+i))
			if err != nil {
				t.Fatal(err)
			}
			if res.Compromised {
				out[res.Route]++
			}
			sys.Stop()
		}
		return out
	}
	open := routes(0, 700)
	guarded := routes(2, 800) // flag after 2 invalid requests
	if open["server-indirect"] == 0 {
		t.Skip("open runs never used the indirect route; seeds too lucky to compare")
	}
	if guarded["server-indirect"] > open["server-indirect"] {
		t.Errorf("detector increased indirect compromises: %v vs %v", guarded, open)
	}
}

// TestForgedResponseNeverReachesClient drives a compromised proxy to lie
// and asserts the client-side double-signature check catches it.
func TestForgedResponseNeverReachesClient(t *testing.T) {
	sys, space := newSystem(t, 8, 23, 0)
	// Compromise proxy 0 (χ=8, probe its real key directly).
	keys := sys.ProxyKeys()
	conn, err := sys.Net().Dial("attacker", sys.Proxies()[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(proxy.EncodeRequest("pwn", exploit.NewPayload(exploit.TierProxy, keys[0]))); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.RecvTimeout(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !sys.Proxies()[0].Compromised() {
		t.Fatal("setup: proxy not compromised")
	}
	_ = space

	// The compromised proxy can reach servers via RawForward, but it holds
	// no server signing key: anything it fabricates fails the inner
	// signature check, so an honest client talking to the OTHER proxies
	// still gets correct doubly-signed responses.
	client, err := sys.Client("honest", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	out, err := client.Invoke("w", []byte(`{"op":"open","from":"x"}`))
	if err != nil {
		t.Fatalf("honest request failed despite 2 honest proxies: %v", err)
	}
	if !strings.Contains(string(out), `"ok":true`) {
		t.Fatalf("response: %s", out)
	}
}

// TestModelAndStackAgreeOnProxyCountEffect: more proxies delay the
// all-proxies route in both the model and the executable stack.
func TestModelAndStackAgreeOnProxyCountEffect(t *testing.T) {
	// Model side (exact): P(all proxies in one step) shrinks with n_p.
	p2 := model.DefaultParams(0.01, 0)
	p2.Proxies = 2
	p2.LaunchPadFraction = 0
	p4 := model.DefaultParams(0.01, 0)
	p4.Proxies = 4
	p4.LaunchPadFraction = 0
	el2, err := model.S2PO{P: p2}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	el4, err := model.S2PO{P: p4}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	if el4 <= el2 {
		t.Fatalf("model: 4 proxies EL %v ≤ 2 proxies EL %v", el4, el2)
	}
}
