package smr

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/sig"
	"fortress/internal/xrand"
)

const (
	hbInterval = 5 * time.Millisecond
	hbTimeout  = 40 * time.Millisecond
	reqTimeout = 2 * time.Second
)

func cluster(t *testing.T, n int, mk func(i int) service.Service, allowNondet bool) (*netsim.Network, []*Replica, *Client) {
	t.Helper()
	net := netsim.NewNetwork()
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		peers[i] = fmt.Sprintf("smr-%d", i)
	}
	replicas := make([]*Replica, n)
	pubKeys := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Index: i, Addr: peers[i], Peers: peers,
			Service: mk(i), Keys: keys, Net: net,
			HeartbeatInterval:     hbInterval,
			HeartbeatTimeout:      hbTimeout,
			AllowNondeterministic: allowNondet,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
		pubKeys[i] = r.PublicKey()
		t.Cleanup(r.Stop)
	}
	f := (n - 1) / 3
	if f < 1 {
		f = 1
	}
	client, err := NewClient(net, "client", peers, pubKeys, f, reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	return net, replicas, client
}

func TestRejectsNondeterministicService(t *testing.T) {
	net := netsim.NewNetwork()
	keys, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Index: 0, Addr: "x", Peers: map[int]string{0: "x"},
		Service: service.NewNondet(service.NewCounter(), xrand.New(1)),
		Keys:    keys, Net: net,
		HeartbeatInterval: hbInterval, HeartbeatTimeout: hbTimeout,
	})
	if !errors.Is(err, ErrNotDeterministic) {
		t.Fatalf("want ErrNotDeterministic, got %v", err)
	}
}

func TestInvokeReachesQuorum(t *testing.T) {
	_, _, client := cluster(t, 4, func(int) service.Service { return service.NewCounter() }, false)
	body, err := client.Invoke("r1", []byte("add 5"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "5" {
		t.Fatalf("body = %s", body)
	}
}

func TestAllReplicasConverge(t *testing.T) {
	_, reps, client := cluster(t, 4, func(int) service.Service { return service.NewCounter() }, false)
	for i := 0; i < 10; i++ {
		if _, err := client.Invoke(fmt.Sprintf("r%d", i), []byte("inc")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		for _, r := range reps {
			if r.Executed() != 10 {
				return false
			}
		}
		return true
	})
}

func TestOrderingConsistencyUnderConcurrency(t *testing.T) {
	_, reps, client := cluster(t, 4, func(int) service.Service { return service.NewKV() }, false)
	// Fire concurrent conflicting writes; afterwards all replicas must hold
	// the same value — whatever order the sequencer chose.
	const writers = 8
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			req, err := json.Marshal(service.KVRequest{Op: "put", Key: "k", Value: fmt.Sprintf("w%d", w)})
			if err != nil {
				errs <- err
				return
			}
			_, err = client.Invoke(fmt.Sprintf("conc-%d", w), req)
			errs <- err
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		for _, r := range reps {
			if r.Executed() != writers {
				return false
			}
		}
		return true
	})
	// Read back through the protocol: quorum on the final value proves the
	// replicas agree.
	req, err := json.Marshal(service.KVRequest{Op: "get", Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := client.Invoke("final-read", req)
	if err != nil {
		t.Fatalf("replicas diverged: %v", err)
	}
	var kr service.KVResponse
	if err := json.Unmarshal(body, &kr); err != nil {
		t.Fatal(err)
	}
	if !kr.Found {
		t.Fatal("final value missing")
	}
}

func TestNondeterminismBreaksVoting(t *testing.T) {
	// With the DSM check bypassed, replicas diverge and the client cannot
	// assemble f+1 matching responses — the paper's reason SMR requires DSM.
	rng := xrand.New(5)
	_, _, client := cluster(t, 4, func(int) service.Service {
		return service.NewNondet(service.NewCounter(), rng.Split())
	}, true)
	_, err := client.Invoke("n1", []byte("inc"))
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum, got %v", err)
	}
}

func TestLeaderFailover(t *testing.T) {
	_, reps, client := cluster(t, 4, func(int) service.Service { return service.NewCounter() }, false)
	if _, err := client.Invoke("a", []byte("add 3")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, r := range reps {
			if r.Executed() != 1 {
				return false
			}
		}
		return true
	})
	reps[0].Crash()
	waitFor(t, func() bool { return reps[1].IsLeader() })

	body, err := client.Invoke("b", []byte("add 4"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "7" {
		t.Fatalf("post-failover body = %s, want 7", body)
	}
	// Survivors follow the new leader.
	waitFor(t, func() bool {
		return reps[2].LeaderIndex() == 1 && reps[3].LeaderIndex() == 1
	})
}

func TestDuplicateRequestNotReExecuted(t *testing.T) {
	_, _, client := cluster(t, 4, func(int) service.Service { return service.NewCounter() }, false)
	b1, err := client.Invoke("dup", []byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := client.Invoke("dup", []byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != "1" || string(b2) != "1" {
		t.Fatalf("duplicate re-executed: %s / %s", b1, b2)
	}
}

func TestVote(t *testing.T) {
	mk := func(idx int, body string) sig.ServerResponse {
		return sig.ServerResponse{ServerIndex: idx, Body: []byte(body)}
	}
	// f=1: need 2 matching from distinct replicas.
	if _, err := Vote([]sig.ServerResponse{mk(0, "x")}, 1); !errors.Is(err, ErrNoQuorum) {
		t.Fatal("single response reached quorum")
	}
	if _, err := Vote([]sig.ServerResponse{mk(0, "x"), mk(0, "x")}, 1); !errors.Is(err, ErrNoQuorum) {
		t.Fatal("same replica counted twice")
	}
	body, err := Vote([]sig.ServerResponse{mk(0, "x"), mk(1, "y"), mk(2, "x")}, 1)
	if err != nil || string(body) != "x" {
		t.Fatalf("Vote = %s, %v", body, err)
	}
	if _, err := Vote(nil, 1); !errors.Is(err, ErrNoQuorum) {
		t.Fatal("empty vote passed")
	}
}

func TestClientValidation(t *testing.T) {
	net := netsim.NewNetwork()
	if _, err := NewClient(net, "c", nil, nil, 1, time.Second); err == nil {
		t.Fatal("empty addrs accepted")
	}
	if _, err := NewClient(net, "c", map[int]string{0: "a"}, nil, 1, time.Second); err == nil {
		t.Fatal("too few replicas for f accepted")
	}
	if _, err := NewClient(net, "c", map[int]string{0: "a"}, nil, -1, time.Second); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestApplicationErrorsAgree(t *testing.T) {
	_, _, client := cluster(t, 4, func(int) service.Service { return service.NewCounter() }, false)
	body, err := client.Invoke("bad", []byte("explode"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body[:6]) != "error:" {
		t.Fatalf("body = %s", body)
	}
}

func TestFollowerForwardsToLeader(t *testing.T) {
	// A request reaching only a follower still gets executed via forwarding.
	net, reps, _ := cluster(t, 4, func(int) service.Service { return service.NewCounter() }, false)
	resp, err := request(net, "c", reps[2].Addr(), "fwd", []byte("add 9"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "9" {
		t.Fatalf("body = %s", resp.Body)
	}
	if resp.ServerIndex != 2 {
		t.Fatalf("signed by %d, want the contacted follower 2", resp.ServerIndex)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func BenchmarkInvoke(b *testing.B) {
	net := netsim.NewNetwork()
	peers := map[int]string{0: "s0", 1: "s1", 2: "s2", 3: "s3"}
	pubKeys := make(map[int][]byte)
	var reps []*Replica
	for i := 0; i < 4; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			b.Fatal(err)
		}
		r, err := New(Config{
			Index: i, Addr: peers[i], Peers: peers,
			Service: service.NewCounter(), Keys: keys, Net: net,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		reps = append(reps, r)
		pubKeys[i] = r.PublicKey()
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()
	client, err := NewClient(net, "bench", peers, pubKeys, 1, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(fmt.Sprintf("b%d", i), []byte("inc")); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStopTerminatesWithIdleInboundConns pins the shutdown liveness fix:
// stopping replicas in index order must terminate promptly even though the
// stopped leader still holds served connections (follower forwards) that
// will never carry another message — shutdown closes inbound connections
// instead of waiting for traffic to wake their serving goroutines.
func TestStopTerminatesWithIdleInboundConns(t *testing.T) {
	_, replicas, client := cluster(t, 4, func(int) service.Service { return service.NewCounter() }, false)
	// Several invokes so every follower has forwarded to the leader at
	// least once, caching follower→leader connections.
	for i := 0; i < 3; i++ {
		if _, err := client.Invoke(fmt.Sprintf("stop-%d", i), []byte("inc")); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range replicas {
		done := make(chan struct{})
		go func() { r.Stop(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("replica %d Stop did not terminate — inbound conns not closed on shutdown", i)
		}
	}
}

// TestRestartAfterCrash is the restartable-serve-loop contract for SMR: a
// crashed follower re-registers its listener, rejoins the order protocol,
// and executes subsequent sequenced requests from where it left off.
func TestRestartAfterCrash(t *testing.T) {
	_, rs, client := cluster(t, 4, func(int) service.Service { return service.NewKV() }, false)
	put := func(val string) []byte {
		b, err := json.Marshal(service.KVRequest{Op: "put", Key: "k", Value: val})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if _, err := client.Invoke("w1", put("v1")); err != nil {
		t.Fatal(err)
	}
	// Let w1's order land on the follower before crashing it: the order
	// protocol has no catch-up transfer, so a replica that crashes with a
	// sequence gap would stall on the missing entry after restart.
	deadline := time.Now().Add(2 * time.Second)
	for rs[3].Executed() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never executed w1")
		}
		time.Sleep(time.Millisecond)
	}
	rs[3].Crash()
	if err := rs[3].Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := rs[3].Restart(); err == nil {
		t.Fatal("restart of a running replica accepted")
	}
	if _, err := client.Invoke("w2", put("v2")); err != nil {
		t.Fatal(err)
	}
	// The restarted follower receives w2's order and executes contiguously
	// from its retained log position.
	deadline = time.Now().Add(2 * time.Second)
	for rs[3].Executed() < rs[0].Executed() {
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica executed %d, leader %d", rs[3].Executed(), rs[0].Executed())
		}
		time.Sleep(time.Millisecond)
	}
}
