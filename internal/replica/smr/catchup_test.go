package smr

import (
	"fmt"
	"testing"
	"time"

	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/sig"
)

// catchupCluster mirrors cluster but pins CatchupHistory (so tests can
// force either transfer path) and the failover timeout (so partition tests
// can keep the cut well inside the election window).
func catchupCluster(t *testing.T, n, history int, failover time.Duration) (*netsim.Network, []*Replica, *Client) {
	t.Helper()
	net := netsim.NewNetwork()
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		peers[i] = fmt.Sprintf("smr-%d", i)
	}
	replicas := make([]*Replica, n)
	pubKeys := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Index: i, Addr: peers[i], Peers: peers,
			Service: service.NewCounter(), Keys: keys, Net: net,
			HeartbeatInterval: hbInterval,
			HeartbeatTimeout:  failover,
			CatchupHistory:    history,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
		pubKeys[i] = r.PublicKey()
		t.Cleanup(r.Stop)
	}
	client, err := NewClient(net, "client", peers, pubKeys, 1, reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	return net, replicas, client
}

// invokeN drives n requests through the cluster with distinct IDs starting
// at base.
func invokeN(t *testing.T, client *Client, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := client.Invoke(fmt.Sprintf("r%d", base+i), []byte("inc")); err != nil {
			t.Fatalf("invoke r%d: %v", base+i, err)
		}
	}
}

// TestCatchupAfterCrashRestartSuffix is the headline recovery scenario: a
// replica crashes, misses orders, restarts with its retained state, detects
// the gap from the leader's heartbeat frontier, and replays the missing
// log suffix — converging to the leader's executed sequence with no client
// traffic required after the restart.
func TestCatchupAfterCrashRestartSuffix(t *testing.T) {
	net, reps, client := catchupCluster(t, 3, 0, hbTimeout) // default window: suffix path
	invokeN(t, client, 0, 5)
	waitFor(t, func() bool { return reps[2].Executed() == 5 })

	reps[2].Crash()
	invokeN(t, client, 5, 5)
	waitFor(t, func() bool { return reps[0].Executed() == 10 })
	if got := reps[2].Executed(); got != 5 {
		t.Fatalf("crashed replica executed %d, want its pre-crash 5", got)
	}

	if err := reps[2].Restart(); err != nil {
		t.Fatal(err)
	}
	// No further client traffic: the leader's heartbeat carries the
	// executed frontier, and the restarted replica pulls the suffix.
	waitFor(t, func() bool { return reps[2].Executed() == 10 })

	// The replayed suffix also rebuilt the response cache: a request that
	// was sequenced while the replica was down is answered from cache when
	// asked directly.
	resp, err := request(net, "late-client", reps[2].Addr(), "r7", []byte("inc"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "8" {
		t.Fatalf("replayed response body = %q, want 8", resp.Body)
	}
	if reps[2].Executed() != 10 {
		t.Fatalf("cache reply re-executed: executed = %d", reps[2].Executed())
	}
}

// TestCatchupSnapshotPath forces the snapshot branch: with no retained
// history the leader ships its full state, positioning the restarted
// replica at the frontier in one jump.
func TestCatchupSnapshotPath(t *testing.T) {
	_, reps, client := catchupCluster(t, 3, -1, hbTimeout) // retain nothing: snapshot path
	invokeN(t, client, 0, 4)
	waitFor(t, func() bool { return reps[2].Executed() == 4 })

	reps[2].Crash()
	invokeN(t, client, 4, 4)
	waitFor(t, func() bool { return reps[0].Executed() == 8 })
	if err := reps[2].Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[2].Executed() == 8 })

	// State converged too, not just the counter of executions: the next
	// ordered request must produce the same body on the caught-up replica
	// as everywhere else (9 increments total).
	body, err := client.Invoke("after-catchup", []byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "9" {
		t.Fatalf("post-catchup invoke = %q, want 9", body)
	}
	waitFor(t, func() bool { return reps[2].Executed() == 9 })
}

// TestCatchupSnapshotTransfersResponseCache: a snapshot jump skips
// executing the gap's requests, so the transfer must carry the leader's
// response cache — a retry of a jumped-over request is answered from
// cache, never re-executed under a fresh sequence number.
func TestCatchupSnapshotTransfersResponseCache(t *testing.T) {
	net, reps, client := catchupCluster(t, 3, -1, hbTimeout)
	invokeN(t, client, 0, 4)
	waitFor(t, func() bool { return reps[2].Executed() == 4 })
	reps[2].Crash()
	invokeN(t, client, 4, 4)
	waitFor(t, func() bool { return reps[0].Executed() == 8 })
	if err := reps[2].Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[2].Executed() == 8 })

	// r5 was executed (as the sixth increment) while replica 2 was down
	// and arrived here only inside the snapshot jump.
	resp, err := request(net, "retry-client", reps[2].Addr(), "r5", []byte("inc"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "6" {
		t.Fatalf("retried jumped-over request = %q, want the cached 6", resp.Body)
	}
	if got := reps[2].Executed(); got != 8 {
		t.Fatalf("retry re-entered the order protocol: executed = %d, want 8", got)
	}
}

// TestCatchupWindowOutrun: a window smaller than the gap falls back to the
// snapshot path and still converges.
func TestCatchupWindowOutrun(t *testing.T) {
	_, reps, client := catchupCluster(t, 3, 2, hbTimeout) // tiny window
	invokeN(t, client, 0, 3)
	waitFor(t, func() bool { return reps[2].Executed() == 3 })
	reps[2].Crash()
	invokeN(t, client, 3, 6) // gap of 6 > window of 2
	waitFor(t, func() bool { return reps[0].Executed() == 9 })
	if err := reps[2].Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[2].Executed() == 9 })
}

// TestJoinExistingDefersToLiveLeader: a replacement built with
// JoinExisting must not claim the sequencer role off its low index — it
// waits for, and adopts, whoever actually leads.
func TestJoinExistingDefersToLiveLeader(t *testing.T) {
	net := netsim.NewNetwork()
	peers := map[int]string{0: "smr-0", 1: "smr-1", 2: "smr-2"}
	replicas := make(map[int]*Replica, 3)
	mk := func(i int, join bool) *Replica {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Index: i, Addr: peers[i], Peers: peers,
			Service: service.NewCounter(), Keys: keys, Net: net,
			HeartbeatInterval: hbInterval, HeartbeatTimeout: 2 * time.Second,
			JoinExisting: join,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Stop)
		return r
	}
	// 1 and 2 come up first; with 0 absent nothing leads yet, but both
	// follow index 0 by default. 0 then joins with JoinExisting: it must
	// NOT believe it leads, even though it has the lowest index.
	replicas[1] = mk(1, false)
	replicas[2] = mk(2, false)
	replicas[0] = mk(0, true)
	if replicas[0].IsLeader() {
		t.Fatal("JoinExisting replica claimed leadership on start")
	}
	if got := replicas[0].LeaderIndex(); got != leaderUnknown {
		t.Fatalf("leader index = %d, want leaderUnknown", got)
	}
}

// TestSequenceDedupsExecutedRequests: a new leader must not re-sequence a
// request it already executed under the previous sequencer — a forwarded
// retry is absorbed by the response cache, not given a fresh number.
func TestSequenceDedupsExecutedRequests(t *testing.T) {
	net, reps, client := catchupCluster(t, 3, 0, hbTimeout)
	invokeN(t, client, 0, 3) // r0..r2 executed everywhere
	waitFor(t, func() bool { return reps[1].Executed() == 3 && reps[2].Executed() == 3 })

	// Fail leadership over to replica 1.
	reps[0].Crash()
	waitFor(t, func() bool { return reps[1].IsLeader() })

	// A lagging replica retries r1 by forwarding it to the new leader
	// (its own respCache would miss after a snapshot-less rebuild). The
	// leader executed r1 at its original sequence number and must not
	// order it again.
	conn, err := net.Dial("laggard", reps[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encode(wireMsg{Type: msgForward, RequestID: "r1", Body: []byte("inc"), From: 2})); err != nil {
		t.Fatal(err)
	}
	// Drive a fresh request through to prove the leader is live, then
	// check the retry did not bump the execution count on its own.
	invokeN(t, client, 10, 1)
	waitFor(t, func() bool { return reps[1].Executed() == 4 })
	time.Sleep(20 * time.Millisecond)
	if got := reps[1].Executed(); got != 4 {
		t.Fatalf("forwarded retry was re-executed: executed = %d, want 4", got)
	}
}

// TestCatchupAfterDroppedOrders: catch-up repairs gaps caused by lost
// order messages, not just restarts — the replica stays up while a
// partition eats the leader's broadcasts, then heals and converges.
func TestCatchupAfterDroppedOrders(t *testing.T) {
	// A generous failover timeout keeps the brief cut from triggering an
	// election on the isolated replica.
	net, reps, client := catchupCluster(t, 3, 0, 2*time.Second)
	invokeN(t, client, 0, 2)
	waitFor(t, func() bool { return reps[2].Executed() == 2 })

	// Sever replica 2 from its peers (clients still reach it): orders
	// sequenced during the cut never arrive.
	net.PartitionGroup([]string{reps[2].Addr()}, []string{reps[0].Addr(), reps[1].Addr()})
	invokeN(t, client, 2, 3)
	waitFor(t, func() bool { return reps[0].Executed() == 5 })
	net.HealGroup([]string{reps[2].Addr()}, []string{reps[0].Addr(), reps[1].Addr()})

	// Post-heal heartbeats carry the frontier; the replica catches up
	// without being restarted. (It may briefly have elected itself a new
	// leader view during the cut; the real leader's heartbeat wins.)
	waitFor(t, func() bool { return reps[2].Executed() == 5 })
}
