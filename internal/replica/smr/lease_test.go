package smr

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/sig"
)

// leaseCluster is cluster with a per-replica Config hook, for tests that
// need leases (or other non-default knobs) switched on.
func leaseCluster(t *testing.T, n int, mk func(i int) service.Service, customize func(c *Config)) (*netsim.Network, []*Replica, *Client) {
	t.Helper()
	net := netsim.NewNetwork()
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		peers[i] = fmt.Sprintf("smr-%d", i)
	}
	replicas := make([]*Replica, n)
	pubKeys := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Index: i, Addr: peers[i], Peers: peers,
			Service: mk(i), Keys: keys, Net: net,
			HeartbeatInterval: hbInterval,
			HeartbeatTimeout:  hbTimeout,
		}
		if customize != nil {
			customize(&cfg)
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
		pubKeys[i] = r.PublicKey()
		t.Cleanup(r.Stop)
	}
	f := (n - 1) / 3
	if f < 1 {
		f = 1
	}
	client, err := NewClient(net, "client", peers, pubKeys, f, reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	return net, replicas, client
}

func kvPut(t *testing.T, key, val string) []byte {
	t.Helper()
	b, err := json.Marshal(service.KVRequest{Op: "put", Key: key, Value: val})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func kvGet(t *testing.T, key string) []byte {
	t.Helper()
	b, err := json.Marshal(service.KVRequest{Op: "get", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func kvValue(t *testing.T, body []byte) (string, bool) {
	t.Helper()
	var resp service.KVResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode KV response %q: %v", body, err)
	}
	return resp.Value, resp.Found
}

// waitExecuted waits until every listed replica has executed want requests.
func waitExecuted(t *testing.T, reps []*Replica, want uint64) {
	t.Helper()
	waitFor(t, func() bool {
		for _, r := range reps {
			if r.Executed() != want {
				return false
			}
		}
		return true
	})
}

// TestLeaseReadServedLocally: with leases on, a read-tagged request to a
// follower holding a valid lease is answered from local state — marked
// leased, signed by the contacted replica, and never entering the order
// protocol (no replica's execution count moves).
func TestLeaseReadServedLocally(t *testing.T) {
	net, reps, client := leaseCluster(t, 4,
		func(int) service.Service { return service.NewKV() },
		func(c *Config) { c.Leases = true })
	if _, err := client.Invoke("w1", kvPut(t, "k", "v1")); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, reps, 1)
	waitFor(t, func() bool {
		for _, r := range reps {
			if !r.LeaseValid() {
				return false
			}
		}
		return true
	})
	before := reps[0].Executed()
	resp, leased, err := requestTagged(net, "rc", reps[2].Addr(), "lr1", kvGet(t, "k"), true, reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !leased {
		t.Fatal("lease-holding follower did not serve the read locally")
	}
	if resp.ServerIndex != 2 {
		t.Fatalf("signed by %d, want the contacted follower 2", resp.ServerIndex)
	}
	if val, found := kvValue(t, resp.Body); !found || val != "v1" {
		t.Fatalf("lease read = %q found=%v, want v1", val, found)
	}
	waitExecuted(t, reps, before) // the read took no sequence slot
}

// TestMisTaggedWriteStillOrdered: the Read tag is advisory — a write body
// tagged as a read must still be sequenced and executed everywhere, because
// the replica re-classifies through the hosted service.
func TestMisTaggedWriteStillOrdered(t *testing.T) {
	net, reps, _ := leaseCluster(t, 4,
		func(int) service.Service { return service.NewCounter() },
		func(c *Config) { c.Leases = true })
	waitFor(t, func() bool { return reps[1].LeaseValid() })
	resp, leased, err := requestTagged(net, "rc", reps[1].Addr(), "mt1", []byte("inc"), true, reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if leased {
		t.Fatal("write served from the lease fast path")
	}
	if string(resp.Body) != "1" {
		t.Fatalf("body = %s, want 1", resp.Body)
	}
	waitExecuted(t, reps, 1)
}

// TestInvokeReadWithLeasesOff: InvokeRead still returns the correct value
// when no replica can hold a lease — the rotation's ordered answer is
// cross-checked by falling back to the f+1 vote.
func TestInvokeReadWithLeasesOff(t *testing.T) {
	_, _, client := leaseCluster(t, 4,
		func(int) service.Service { return service.NewKV() }, nil)
	if _, err := client.Invoke("w1", kvPut(t, "k", "v1")); err != nil {
		t.Fatal(err)
	}
	body, err := client.InvokeRead("r1", kvGet(t, "k"))
	if err != nil {
		t.Fatal(err)
	}
	if val, found := kvValue(t, body); !found || val != "v1" {
		t.Fatalf("read = %q found=%v, want v1", val, found)
	}
}

// TestLeaseExpiresUnderPartition: a follower cut off from its peers loses
// its lease within the lease duration, and a read-tagged request to it then
// fails outright (the fallback forward cannot reach the leader) rather than
// returning a possibly-stale local answer.
func TestLeaseExpiresUnderPartition(t *testing.T) {
	net, reps, client := leaseCluster(t, 4,
		func(int) service.Service { return service.NewKV() },
		func(c *Config) {
			c.Leases = true
			c.LeaseDuration = 30 * time.Millisecond
		})
	if _, err := client.Invoke("w1", kvPut(t, "k", "v1")); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, reps, 1)
	waitFor(t, func() bool { return reps[3].LeaseValid() })

	peerAddrs := []string{reps[0].Addr(), reps[1].Addr(), reps[2].Addr()}
	net.PartitionGroup([]string{reps[3].Addr()}, peerAddrs)
	defer net.HealAll()
	waitFor(t, func() bool { return !reps[3].LeaseValid() })

	// The test client's address is not in the partition, so the request
	// reaches the follower; with no valid lease the follower must fall back
	// to ordering, which cannot complete across the cut.
	_, leased, err := requestTagged(net, "rc", reps[3].Addr(), "pr1", kvGet(t, "k"), true, 300*time.Millisecond)
	if err == nil && leased {
		t.Fatal("partitioned follower served a lease read after expiry")
	}
	if err == nil {
		t.Fatal("partitioned follower answered an ordered read without the leader")
	}

	// Healed, the follower is re-granted a lease and serves fresh state:
	// writes acknowledged while it was cut off must be visible.
	net.HealAll()
	if _, err := client.Invoke("w2", kvPut(t, "k", "v2")); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, reps, 2)
	waitFor(t, func() bool { return reps[3].LeaseValid() })
	resp, leased, err := requestTagged(net, "rc", reps[3].Addr(), "pr2", kvGet(t, "k"), true, reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !leased {
		t.Fatal("healed follower did not regain its lease")
	}
	if val, _ := kvValue(t, resp.Body); val != "v2" {
		t.Fatalf("post-heal lease read = %q, want v2 (stale read)", val)
	}
}

// TestLeaderLeaseRequiresQuorumAcks: an islanded leader's self-lease dies
// once follower acks go stale, so it stops serving single-signature lease
// reads — the client's InvokeRead would fall back to the f+1 vote, which
// the deposed leader cannot win alone.
func TestLeaderLeaseRequiresQuorumAcks(t *testing.T) {
	net, reps, client := leaseCluster(t, 4,
		func(int) service.Service { return service.NewKV() },
		func(c *Config) {
			c.Leases = true
			c.LeaseDuration = 30 * time.Millisecond
		})
	if _, err := client.Invoke("w1", kvPut(t, "k", "v1")); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, reps, 1)
	waitFor(t, func() bool { return reps[0].LeaseValid() })

	followers := []string{reps[1].Addr(), reps[2].Addr(), reps[3].Addr()}
	net.PartitionGroup([]string{reps[0].Addr()}, followers)
	defer net.HealAll()
	waitFor(t, func() bool { return !reps[0].LeaseValid() })

	_, leased, err := requestTagged(net, "rc", reps[0].Addr(), "ql1", kvGet(t, "k"), true, reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if leased {
		t.Fatal("islanded leader served a lease read without quorum acks")
	}
}

// TestMonotonicReadsAcrossLeaderCrash: after a leader crash and failover,
// every lease-served read reflects all writes acknowledged before it — a
// read never returns a value older than the last acknowledged write.
func TestMonotonicReadsAcrossLeaderCrash(t *testing.T) {
	net, reps, client := leaseCluster(t, 4,
		func(int) service.Service { return service.NewKV() },
		func(c *Config) { c.Leases = true })
	if _, err := client.Invoke("w1", kvPut(t, "k", "v1")); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, reps, 1)

	reps[0].Crash()
	waitFor(t, func() bool { return reps[1].IsLeader() })
	if _, err := client.Invoke("w2", kvPut(t, "k", "v2")); err != nil {
		t.Fatal(err)
	}
	live := reps[1:]
	waitExecuted(t, live, 2)

	for i, r := range live {
		r := r
		waitFor(t, func() bool { return r.LeaseValid() })
		resp, leased, err := requestTagged(net, fmt.Sprintf("rc-%d", i), r.Addr(),
			fmt.Sprintf("mono-%d", i), kvGet(t, "k"), true, reqTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if !leased {
			t.Fatalf("replica %d lost its lease between check and read", r.Index())
		}
		if val, _ := kvValue(t, resp.Body); val != "v2" {
			t.Fatalf("replica %d lease read = %q, want v2: read older than last acked write", r.Index(), val)
		}
	}
}

// TestLeaseDurationValidation: a lease that can outlive the failure
// detector would let a deposed leader serve stale reads after a failover,
// so the config must reject LeaseDuration > HeartbeatTimeout.
func TestLeaseDurationValidation(t *testing.T) {
	net := netsim.NewNetwork()
	keys, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Index: 0, Addr: "x", Peers: map[int]string{0: "x"},
		Service: service.NewKV(), Keys: keys, Net: net,
		HeartbeatInterval: hbInterval, HeartbeatTimeout: hbTimeout,
		Leases: true, LeaseDuration: hbTimeout * 2,
	})
	if err == nil || !strings.Contains(err.Error(), "LeaseDuration") {
		t.Fatalf("lease outliving the heartbeat timeout accepted: %v", err)
	}
}
