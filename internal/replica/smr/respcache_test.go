package smr

import (
	"fmt"
	"testing"

	"fortress/internal/netsim"
	"fortress/internal/replica/store"
	"fortress/internal/service"
	"fortress/internal/sig"
)

// respCacheState snapshots a replica's response-cache bookkeeping.
func respCacheState(r *Replica) (cached, order int, ids map[string]bool, orderedIDs map[string]bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids = make(map[string]bool, len(r.respCache))
	for id := range r.respCache {
		ids[id] = true
	}
	orderedIDs = make(map[string]bool, len(r.ordered))
	for id := range r.ordered {
		orderedIDs[id] = true
	}
	return len(r.respCache), len(r.respOrder), ids, orderedIDs
}

// TestRespCacheBounded: with RespCacheLimit set, every replica retains only
// the newest responses — the retry horizon — and prunes the leader's
// sequenced-ID dedup set in lockstep, so the two structures never disagree
// about which retries are absorbable.
func TestRespCacheBounded(t *testing.T) {
	const limit = 4
	_, reps, client := leaseCluster(t, 4,
		func(int) service.Service { return service.NewCounter() },
		func(c *Config) { c.RespCacheLimit = limit })
	for i := 0; i < 10; i++ {
		if _, err := client.Invoke(fmt.Sprintf("r%d", i), []byte("inc")); err != nil {
			t.Fatal(err)
		}
	}
	waitExecuted(t, reps, 10)
	for _, r := range reps {
		cached, order, ids, orderedIDs := respCacheState(r)
		if cached > limit || order > limit {
			t.Fatalf("replica %d cache grew past the horizon: %d cached, %d in order", r.Index(), cached, order)
		}
		// The newest requests are retained; evicted IDs are gone from the
		// dedup set too.
		for i := 10 - limit; i < 10; i++ {
			if !ids[fmt.Sprintf("r%d", i)] {
				t.Fatalf("replica %d evicted r%d, inside the horizon", r.Index(), i)
			}
		}
		for i := 0; i < 10-limit; i++ {
			id := fmt.Sprintf("r%d", i)
			if ids[id] {
				t.Fatalf("replica %d retained r%d past the horizon", r.Index(), i)
			}
			if orderedIDs[id] {
				t.Fatalf("replica %d kept evicted r%d in the ordered set", r.Index(), i)
			}
		}
	}
}

// TestRespCacheRetryHorizon pins the retry contract of the bound: a retry
// inside the horizon is answered from cache without re-execution, one past
// it re-enters the order protocol as a fresh request.
func TestRespCacheRetryHorizon(t *testing.T) {
	_, reps, client := leaseCluster(t, 4,
		func(int) service.Service { return service.NewCounter() },
		func(c *Config) { c.RespCacheLimit = 4 })
	for i := 0; i < 6; i++ {
		if _, err := client.Invoke(fmt.Sprintf("r%d", i), []byte("inc")); err != nil {
			t.Fatal(err)
		}
	}
	waitExecuted(t, reps, 6)

	// r5 is within the 4-entry horizon: cached, not re-executed.
	body, err := client.Invoke("r5", []byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "6" {
		t.Fatalf("within-horizon retry = %q, want the cached 6", body)
	}
	waitExecuted(t, reps, 6)

	// r0 was evicted: the retry is indistinguishable from a new request and
	// executes again — the cost the horizon trades for bounded memory.
	body, err = client.Invoke("r0", []byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "7" {
		t.Fatalf("past-horizon retry = %q, want a fresh 7", body)
	}
}

// TestCatchupSnapshotShipsBoundedCache: a snapshot catch-up transfers the
// donor's response cache, which the bound keeps at the retry horizon — the
// restarted replica converges without inheriting an unbounded cache.
func TestCatchupSnapshotShipsBoundedCache(t *testing.T) {
	const limit = 3
	_, reps, client := leaseCluster(t, 3,
		func(int) service.Service { return service.NewCounter() },
		func(c *Config) {
			c.RespCacheLimit = limit
			c.CatchupHistory = -1 // retain no log: force the snapshot path
		})
	invokeN(t, client, 0, 4)
	waitFor(t, func() bool { return reps[2].Executed() == 4 })
	reps[2].Crash()
	invokeN(t, client, 4, 4)
	waitFor(t, func() bool { return reps[0].Executed() == 8 })
	if err := reps[2].Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[2].Executed() == 8 })
	cached, order, _, _ := respCacheState(reps[2])
	if cached > limit || order > limit {
		t.Fatalf("catch-up shipped past the horizon: %d cached, %d in order, limit %d", cached, order, limit)
	}
}

// singleReplica builds a one-replica group over the given store.
func singleReplica(t *testing.T, net *netsim.Network, st store.Store, customize func(c *Config)) *Replica {
	t.Helper()
	keys, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Index: 0, Addr: "solo", Peers: map[int]string{0: "solo"},
		Service: service.NewCounter(), Keys: keys, Net: net,
		HeartbeatInterval: hbInterval, HeartbeatTimeout: hbTimeout,
		Store: st,
	}
	if customize != nil {
		customize(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSeededReplicaNotMistakenForVirgin pins the virgin-detection fix for
// the bounded cache era: RecoverFromStore must gate on respSeen (insertions
// ever), not on the cache's current size — a replica seeded with initial
// responses has protocol state even if eviction later empties its cache,
// and must not be re-anchored on a disk snapshot over that state.
func TestSeededReplicaNotMistakenForVirgin(t *testing.T) {
	dir := t.TempDir()
	open := func() store.Store {
		st, err := store.Open(store.WALConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// First life: execute a few requests so the WAL holds real state.
	net := netsim.NewNetwork()
	r1 := singleReplica(t, net, open(), nil)
	for i := 0; i < 3; i++ {
		if _, err := request(net, "c", r1.Addr(), fmt.Sprintf("w%d", i), []byte("inc"), reqTimeout); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return r1.Executed() == 3 })
	r1.Stop()

	// A donor-seeded replacement over the same store: it carries initial
	// responses (respSeen > 0), so disk recovery must leave it untouched
	// even though its executed counter still reads zero.
	r2 := singleReplica(t, netsim.NewNetwork(), open(), func(c *Config) {
		c.Addr, c.Peers = "solo2", map[int]string{0: "solo2"}
		c.RespCacheLimit = 1
		c.InitialResponses = map[string][]byte{"seed-a": []byte("1"), "seed-b": []byte("2")}
	})
	if got := r2.Executed(); got != 0 {
		t.Fatalf("seeded replica recovered from store anyway: executed = %d, want 0", got)
	}
	r2.mu.Lock()
	seen, cached := r2.respSeen, len(r2.respCache)
	r2.mu.Unlock()
	if seen != 2 || cached != 1 {
		t.Fatalf("seed accounting: respSeen = %d (want 2), cached = %d (want 1)", seen, cached)
	}
	r2.Stop()

	// A genuinely virgin rebuild recovers the three executed requests.
	r3 := singleReplica(t, netsim.NewNetwork(), open(), func(c *Config) {
		c.Addr, c.Peers = "solo3", map[int]string{0: "solo3"}
	})
	defer r3.Stop()
	if got := r3.Executed(); got != 3 {
		t.Fatalf("virgin rebuild executed = %d, want the recovered 3", got)
	}
}
