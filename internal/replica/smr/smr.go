// Package smr implements state machine replication (paper Def. 1): n
// replicas hosting a deterministic state machine behind a leader-sequenced
// total order, with client-side response voting.
//
// This is the S0 system class: clients send each request to every replica;
// the replicas run an order protocol (here: the lowest-indexed live replica
// acts as sequencer and broadcasts the execution order); every correct
// replica executes the same requests in the same order and produces an
// identical signed response; the client accepts a response once f+1
// replicas agree on its body.
//
// The engine enforces the paper's central SMR precondition: the hosted
// service must be a deterministic state machine. New rejects services whose
// Deterministic method reports false (the check can be disabled to
// demonstrate, in tests and examples, how nondeterminism breaks voting).
package smr

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/sig"
)

var (
	// ErrNotDeterministic is returned by New for non-DSM services.
	ErrNotDeterministic = errors.New("smr: service is not a deterministic state machine")
	// ErrNoQuorum is returned by Vote when no response body reaches f+1
	// matching copies.
	ErrNoQuorum = errors.New("smr: no f+1 matching responses")
)

const (
	msgRequest   = "request"   // client → replica
	msgForward   = "forward"   // follower → leader: please order this
	msgOrder     = "order"     // leader → all: execute at sequence
	msgResponse  = "response"  // replica → client
	msgHeartbeat = "heartbeat" // leader → followers
)

type wireMsg struct {
	Type      string              `json:"type"`
	RequestID string              `json:"requestId,omitempty"`
	Body      []byte              `json:"body,omitempty"`
	Seq       uint64              `json:"seq,omitempty"`
	From      int                 `json:"from,omitempty"`
	Response  *sig.ServerResponse `json:"response,omitempty"`
}

func encode(m wireMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("smr: marshal wire message: %v", err))
	}
	return b
}

// Config describes one SMR replica.
type Config struct {
	// Index is this replica's unique index.
	Index int
	// Addr is the netsim address the replica listens on.
	Addr string
	// Peers maps every replica index (including this one) to its address.
	Peers map[int]string
	// Service is the hosted deterministic state machine.
	Service service.Service
	// Keys signs responses.
	Keys *sig.KeyPair
	// Net is the simulated network.
	Net *netsim.Network
	// HeartbeatInterval is how often the leader pings followers.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a follower waits before electing the
	// next leader.
	HeartbeatTimeout time.Duration
	// AllowNondeterministic disables the DSM check; used only to
	// demonstrate why the check exists.
	AllowNondeterministic bool
}

func (c Config) validate() error {
	switch {
	case c.Service == nil:
		return errors.New("smr: config needs a Service")
	case c.Keys == nil:
		return errors.New("smr: config needs Keys")
	case c.Net == nil:
		return errors.New("smr: config needs Net")
	case c.Addr == "":
		return errors.New("smr: config needs Addr")
	case len(c.Peers) == 0:
		return errors.New("smr: config needs Peers")
	case c.HeartbeatInterval <= 0 || c.HeartbeatTimeout <= 0:
		return errors.New("smr: config needs positive heartbeat timings")
	}
	if _, ok := c.Peers[c.Index]; !ok {
		return fmt.Errorf("smr: Peers must contain own index %d", c.Index)
	}
	if !c.AllowNondeterministic && !c.Service.Deterministic() {
		return fmt.Errorf("%w: %s", ErrNotDeterministic, c.Service.Name())
	}
	return nil
}

// orderEntry is a sequenced request waiting for (or past) execution.
type orderEntry struct {
	requestID string
	body      []byte
}

// Replica is one SMR replica.
type Replica struct {
	cfg Config

	mu            sync.Mutex
	leaderIdx     int
	nextAssign    uint64 // leader: next sequence number to hand out
	nextExec      uint64 // everyone: next sequence number to execute
	log           map[uint64]orderEntry
	ordered       map[string]bool // request IDs already sequenced (leader)
	respCache     map[string][]byte
	pending       map[string][]*netsim.Conn
	peerConns     map[int]*netsim.Conn
	inbound       map[*netsim.Conn]struct{}
	suspected     map[int]bool
	lastHeartbeat time.Time
	stopped       bool

	listener *netsim.Listener
	stop     chan struct{}
	done     sync.WaitGroup
}

// New starts a replica. The initial leader is the lowest peer index.
func New(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l, err := cfg.Net.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("smr: listen: %w", err)
	}
	r := &Replica{
		cfg:        cfg,
		leaderIdx:  lowestIndex(cfg.Peers, nil),
		nextExec:   1,
		nextAssign: 1,
		log:        make(map[uint64]orderEntry),
		ordered:    make(map[string]bool),
		respCache:  make(map[string][]byte),
		pending:    make(map[string][]*netsim.Conn),
		peerConns:  make(map[int]*netsim.Conn),
		inbound:    make(map[*netsim.Conn]struct{}),
		suspected:  make(map[int]bool),
		listener:   l,
		stop:       make(chan struct{}),
	}
	r.lastHeartbeat = time.Now()
	r.done.Add(2)
	go r.acceptLoop()
	go r.timerLoop()
	return r, nil
}

func lowestIndex(peers map[int]string, suspected map[int]bool) int {
	best := -1
	for i := range peers {
		if suspected[i] {
			continue
		}
		if best == -1 || i < best {
			best = i
		}
	}
	return best
}

// Index returns the replica's index.
func (r *Replica) Index() int { return r.cfg.Index }

// Addr returns the replica's address.
func (r *Replica) Addr() string { return r.cfg.Addr }

// PublicKey exposes the verification key.
func (r *Replica) PublicKey() []byte { return r.cfg.Keys.Public() }

// LeaderIndex returns who this replica currently follows.
func (r *Replica) LeaderIndex() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderIdx
}

// IsLeader reports whether this replica is currently the sequencer.
func (r *Replica) IsLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderIdx == r.cfg.Index
}

// Executed returns how many requests this replica has executed.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextExec - 1
}

// Stop shuts the replica down and waits for its goroutines to exit.
func (r *Replica) Stop() {
	r.shutdown()
	r.done.Wait()
}

// shutdown makes the replica inert without waiting for goroutines, so it is
// safe to call from within a serving goroutine. Idempotent.
func (r *Replica) shutdown() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	conns := make([]*netsim.Conn, 0, len(r.peerConns)+len(r.inbound))
	for _, c := range r.peerConns {
		conns = append(conns, c)
	}
	r.peerConns = make(map[int]*netsim.Conn)
	// Served (inbound) connections too: Stop must never depend on a peer
	// sending one more message to wake a serving goroutine out of Recv —
	// an idle follower-to-stopped-leader connection would otherwise park
	// serveConn, and done.Wait with it, forever.
	for c := range r.inbound {
		conns = append(conns, c)
	}
	r.inbound = make(map[*netsim.Conn]struct{})
	r.mu.Unlock()

	close(r.stop)
	r.listener.Close()
	for _, c := range conns {
		c.Close()
	}
}

// leaderUnknown is the post-restart leader sentinel: larger than any real
// replica index, so the first heartbeat heard (From <= leaderIdx) is adopted
// whoever sends it, and the restarted node never believes it leads until the
// group is provably silent for a full failover timeout.
const leaderUnknown = 1 << 30

// Restart re-opens a stopped or crashed replica in place, mirroring
// pb.Replica.Restart: the listener re-registers at the same address, the
// serve loops come back, and the node rejoins with its executed log and
// response cache retained. A multi-replica node rejoins with an unknown
// leader and adopts whichever leader heartbeats first — a restarted
// lowest-index node must not reclaim the sequencer role with a stale
// sequence counter while a failed-over leader is live. Restarting a running
// replica is an error.
func (r *Replica) Restart() error {
	r.mu.Lock()
	stopped := r.stopped
	r.mu.Unlock()
	if !stopped {
		return errors.New("smr: restart of a running replica")
	}
	// The previous generation's goroutines must be fully out before the
	// listener and stop channel are replaced under them.
	r.done.Wait()
	l, err := r.cfg.Net.Listen(r.cfg.Addr)
	if err != nil {
		return fmt.Errorf("smr: restart listen: %w", err)
	}
	r.mu.Lock()
	r.stopped = false
	r.listener = l
	r.stop = make(chan struct{})
	r.leaderIdx = leaderUnknown
	if len(r.cfg.Peers) == 1 {
		r.leaderIdx = r.cfg.Index
	}
	r.suspected = make(map[int]bool)
	// Parked clients were disconnected by the shutdown; they resubmit.
	r.pending = make(map[string][]*netsim.Conn)
	r.lastHeartbeat = time.Now()
	r.mu.Unlock()
	r.done.Add(2)
	go r.acceptLoop()
	go r.timerLoop()
	return nil
}

// Crash simulates a node crash observable by all peers: the replica is made
// inert and its address torn down synchronously; goroutine shutdown
// completes in the background, so Crash may be called from within request
// handling.
func (r *Replica) Crash() {
	r.shutdown()
	r.cfg.Net.CrashAddr(r.cfg.Addr)
}

func (r *Replica) acceptLoop() {
	defer r.done.Done()
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return
		}
		if !r.registerInbound(conn) {
			continue // shutting down: conn closed, Accept fails next
		}
		r.done.Add(1)
		go r.serveConn(conn)
	}
}

// registerInbound tracks a served connection so shutdown can close it. It
// reports false — closing the connection — when the replica has already
// begun shutting down, which an Accept completing concurrently with
// shutdown can race into.
func (r *Replica) registerInbound(conn *netsim.Conn) bool {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		conn.Close()
		return false
	}
	r.inbound[conn] = struct{}{}
	r.mu.Unlock()
	return true
}

func (r *Replica) forgetInbound(conn *netsim.Conn) {
	r.mu.Lock()
	delete(r.inbound, conn)
	r.mu.Unlock()
}

func (r *Replica) serveConn(conn *netsim.Conn) {
	defer r.done.Done()
	defer r.forgetInbound(conn)
	defer conn.Close()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		var m wireMsg
		uerr := json.Unmarshal(raw, &m)
		netsim.Release(raw) // decoded: json copied every field out of raw
		if uerr != nil {
			continue
		}
		select {
		case <-r.stop:
			return
		default:
		}
		switch m.Type {
		case msgRequest:
			r.handleRequest(conn, m)
		case msgForward:
			r.handleForward(m)
		case msgOrder:
			r.handleOrder(m)
		case msgHeartbeat:
			r.handleHeartbeat(m)
		}
	}
}

// handleRequest registers the client connection and routes the request into
// the order protocol.
func (r *Replica) handleRequest(conn *netsim.Conn, m wireMsg) {
	r.mu.Lock()
	if body, ok := r.respCache[m.RequestID]; ok {
		r.mu.Unlock()
		r.reply(conn, m.RequestID, body)
		return
	}
	r.pending[m.RequestID] = append(r.pending[m.RequestID], conn)
	isLeader := r.leaderIdx == r.cfg.Index
	leader := r.leaderIdx
	r.mu.Unlock()

	if isLeader {
		r.sequence(m.RequestID, m.Body)
		return
	}
	// Follower: forward to the leader for ordering. The client also sent
	// the request to the leader directly, so this is belt-and-braces that
	// makes progress even if the client reached only this replica.
	if addr, ok := r.cfg.Peers[leader]; ok {
		r.sendTo(leader, addr, encode(wireMsg{
			Type: msgForward, RequestID: m.RequestID, Body: m.Body, From: r.cfg.Index,
		}))
	}
}

// handleForward is the leader receiving a follower's order request.
func (r *Replica) handleForward(m wireMsg) {
	r.mu.Lock()
	isLeader := r.leaderIdx == r.cfg.Index
	r.mu.Unlock()
	if isLeader {
		r.sequence(m.RequestID, m.Body)
	}
}

// sequence assigns the next sequence number to a request (once) and
// broadcasts the order.
func (r *Replica) sequence(requestID string, body []byte) {
	r.mu.Lock()
	if r.ordered[requestID] {
		r.mu.Unlock()
		return
	}
	r.ordered[requestID] = true
	seq := r.nextAssign
	r.nextAssign++
	r.mu.Unlock()

	order := wireMsg{Type: msgOrder, RequestID: requestID, Body: body, Seq: seq, From: r.cfg.Index}
	r.handleOrder(order) // execute locally
	raw := encode(order)
	for idx, addr := range r.cfg.Peers {
		if idx == r.cfg.Index {
			continue
		}
		r.sendTo(idx, addr, raw)
	}
}

// handleOrder buffers the sequenced request and executes everything that is
// now contiguous.
func (r *Replica) handleOrder(m wireMsg) {
	r.mu.Lock()
	if m.Seq < r.nextExec {
		r.mu.Unlock()
		return // already executed
	}
	r.log[m.Seq] = orderEntry{requestID: m.RequestID, body: m.Body}
	// Track leader liveness through orders too.
	if m.From != r.cfg.Index {
		r.lastHeartbeat = time.Now()
	}

	type executed struct {
		requestID string
		respBody  []byte
		conns     []*netsim.Conn
	}
	var ready []executed
	for {
		entry, ok := r.log[r.nextExec]
		if !ok {
			break
		}
		delete(r.log, r.nextExec)
		r.nextExec++
		r.mu.Unlock()
		// Execute outside the lock: Apply may be slow.
		respBody, applyErr := r.cfg.Service.Apply(entry.body)
		if applyErr != nil {
			respBody = []byte("error: " + applyErr.Error())
		}
		r.mu.Lock()
		r.respCache[entry.requestID] = respBody
		conns := r.pending[entry.requestID]
		delete(r.pending, entry.requestID)
		ready = append(ready, executed{entry.requestID, respBody, conns})
	}
	r.mu.Unlock()

	for _, e := range ready {
		for _, c := range e.conns {
			r.reply(c, e.requestID, e.respBody)
		}
	}
}

func (r *Replica) reply(conn *netsim.Conn, requestID string, body []byte) {
	resp := sig.SignServerResponse(r.cfg.Keys, requestID, body, r.cfg.Index)
	_ = conn.Send(encode(wireMsg{Type: msgResponse, RequestID: requestID, Response: &resp}))
}

func (r *Replica) handleHeartbeat(m wireMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.From <= r.leaderIdx {
		r.leaderIdx = m.From
		r.lastHeartbeat = time.Now()
	}
}

func (r *Replica) timerLoop() {
	defer r.done.Done()
	ticker := time.NewTicker(r.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		isLeader := r.leaderIdx == r.cfg.Index
		stale := time.Since(r.lastHeartbeat) > r.cfg.HeartbeatTimeout
		leader := r.leaderIdx
		r.mu.Unlock()

		if isLeader {
			raw := encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index})
			for idx, addr := range r.cfg.Peers {
				if idx != r.cfg.Index {
					r.sendTo(idx, addr, raw)
				}
			}
			continue
		}
		if stale {
			r.electNext(leader)
		}
	}
}

// electNext marks the current leader dead and deterministically adopts the
// lowest surviving index as the new leader.
func (r *Replica) electNext(deadLeader int) {
	r.mu.Lock()
	r.suspected[deadLeader] = true
	next := lowestIndex(r.cfg.Peers, r.suspected)
	if next == -1 {
		r.mu.Unlock()
		return
	}
	r.leaderIdx = next
	r.lastHeartbeat = time.Now()
	becameLeader := next == r.cfg.Index
	if becameLeader && r.nextAssign < r.nextExec {
		// Fresh leader: continue sequencing after everything it executed.
		r.nextAssign = r.nextExec
	}
	r.mu.Unlock()

	if becameLeader {
		raw := encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index})
		for idx, addr := range r.cfg.Peers {
			if idx != r.cfg.Index {
				r.sendTo(idx, addr, raw)
			}
		}
	}
}

// sendTo delivers raw to a peer over a cached connection, re-dialing once.
func (r *Replica) sendTo(idx int, addr string, raw []byte) {
	conn := r.peerConn(idx, addr)
	if conn == nil {
		return
	}
	if err := conn.Send(raw); err != nil {
		r.dropPeerConn(idx, conn)
		if conn = r.peerConn(idx, addr); conn != nil {
			_ = conn.Send(raw)
		}
	}
}

func (r *Replica) peerConn(idx int, addr string) *netsim.Conn {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return nil
	}
	if c, ok := r.peerConns[idx]; ok && !c.Closed() {
		r.mu.Unlock()
		return c
	}
	r.mu.Unlock()

	c, err := r.cfg.Net.Dial(r.cfg.Addr, addr)
	if err != nil {
		return nil
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		c.Close()
		return nil
	}
	if existing, ok := r.peerConns[idx]; ok && !existing.Closed() {
		r.mu.Unlock()
		c.Close()
		return existing
	}
	r.peerConns[idx] = c
	r.mu.Unlock()
	return c
}

func (r *Replica) dropPeerConn(idx int, c *netsim.Conn) {
	c.Close()
	r.mu.Lock()
	if r.peerConns[idx] == c {
		delete(r.peerConns, idx)
	}
	r.mu.Unlock()
}

// --- Client -----------------------------------------------------------

// Client submits requests to every replica and votes on the responses, as
// S0 clients do.
type Client struct {
	net     *netsim.Network
	from    string
	addrs   map[int]string
	pubKeys map[int][]byte
	f       int
	timeout time.Duration
}

// NewClient builds a client. addrs and pubKeys map replica index to address
// and verification key; f is the fault tolerance degree: f+1 matching,
// correctly signed responses are required for acceptance.
func NewClient(net *netsim.Network, from string, addrs map[int]string, pubKeys map[int][]byte, f int, timeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("smr: client needs replica addresses")
	}
	if f < 0 || len(addrs) < f+1 {
		return nil, fmt.Errorf("smr: need at least f+1=%d replicas, have %d", f+1, len(addrs))
	}
	return &Client{net: net, from: from, addrs: addrs, pubKeys: pubKeys, f: f, timeout: timeout}, nil
}

// Invoke sends the request to all replicas and returns the body agreed on
// by at least f+1 of them, or ErrNoQuorum.
func (c *Client) Invoke(requestID string, body []byte) ([]byte, error) {
	type result struct {
		resp sig.ServerResponse
		err  error
	}
	results := make(chan result, len(c.addrs))
	var wg sync.WaitGroup
	for idx, addr := range c.addrs {
		wg.Add(1)
		go func(idx int, addr string) {
			defer wg.Done()
			resp, err := request(c.net, fmt.Sprintf("%s-to-%d", c.from, idx), addr, requestID, body, c.timeout)
			if err == nil {
				if pk, ok := c.pubKeys[idx]; ok {
					if verr := sig.VerifyServerResponse(pk, resp); verr != nil {
						err = verr
					} else if resp.ServerIndex != idx {
						err = fmt.Errorf("smr: replica %d signed as %d", idx, resp.ServerIndex)
					}
				}
			}
			results <- result{resp, err}
		}(idx, addr)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var responses []sig.ServerResponse
	for res := range results {
		if res.err != nil {
			continue
		}
		responses = append(responses, res.resp)
		if body, err := Vote(responses, c.f); err == nil {
			return body, nil
		}
	}
	if body, err := Vote(responses, c.f); err == nil {
		return body, nil
	}
	return nil, fmt.Errorf("%w (got %d verified responses)", ErrNoQuorum, len(responses))
}

// Vote returns the response body shared by at least f+1 responses from
// distinct replicas, or ErrNoQuorum.
func Vote(responses []sig.ServerResponse, f int) ([]byte, error) {
	counts := make(map[string]map[int]bool)
	for _, r := range responses {
		key := string(r.Body)
		if counts[key] == nil {
			counts[key] = make(map[int]bool)
		}
		counts[key][r.ServerIndex] = true
	}
	// Deterministic iteration for reproducible error behaviour.
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(counts[k]) >= f+1 {
			return []byte(k), nil
		}
	}
	return nil, ErrNoQuorum
}

// request mirrors pb.Request but speaks the smr wire format.
func request(net *netsim.Network, from, addr, requestID string, body []byte, timeout time.Duration) (sig.ServerResponse, error) {
	conn, err := net.Dial(from, addr)
	if err != nil {
		return sig.ServerResponse{}, err
	}
	defer conn.Close()
	if err := conn.Send(encode(wireMsg{Type: msgRequest, RequestID: requestID, Body: body})); err != nil {
		return sig.ServerResponse{}, err
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return sig.ServerResponse{}, netsim.ErrTimeout
		}
		raw, err := conn.RecvTimeout(remaining)
		if err != nil {
			return sig.ServerResponse{}, err
		}
		var m wireMsg
		uerr := json.Unmarshal(raw, &m)
		netsim.Release(raw) // decoded: json copied every field out of raw
		if uerr != nil {
			continue
		}
		if m.Type == msgResponse && m.RequestID == requestID && m.Response != nil {
			return *m.Response, nil
		}
	}
}
