// Package smr implements state machine replication (paper Def. 1): n
// replicas hosting a deterministic state machine behind a leader-sequenced
// total order, with client-side response voting.
//
// This is the S0 system class: clients send each request to every replica;
// the replicas run an order protocol (here: the lowest-indexed live replica
// acts as sequencer and broadcasts the execution order); every correct
// replica executes the same requests in the same order and produces an
// identical signed response; the client accepts a response once f+1
// replicas agree on its body.
//
// The engine enforces the paper's central SMR precondition: the hosted
// service must be a deterministic state machine. New rejects services whose
// Deterministic method reports false (the check can be disabled to
// demonstrate, in tests and examples, how nondeterminism breaks voting).
//
// Read scalability comes from heartbeat-bounded read leases (Config.Leases):
// the leader grants itself — and, via its heartbeats, its followers —
// time-bounded leases, and a replica holding a valid lease answers a
// read-tagged request from local state without burning a sequence slot or an
// order broadcast. A lease is only valid while the holder has executed
// through the grant frontier the heartbeat carried, so a lagging or
// partitioned follower falls back to ordering the read — correctness never
// depends on timing, only availability of the local fast path does. The
// leader's self-lease is quorum-backed: followers acknowledge each granting
// heartbeat on the duplex peer link, and the leader serves lease reads only
// while a majority acked within the lease window, so a deposed or islanded
// leader's lease dies before a failover can elect a successor (leases expire
// within LeaseDuration ≤ HeartbeatTimeout, the failover silence). Lease
// reads return a single signed response rather than an f+1 vote — the
// documented trade: locality against the ordered path's voting protection.
//
// Transport, lifecycle and peer fan-out come from the shared node runtime
// in replica/core. On top of it the engine adds leader-driven catch-up: a
// replica that detects a sequence gap (it missed orders while crashed,
// partitioned, or rebuilt from scratch) asks the current leader for a
// snapshot and/or the missing log suffix, replays it, and only then rejoins
// the order protocol — so SMR nodes ride crash/restart fault schedules the
// way PB nodes do. The exchange runs over the full-duplex peer link: the
// request is staged on the leader's outbox connection, the leader answers
// on that same connection, and the requester's peer reader loop delivers
// the response — no separately dialed transfer connection.
package smr

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fortress/internal/metrics"
	"fortress/internal/netsim"
	"fortress/internal/replica/core"
	"fortress/internal/replica/store"
	"fortress/internal/service"
	"fortress/internal/sig"
)

var (
	// ErrNotDeterministic is returned by New for non-DSM services.
	ErrNotDeterministic = errors.New("smr: service is not a deterministic state machine")
	// ErrNoQuorum is returned by Vote when no response body reaches f+1
	// matching copies.
	ErrNoQuorum = errors.New("smr: no f+1 matching responses")
)

const (
	msgRequest     = "request"      // client → replica
	msgForward     = "forward"      // follower → leader: please order this
	msgOrder       = "order"        // leader → all: execute at sequence
	msgResponse    = "response"     // replica → client
	msgHeartbeat   = "heartbeat"    // leader → followers (carries the executed frontier)
	msgLeaseAck    = "lease-ack"    // follower → leader: granting heartbeat acknowledged (duplex reply)
	msgCatchupReq  = "catchup-req"  // lagging replica → leader: transfer from Seq
	msgCatchupResp = "catchup-resp" // leader → replica: snapshot and/or log suffix
)

// wireLogEntry is one sequenced request in a catch-up transfer.
type wireLogEntry struct {
	Seq       uint64 `json:"seq"`
	RequestID string `json:"requestId"`
	Body      []byte `json:"body,omitempty"`
}

type wireMsg struct {
	Type      string              `json:"type"`
	RequestID string              `json:"requestId,omitempty"`
	Body      []byte              `json:"body,omitempty"`
	Seq       uint64              `json:"seq,omitempty"`
	From      int                 `json:"from,omitempty"`
	Response  *sig.ServerResponse `json:"response,omitempty"`
	// Read tags a request the client believes is a pure read, making it
	// eligible for the lease-read fast path. The tag alone never skips
	// ordering: the replica also asks the hosted service to classify the
	// body (service.IsReadOnly), so a mis-tagged write still sequences.
	Read bool `json:"read,omitempty"`
	// Leased marks a response served locally under a valid read lease.
	// Clients use it to decide what a single signature is worth: a leased
	// answer is backed by the lease machinery (quorum-acked self-lease or a
	// grant-frontier check), while an unleased answer went through ordering
	// on one replica's say-so and should be cross-checked by the f+1 vote.
	Leased bool `json:"leased,omitempty"`
	// Snapshot, Entries and Responses carry a catch-up transfer: Snapshot
	// (when present) positions the receiver at sequence Seq in one jump,
	// Entries is the ordered log suffix the receiver replays through its
	// service, and Responses is the sender's response cache — shipped with
	// a snapshot so the jumped-over requests stay deduplicated (a replay
	// rebuilds the cache itself; a jump cannot).
	Snapshot  []byte            `json:"snapshot,omitempty"`
	Entries   []wireLogEntry    `json:"entries,omitempty"`
	Responses map[string][]byte `json:"responses,omitempty"`
}

func encode(m wireMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("smr: marshal wire message: %v", err))
	}
	return b
}

// defaultCatchupHistory is how many executed entries a replica retains for
// log-suffix catch-up when Config.CatchupHistory is zero.
const defaultCatchupHistory = 512

// defaultSnapshotEvery is the persisted-snapshot cadence when
// Config.SnapshotEvery is zero.
const defaultSnapshotEvery = 32

// defaultRespCacheLimit is the response-cache retention bound when
// Config.RespCacheLimit is zero — the same retry horizon pb uses.
const defaultRespCacheLimit = 4096

// storeSnapshot is the composite persisted in the store's snapshot slot: the
// service state at the covered frontier plus the response cache, so a
// recovered replica answers retries of jumped-over requests from cache
// instead of re-ordering them.
type storeSnapshot struct {
	Snapshot  []byte            `json:"snapshot"`
	Responses map[string][]byte `json:"responses,omitempty"`
}

// Config describes one SMR replica.
type Config struct {
	// Index is this replica's unique index.
	Index int
	// Addr is the netsim address the replica listens on.
	Addr string
	// Peers maps every replica index (including this one) to its address.
	Peers map[int]string
	// Service is the hosted deterministic state machine.
	Service service.Service
	// Keys signs responses.
	Keys *sig.KeyPair
	// Net is the simulated network.
	Net *netsim.Network
	// HeartbeatInterval is how often the leader pings followers.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a follower waits before electing the
	// next leader.
	HeartbeatTimeout time.Duration
	// CatchupHistory bounds the executed-entry window retained for
	// log-suffix catch-up transfers: a lagging replica whose gap fits the
	// window gets the missing orders replayed; one that has fallen further
	// behind gets a state snapshot instead. Zero selects the default
	// (512); negative retains nothing, forcing every catch-up onto the
	// snapshot path.
	CatchupHistory int
	// InitialSnapshot, InitialExecuted and InitialResponses seed a replica
	// built to replace one that is gone for good, from a live peer's
	// StateTransfer: the service restores InitialSnapshot, the sequence
	// counters start just past InitialExecuted, and InitialResponses
	// primes the response cache — state and sequence stay in lockstep,
	// which restoring into the Service before New never could. A node
	// seeded this way rejoins mid-history instead of claiming the group
	// starts over at sequence one.
	InitialSnapshot  []byte
	InitialExecuted  uint64
	InitialResponses map[string][]byte
	// JoinExisting makes the replica start with an unknown leader and adopt
	// whoever heartbeats first, exactly as Restart does — the right posture
	// for a replacement joining a group that has failed over away from this
	// index: a lowest-index replacement that assumed it leads (the default)
	// would otherwise sequence concurrently with the live leader for a
	// window and fork the replica states. Leave it false when the group
	// still follows this index (or is collectively fresh), where assuming
	// leadership is both safe and vacuum-free.
	JoinExisting bool
	// AllowNondeterministic disables the DSM check; used only to
	// demonstrate why the check exists.
	AllowNondeterministic bool
	// Store persists the order log and executed frontier: every executed
	// entry is journaled and every SnapshotEvery-th execution rewrites the
	// snapshot slot with the (state, response cache) pair, so a replica
	// rebuilt over a non-empty store recovers from disk before leader-driven
	// catch-up fills any remaining gap. Nil selects the in-memory no-op
	// store (nothing durable — today's semantics).
	Store store.Store
	// SnapshotEvery is the persisted-snapshot cadence: the journal is
	// folded into the snapshot slot every k executions, bounding replay
	// length at recovery. Zero selects the default (32). Meaningless
	// without a durable Store.
	SnapshotEvery int
	// RespCacheLimit bounds the response cache to the most recent k
	// executed requests, evicted in insertion order. The cache is the
	// retry horizon: a request retried within the horizon is answered
	// from cache, one retried later re-enters the order protocol. The
	// bound also caps what catch-up transfers and persisted snapshots
	// ship — resync cost stops growing with total request history. Zero
	// selects the default (4096); negative retains everything.
	RespCacheLimit int
	// Leases enables heartbeat-bounded read leases: requests tagged as
	// reads (and classified read-only by the Service) are answered from
	// local state by any replica holding a valid lease, without entering
	// the order protocol. See the package comment for the safety
	// argument; leases are revoked on leader change and expire within
	// LeaseDuration when heartbeats stop.
	Leases bool
	// LeaseDuration bounds how long a granting heartbeat keeps a lease
	// valid. It must not exceed HeartbeatTimeout — a deposed leader's
	// lease has to die before followers can elect a successor. Zero
	// selects HeartbeatTimeout/2, which leaves half the failover silence
	// as safety margin against in-flight grant and ack delays.
	LeaseDuration time.Duration
	// Metrics, when non-nil, receives the replica's instruments (lease
	// reads vs ordered fallbacks, catch-up replay vs snapshot installs)
	// and its trace-event ring, labelled by Addr. Observational only — no
	// protocol decision reads them back.
	Metrics *metrics.Registry
}

func (c Config) validate() error {
	switch {
	case c.Service == nil:
		return errors.New("smr: config needs a Service")
	case c.Keys == nil:
		return errors.New("smr: config needs Keys")
	case c.Net == nil:
		return errors.New("smr: config needs Net")
	case c.Addr == "":
		return errors.New("smr: config needs Addr")
	case len(c.Peers) == 0:
		return errors.New("smr: config needs Peers")
	case c.HeartbeatInterval <= 0 || c.HeartbeatTimeout <= 0:
		return errors.New("smr: config needs positive heartbeat timings")
	case c.SnapshotEvery < 0:
		return errors.New("smr: config needs a non-negative SnapshotEvery")
	case c.LeaseDuration < 0:
		return errors.New("smr: config needs a non-negative LeaseDuration")
	case c.Leases && c.LeaseDuration > c.HeartbeatTimeout:
		return errors.New("smr: LeaseDuration must not exceed HeartbeatTimeout")
	}
	if _, ok := c.Peers[c.Index]; !ok {
		return fmt.Errorf("smr: Peers must contain own index %d", c.Index)
	}
	if !c.AllowNondeterministic && !c.Service.Deterministic() {
		return fmt.Errorf("%w: %s", ErrNotDeterministic, c.Service.Name())
	}
	return nil
}

// orderEntry is a sequenced request waiting for (or past) execution.
type orderEntry struct {
	requestID string
	body      []byte
}

// Replica is one SMR replica: the order-protocol handler mounted on a
// core.Node runtime.
type Replica struct {
	cfg  Config
	node *core.Node

	// store is the persistence layer; durable caches store.Durable() so the
	// zero-persistence configuration skips record encoding entirely.
	store     store.Store
	durable   bool
	snapEvery uint64

	// execMu serializes request execution and every reader that needs a
	// state view consistent with the executed frontier (catch-up transfer
	// construction and installation). Always acquired before mu.
	execMu sync.Mutex

	mu         sync.Mutex
	leaderIdx  int
	nextAssign uint64 // leader: next sequence number to hand out
	nextExec   uint64 // everyone: next sequence number to execute
	log        map[uint64]orderEntry
	ordered    map[string]bool // request IDs already sequenced (leader)
	respCache  map[string][]byte
	// respOrder tracks respCache insertion order for retry-horizon
	// eviction (respLimit entries retained; 0 = unbounded); respSeen
	// counts every insertion ever, so an evicted-empty cache is still
	// distinguishable from a virgin one.
	respOrder     []string
	respLimit     int
	respSeen      uint64
	pending       map[string][]*netsim.Conn
	suspected     map[int]bool
	lastHeartbeat time.Time
	// Read-lease state. A follower's lease is the last granting heartbeat:
	// grantor, the leader's executed frontier at grant time, and the grant
	// receipt instant. The leader's self-lease is quorum-backed instead:
	// leaseAcks records when each follower last acknowledged a granting
	// heartbeat on the duplex link.
	leaseFrom     int
	leaseFrontier uint64
	leaseAt       time.Time
	leaseAcks     map[int]time.Time
	// hist is the executed-entry window for log-suffix catch-up: the entry
	// at sequence s executed s-th, and the invariant hist.End() == nextExec
	// always holds.
	hist       core.Window[orderEntry]
	catchupFor uint64    // nextExec value a catch-up request is in flight for; 0 = none
	catchupAt  time.Time // when that request left, for timeout-driven retry
	// persistedSnap is the frontier the store's snapshot slot covers; the
	// journal is folded into it every snapEvery executions.
	persistedSnap uint64

	// Instruments (nil no-ops when Config.Metrics is unset). Observational
	// only: nothing below feeds back into a protocol decision.
	mLeaseReads    *metrics.Counter // reads served from a valid lease
	mOrderedReads  *metrics.Counter // read-tagged requests that fell back to ordering
	mLeaseGrants   *metrics.Counter // granting heartbeats accepted
	mLeaseExpiries *metrics.Counter // reads refused on a grant that timed out
	mCatchupStarts *metrics.Counter // catch-up exchanges initiated
	mCatchupReplay *metrics.Counter // transfers answered by log-suffix replay
	mCatchupSnap   *metrics.Counter // transfers answered by snapshot install
	gExecuted      *metrics.Gauge   // executed frontier
	trace          *metrics.TraceRing
}

// New starts a replica. The initial leader is the lowest peer index.
func New(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	histKeep := cfg.CatchupHistory
	switch {
	case histKeep == 0:
		histKeep = defaultCatchupHistory
	case histKeep < 0:
		histKeep = 0
	}
	if cfg.InitialSnapshot != nil {
		if err := cfg.Service.Restore(cfg.InitialSnapshot); err != nil {
			return nil, fmt.Errorf("smr: restore initial snapshot: %w", err)
		}
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMem()
	}
	snapEvery := cfg.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = defaultSnapshotEvery
	}
	respLimit := cfg.RespCacheLimit
	switch {
	case respLimit == 0:
		respLimit = defaultRespCacheLimit
	case respLimit < 0:
		respLimit = 0 // unbounded
	}
	next := cfg.InitialExecuted + 1
	r := &Replica{
		cfg:        cfg,
		store:      st,
		durable:    st.Durable(),
		snapEvery:  uint64(snapEvery),
		leaderIdx:  lowestIndex(cfg.Peers, nil),
		nextExec:   next,
		nextAssign: next,
		hist:       core.NewWindow[orderEntry](next, histKeep),
		log:        make(map[uint64]orderEntry),
		ordered:    make(map[string]bool, len(cfg.InitialResponses)),
		respCache:  make(map[string][]byte, len(cfg.InitialResponses)),
		respLimit:  respLimit,
		pending:    make(map[string][]*netsim.Conn),
		suspected:  make(map[int]bool),
		leaseFrom:  leaderUnknown,
		leaseAcks:  make(map[int]time.Time),
	}
	if reg := cfg.Metrics; reg != nil {
		node := fmt.Sprintf("{node=%q}", cfg.Addr)
		r.mLeaseReads = reg.Counter("smr_lease_reads_total"+node, metrics.Timing)
		r.mOrderedReads = reg.Counter("smr_ordered_read_fallbacks_total"+node, metrics.Timing)
		r.mLeaseGrants = reg.Counter("smr_lease_grants_total"+node, metrics.Timing)
		r.mLeaseExpiries = reg.Counter("smr_lease_expiries_total"+node, metrics.Timing)
		r.mCatchupStarts = reg.Counter("smr_catchup_starts_total"+node, metrics.Timing)
		r.mCatchupReplay = reg.Counter("smr_catchup_replay_total"+node, metrics.Timing)
		r.mCatchupSnap = reg.Counter("smr_catchup_snapshot_total"+node, metrics.Timing)
		r.gExecuted = reg.Gauge("smr_executed_frontier" + node)
		r.trace = reg.Ring(cfg.Addr, 0)
	}
	for _, id := range sortedIDs(cfg.InitialResponses) {
		r.cacheRespLocked(id, cfg.InitialResponses[id])
		r.ordered[id] = true
	}
	if cfg.JoinExisting && len(cfg.Peers) > 1 {
		r.leaderIdx = leaderUnknown
	}
	r.lastHeartbeat = time.Now()
	if err := r.RecoverFromStore(); err != nil {
		return nil, fmt.Errorf("smr: %w", err)
	}
	node, err := core.NewNode(core.Config{
		Index:        cfg.Index,
		Addr:         cfg.Addr,
		Peers:        cfg.Peers,
		Net:          cfg.Net,
		TickInterval: cfg.HeartbeatInterval,
		Metrics:      cfg.Metrics,
	}, r)
	if err != nil {
		return nil, fmt.Errorf("smr: %w", err)
	}
	r.node = node
	if err := node.Start(); err != nil {
		return nil, fmt.Errorf("smr: %w", err)
	}
	return r, nil
}

// sortedIDs returns the map's keys in sorted order, so bulk insertions into
// the bounded response cache assign deterministic eviction positions no
// matter the map iteration order.
func sortedIDs(m map[string][]byte) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// cacheRespLocked records a response and evicts past the retry horizon in
// insertion order, dropping the evicted IDs from the leader's dedup map
// too — a request retried beyond the horizon re-enters the order protocol,
// the same contract pb's bounded cache keeps. Only executed requests reach
// the cache, so in-flight sequenced IDs are never evicted from ordered.
// Caller holds r.mu.
func (r *Replica) cacheRespLocked(id string, body []byte) {
	if _, ok := r.respCache[id]; !ok {
		r.respOrder = append(r.respOrder, id)
		r.respSeen++
	}
	r.respCache[id] = body
	if r.respLimit <= 0 {
		return
	}
	for len(r.respOrder) > r.respLimit {
		evicted := r.respOrder[0]
		r.respOrder = r.respOrder[1:]
		delete(r.respCache, evicted)
		delete(r.ordered, evicted)
	}
}

func lowestIndex(peers map[int]string, suspected map[int]bool) int {
	best := -1
	for i := range peers {
		if suspected[i] {
			continue
		}
		if best == -1 || i < best {
			best = i
		}
	}
	return best
}

// Index returns the replica's index.
func (r *Replica) Index() int { return r.cfg.Index }

// Addr returns the replica's address.
func (r *Replica) Addr() string { return r.cfg.Addr }

// PublicKey exposes the verification key.
func (r *Replica) PublicKey() []byte { return r.cfg.Keys.Public() }

// LeaderIndex returns who this replica currently follows.
func (r *Replica) LeaderIndex() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderIdx
}

// IsLeader reports whether this replica is currently the sequencer.
func (r *Replica) IsLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderIdx == r.cfg.Index
}

// Executed returns how many requests this replica has executed.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextExec - 1
}

// StateTransfer captures a consistent (snapshot, executed, responses)
// triple for seeding a replacement replica (Config.InitialSnapshot et al.):
// taking execMu first freezes the executed frontier, so the snapshot, the
// sequence count and the response cache all describe the same instant. Any
// replica can donate — a donor behind the leader just leaves the
// replacement a gap the ordinary catch-up transfer closes.
func (r *Replica) StateTransfer() (snapshot []byte, executed uint64, responses map[string][]byte, err error) {
	r.execMu.Lock()
	defer r.execMu.Unlock()
	r.mu.Lock()
	executed = r.nextExec - 1
	responses = make(map[string][]byte, len(r.respCache))
	for id, body := range r.respCache {
		responses[id] = body
	}
	r.mu.Unlock()
	snapshot, err = r.cfg.Service.Snapshot()
	if err != nil {
		return nil, 0, nil, err
	}
	return snapshot, executed, responses, nil
}

// Stop shuts the replica down and waits for its goroutines to exit.
func (r *Replica) Stop() { r.node.Stop() }

// Crash simulates a node crash observable by all peers: the replica is made
// inert and its address torn down synchronously; goroutine shutdown
// completes in the background, so Crash may be called from within request
// handling.
func (r *Replica) Crash() { r.node.Crash() }

// leaderUnknown is the post-restart leader sentinel: larger than any real
// replica index, so the first heartbeat heard (From <= leaderIdx) is adopted
// whoever sends it, and the restarted node never believes it leads until the
// group is provably silent for a full failover timeout.
const leaderUnknown = 1 << 30

// Restart re-opens a stopped or crashed replica in place, mirroring
// pb.Replica.Restart: the listener re-registers at the same address, the
// serve loops come back, and the node rejoins with its executed log and
// response cache retained. A multi-replica node rejoins with an unknown
// leader and adopts whichever leader heartbeats first — a restarted
// lowest-index node must not reclaim the sequencer role with a stale
// sequence counter while a failed-over leader is live. The first heartbeat
// also carries the leader's executed frontier, so a rejoining replica that
// missed orders while down detects the gap immediately and catches up from
// the leader before serving. Restarting a running replica is an error.
func (r *Replica) Restart() error { return r.node.Restart() }

// Rejoin implements core.Handler: protocol-state reset on restart.
func (r *Replica) Rejoin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leaderIdx = leaderUnknown
	if len(r.cfg.Peers) == 1 {
		r.leaderIdx = r.cfg.Index
	}
	r.suspected = make(map[int]bool)
	// Parked clients were disconnected by the shutdown; they resubmit.
	r.pending = make(map[string][]*netsim.Conn)
	r.catchupFor = 0
	r.lastHeartbeat = time.Now()
	// Any lease predates the outage: revoked until the next grant.
	r.leaseFrom = leaderUnknown
	r.leaseAcks = make(map[int]time.Time)
}

// RecoverFromStore implements core.StoreRecoverer: a virgin replica built
// over a non-empty store reloads its state from disk — restore the persisted
// snapshot, then replay the journaled order suffix through Apply (the DSM
// precondition makes the replay reproduce state and responses exactly) —
// before leader-driven catch-up closes whatever gap the disk does not
// cover. New calls it too, so a fortress-level rebuild over a surviving
// store recovers without a donor: that is what makes a whole-cluster
// blackout survivable.
//
// A replica that has executed or been seeded with anything already (an
// in-place restart, or a donor-seeded replacement) is left untouched. In a
// multi-replica group the recovered node comes back with an unknown leader,
// exactly as Restart does: the group may have failed over while it was
// down, and a recovered lowest-index node must not reclaim the sequencer
// role with a stale counter.
func (r *Replica) RecoverFromStore() error {
	if !r.durable {
		return nil
	}
	rec, err := r.store.Load()
	if err != nil || rec.Empty() {
		return err
	}
	r.execMu.Lock()
	defer r.execMu.Unlock()
	r.mu.Lock()
	// respSeen, not len(respCache): a long-lived node whose bounded cache
	// happens to be empty (or fully evicted) has still executed or been
	// seeded — it must not be mistaken for a fresh node and anchored on
	// the disk snapshot over its live protocol state.
	virgin := r.nextExec == 1 && r.nextAssign == 1 && r.respSeen == 0
	r.mu.Unlock()
	if !virgin {
		return nil
	}
	var (
		executed uint64
		resps    = make(map[string][]byte)
		replayed []orderEntry
	)
	if rec.HasSnapshot {
		var comp storeSnapshot
		if err := json.Unmarshal(rec.Snapshot, &comp); err != nil {
			return fmt.Errorf("smr: recover snapshot: %w", err)
		}
		if err := r.cfg.Service.Restore(comp.Snapshot); err != nil {
			return fmt.Errorf("smr: recover restore: %w", err)
		}
		executed = rec.SnapshotSeq
		for id, body := range comp.Responses {
			resps[id] = body
		}
	}
	for i, raw := range rec.Records {
		seq := rec.LogStart + uint64(i)
		if seq <= executed {
			continue // covered by the snapshot
		}
		if seq != executed+1 {
			break // journal does not chain onto the snapshot: keep the prefix
		}
		var e wireLogEntry
		if json.Unmarshal(raw, &e) != nil {
			break
		}
		respBody, applyErr := r.cfg.Service.Apply(e.Body)
		if applyErr != nil {
			respBody = []byte("error: " + applyErr.Error())
		}
		resps[e.RequestID] = respBody
		replayed = append(replayed, orderEntry{requestID: e.RequestID, body: e.Body})
		executed = seq
	}
	if executed == 0 {
		return nil
	}
	r.mu.Lock()
	r.nextExec = executed + 1
	r.nextAssign = executed + 1
	// The catch-up window holds the replayed suffix, so this node can serve
	// log-suffix transfers to peers that recovered slightly behind it —
	// after a blackout everyone is close together, and the snapshot path
	// would be overkill.
	r.hist.Reset(executed + 1 - uint64(len(replayed)))
	for _, e := range replayed {
		r.hist.Append(e)
	}
	for _, id := range sortedIDs(resps) {
		r.cacheRespLocked(id, resps[id])
		r.ordered[id] = true
	}
	if rec.HasSnapshot {
		r.persistedSnap = rec.SnapshotSeq
	}
	if len(r.cfg.Peers) > 1 {
		r.leaderIdx = leaderUnknown
	}
	r.lastHeartbeat = time.Now()
	r.mu.Unlock()
	return nil
}

// HandleMessage implements core.Handler: one decoded wire message.
func (r *Replica) HandleMessage(conn *netsim.Conn, raw []byte, replies [][]byte) [][]byte {
	var m wireMsg
	if json.Unmarshal(raw, &m) != nil {
		return replies
	}
	switch m.Type {
	case msgRequest:
		r.handleRequest(conn, m)
	case msgForward:
		r.handleForward(m)
	case msgOrder:
		r.handleOrder(m)
	case msgHeartbeat:
		if ack := r.handleHeartbeat(m); ack != nil {
			// Lease acknowledgment rides back on the same connection the
			// granting heartbeat arrived on — the leader's duplex peer
			// link, whose reader loop delivers it to HandlePeerReply.
			replies = append(replies, ack)
		}
	case msgCatchupReq:
		if resp := r.buildCatchup(m.Seq); resp != nil {
			replies = append(replies, resp)
		}
	case msgCatchupResp:
		// Transfers normally come back over the duplex peer link
		// (HandlePeerReply); one arriving on a served connection is applied
		// all the same.
		r.applyCatchup(m)
		r.clearCatchup()
	}
	return replies
}

// HandlePeerReply implements core.Handler: one message read back off the
// cached peer connection to peer — the reply direction of the full-duplex
// link. For smr that is the leader answering a catch-up request staged on
// its outbox connection.
func (r *Replica) HandlePeerReply(peer int, raw []byte) {
	var m wireMsg
	if json.Unmarshal(raw, &m) != nil {
		return
	}
	switch m.Type {
	case msgCatchupResp:
		r.applyCatchup(m)
		r.clearCatchup()
	case msgOrder:
		r.handleOrder(m)
	case msgHeartbeat:
		// No reply path here; the lease ack (if one was due) is dropped
		// and the next regular heartbeat re-grants.
		r.handleHeartbeat(m)
	case msgLeaseAck:
		r.mu.Lock()
		if r.cfg.Leases && r.leaderIdx == r.cfg.Index {
			r.leaseAcks[peer] = time.Now()
		}
		r.mu.Unlock()
	}
}

// leaseDuration is the grant validity window: Config.LeaseDuration, or half
// the failover silence by default.
func (r *Replica) leaseDuration() time.Duration {
	if r.cfg.LeaseDuration > 0 {
		return r.cfg.LeaseDuration
	}
	return r.cfg.HeartbeatTimeout / 2
}

// leaseValidLocked reports whether this replica may serve a read locally at
// instant now. The leader's self-lease requires a majority of the group
// (itself included) to have acknowledged a granting heartbeat within the
// lease window — an islanded or deposed leader loses its followers' acks
// and the lease with them. A follower's lease requires an unexpired grant
// from the leader it still follows AND an executed frontier at or past the
// grant frontier; the frontier condition is logical, not timed, so a
// lagging follower is excluded no matter how fresh its grant is. Caller
// holds r.mu.
func (r *Replica) leaseValidLocked(now time.Time) bool {
	if !r.cfg.Leases {
		return false
	}
	d := r.leaseDuration()
	if r.leaderIdx == r.cfg.Index {
		acked := 1 // self
		for i, t := range r.leaseAcks {
			if i != r.cfg.Index && now.Sub(t) <= d {
				acked++
			}
		}
		return acked > len(r.cfg.Peers)/2
	}
	return r.leaseFrom == r.leaderIdx &&
		now.Sub(r.leaseAt) <= d &&
		r.nextExec >= r.leaseFrontier
}

// LeaseValid reports whether this replica currently holds a valid read
// lease (for tests and status surfaces).
func (r *Replica) LeaseValid() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaseValidLocked(time.Now())
}

// tryServeRead is the lease-read fast path: answer a read-tagged request
// from local state, outside the order protocol. It serves only when the
// hosted service classifies the body as a pure read AND this replica holds
// a valid lease; any other case returns false and the caller falls back to
// ordering the read. execMu serializes the read with execution, so the
// response reflects a state consistent with the frontier the lease check
// saw — a read never observes a half-applied write.
func (r *Replica) tryServeRead(conn *netsim.Conn, m wireMsg) bool {
	if !r.cfg.Leases || !service.IsReadOnly(r.cfg.Service, m.Body) {
		return false
	}
	r.execMu.Lock()
	r.mu.Lock()
	now := time.Now()
	ok := r.leaseValidLocked(now)
	if !ok && r.cfg.Leases && r.leaderIdx != r.cfg.Index &&
		r.leaseFrom == r.leaderIdx && now.Sub(r.leaseAt) > r.leaseDuration() {
		// A grant from the leader we still follow, dead only by the clock:
		// the lease expired under us (heartbeats stopped or slowed).
		r.mLeaseExpiries.Inc()
		r.trace.Record(metrics.KindLeaseExpiry, r.cfg.Addr, r.leaseFrom, r.leaseFrontier)
	}
	r.mu.Unlock()
	if !ok {
		r.execMu.Unlock()
		return false
	}
	body, err := r.cfg.Service.Apply(m.Body)
	r.execMu.Unlock()
	if err != nil {
		body = []byte("error: " + err.Error())
	}
	r.mLeaseReads.Inc()
	r.replyTagged(conn, m.RequestID, body, true)
	return true
}

// handleRequest registers the client connection and routes the request into
// the order protocol — unless it is a lease-servable read, which is
// answered locally without a sequence slot.
func (r *Replica) handleRequest(conn *netsim.Conn, m wireMsg) {
	if m.Read {
		if r.tryServeRead(conn, m) {
			return
		}
		r.mOrderedReads.Inc()
	}
	r.mu.Lock()
	if body, ok := r.respCache[m.RequestID]; ok {
		r.mu.Unlock()
		r.reply(conn, m.RequestID, body)
		return
	}
	r.pending[m.RequestID] = append(r.pending[m.RequestID], conn)
	isLeader := r.leaderIdx == r.cfg.Index
	leader := r.leaderIdx
	r.mu.Unlock()

	if isLeader {
		r.sequence(m.RequestID, m.Body)
		return
	}
	// Follower: forward to the leader for ordering. The client also sent
	// the request to the leader directly, so this is belt-and-braces that
	// makes progress even if the client reached only this replica.
	r.node.SendTo(leader, encode(wireMsg{
		Type: msgForward, RequestID: m.RequestID, Body: m.Body, From: r.cfg.Index,
	}))
}

// handleForward is the leader receiving a follower's order request.
func (r *Replica) handleForward(m wireMsg) {
	r.mu.Lock()
	isLeader := r.leaderIdx == r.cfg.Index
	r.mu.Unlock()
	if isLeader {
		r.sequence(m.RequestID, m.Body)
	}
}

// sequence assigns the next sequence number to a request (once) and
// broadcasts the order. The broadcast is flushed to the peers before the
// leader executes locally: if executing the request crashes the leader (an
// exploit probe), the followers must still receive — and share — the order.
func (r *Replica) sequence(requestID string, body []byte) {
	r.mu.Lock()
	if r.ordered[requestID] {
		r.mu.Unlock()
		return
	}
	if _, executed := r.respCache[requestID]; executed {
		// Already executed under a previous sequencer's number (this node
		// was a follower then, so its ordered map never saw it). A retry
		// forwarded by a lagging replica must not re-enter the order under
		// a fresh number — the forwarder's parked client is answered when
		// its own catch-up replays the original execution.
		r.mu.Unlock()
		return
	}
	r.ordered[requestID] = true
	seq := r.nextAssign
	r.nextAssign++
	r.mu.Unlock()

	order := wireMsg{Type: msgOrder, RequestID: requestID, Body: body, Seq: seq, From: r.cfg.Index}
	r.node.Broadcast(encode(order))
	r.node.Flush()
	r.handleOrder(order) // execute locally
}

// handleOrder buffers the sequenced request, executes everything that is
// now contiguous, and triggers a catch-up transfer if a sequence gap
// remains.
func (r *Replica) handleOrder(m wireMsg) {
	r.mu.Lock()
	if m.Seq < r.nextExec {
		r.mu.Unlock()
		return // already executed
	}
	r.log[m.Seq] = orderEntry{requestID: m.RequestID, body: m.Body}
	// Track leader liveness through orders too.
	if m.From != r.cfg.Index {
		r.lastHeartbeat = time.Now()
	}
	r.mu.Unlock()

	r.executeReady()

	r.mu.Lock()
	_, gap := r.log[r.nextExec]
	gap = !gap && len(r.log) > 0
	r.mu.Unlock()
	if gap {
		// Orders are buffered beyond a hole: the replica missed earlier
		// orders (crash, partition, drop) and cannot execute past it on
		// its own — ask the leader for the missing prefix.
		r.maybeCatchup()
	}
}

// executeReady runs every contiguously buffered order through the service.
// execMu serializes execution: concurrent handleOrder calls (two clients
// sequenced in the same drain, or a catch-up replay racing live orders)
// never interleave their Applies, so the state machine sees the total order
// the sequencer assigned.
func (r *Replica) executeReady() {
	r.execMu.Lock()
	defer r.execMu.Unlock()

	type executed struct {
		requestID string
		respBody  []byte
		conns     []*netsim.Conn
	}
	var ready []executed
	for {
		r.mu.Lock()
		entry, ok := r.log[r.nextExec]
		if !ok {
			r.mu.Unlock()
			break
		}
		seq := r.nextExec
		delete(r.log, r.nextExec)
		r.nextExec++
		r.mu.Unlock()
		// Execute outside mu: Apply may be slow (execMu still held, so the
		// executed frontier stays consistent for catch-up readers).
		respBody, applyErr := r.cfg.Service.Apply(entry.body)
		if applyErr != nil {
			respBody = []byte("error: " + applyErr.Error())
		}
		if r.durable {
			// Journal the sequenced request (not the response): recovery
			// replays it through Apply, which the DSM precondition makes
			// reproduce the response exactly. Store errors are dropped:
			// durability degrades but the replica keeps serving.
			if b, err := json.Marshal(wireLogEntry{Seq: seq, RequestID: entry.requestID, Body: entry.body}); err == nil {
				_ = r.store.Append(seq, b)
			}
		}
		r.mu.Lock()
		r.cacheRespLocked(entry.requestID, respBody)
		r.recordHistLocked(entry)
		conns := r.pending[entry.requestID]
		delete(r.pending, entry.requestID)
		r.mu.Unlock()
		ready = append(ready, executed{entry.requestID, respBody, conns})
	}
	if len(ready) > 0 {
		r.mu.Lock()
		r.gExecuted.Set(int64(r.nextExec - 1))
		r.mu.Unlock()
	}
	if r.durable && len(ready) > 0 {
		r.persistSnapshotIfDue()
	}

	for _, e := range ready {
		for _, c := range e.conns {
			r.reply(c, e.requestID, e.respBody)
		}
	}
}

// persistSnapshotIfDue folds the journal into the store's snapshot slot once
// the executed frontier has moved snapEvery past the covered one, bounding
// replay length at recovery. Caller holds execMu, so the snapshot is
// consistent with the frontier.
func (r *Replica) persistSnapshotIfDue() {
	r.mu.Lock()
	frontier := r.nextExec - 1
	if frontier < r.persistedSnap+r.snapEvery {
		r.mu.Unlock()
		return
	}
	responses := make(map[string][]byte, len(r.respCache))
	for id, body := range r.respCache {
		responses[id] = body
	}
	r.persistedSnap = frontier
	r.mu.Unlock()
	snap, err := r.cfg.Service.Snapshot()
	if err != nil {
		return
	}
	b, err := json.Marshal(storeSnapshot{Snapshot: snap, Responses: responses})
	if err != nil {
		return
	}
	if r.store.WriteSnapshot(frontier, b) == nil {
		_ = r.store.TruncateTo(store.TruncateAll)
	}
}

// recordHistLocked appends an executed entry to the catch-up window (a
// core.Window, shared machinery with pb's delta retransmission window),
// which trims itself to the configured size. Caller holds r.mu.
func (r *Replica) recordHistLocked(entry orderEntry) {
	r.hist.Append(entry)
}

func (r *Replica) reply(conn *netsim.Conn, requestID string, body []byte) {
	r.replyTagged(conn, requestID, body, false)
}

// replyTagged is reply with an explicit leased marker: true only on the
// lease-read fast path, never on ordered execution.
func (r *Replica) replyTagged(conn *netsim.Conn, requestID string, body []byte, leased bool) {
	resp := sig.SignServerResponse(r.cfg.Keys, requestID, body, r.cfg.Index)
	_ = conn.Send(encode(wireMsg{Type: msgResponse, RequestID: requestID, Response: &resp, Leased: leased}))
}

// handleHeartbeat adopts the sender as leader when eligible and, with
// leases enabled, treats the heartbeat as a lease grant: the Seq field is
// the leader's executed frontier, which doubles as the grant frontier the
// lease-validity check holds followers to. It returns the lease
// acknowledgment to send back (nil when none is due) — the leader's
// quorum-backed self-lease is built from these acks.
func (r *Replica) handleHeartbeat(m wireMsg) []byte {
	var ack []byte
	r.mu.Lock()
	adopted := false
	if m.From <= r.leaderIdx {
		r.leaderIdx = m.From
		r.lastHeartbeat = time.Now()
		adopted = true
		if r.cfg.Leases && m.From != r.cfg.Index {
			// A grant from a new leader implicitly revokes the old one:
			// leaseFrom tracks the grantor and the validity check pins it
			// to the leader currently followed.
			r.leaseFrom = m.From
			r.leaseFrontier = m.Seq
			r.leaseAt = r.lastHeartbeat
			r.mLeaseGrants.Inc()
			r.trace.Record(metrics.KindLeaseGrant, r.cfg.Addr, m.From, m.Seq)
			ack = encode(wireMsg{Type: msgLeaseAck, From: r.cfg.Index})
		}
	}
	behind := adopted && m.From != r.cfg.Index && m.Seq > r.nextExec
	r.mu.Unlock()
	if behind {
		// The leader's executed frontier is ahead of ours and no order
		// traffic is going to close the gap (we may have missed it all
		// while down): catch up.
		r.maybeCatchup()
	}
	return ack
}

// Tick implements core.Handler: leader heartbeats (carrying the executed
// frontier, so lagging followers self-detect), follower failure detection,
// and expiry of a catch-up exchange whose response never came back (dead
// leader, dropped transfer) so the next gap signal can retry.
func (r *Replica) Tick() {
	r.mu.Lock()
	isLeader := r.leaderIdx == r.cfg.Index
	stale := time.Since(r.lastHeartbeat) > r.cfg.HeartbeatTimeout
	leader := r.leaderIdx
	next := r.nextExec
	if r.catchupFor != 0 && time.Since(r.catchupAt) > r.cfg.HeartbeatTimeout {
		r.catchupFor = 0
	}
	r.mu.Unlock()

	if isLeader {
		r.node.Broadcast(encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index, Seq: next}))
		return
	}
	if stale {
		r.electNext(leader)
	}
}

// electNext marks the current leader dead and deterministically adopts the
// lowest surviving index as the new leader.
func (r *Replica) electNext(deadLeader int) {
	r.mu.Lock()
	r.suspected[deadLeader] = true
	next := lowestIndex(r.cfg.Peers, r.suspected)
	if next == -1 {
		r.mu.Unlock()
		return
	}
	r.leaderIdx = next
	r.lastHeartbeat = time.Now()
	// Leader change revokes any lease the dead leader granted; a fresh
	// leader starts with no follower acks, so its self-lease stays invalid
	// until a majority acknowledges its first heartbeats.
	r.leaseFrom = leaderUnknown
	r.leaseAcks = make(map[int]time.Time)
	becameLeader := next == r.cfg.Index
	if becameLeader && r.nextAssign < r.nextExec {
		// Fresh leader: continue sequencing after everything it executed.
		r.nextAssign = r.nextExec
	}
	seq := r.nextExec
	r.mu.Unlock()

	if becameLeader {
		r.node.Broadcast(encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index, Seq: seq}))
	}
}

// --- Catch-up transfer --------------------------------------------------

// maybeCatchup starts one leader-driven catch-up exchange, unless one is
// already in flight, this replica leads, or no leader is known. The request
// rides the full-duplex peer link: staged on the leader's outbox connection
// and flushed immediately, with the leader's reply coming back on that same
// connection into HandlePeerReply — no dedicated transfer dial. A lost
// exchange (dead leader, dropped message) times out in Tick and the next
// gap signal retriggers it.
func (r *Replica) maybeCatchup() {
	r.mu.Lock()
	if r.catchupFor != 0 || r.leaderIdx == r.cfg.Index || r.leaderIdx == leaderUnknown {
		r.mu.Unlock()
		return
	}
	leader := r.leaderIdx
	if _, ok := r.cfg.Peers[leader]; !ok {
		r.mu.Unlock()
		return
	}
	from := r.nextExec
	r.catchupFor = from
	r.catchupAt = time.Now()
	r.mu.Unlock()
	r.mCatchupStarts.Inc()
	r.trace.Record(metrics.KindCatchupStart, r.cfg.Addr, leader, from)
	r.node.SendTo(leader, encode(wireMsg{Type: msgCatchupReq, Seq: from, From: r.cfg.Index}))
	r.node.Flush()
}

func (r *Replica) clearCatchup() {
	r.mu.Lock()
	r.catchupFor = 0
	r.mu.Unlock()
}

// buildCatchup is the leader's side of a transfer: for a follower whose
// next needed sequence is from, return the missing suffix out of the
// retained window, or — when the gap has outrun the window — a state
// snapshot positioning the follower at the leader's executed frontier in
// one jump. A non-leader stays silent; the requester retries against
// whoever heartbeats next. Taking execMu first freezes the executed
// frontier, so the snapshot, the suffix and the reported sequence are
// mutually consistent.
func (r *Replica) buildCatchup(from uint64) []byte {
	r.execMu.Lock()
	defer r.execMu.Unlock()
	r.mu.Lock()
	if r.leaderIdx != r.cfg.Index {
		r.mu.Unlock()
		return nil
	}
	next := r.nextExec
	if from == 0 {
		from = 1
	}
	if from >= next {
		r.mu.Unlock()
		// Nothing to transfer: answer with the frontier so the requester
		// resolves its in-flight exchange promptly.
		return encode(wireMsg{Type: msgCatchupResp, Seq: next, From: r.cfg.Index})
	}
	if from >= r.hist.Base() {
		entries := make([]wireLogEntry, 0, next-from)
		for s := from; s < next; s++ {
			e, _ := r.hist.Get(s) // hist.End() == nextExec: always present
			entries = append(entries, wireLogEntry{Seq: s, RequestID: e.requestID, Body: e.body})
		}
		r.mu.Unlock()
		return encode(wireMsg{Type: msgCatchupResp, Seq: next, From: r.cfg.Index, Entries: entries})
	}
	// The gap predates the retained window: ship the whole state, plus the
	// response cache — the receiver jumps over those requests without
	// executing them, and must still answer their retries from cache
	// instead of re-running them under fresh sequence numbers. execMu is
	// held, so no Apply can slide anything past the frontier read above.
	responses := make(map[string][]byte, len(r.respCache))
	for id, body := range r.respCache {
		responses[id] = body
	}
	r.mu.Unlock()
	snap, err := r.cfg.Service.Snapshot()
	if err != nil {
		return nil
	}
	return encode(wireMsg{Type: msgCatchupResp, Seq: next, From: r.cfg.Index, Snapshot: snap, Responses: responses})
}

// applyCatchup installs a transfer: restore the snapshot (if any) to jump
// to the leader's frontier, then replay the log suffix through the normal
// order path — which also answers any requests parked behind the gap and
// drains whatever later orders were buffered while the transfer ran.
func (r *Replica) applyCatchup(m wireMsg) {
	if len(m.Snapshot) > 0 {
		type parked struct {
			requestID string
			body      []byte
			conns     []*netsim.Conn
		}
		var answered []parked
		r.execMu.Lock()
		r.mu.Lock()
		if m.Seq > r.nextExec {
			if err := r.cfg.Service.Restore(m.Snapshot); err == nil {
				r.mCatchupSnap.Inc()
				r.trace.Record(metrics.KindCatchupSnapshot, r.cfg.Addr, m.From, m.Seq)
				r.nextExec = m.Seq
				if r.nextAssign < r.nextExec {
					r.nextAssign = r.nextExec
				}
				for s := range r.log {
					if s < r.nextExec {
						delete(r.log, s)
					}
				}
				// The window restarts at the snapshot point.
				r.hist.Reset(m.Seq)
				// The jumped-over requests were never executed here; their
				// retries must hit the transferred cache, not re-enter the
				// order protocol under new sequence numbers — and anyone
				// already parked on one of them gets the cached answer now.
				// The transfer carries the donor's bounded cache (its retry
				// horizon), inserted in sorted order so eviction positions
				// stay deterministic.
				for _, id := range sortedIDs(m.Responses) {
					if _, ok := r.respCache[id]; !ok {
						r.cacheRespLocked(id, m.Responses[id])
					}
					r.ordered[id] = true
					if conns := r.pending[id]; len(conns) > 0 {
						delete(r.pending, id)
						answered = append(answered, parked{id, r.respCache[id], conns})
					}
				}
				if r.durable {
					// The jump invalidates the journaled prefix: persist the
					// transferred state as the new snapshot slot and drop the
					// records it supersedes.
					responses := make(map[string][]byte, len(r.respCache))
					for id, body := range r.respCache {
						responses[id] = body
					}
					if b, err := json.Marshal(storeSnapshot{Snapshot: m.Snapshot, Responses: responses}); err == nil {
						if r.store.WriteSnapshot(m.Seq-1, b) == nil {
							_ = r.store.TruncateTo(store.TruncateAll)
						}
						r.persistedSnap = m.Seq - 1
					}
				}
			}
		}
		r.mu.Unlock()
		r.execMu.Unlock()
		for _, p := range answered {
			for _, c := range p.conns {
				r.reply(c, p.requestID, p.body)
			}
		}
	}
	if len(m.Entries) > 0 {
		r.mCatchupReplay.Inc()
		r.trace.Record(metrics.KindCatchupReplay, r.cfg.Addr, m.From, m.Seq)
	}
	for _, e := range m.Entries {
		r.handleOrder(wireMsg{Type: msgOrder, RequestID: e.RequestID, Body: e.Body, Seq: e.Seq, From: m.From})
	}
	// A suffix that closed the gap may have made buffered live orders
	// contiguous too; handleOrder drained them. Flush anything the replay
	// staged (it stages nothing today, but keep the invariant: every
	// runtime entry point flushes on the way out).
	r.node.Flush()
}

// --- Client -----------------------------------------------------------

// Client submits requests to every replica and votes on the responses, as
// S0 clients do. InvokeRead adds the lease-read path: a tagged read sent to
// a single replica, rotated per call so a read-mostly workload spreads
// across the whole group instead of hammering every replica with every
// read.
type Client struct {
	net     *netsim.Network
	from    string
	addrs   map[int]string
	pubKeys map[int][]byte
	f       int
	timeout time.Duration

	mu      sync.Mutex
	sorted  []int // replica indices in order, for deterministic rotation
	nextIdx int
}

// NewClient builds a client. addrs and pubKeys map replica index to address
// and verification key; f is the fault tolerance degree: f+1 matching,
// correctly signed responses are required for acceptance.
func NewClient(net *netsim.Network, from string, addrs map[int]string, pubKeys map[int][]byte, f int, timeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("smr: client needs replica addresses")
	}
	if f < 0 || len(addrs) < f+1 {
		return nil, fmt.Errorf("smr: need at least f+1=%d replicas, have %d", f+1, len(addrs))
	}
	sorted := make([]int, 0, len(addrs))
	for idx := range addrs {
		sorted = append(sorted, idx)
	}
	sort.Ints(sorted)
	return &Client{net: net, from: from, addrs: addrs, pubKeys: pubKeys, f: f, timeout: timeout, sorted: sorted}, nil
}

// Invoke sends the request to all replicas and returns the body agreed on
// by at least f+1 of them, or ErrNoQuorum.
func (c *Client) Invoke(requestID string, body []byte) ([]byte, error) {
	type result struct {
		resp sig.ServerResponse
		err  error
	}
	results := make(chan result, len(c.addrs))
	var wg sync.WaitGroup
	for idx, addr := range c.addrs {
		wg.Add(1)
		go func(idx int, addr string) {
			defer wg.Done()
			resp, err := request(c.net, fmt.Sprintf("%s-to-%d", c.from, idx), addr, requestID, body, c.timeout)
			if err == nil {
				if pk, ok := c.pubKeys[idx]; ok {
					if verr := sig.VerifyServerResponse(pk, resp); verr != nil {
						err = verr
					} else if resp.ServerIndex != idx {
						err = fmt.Errorf("smr: replica %d signed as %d", idx, resp.ServerIndex)
					}
				}
			}
			results <- result{resp, err}
		}(idx, addr)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var responses []sig.ServerResponse
	for res := range results {
		if res.err != nil {
			continue
		}
		responses = append(responses, res.resp)
		if body, err := Vote(responses, c.f); err == nil {
			return body, nil
		}
	}
	if body, err := Vote(responses, c.f); err == nil {
		return body, nil
	}
	return nil, fmt.Errorf("%w (got %d verified responses)", ErrNoQuorum, len(responses))
}

// InvokeRead submits a read-tagged request to one replica at a time,
// rotating through the group — the lease-read path, where read throughput
// scales with replica count because each read touches a single replica.
//
// A single signature is only accepted for a response marked as served
// under a valid lease: leased answers are backed by the lease machinery (a
// quorum-acked leader self-lease, or a follower grant pinned to the
// leader's executed frontier), which is what makes one replica's word
// acceptable. An authentic but unleased answer means the replica ordered
// the read instead — one replica's say-so about an ordered execution is
// exactly what the f+1 vote exists to check, so the client falls back to
// the full fan-out-and-vote Invoke (the ordered execution is already
// cached under the request ID, so the fallback dedupes rather than
// re-executes). Transport failures rotate to the next replica.
func (c *Client) InvokeRead(requestID string, body []byte) ([]byte, error) {
	c.mu.Lock()
	start := c.nextIdx
	c.nextIdx = (c.nextIdx + 1) % len(c.sorted)
	c.mu.Unlock()
	for n := 0; n < len(c.sorted); n++ {
		idx := c.sorted[(start+n)%len(c.sorted)]
		addr := c.addrs[idx]
		resp, leased, err := requestTagged(c.net, fmt.Sprintf("%s-to-%d", c.from, idx), addr, requestID, body, true, c.timeout)
		if err != nil {
			continue
		}
		if pk, ok := c.pubKeys[idx]; ok {
			if sig.VerifyServerResponse(pk, resp) != nil || resp.ServerIndex != idx {
				continue
			}
		}
		if leased {
			return resp.Body, nil
		}
		// Ordered, not leased: stop probing — every further replica would
		// order it again too. Cross-check through the vote instead.
		break
	}
	return c.Invoke(requestID, body)
}

// Vote returns the response body shared by at least f+1 responses from
// distinct replicas, or ErrNoQuorum.
func Vote(responses []sig.ServerResponse, f int) ([]byte, error) {
	counts := make(map[string]map[int]bool)
	for _, r := range responses {
		key := string(r.Body)
		if counts[key] == nil {
			counts[key] = make(map[int]bool)
		}
		counts[key][r.ServerIndex] = true
	}
	// Deterministic iteration for reproducible error behaviour.
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(counts[k]) >= f+1 {
			return []byte(k), nil
		}
	}
	return nil, ErrNoQuorum
}

// request mirrors pb.Request but speaks the smr wire format.
func request(net *netsim.Network, from, addr, requestID string, body []byte, timeout time.Duration) (sig.ServerResponse, error) {
	resp, _, err := requestTagged(net, from, addr, requestID, body, false, timeout)
	return resp, err
}

// requestTagged is request with an explicit read tag; the second return
// reports whether the response was served under a valid read lease.
func requestTagged(net *netsim.Network, from, addr, requestID string, body []byte, read bool, timeout time.Duration) (sig.ServerResponse, bool, error) {
	conn, err := net.Dial(from, addr)
	if err != nil {
		return sig.ServerResponse{}, false, err
	}
	defer conn.Close()
	if err := conn.Send(encode(wireMsg{Type: msgRequest, RequestID: requestID, Body: body, Read: read})); err != nil {
		return sig.ServerResponse{}, false, err
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return sig.ServerResponse{}, false, netsim.ErrTimeout
		}
		raw, err := conn.RecvTimeout(remaining)
		if err != nil {
			return sig.ServerResponse{}, false, err
		}
		var m wireMsg
		uerr := json.Unmarshal(raw, &m)
		netsim.Release(raw) // decoded: json copied every field out of raw
		if uerr != nil {
			continue
		}
		if m.Type == msgResponse && m.RequestID == requestID && m.Response != nil {
			return *m.Response, m.Leased, nil
		}
	}
}
