package core

// Window is a bounded, sequence-addressed retention window: entry i holds
// the item recorded at sequence Base()+i, and appending past the capacity
// trims the oldest entries forward. Both replication engines keep their
// resync history in one: smr retains the executed-order suffix it replays
// for catch-up transfers, pb retains the unacknowledged delta updates it
// retransmits when a backup's cumulative ack stalls or gaps. Trimming
// slices forward, so append reallocates (copying the window) only when the
// backing tail runs out — amortized O(1), the idiom the smr catch-up
// history pioneered.
//
// Window is not synchronized; callers hold their own lock.
type Window[T any] struct {
	base    uint64
	entries []T
	keep    int
}

// NewWindow returns a window retaining at most keep entries, with the first
// Append landing at sequence base. A keep of zero retains nothing: every
// Append is immediately trimmed away, which forces resyncs onto the
// snapshot/checkpoint path.
func NewWindow[T any](base uint64, keep int) Window[T] {
	if keep < 0 {
		keep = 0
	}
	return Window[T]{base: base, keep: keep}
}

// Base returns the sequence number of the oldest retained entry (or, for an
// empty window, the sequence the next Append will land at).
func (w *Window[T]) Base() uint64 { return w.base }

// End returns one past the newest retained sequence.
func (w *Window[T]) End() uint64 { return w.base + uint64(len(w.entries)) }

// Len returns the number of retained entries.
func (w *Window[T]) Len() int { return len(w.entries) }

// Append records the entry at sequence End(), trimming the window to its
// retention bound.
func (w *Window[T]) Append(e T) {
	w.entries = append(w.entries, e)
	if len(w.entries) > w.keep {
		w.TrimTo(w.base + uint64(len(w.entries)-w.keep))
	}
}

// Get returns the entry recorded at seq, or false when seq has been trimmed
// away or not yet appended.
func (w *Window[T]) Get(seq uint64) (T, bool) {
	if seq < w.base || seq >= w.End() {
		var zero T
		return zero, false
	}
	return w.entries[seq-w.base], true
}

// TrimTo drops every entry below seq (no-op when seq is at or below Base).
// Callers use it for ack-driven early release: once every peer has
// acknowledged sequence s, entries through s can go before the capacity
// bound forces them out.
func (w *Window[T]) TrimTo(seq uint64) {
	if seq <= w.base {
		return
	}
	if seq >= w.End() {
		w.Reset(w.End())
		return
	}
	drop := seq - w.base
	var zero T
	for i := uint64(0); i < drop; i++ {
		w.entries[i] = zero // release references for the collector
	}
	w.entries = w.entries[drop:]
	w.base = seq
}

// Reset empties the window and restarts it at base — the post-jump state
// after a snapshot installation or a primary promotion, where retained
// history from the previous stream is no longer replayable.
func (w *Window[T]) Reset(base uint64) {
	clear(w.entries)
	w.entries = w.entries[:0]
	w.base = base
}
