package core

import "testing"

func TestWindowAppendGetTrim(t *testing.T) {
	w := NewWindow[int](1, 4)
	for i := 1; i <= 6; i++ {
		w.Append(i * 10)
	}
	if w.Base() != 3 || w.End() != 7 || w.Len() != 4 {
		t.Fatalf("after capacity trim: base=%d end=%d len=%d", w.Base(), w.End(), w.Len())
	}
	if _, ok := w.Get(2); ok {
		t.Fatal("trimmed entry still readable")
	}
	if v, ok := w.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if _, ok := w.Get(7); ok {
		t.Fatal("unappended sequence readable")
	}
	w.TrimTo(5) // ack-driven early release
	if w.Base() != 5 || w.Len() != 2 {
		t.Fatalf("after TrimTo(5): base=%d len=%d", w.Base(), w.Len())
	}
	w.TrimTo(3) // below base: no-op
	if w.Base() != 5 {
		t.Fatalf("TrimTo below base moved base to %d", w.Base())
	}
	w.TrimTo(99) // past end: empties, restarts at End
	if w.Len() != 0 || w.Base() != 7 {
		t.Fatalf("TrimTo past end: base=%d len=%d", w.Base(), w.Len())
	}
	w.Append(70)
	if v, ok := w.Get(7); !ok || v != 70 {
		t.Fatalf("append after full trim lands wrong: %d,%v", v, ok)
	}
	w.Reset(100)
	if w.Len() != 0 || w.Base() != 100 {
		t.Fatalf("after Reset: base=%d len=%d", w.Base(), w.Len())
	}
}

func TestWindowZeroKeepRetainsNothing(t *testing.T) {
	w := NewWindow[string](1, 0)
	w.Append("a")
	w.Append("b")
	if w.Len() != 0 {
		t.Fatalf("zero-keep window retained %d entries", w.Len())
	}
	if w.Base() != 3 {
		t.Fatalf("zero-keep window base %d, want 3 (sequence still advances)", w.Base())
	}
}
