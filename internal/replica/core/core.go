// Package core is the shared node runtime both replication engines (pb,
// smr) are built on: everything about being a long-lived, crashable,
// restartable netsim node that is independent of the replication protocol
// itself.
//
// The runtime owns:
//
//   - Lifecycle: Stop (graceful, waits for goroutines), Crash (synchronous
//     network teardown, background goroutine drain) and Restart (waits out
//     the previous generation's serve loops, re-registers the listener,
//     asks the protocol to rejoin) — with the serve-loop drain discipline
//     that makes Stop safe to call from within request handling.
//   - The inbound-connection registry: every served (and adopted auxiliary)
//     connection is tracked so shutdown can close it; Stop never depends on
//     a peer sending one more message to wake a serving goroutine.
//   - The accept/serve loops: each served connection drains its backlog a
//     whole batch at a time (RecvBatch — one queue-lock acquisition per
//     drain), hands every payload to the protocol Handler, releases the
//     decoded buffers back to the netsim pool, and answers each drained
//     batch's replies with one SendBatch.
//   - The peer-connection cache: lazily dialed, re-dialed once on send
//     failure, dropped when a peer is crashed or partitioned. Peer links are
//     full duplex: every cached connection gets a reader loop that drains
//     whatever the peer sends back on it (acks, catch-up responses,
//     backpressure signals) with RecvBatch and hands each payload to the
//     protocol's HandlePeerReply hook — the same connection carries requests
//     one way and replies the other, so nothing piles up unread on the
//     dialing side and auxiliary exchanges need no separately dialed
//     connection.
//   - Per-peer ring-buffered outboxes: messages staged with SendTo or
//     Broadcast coalesce until the next Flush, which ships each peer's
//     whole staged batch with a single SendBatch — so a primary that
//     executes a drained batch of requests pays one fan-out flush per peer,
//     not one Send per update per peer. The runtime flushes automatically
//     after every drained inbound batch and after every timer tick.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fortress/internal/metrics"
	"fortress/internal/netsim"
)

// Handler is the protocol half of a node: the replication engine the
// runtime drives. All methods are called from runtime goroutines.
type Handler interface {
	// HandleMessage processes one raw payload received on conn and returns
	// replies (appended to the passed slice) to deliver on that same
	// connection; the runtime sends a whole drained batch's replies with
	// one SendBatch. The raw buffer is released to the netsim pool after
	// HandleMessage returns, so implementations must not retain it.
	HandleMessage(conn *netsim.Conn, raw []byte, replies [][]byte) [][]byte
	// HandlePeerReply processes one raw payload read back off the cached
	// peer connection to peer — the reply direction of a full-duplex peer
	// link (acks, catch-up responses). It runs on that peer's reader
	// goroutine; messages staged with SendTo/Broadcast during the call are
	// flushed when the reader finishes the drained batch. The raw buffer is
	// released after HandlePeerReply returns, so implementations must not
	// retain it.
	HandlePeerReply(peer int, raw []byte)
	// Tick fires once per Config.TickInterval while the node is up.
	// Messages staged with SendTo/Broadcast during the tick are flushed
	// when it returns.
	Tick()
	// Rejoin resets protocol state when a stopped node restarts, after the
	// listener is re-registered and before the serve loops come back.
	Rejoin()
}

// StoreRecoverer is implemented by protocol handlers that can reload their
// state from a persistent store (replica/store). Restart invokes it after
// the listener is re-registered and before Rejoin, so a node whose process
// state survived (an in-place restart) keeps its memory — implementations
// no-op when memory is at least as fresh as the disk — while a node built
// over a non-empty store recovers from it before the protocol's own
// catch-up machinery closes any remaining gap.
type StoreRecoverer interface {
	RecoverFromStore() error
}

// OutboxShedHandler is implemented by protocol handlers that want to hear
// when a bounded outbox (Config.OutboxLimit) shed staged messages for a
// peer. The runtime delivers the notification from Flush — after the
// handler call that staged past the limit has returned, never from inside
// stage — so implementations may take their own locks, but must not block:
// the canonical reaction is to mark the peer for a checkpoint resync and do
// the work on the next Tick.
type OutboxShedHandler interface {
	HandleOutboxShed(peer int, dropped int)
}

// Config describes the transport identity of one node.
type Config struct {
	// Index is this node's unique index within Peers.
	Index int
	// Addr is the netsim address the node listens on.
	Addr string
	// Peers maps every node index (including this one) to its address.
	Peers map[int]string
	// Net is the simulated network.
	Net *netsim.Network
	// TickInterval is the Handler.Tick cadence.
	TickInterval time.Duration
	// OutboxLimit bounds each per-peer outbox to this many staged messages;
	// staging past the cap sheds the oldest staged message (a slow or
	// partitioned peer must not let unflushed updates grow without bound).
	// Sheds are counted per peer (core_outbox_sheds_total) and reported to
	// handlers implementing OutboxShedHandler, whose job is to resync the
	// peer from a checkpoint since its update stream now has a gap. Zero
	// means unbounded — the historical behaviour.
	OutboxLimit int
	// Metrics, when non-nil, receives the runtime's transport instruments
	// (outbox depth, flush batch shape, peer-link failures), labelled by
	// Addr. Observational only: nothing in the runtime reads them back.
	Metrics *metrics.Registry
}

func (c Config) validate() error {
	switch {
	case c.Net == nil:
		return errors.New("core: config needs Net")
	case c.Addr == "":
		return errors.New("core: config needs Addr")
	case len(c.Peers) == 0:
		return errors.New("core: config needs Peers")
	case c.TickInterval <= 0:
		return errors.New("core: config needs a positive TickInterval")
	}
	if _, ok := c.Peers[c.Index]; !ok {
		return fmt.Errorf("core: Peers must contain own index %d", c.Index)
	}
	return nil
}

// Node is the runtime instance. Create with NewNode, wire the handler's
// back-references, then Start it.
type Node struct {
	cfg Config
	h   Handler

	// peerIdx is every other peer's index in ascending order, so flushes
	// visit peers deterministically rather than in map order.
	peerIdx  []int
	outboxes map[int]*outbox

	mu        sync.Mutex
	stopped   bool
	peerConns map[int]*netsim.Conn
	inbound   map[*netsim.Conn]struct{}
	listener  *netsim.Listener
	stop      chan struct{}

	done sync.WaitGroup

	// Transport instruments (nil handles when Config.Metrics is nil; every
	// operation on a nil instrument no-ops, so the hot paths below carry no
	// metrics conditionals).
	mFlushBatches *metrics.Counter   // non-empty per-peer batches flushed
	mFlushMsgs    *metrics.Counter   // messages those batches carried
	hFlushSize    *metrics.Histogram // per-flush batch size distribution
	mDialFails    *metrics.Counter   // peer dials that failed (down/partitioned)
	mSendFails    *metrics.Counter   // SendBatch errors (peer-reader stalls, teardown races)
	mInboundMsgs  *metrics.Counter   // payloads drained off served connections
	mPeerReplies  *metrics.Counter   // payloads drained off duplex peer links
}

// flushSizeBuckets grades the outbox batch-size histogram: power-of-two
// message counts, so the fan-out coalescing win is visible at a glance.
var flushSizeBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128}

// NewNode builds a node without starting it, so the handler can store the
// back-reference before any runtime goroutine can call into it.
func NewNode(cfg Config, h Handler) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, errors.New("core: node needs a handler")
	}
	n := &Node{
		cfg:       cfg,
		h:         h,
		outboxes:  make(map[int]*outbox, len(cfg.Peers)-1),
		peerConns: make(map[int]*netsim.Conn),
		inbound:   make(map[*netsim.Conn]struct{}),
		stopped:   true, // not yet started
	}
	for idx := range cfg.Peers {
		if idx == cfg.Index {
			continue
		}
		n.peerIdx = append(n.peerIdx, idx)
		n.outboxes[idx] = &outbox{limit: cfg.OutboxLimit}
	}
	sort.Ints(n.peerIdx)
	if reg := cfg.Metrics; reg != nil {
		node := fmt.Sprintf("{node=%q}", cfg.Addr)
		n.mFlushBatches = reg.Counter("core_flush_batches_total"+node, metrics.Timing)
		n.mFlushMsgs = reg.Counter("core_flush_messages_total"+node, metrics.Timing)
		n.hFlushSize = reg.Histogram("core_flush_batch_size"+node, flushSizeBuckets)
		n.mDialFails = reg.Counter("core_peer_dial_failures_total"+node, metrics.Timing)
		n.mSendFails = reg.Counter("core_peer_send_failures_total"+node, metrics.Timing)
		n.mInboundMsgs = reg.Counter("core_inbound_messages_total"+node, metrics.Timing)
		n.mPeerReplies = reg.Counter("core_peer_replies_total"+node, metrics.Timing)
		for _, idx := range n.peerIdx {
			n.outboxes[idx].depth = reg.Gauge(fmt.Sprintf("core_outbox_depth{node=%q,peer=\"%d\"}", cfg.Addr, idx))
			n.outboxes[idx].sheds = reg.Counter(
				fmt.Sprintf("core_outbox_sheds_total{node=%q,peer=\"%d\"}", cfg.Addr, idx), metrics.Timing)
		}
	}
	return n, nil
}

// Start registers the listener and launches the accept and timer loops.
func (n *Node) Start() error {
	l, err := n.cfg.Net.Listen(n.cfg.Addr)
	if err != nil {
		return fmt.Errorf("core: listen: %w", err)
	}
	stop := make(chan struct{})
	n.mu.Lock()
	n.stopped = false
	n.listener = l
	n.stop = stop
	n.mu.Unlock()
	n.done.Add(2)
	go n.acceptLoop(l, stop)
	go n.timerLoop(stop)
	return nil
}

// Index returns the node's index.
func (n *Node) Index() int { return n.cfg.Index }

// Addr returns the node's address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Stopped reports whether the node is currently shut down (stopped,
// crashed, or not yet started).
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// Stop shuts the node down and waits for its goroutines to exit.
func (n *Node) Stop() {
	n.shutdown()
	n.done.Wait()
}

// Crash simulates a node crash: the node is made inert and its address torn
// out of the network synchronously — every peer observes closed connections
// — while goroutine shutdown completes in the background. Safe to call from
// within request handling: nothing here waits on the caller's own serving
// goroutine.
func (n *Node) Crash() {
	n.shutdown()
	n.cfg.Net.CrashAddr(n.cfg.Addr)
}

// shutdown makes the node inert — no new dials, no new accepts, existing
// connections closed, staged outbox messages discarded — without waiting
// for goroutines, so it is safe to call from within a serving goroutine.
// Idempotent.
func (n *Node) shutdown() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	conns := make([]*netsim.Conn, 0, len(n.peerConns)+len(n.inbound))
	for _, c := range n.peerConns {
		conns = append(conns, c)
	}
	n.peerConns = make(map[int]*netsim.Conn)
	// Served (inbound) and adopted connections too: Stop must never depend
	// on a peer sending one more message to wake a goroutine out of Recv —
	// an idle connection from a peer with nothing more to say would
	// otherwise park its serve loop, and done.Wait with it, forever.
	for c := range n.inbound {
		conns = append(conns, c)
	}
	n.inbound = make(map[*netsim.Conn]struct{})
	stop, listener := n.stop, n.listener
	n.mu.Unlock()

	close(stop)
	listener.Close()
	for _, c := range conns {
		c.Close()
	}
	// A message staged for a peer but not yet flushed dies with the node,
	// exactly as an in-kernel socket buffer would.
	for _, ob := range n.outboxes {
		ob.discard()
	}
}

// Restart re-opens a stopped or crashed node in place — the supervised
// respawn-and-reconnect idiom: the listener re-registers at the same
// address (netsim allows it once CrashAddr or Close has torn the old one
// out), the handler's Rejoin hook resets protocol state, and the serve
// loops come back. Restarting a running node is an error.
func (n *Node) Restart() error {
	n.mu.Lock()
	stopped := n.stopped
	n.mu.Unlock()
	if !stopped {
		return errors.New("core: restart of a running node")
	}
	// The previous generation's goroutines must be fully out before the
	// listener and stop channel are replaced under them.
	n.done.Wait()
	l, err := n.cfg.Net.Listen(n.cfg.Addr)
	if err != nil {
		return fmt.Errorf("core: restart listen: %w", err)
	}
	if rec, ok := n.h.(StoreRecoverer); ok {
		if err := rec.RecoverFromStore(); err != nil {
			l.Close()
			return fmt.Errorf("core: restart recover: %w", err)
		}
	}
	n.h.Rejoin()
	stop := make(chan struct{})
	n.mu.Lock()
	n.stopped = false
	n.listener = l
	n.stop = stop
	n.mu.Unlock()
	n.done.Add(2)
	go n.acceptLoop(l, stop)
	go n.timerLoop(stop)
	return nil
}

// Go runs fn on a runtime-tracked goroutine (Stop waits for it), unless the
// node is already shut down, in which case it reports false and fn never
// runs.
//
// Note: for peer-to-peer request/response exchanges, prefer staging the
// request on the peer outbox and handling the reply in HandlePeerReply —
// the full-duplex peer links made the dialed-exchange pattern (Go +
// AdoptConn, which smr catch-up once used) unnecessary. Go remains for
// genuinely auxiliary work a protocol must run off the serve loops.
func (n *Node) Go(fn func()) bool {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return false
	}
	n.done.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.done.Done()
		fn()
	}()
	return true
}

// AdoptConn registers an auxiliary connection (one the caller dialed
// itself) with the inbound registry so shutdown closes it. It reports false
// — closing the connection — when the node is already shutting down. Pair
// with ForgetConn when the exchange completes. Peer exchanges should ride
// the duplex peer links instead (see Go); AdoptConn remains for
// connections to non-peers a protocol must hold across a shutdown.
func (n *Node) AdoptConn(conn *netsim.Conn) bool {
	return n.registerInbound(conn)
}

// ForgetConn removes a connection from the registry.
func (n *Node) ForgetConn(conn *netsim.Conn) {
	n.mu.Lock()
	delete(n.inbound, conn)
	n.mu.Unlock()
}

func (n *Node) acceptLoop(l *netsim.Listener, stop chan struct{}) {
	defer n.done.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !n.registerInbound(conn) {
			continue // shutting down: conn closed, Accept fails next
		}
		n.done.Add(1)
		go n.serveConn(conn, stop)
	}
}

// registerInbound tracks a connection so shutdown can close it. It reports
// false — closing the connection — when the node has already begun shutting
// down, which an Accept completing concurrently with shutdown can race
// into.
func (n *Node) registerInbound(conn *netsim.Conn) bool {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		conn.Close()
		return false
	}
	n.inbound[conn] = struct{}{}
	n.mu.Unlock()
	return true
}

// serveConn drains the connection's backlog a whole batch at a time,
// dispatches every payload to the handler, answers the batch's replies with
// one SendBatch, and flushes the peer outboxes — so everything the handler
// staged while processing the batch (state updates, order broadcasts,
// forwards) leaves in one coalesced SendBatch per peer.
func (n *Node) serveConn(conn *netsim.Conn, stop chan struct{}) {
	defer n.done.Done()
	defer n.ForgetConn(conn)
	defer conn.Close()
	var batch, replies [][]byte
	for {
		var err error
		batch, err = conn.RecvBatch(batch[:0])
		if err != nil {
			return
		}
		n.mInboundMsgs.Add(uint64(len(batch)))
		replies = replies[:0]
		for _, raw := range batch {
			select {
			case <-stop:
				return
			default:
			}
			replies = n.h.HandleMessage(conn, raw, replies)
			netsim.Release(raw) // handlers decode; they never retain raw
		}
		if len(replies) > 0 {
			_ = conn.SendBatch(replies)
		}
		n.Flush()
	}
}

// timerLoop drives the handler's periodic work and flushes whatever it
// staged.
func (n *Node) timerLoop(stop chan struct{}) {
	defer n.done.Done()
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		n.h.Tick()
		n.Flush()
	}
}

// --- Peer fan-out -------------------------------------------------------

// SendTo stages raw for one peer; it leaves on the next Flush. The outbox
// owns raw until then, so callers must not reuse the buffer.
func (n *Node) SendTo(idx int, raw []byte) {
	if ob, ok := n.outboxes[idx]; ok {
		ob.stage(raw)
	}
}

// Broadcast stages raw for every other peer.
func (n *Node) Broadcast(raw []byte) {
	for _, idx := range n.peerIdx {
		n.outboxes[idx].stage(raw)
	}
}

// Flush ships every dirty outbox: one SendBatch per peer carrying that
// peer's whole staged batch, dialing lazily and re-dialing once on failure.
// Unreachable peers (crashed or partitioned) drop their batch; retries
// happen naturally on the next staged message. The runtime calls Flush
// after every drained inbound batch and every tick; protocol engines call
// it directly when a message must be on the wire before a subsequent local
// action (e.g. executing a request that may crash the node).
//
// Take-and-send is serialized per peer (outbox.sendMu): Flush runs
// concurrently from every serve loop, the tick loop and the peer reader
// loops, and two flushers interleaving take→send for the same peer would
// deliver that peer's batches out of order — protocol streams (pb's
// chained deltas) rely on per-peer FIFO delivery. Staging never blocks on
// this: SendTo/Broadcast touch only the staging lock.
func (n *Node) Flush() {
	for _, idx := range n.peerIdx {
		ob := n.outboxes[idx]
		ob.sendMu.Lock()
		batch := ob.take()
		if batch != nil {
			n.mFlushBatches.Inc()
			n.mFlushMsgs.Add(uint64(len(batch)))
			n.hFlushSize.Observe(uint64(len(batch)))
			n.sendBatchTo(idx, batch)
			ob.putBack(batch)
		}
		ob.sendMu.Unlock()
		if shed := ob.takeShed(); shed > 0 {
			if h, ok := n.h.(OutboxShedHandler); ok {
				h.HandleOutboxShed(idx, shed)
			}
		}
	}
}

func (n *Node) sendBatchTo(idx int, batch [][]byte) {
	addr, ok := n.cfg.Peers[idx]
	if !ok {
		return
	}
	conn := n.peerConn(idx, addr)
	if conn == nil {
		return
	}
	if err := conn.SendBatch(batch); err != nil {
		n.mSendFails.Inc()
		n.dropPeerConn(idx, conn)
		// One immediate re-dial attempt, then give up until next flush.
		if conn = n.peerConn(idx, addr); conn != nil {
			_ = conn.SendBatch(batch)
		}
	}
}

// peerConn returns a cached connection to the peer, dialing lazily. A
// freshly cached connection also gets its reader loop: the receive half of
// the full-duplex link, which drains the peer's replies into
// Handler.HandlePeerReply.
func (n *Node) peerConn(idx int, addr string) *netsim.Conn {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil
	}
	if c, ok := n.peerConns[idx]; ok && !c.Closed() {
		n.mu.Unlock()
		return c
	}
	n.mu.Unlock()

	c, err := n.cfg.Net.Dial(n.cfg.Addr, addr)
	if err != nil {
		n.mDialFails.Inc()
		return nil
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		c.Close()
		return nil
	}
	if existing, ok := n.peerConns[idx]; ok && !existing.Closed() {
		n.mu.Unlock()
		c.Close()
		return existing
	}
	n.peerConns[idx] = c
	// Registered under mu so shutdown either sees the conn (and closes it,
	// waking the reader out of RecvBatch) or already marked the node
	// stopped above.
	n.done.Add(1)
	go n.peerReadLoop(idx, c)
	n.mu.Unlock()
	return c
}

// peerReadLoop is the receive half of one full-duplex peer link: it drains
// whatever the peer sends back on the cached connection a whole batch at a
// time, dispatches every payload to the handler's HandlePeerReply hook, and
// flushes the outboxes — so anything the handler staged in response (a
// retransmission, a follow-up request) leaves in one coalesced SendBatch
// per peer. The loop exits when the connection dies: shutdown and
// dropPeerConn both close it, which wakes RecvBatch with an error.
func (n *Node) peerReadLoop(idx int, conn *netsim.Conn) {
	defer n.done.Done()
	var batch [][]byte
	for {
		var err error
		batch, err = conn.RecvBatch(batch[:0])
		if err != nil {
			return
		}
		n.mPeerReplies.Add(uint64(len(batch)))
		for _, raw := range batch {
			n.h.HandlePeerReply(idx, raw)
			netsim.Release(raw) // handlers decode; they never retain raw
		}
		n.Flush()
	}
}

func (n *Node) dropPeerConn(idx int, c *netsim.Conn) {
	c.Close()
	n.mu.Lock()
	if n.peerConns[idx] == c {
		delete(n.peerConns, idx)
	}
	n.mu.Unlock()
}

// --- Outbox -------------------------------------------------------------

// outbox is one peer's staging buffer: a double-buffered ring whose backing
// arrays are reused across flushes, so steady-state staging and flushing
// allocate nothing. stage appends under the lock; take swaps the whole
// staged batch out (the flush sends it without holding the lock, so staging
// never blocks on a slow peer); putBack returns the drained buffer for
// reuse.
type outbox struct {
	// sendMu serializes take-and-send (Flush) so concurrent flushers keep
	// the peer's batch stream FIFO; mu alone guards staging, so SendTo and
	// Broadcast never wait on an in-flight send.
	sendMu sync.Mutex
	mu     sync.Mutex
	staged [][]byte
	spare  [][]byte
	// limit bounds len(staged); staging past it sheds the oldest message
	// (zero = unbounded). shed counts drops since the last takeShed.
	limit int
	shed  int
	// depth mirrors len(staged) for observers (nil when metrics are off).
	// Written after the staging lock is released: the gauge is a live
	// reading for dashboards, not a synchronized value.
	depth *metrics.Gauge
	sheds *metrics.Counter
}

func (o *outbox) stage(raw []byte) {
	o.mu.Lock()
	dropped := 0
	if o.limit > 0 && len(o.staged) >= o.limit {
		// Shed the oldest staged message: the newest carry the freshest
		// state, and the peer gets a checkpoint resync for the gap anyway.
		dropped = len(o.staged) - o.limit + 1
		copy(o.staged, o.staged[dropped:])
		clear(o.staged[o.limit-1:])
		o.staged = o.staged[:o.limit-1]
		o.shed += dropped
	}
	o.staged = append(o.staged, raw)
	d := len(o.staged)
	o.mu.Unlock()
	o.depth.Set(int64(d))
	if dropped > 0 {
		o.sheds.Add(uint64(dropped))
	}
}

// takeShed returns and clears the count of messages shed since the last
// call — the per-flush notification quantum for OutboxShedHandler.
func (o *outbox) takeShed() int {
	o.mu.Lock()
	s := o.shed
	o.shed = 0
	o.mu.Unlock()
	return s
}

// take removes and returns the staged batch, or nil when the outbox is
// clean.
func (o *outbox) take() [][]byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.staged) == 0 {
		return nil
	}
	batch := o.staged
	o.staged = o.spare // nil or a drained buffer from a previous flush
	o.spare = nil
	o.depth.Set(0)
	return batch
}

// putBack returns a drained batch's backing array for reuse.
func (o *outbox) putBack(batch [][]byte) {
	clear(batch)
	o.mu.Lock()
	if o.spare == nil {
		o.spare = batch[:0]
	}
	o.mu.Unlock()
}

// discard drops any staged messages (shutdown).
func (o *outbox) discard() {
	o.mu.Lock()
	clear(o.staged)
	o.staged = o.staged[:0]
	o.mu.Unlock()
}
