package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fortress/internal/netsim"
)

// echoHandler is a minimal protocol: every inbound payload is echoed back
// as a reply, recorded, and (optionally) re-broadcast to the peers. Replies
// read back off peer links land in peerReplies.
type echoHandler struct {
	mu          sync.Mutex
	node        *Node
	got         [][]byte
	peerReplies map[int][][]byte
	ticks       int
	rejoined    int
	broadcast   bool
}

func (h *echoHandler) HandleMessage(conn *netsim.Conn, raw []byte, replies [][]byte) [][]byte {
	cp := append([]byte(nil), raw...)
	h.mu.Lock()
	h.got = append(h.got, cp)
	h.mu.Unlock()
	if h.broadcast {
		h.node.Broadcast(cp)
	}
	return append(replies, cp)
}

func (h *echoHandler) HandlePeerReply(peer int, raw []byte) {
	cp := append([]byte(nil), raw...)
	h.mu.Lock()
	if h.peerReplies == nil {
		h.peerReplies = make(map[int][][]byte)
	}
	h.peerReplies[peer] = append(h.peerReplies[peer], cp)
	h.mu.Unlock()
}

func (h *echoHandler) repliesFrom(peer int) [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([][]byte, len(h.peerReplies[peer]))
	copy(out, h.peerReplies[peer])
	return out
}

func (h *echoHandler) Tick() {
	h.mu.Lock()
	h.ticks++
	h.mu.Unlock()
}

func (h *echoHandler) Rejoin() {
	h.mu.Lock()
	h.rejoined++
	h.mu.Unlock()
}

func (h *echoHandler) received() [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([][]byte, len(h.got))
	copy(out, h.got)
	return out
}

func startNode(t *testing.T, net *netsim.Network, idx int, peers map[int]string) (*Node, *echoHandler) {
	t.Helper()
	h := &echoHandler{}
	n, err := NewNode(Config{
		Index:        idx,
		Addr:         peers[idx],
		Peers:        peers,
		Net:          net,
		TickInterval: 5 * time.Millisecond,
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	h.node = n
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n, h
}

func twoPeers() map[int]string {
	return map[int]string{0: "node-0", 1: "node-1"}
}

func TestConfigValidation(t *testing.T) {
	net := netsim.NewNetwork()
	cases := []Config{
		{},
		{Net: net},
		{Net: net, Addr: "a"},
		{Net: net, Addr: "a", Peers: map[int]string{0: "a"}},
		{Net: net, Addr: "a", Peers: map[int]string{1: "b"}, TickInterval: time.Millisecond},
	}
	for i, cfg := range cases {
		if _, err := NewNode(cfg, &echoHandler{}); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := NewNode(Config{
		Net: net, Addr: "a", Peers: map[int]string{0: "a"}, TickInterval: time.Millisecond,
	}, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

// TestServeEchoesBatchedReplies drives a request through the serve loop and
// reads the echoed reply.
func TestServeEchoesBatchedReplies(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	startNode(t, net, 0, peers)
	conn, err := net.Dial("client", peers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		if err := conn.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		got, err := conn.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("reply %d = %v", i, got)
		}
		netsim.Release(got)
	}
}

// TestOutboxCoalescesIntoOneSendBatch stages several messages and flushes:
// the peer must observe them all, in order, from one flush.
func TestOutboxCoalescesIntoOneSendBatch(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, _ := startNode(t, net, 0, peers)
	_, h1 := startNode(t, net, 1, peers)

	const staged = 8
	for i := 0; i < staged; i++ {
		n0.SendTo(1, []byte(fmt.Sprintf("m%d", i)))
	}
	n0.Flush()

	deadline := time.Now().Add(2 * time.Second)
	for {
		got := h1.received()
		if len(got) == staged {
			for i, m := range got {
				if string(m) != fmt.Sprintf("m%d", i) {
					t.Fatalf("message %d = %q, order not preserved", i, m)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer received %d/%d staged messages", len(got), staged)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBroadcastReachesAllPeers stages one broadcast across a 4-node group.
func TestBroadcastReachesAllPeers(t *testing.T) {
	net := netsim.NewNetwork()
	peers := map[int]string{0: "n0", 1: "n1", 2: "n2", 3: "n3"}
	n0, _ := startNode(t, net, 0, peers)
	var handlers []*echoHandler
	for i := 1; i < 4; i++ {
		_, h := startNode(t, net, i, peers)
		handlers = append(handlers, h)
	}
	n0.Broadcast([]byte("hello"))
	n0.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for _, h := range handlers {
		for len(h.received()) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("broadcast did not reach every peer")
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestStopDiscardsStagedMessages: messages staged but not flushed die with
// the node, and a flush after shutdown is a no-op.
func TestStopDiscardsStagedMessages(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, _ := startNode(t, net, 0, peers)
	_, h1 := startNode(t, net, 1, peers)
	n0.SendTo(1, []byte("doomed"))
	n0.Stop()
	n0.Flush()
	time.Sleep(20 * time.Millisecond)
	if got := h1.received(); len(got) != 0 {
		t.Fatalf("stopped node delivered %d staged messages", len(got))
	}
}

// TestRestartLifecycle exercises Stop → Restart → serve again, including
// the Rejoin hook and restart-of-running rejection.
func TestRestartLifecycle(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, h0 := startNode(t, net, 0, peers)
	if err := n0.Restart(); err == nil {
		t.Fatal("restart of a running node accepted")
	}
	n0.Stop()
	if !n0.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	if err := n0.Restart(); err != nil {
		t.Fatal(err)
	}
	if n0.Stopped() {
		t.Fatal("Stopped() = true after Restart")
	}
	h0.mu.Lock()
	rejoined := h0.rejoined
	h0.mu.Unlock()
	if rejoined != 1 {
		t.Fatalf("Rejoin called %d times, want 1", rejoined)
	}
	conn, err := net.Dial("client", peers[0])
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	defer conn.Close()
	if err := conn.Send([]byte{42}); err != nil {
		t.Fatal(err)
	}
	got, err := conn.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("echo after restart: %v", err)
	}
	netsim.Release(got)
}

// TestCrashTearsDownAddress: after Crash, dialing the node fails and a
// restart re-registers the listener.
func TestCrashTearsDownAddress(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, _ := startNode(t, net, 0, peers)
	n0.Crash()
	if _, err := net.Dial("client", peers[0]); err == nil {
		t.Fatal("dial to crashed node succeeded")
	}
	if err := n0.Restart(); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("client", peers[0])
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	conn.Close()
}

// TestGoRefusedWhenStopped: tracked goroutines only run on a live node.
func TestGoRefusedWhenStopped(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, _ := startNode(t, net, 0, peers)
	ran := make(chan struct{})
	if !n0.Go(func() { close(ran) }) {
		t.Fatal("Go refused on a running node")
	}
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("tracked goroutine never ran")
	}
	n0.Stop()
	if n0.Go(func() { t.Error("goroutine ran on a stopped node") }) {
		t.Fatal("Go accepted on a stopped node")
	}
}

// TestAdoptConnClosedOnShutdown: an adopted auxiliary connection is closed
// by Stop, so a goroutine parked in Recv on it wakes up.
func TestAdoptConnClosedOnShutdown(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, _ := startNode(t, net, 0, peers)
	startNode(t, net, 1, peers)
	conn, err := net.Dial(peers[0], peers[1])
	if err != nil {
		t.Fatal(err)
	}
	if !n0.AdoptConn(conn) {
		t.Fatal("AdoptConn refused on a running node")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = conn.Recv() // no traffic: only the shutdown close wakes this
	}()
	n0.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown did not close the adopted connection")
	}
}

// TestFlushCoalescing is the contract BenchmarkUpdateFanout measures: one
// flush of k staged messages arrives as one burst the receiver can drain
// with a single RecvBatch.
func TestFlushCoalescing(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, _ := startNode(t, net, 0, peers)

	// A raw listener stands in for the peer so the test can observe the
	// batch boundary directly.
	raw, err := net.Listen("raw-peer")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	n0.cfg.Peers[1] = "raw-peer" // route peer 1 at the raw listener
	accepted := make(chan *netsim.Conn, 1)
	go func() {
		c, err := raw.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	const k = 16
	for i := 0; i < k; i++ {
		n0.SendTo(1, []byte{byte(i)})
	}
	n0.Flush()
	select {
	case c := <-accepted:
		defer c.Close()
		batch, err := c.RecvBatch(nil)
		if err != nil {
			t.Fatal(err)
		}
		// All k staged messages were appended under one SendBatch, so the
		// first drain after delivery sees every one of them.
		if len(batch) != k {
			t.Fatalf("first drain got %d messages, want %d", len(batch), k)
		}
		for _, b := range batch {
			netsim.Release(b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flush never dialed the peer")
	}
}

// TestHandlerRebroadcastFlushedAfterBatch: a handler that re-broadcasts
// inbound traffic relies on the runtime's end-of-batch flush.
func TestHandlerRebroadcastFlushedAfterBatch(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	_, h0 := startNode(t, net, 0, peers)
	h0.broadcast = true
	_, h1 := startNode(t, net, 1, peers)

	conn, err := net.Dial("client", peers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("fanout")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(h1.received()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-broadcast never reached the peer")
		}
		time.Sleep(time.Millisecond)
	}
	if string(h1.received()[0]) != "fanout" {
		t.Fatalf("peer got %q", h1.received()[0])
	}
}

// TestPeerLinkIsFullDuplex is the tentpole contract: a message staged on a
// peer outbox travels over the cached dialed connection, the peer's serve
// loop answers on that same connection, and the sender's reader loop
// delivers the reply to HandlePeerReply — no second connection, no unread
// ack pile-up.
func TestPeerLinkIsFullDuplex(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	n0, h0 := startNode(t, net, 0, peers)
	startNode(t, net, 1, peers) // echoes every payload as a reply

	const sent = 5
	for i := 0; i < sent; i++ {
		n0.SendTo(1, []byte{byte(i)})
	}
	n0.Flush()

	deadline := time.Now().Add(2 * time.Second)
	for {
		replies := h0.repliesFrom(1)
		if len(replies) == sent {
			for i, r := range replies {
				if len(r) != 1 || r[0] != byte(i) {
					t.Fatalf("reply %d = %v, echo order not preserved", i, r)
				}
			}
			if net.OpenConns() > 2 {
				// One bidirectional pair (two endpoints) carries both
				// directions; a dedicated reply dial would show up here.
				t.Fatalf("%d conns open, want the single duplex pair", net.OpenConns())
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reader loop saw %d/%d replies", len(replies), sent)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPeerReaderShutdownRace races the peer reader loops against
// Stop/Crash/Restart while reply traffic is in flight — run under -race,
// this pins that reader registration, shutdown close, and the restart
// generation change never touch runtime state unsynchronized.
func TestPeerReaderShutdownRace(t *testing.T) {
	net := netsim.NewNetwork()
	peers := map[int]string{0: "race-0", 1: "race-1", 2: "race-2"}
	n0, _ := startNode(t, net, 0, peers)
	startNode(t, net, 1, peers)
	n2, _ := startNode(t, net, 2, peers)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n0.Broadcast([]byte{byte(i)}) // peers echo: replies flow back
			n0.Flush()
		}
	}()
	// Churn one peer through crash/restart while the broadcaster's reader
	// loops are draining echoes from it.
	for i := 0; i < 5; i++ {
		time.Sleep(2 * time.Millisecond)
		n2.Crash()
		if err := n2.Restart(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	n0.Stop() // with readers mid-drain: must close their conns and terminate
}

// shedHandler is an echoHandler that also records OutboxShedHandler
// notifications.
type shedHandler struct {
	echoHandler
	shedPeers map[int]int
}

func (h *shedHandler) HandleOutboxShed(peer int, dropped int) {
	h.mu.Lock()
	if h.shedPeers == nil {
		h.shedPeers = make(map[int]int)
	}
	h.shedPeers[peer] += dropped
	h.mu.Unlock()
}

func (h *shedHandler) shedFor(peer int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shedPeers[peer]
}

// TestOutboxLimitShedsOldest: with OutboxLimit set, staging past the bound
// sheds the oldest staged messages, the flush delivers only the newest
// limit-many in order, and the handler hears about the drop count exactly
// once, from Flush.
func TestOutboxLimitShedsOldest(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	h0 := &shedHandler{}
	n0, err := NewNode(Config{
		Index:        0,
		Addr:         peers[0],
		Peers:        peers,
		Net:          net,
		TickInterval: time.Hour, // keep the timer loop from flushing early
		OutboxLimit:  4,
	}, h0)
	if err != nil {
		t.Fatal(err)
	}
	h0.node = n0
	if err := n0.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n0.Stop)
	_, h1 := startNode(t, net, 1, peers)

	for i := 0; i < 6; i++ {
		n0.SendTo(1, []byte(fmt.Sprintf("m%d", i)))
	}
	if got := h0.shedFor(1); got != 0 {
		t.Fatalf("handler notified from stage (%d) — notification must come from Flush", got)
	}
	n0.Flush()
	if got := h0.shedFor(1); got != 2 {
		t.Fatalf("shed notification = %d dropped, want 2", got)
	}

	want := []string{"m2", "m3", "m4", "m5"}
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := h1.received()
		if len(got) == len(want) {
			for i, m := range got {
				if string(m) != want[i] {
					t.Fatalf("message %d = %q, want %q", i, m, want[i])
				}
			}
			break
		}
		if len(got) > len(want) {
			t.Fatalf("peer received %d messages, want %d", len(got), len(want))
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer received %d/%d surviving messages", len(got), len(want))
		}
		time.Sleep(time.Millisecond)
	}
	// A second flush with nothing new shed must not re-notify.
	n0.Flush()
	if got := h0.shedFor(1); got != 2 {
		t.Fatalf("shed count after idle flush = %d, want 2", got)
	}
}

// TestTicksFire: the timer loop drives Handler.Tick.
func TestTicksFire(t *testing.T) {
	net := netsim.NewNetwork()
	peers := twoPeers()
	_, h0 := startNode(t, net, 0, peers)
	deadline := time.Now().Add(2 * time.Second)
	for {
		h0.mu.Lock()
		ticks := h0.ticks
		h0.mu.Unlock()
		if ticks >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d ticks fired", ticks)
		}
		time.Sleep(time.Millisecond)
	}
}
