// Package store is the pluggable persistence layer beneath the replication
// engines: an append-only record log plus a snapshot slot, keyed by the
// engine's own sequence numbers.
//
// Both engines journal through the same narrow interface. The PB primary
// appends its encoded update stream (the ack-windowed deltas it already
// builds for broadcast — pb.DiffSnapshot patches framed by the wire
// encoding) and overwrites the snapshot slot at every checkpoint; a backup
// journals the updates it installs. The SMR replica appends its executed
// order log and snapshots the (state, response-cache) pair at the same
// cadence. On restart the engine loads the snapshot, replays the record
// suffix, and only then falls back to protocol catch-up for whatever the
// disk does not cover — which is how a whole-cluster power loss (the
// `blackout` fault preset) becomes survivable: with every peer's memory
// zeroed there is no donor left to resync from, and the store is the only
// copy of the state.
//
// Two implementations ship: Mem, the zero-allocation default that keeps
// today's semantics (nothing durable, restart loses everything), and WAL, a
// real append-only log + snapshot file with CRC-framed records, torn-tail
// truncation on open, and a configurable fsync cadence.
package store

import "time"

// Store persists one replica's log suffix and snapshot.
//
// Sequence numbers are the engine's: records must be appended contiguously
// (each Append's seq one past the previous, or anywhere after a
// WriteSnapshot/TruncateTo reset the frontier). Implementations are safe
// for concurrent use.
type Store interface {
	// Durable reports whether writes survive a restart. Engines use it to
	// skip record encoding entirely on the in-memory store, keeping the
	// zero-persistence hot path allocation-free.
	Durable() bool

	// Append journals one record at seq. The store takes ownership of rec.
	// A seq that is not contiguous with the journaled tail is an error —
	// it means a stale writer (a crashed replica object whose successor
	// already recovered) is still flushing.
	Append(seq uint64, rec []byte) error

	// WriteSnapshot replaces the snapshot slot with snap, covering every
	// sequence at or below seq. It does not truncate the log; callers pair
	// it with TruncateTo once the snapshot is safely down.
	WriteSnapshot(seq uint64, snap []byte) error

	// TruncateTo drops journaled records below seq.
	TruncateTo(seq uint64) error

	// Load returns everything the store holds. The caller owns the result.
	Load() (Recovery, error)

	// Sync flushes buffered writes to stable storage, regardless of the
	// configured cadence.
	Sync() error

	// Reset wipes the store — log and snapshot both. The engines' sequence
	// numbering restarts from scratch at a re-randomization epoch boundary,
	// so a frontier carried across one would poison recovery.
	Reset() error

	// Close releases the store's resources. A closed store rejects writes.
	Close() error
}

// TruncateAll, passed to TruncateTo, clears the whole journaled log: it is
// beyond any real sequence, so every record is below it. Engines use it
// after WriteSnapshot to drop records the snapshot supersedes — including
// any orphans journaled above the snapshot's sequence by an abandoned
// update stream.
const TruncateAll = ^uint64(0)

// Recovery is the full content of a store at open/load time: the snapshot
// slot (if ever written) and the journaled record suffix.
type Recovery struct {
	HasSnapshot bool
	SnapshotSeq uint64 // highest sequence the snapshot covers
	Snapshot    []byte
	LogStart    uint64   // sequence of Records[0]
	Records     [][]byte // contiguous from LogStart
}

// Empty reports whether the store held nothing to recover from.
func (r Recovery) Empty() bool { return !r.HasSnapshot && len(r.Records) == 0 }

// Frontier returns the highest sequence the recovery covers, and false when
// it covers nothing.
func (r Recovery) Frontier() (uint64, bool) {
	if len(r.Records) > 0 {
		return r.LogStart + uint64(len(r.Records)) - 1, true
	}
	if r.HasSnapshot {
		return r.SnapshotSeq, true
	}
	return 0, false
}

// PowerFailer is implemented by stores that can model a power loss: buffered
// writes beyond the last sync point are discarded, as if the machine lost
// power mid-write. The whole-cluster blackout fault uses it so that the
// fsync cadence is a real durability knob, not a no-op.
type PowerFailer interface {
	PowerFail() error
}

// Staller is implemented by stores whose sync path can be slowed down — the
// disk-stall fault injection point.
type Staller interface {
	SetStall(d time.Duration)
}

// Mem is the in-memory default: a pure sink. Nothing is retained, nothing
// survives a restart — exactly today's semantics — and every method is
// allocation-free, pinned by TestMemAllocationFree.
type Mem struct{}

// NewMem returns the no-op in-memory store.
func NewMem() *Mem { return &Mem{} }

// Durable implements Store.
func (*Mem) Durable() bool { return false }

// Append implements Store.
func (*Mem) Append(uint64, []byte) error { return nil }

// WriteSnapshot implements Store.
func (*Mem) WriteSnapshot(uint64, []byte) error { return nil }

// TruncateTo implements Store.
func (*Mem) TruncateTo(uint64) error { return nil }

// Load implements Store.
func (*Mem) Load() (Recovery, error) { return Recovery{}, nil }

// Sync implements Store.
func (*Mem) Sync() error { return nil }

// Reset implements Store.
func (*Mem) Reset() error { return nil }

// Close implements Store.
func (*Mem) Close() error { return nil }
