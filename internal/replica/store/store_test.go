package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// walCfg returns a test config: fsync disabled (the durability model — the
// synced frontier — is identical, CI just skips the syscalls).
func walCfg(t *testing.T, syncEvery int) WALConfig {
	t.Helper()
	return WALConfig{Dir: t.TempDir(), SyncEvery: syncEvery, DisableFsync: true}
}

func mustOpen(t *testing.T, cfg WALConfig) *WAL {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestWALRoundTrip(t *testing.T) {
	cfg := walCfg(t, 1)
	s := mustOpen(t, cfg)
	if !s.Durable() {
		t.Fatal("WAL must report Durable")
	}
	if err := s.WriteSnapshot(9, []byte("snap@9")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for i := 10; i < 20; i++ {
		if err := s.Append(uint64(i), rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, cfg)
	defer s2.Close()
	got, err := s2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !got.HasSnapshot || got.SnapshotSeq != 9 || string(got.Snapshot) != "snap@9" {
		t.Fatalf("snapshot = %+v, want snap@9 covering 9", got)
	}
	if got.LogStart != 10 || len(got.Records) != 10 {
		t.Fatalf("log = start %d len %d, want start 10 len 10", got.LogStart, len(got.Records))
	}
	for i, r := range got.Records {
		if !bytes.Equal(r, rec(10+i)) {
			t.Fatalf("record %d = %q, want %q", i, r, rec(10+i))
		}
	}
	if f, ok := got.Frontier(); !ok || f != 19 {
		t.Fatalf("Frontier = %d,%v, want 19,true", f, ok)
	}
}

func TestWALTornTailTruncation(t *testing.T) {
	cfg := walCfg(t, 1)
	s := mustOpen(t, cfg)
	for i := 0; i < 5; i++ {
		if err := s.Append(uint64(i), rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: chop the last frame in half, as a crash mid-write
	// would.
	path := filepath.Join(cfg.Dir, walLogName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, cfg)
	got, err := s2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Records) != 4 {
		t.Fatalf("after torn tail: %d records, want 4", len(got.Records))
	}
	// The truncated store must accept a re-append of the lost sequence.
	if err := s2.Append(4, rec(4)); err != nil {
		t.Fatalf("re-append after truncation: %v", err)
	}
	s2.Close()
}

func TestWALCorruptFrameTruncates(t *testing.T) {
	cfg := walCfg(t, 1)
	s := mustOpen(t, cfg)
	for i := 0; i < 3; i++ {
		if err := s.Append(uint64(i), rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	// Flip a bit in the middle frame's payload: the scan must keep only
	// the frames before it, dropping the still-valid frame after.
	path := filepath.Join(cfg.Dir, walLogName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := walFrameHeader + len(rec(0))
	b[frame+walFrameHeader+2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, cfg)
	defer s2.Close()
	got, _ := s2.Load()
	if len(got.Records) != 1 || !bytes.Equal(got.Records[0], rec(0)) {
		t.Fatalf("after mid-log corruption: %d records, want 1 (only the prefix)", len(got.Records))
	}
}

func TestWALPowerFailLosesUnsyncedTail(t *testing.T) {
	for _, syncEvery := range []int{1, 4} {
		t.Run(fmt.Sprintf("syncEvery=%d", syncEvery), func(t *testing.T) {
			cfg := walCfg(t, syncEvery)
			s := mustOpen(t, cfg)
			for i := 0; i < 10; i++ {
				if err := s.Append(uint64(i), rec(i)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			// 10 appends at cadence n sync after append 10/n*n; the rest
			// is buffered and must vanish at power failure.
			wantSurvive := 10 / syncEvery * syncEvery
			if err := s.PowerFail(); err != nil {
				t.Fatalf("PowerFail: %v", err)
			}
			got, err := s.Load()
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if len(got.Records) != wantSurvive {
				t.Fatalf("syncEvery=%d: %d records survive power fail, want %d",
					syncEvery, len(got.Records), wantSurvive)
			}
			// Appends resume where the surviving log ends.
			if err := s.Append(uint64(wantSurvive), rec(wantSurvive)); err != nil {
				t.Fatalf("append after power fail: %v", err)
			}
			s.Close()

			// And the same content comes back from a fresh Open.
			s2 := mustOpen(t, cfg)
			defer s2.Close()
			got2, _ := s2.Load()
			if len(got2.Records) != wantSurvive+1 {
				t.Fatalf("reopen after power fail: %d records, want %d",
					len(got2.Records), wantSurvive+1)
			}
		})
	}
}

func TestWALTruncateTo(t *testing.T) {
	cfg := walCfg(t, 1)
	s := mustOpen(t, cfg)
	for i := 0; i < 8; i++ {
		if err := s.Append(uint64(i), rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.TruncateTo(5); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	got, _ := s.Load()
	if got.LogStart != 5 || len(got.Records) != 3 {
		t.Fatalf("after TruncateTo(5): start %d len %d, want 5/3", got.LogStart, len(got.Records))
	}
	// Truncating everything resets the log; the next append restarts it.
	if err := s.TruncateTo(100); err != nil {
		t.Fatalf("TruncateTo(100): %v", err)
	}
	if err := s.Append(100, rec(100)); err != nil {
		t.Fatalf("append after full truncation: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, cfg)
	defer s2.Close()
	got2, _ := s2.Load()
	if got2.LogStart != 100 || len(got2.Records) != 1 {
		t.Fatalf("reopen: start %d len %d, want 100/1", got2.LogStart, len(got2.Records))
	}
}

func TestWALRejectsGappedAppend(t *testing.T) {
	s := mustOpen(t, walCfg(t, 1))
	defer s.Close()
	if err := s.Append(1, rec(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append(3, rec(3)); err == nil {
		t.Fatal("gapped append must fail: a stale writer is flushing into a recovered log")
	}
	if err := s.Append(2, rec(2)); err != nil {
		t.Fatalf("contiguous append after rejected gap: %v", err)
	}
}

func TestWALReset(t *testing.T) {
	cfg := walCfg(t, 1)
	s := mustOpen(t, cfg)
	if err := s.WriteSnapshot(3, []byte("snap@3")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for i := 4; i < 8; i++ {
		if err := s.Append(uint64(i), rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !got.Empty() {
		t.Fatalf("after Reset: %+v, want empty", got)
	}
	// A new epoch restarts sequence numbering from scratch.
	if err := s.Append(1, rec(1)); err != nil {
		t.Fatalf("append after Reset: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, cfg)
	defer s2.Close()
	got2, _ := s2.Load()
	if got2.HasSnapshot || got2.LogStart != 1 || len(got2.Records) != 1 {
		t.Fatalf("reopen after Reset: %+v, want only seq 1", got2)
	}
}

func TestWALCorruptSnapshotTreatedAsAbsent(t *testing.T) {
	cfg := walCfg(t, 1)
	s := mustOpen(t, cfg)
	if err := s.WriteSnapshot(7, []byte("snapshot-payload")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s.Close()
	path := filepath.Join(cfg.Dir, walSnapName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, cfg)
	defer s2.Close()
	got, _ := s2.Load()
	if got.HasSnapshot {
		t.Fatal("corrupt snapshot must load as absent, not as garbage state")
	}
}

func TestHashDirDetectsContentChange(t *testing.T) {
	cfg := walCfg(t, 1)
	s := mustOpen(t, cfg)
	if err := s.Append(0, rec(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	h1, err := HashDir(cfg.Dir)
	if err != nil {
		t.Fatalf("HashDir: %v", err)
	}
	h1again, _ := HashDir(cfg.Dir)
	if h1 != h1again {
		t.Fatal("HashDir must be deterministic over unchanged content")
	}
	s2 := mustOpen(t, cfg)
	if err := s2.Append(1, rec(1)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	h2, _ := HashDir(cfg.Dir)
	if h1 == h2 {
		t.Fatal("HashDir must change when the log grows")
	}
}

// TestMemAllocationFree pins the zero-persistence contract: the acceptance
// criterion that a configuration without durability stays allocation-free
// on the hot path.
func TestMemAllocationFree(t *testing.T) {
	m := NewMem()
	payload := []byte("update")
	allocs := testing.AllocsPerRun(1000, func() {
		if m.Durable() {
			t.Fatal("Mem must not report Durable")
		}
		_ = m.Append(1, payload)
		_ = m.WriteSnapshot(1, payload)
		_ = m.TruncateTo(1)
		_ = m.Sync()
		_ = m.Reset()
	})
	if allocs != 0 {
		t.Fatalf("Mem hot path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkWALAppend measures the persistence hot path — one journaled
// record per executed request — across the fsync-cadence axis. The
// no-fsync variant isolates the framing/buffering cost the engines pay
// even when CI disables physical syncs.
func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 256)
	for _, bc := range []struct {
		name string
		cfg  WALConfig
	}{
		{"fsync-every-1", WALConfig{SyncEvery: 1}},
		{"fsync-every-64", WALConfig{SyncEvery: 64}},
		{"no-fsync", WALConfig{SyncEvery: 64, DisableFsync: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := bc.cfg
			cfg.Dir = b.TempDir()
			s, err := Open(cfg)
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(uint64(i), payload); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
		})
	}
}
