package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fortress/internal/metrics"
)

// WAL file layout inside Dir:
//
//	wal.log — append-only record frames:
//	          8B seq (BE) | 4B payload length (BE) | 4B CRC-32C | payload
//	          The CRC covers the seq and length fields plus the payload, so
//	          a torn or bit-flipped header is caught, not just a torn body.
//	snap    — snapshot slot, rewritten whole via tmp+rename:
//	          8B covered seq (BE) | 4B CRC-32C | payload
//
// Open scans wal.log and truncates at the first bad frame (short read, CRC
// mismatch, non-contiguous sequence): a torn tail from a crash mid-append
// silently shortens the log rather than poisoning recovery. A corrupt snap
// file is treated as absent.
const (
	walLogName  = "wal.log"
	walSnapName = "snap"

	walFrameHeader = 16 // seq + len + crc
	walSnapHeader  = 12 // seq + crc

	// walMaxRecord bounds a single frame's payload so a corrupt length
	// field cannot drive a giant allocation during the open scan.
	walMaxRecord = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by writes to a closed store.
var ErrClosed = errors.New("store: closed")

// WALConfig configures a WAL store.
type WALConfig struct {
	// Dir is the directory holding the log and snapshot files; it is
	// created if absent. Each replica needs its own directory.
	Dir string

	// SyncEvery is the fsync cadence: every n-th Append flushes and syncs
	// the log, so a power failure loses at most n-1 records. 0 means 1
	// (sync every append). Snapshot writes always sync.
	SyncEvery int

	// DisableFsync skips the physical fsync syscalls while keeping the
	// sync bookkeeping (the synced frontier advances at the same cadence,
	// and PowerFail still discards everything past it). Tests use it to
	// keep the durability model exact without paying disk latency in CI.
	DisableFsync bool

	// Metrics, when non-nil, receives the store's instruments (append and
	// snapshot counters, a sync-latency histogram, injected-stall time) and
	// its stall trace events, labelled by Node. Observational only.
	Metrics *metrics.Registry
	// Node labels this store's instruments — the owning replica's address.
	// Defaults to Dir when empty.
	Node string
}

// WAL is the durable store: an append-only CRC-framed log plus a snapshot
// file, with torn-tail truncation on open and a configurable fsync cadence.
// It implements Store, PowerFailer and Staller.
type WAL struct {
	cfg   WALConfig
	stall atomic.Int64 // injected sync latency, nanoseconds

	// Instruments (nil no-ops when WALConfig.Metrics is unset).
	node        string
	mAppends    *metrics.Counter // records journaled
	mSnapshots  *metrics.Counter // snapshot-slot rewrites
	mStallNanos *metrics.Counter // injected stall time slept, ns
	hSync       *metrics.Histogram
	trace       *metrics.TraceRing

	mu     sync.Mutex
	closed bool
	file   *os.File
	w      *bufio.Writer
	size   int64 // logical file size including buffered bytes
	synced int64 // file offset covered by the last sync
	unsync int   // appends since the last sync

	// In-memory mirror of the journaled state, so Load and TruncateTo
	// never re-read the disk.
	logStart uint64
	recs     [][]byte
	ends     []int64 // ends[i]: file offset one past recs[i]'s frame
	hasSnap  bool
	snapSeq  uint64
	snap     []byte
}

var (
	_ Store       = (*WAL)(nil)
	_ PowerFailer = (*WAL)(nil)
	_ Staller     = (*WAL)(nil)
)

// Open opens (or creates) the WAL in cfg.Dir, scanning the existing log
// with torn-tail truncation.
func Open(cfg WALConfig) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: open wal: empty dir")
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s := &WAL{cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		s.node = cfg.Node
		if s.node == "" {
			s.node = cfg.Dir
		}
		label := fmt.Sprintf("{node=%q}", s.node)
		s.mAppends = reg.Counter("store_appends_total"+label, metrics.Timing)
		s.mSnapshots = reg.Counter("store_snapshots_total"+label, metrics.Timing)
		s.mStallNanos = reg.Counter("store_stall_ns_total"+label, metrics.Timing)
		s.hSync = reg.Histogram("store_sync_ns"+label, metrics.DefaultLatencyBuckets)
		s.trace = reg.Ring(s.node, 0)
	}
	if err := s.loadSnapshotFile(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(cfg.Dir, walLogName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.file = f
	if err := s.scanLog(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(s.size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// loadSnapshotFile reads the snapshot slot; a missing or corrupt file
// leaves the slot empty.
func (s *WAL) loadSnapshotFile() error {
	b, err := os.ReadFile(filepath.Join(s.cfg.Dir, walSnapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(b) < walSnapHeader {
		return nil // torn snapshot: treat as absent
	}
	seq := binary.BigEndian.Uint64(b[0:8])
	sum := binary.BigEndian.Uint32(b[8:12])
	payload := b[walSnapHeader:]
	crc := crc32.Checksum(b[0:8], crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	if crc != sum {
		return nil // corrupt snapshot: treat as absent
	}
	s.hasSnap = true
	s.snapSeq = seq
	s.snap = payload
	return nil
}

// scanLog rebuilds the in-memory mirror from wal.log, truncating the file
// at the first bad frame.
func (s *WAL) scanLog() error {
	info, err := s.file.Stat()
	if err != nil {
		return fmt.Errorf("store: scan wal: %w", err)
	}
	r := bufio.NewReader(io.NewSectionReader(s.file, 0, info.Size()))
	var off int64
	header := make([]byte, walFrameHeader)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			break // clean EOF or torn header
		}
		seq := binary.BigEndian.Uint64(header[0:8])
		length := binary.BigEndian.Uint32(header[8:12])
		sum := binary.BigEndian.Uint32(header[12:16])
		if length > walMaxRecord {
			break // corrupt length field
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn body
		}
		crc := crc32.Checksum(header[0:12], crcTable)
		crc = crc32.Update(crc, crcTable, payload)
		if crc != sum {
			break // bit rot or torn write
		}
		if len(s.recs) > 0 && seq != s.logStart+uint64(len(s.recs)) {
			break // non-contiguous: stale frames past a truncation point
		}
		if len(s.recs) == 0 {
			s.logStart = seq
		}
		off += int64(walFrameHeader) + int64(length)
		s.recs = append(s.recs, payload)
		s.ends = append(s.ends, off)
	}
	if off < info.Size() {
		if err := s.file.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	s.size = off
	s.synced = off
	return nil
}

// Durable implements Store.
func (*WAL) Durable() bool { return true }

// Append implements Store.
func (s *WAL) Append(seq uint64, rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.recs) > 0 && seq != s.logStart+uint64(len(s.recs)) {
		return fmt.Errorf("store: append seq %d, journaled tail is %d",
			seq, s.logStart+uint64(len(s.recs))-1)
	}
	if len(s.recs) == 0 {
		s.logStart = seq
	}
	var header [walFrameHeader]byte
	binary.BigEndian.PutUint64(header[0:8], seq)
	binary.BigEndian.PutUint32(header[8:12], uint32(len(rec)))
	crc := crc32.Checksum(header[0:12], crcTable)
	crc = crc32.Update(crc, crcTable, rec)
	binary.BigEndian.PutUint32(header[12:16], crc)
	if _, err := s.w.Write(header[:]); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if _, err := s.w.Write(rec); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.size += int64(walFrameHeader) + int64(len(rec))
	s.recs = append(s.recs, rec)
	s.ends = append(s.ends, s.size)
	s.mAppends.Inc()
	s.unsync++
	if s.unsync >= s.cfg.SyncEvery {
		return s.syncLocked()
	}
	return nil
}

// syncLocked flushes the write buffer and advances the synced frontier,
// paying the injected stall and (unless disabled) a physical fsync.
func (s *WAL) syncLocked() error {
	if d := time.Duration(s.stall.Load()); d > 0 {
		time.Sleep(d)
		s.mStallNanos.Add(uint64(d))
	}
	var start time.Time
	if s.hSync != nil {
		start = time.Now()
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	if !s.cfg.DisableFsync {
		if err := s.file.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	if s.hSync != nil {
		s.hSync.Observe(uint64(time.Since(start)))
	}
	s.synced = s.size
	s.unsync = 0
	return nil
}

// Sync implements Store.
func (s *WAL) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

// WriteSnapshot implements Store. The snapshot is staged to a temp file and
// renamed into place, so a crash mid-write leaves the previous snapshot
// intact; it is always synced regardless of cadence.
func (s *WAL) WriteSnapshot(seq uint64, snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if d := time.Duration(s.stall.Load()); d > 0 {
		time.Sleep(d)
		s.mStallNanos.Add(uint64(d))
	}
	var header [walSnapHeader]byte
	binary.BigEndian.PutUint64(header[0:8], seq)
	crc := crc32.Checksum(header[0:8], crcTable)
	crc = crc32.Update(crc, crcTable, snap)
	binary.BigEndian.PutUint32(header[8:12], crc)

	path := filepath.Join(s.cfg.Dir, walSnapName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if _, err = f.Write(header[:]); err == nil {
		_, err = f.Write(snap)
	}
	if err == nil && !s.cfg.DisableFsync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	s.hasSnap = true
	s.snapSeq = seq
	s.snap = append([]byte(nil), snap...)
	s.mSnapshots.Inc()
	return nil
}

// TruncateTo implements Store. The log is rewritten whole (it is bounded by
// the engine's retention window, and truncation rides the cold checkpoint
// path) and the rewrite counts as synced.
func (s *WAL) TruncateTo(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.recs) > 0 && seq <= s.logStart {
		return nil
	}
	keep := s.recs[:0:0]
	newStart := seq
	if n := uint64(len(s.recs)); n > 0 && seq < s.logStart+n {
		keep = append(keep, s.recs[seq-s.logStart:]...)
	}
	return s.rewriteLocked(newStart, keep)
}

// rewriteLocked replaces wal.log with the given records via tmp+rename and
// repoints the append handle at the new file.
func (s *WAL) rewriteLocked(start uint64, recs [][]byte) error {
	path := filepath.Join(s.cfg.Dir, walLogName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: rewrite wal: %w", err)
	}
	w := bufio.NewWriter(f)
	var size int64
	ends := make([]int64, 0, len(recs))
	werr := func() error {
		for i, rec := range recs {
			var header [walFrameHeader]byte
			binary.BigEndian.PutUint64(header[0:8], start+uint64(i))
			binary.BigEndian.PutUint32(header[8:12], uint32(len(rec)))
			crc := crc32.Checksum(header[0:12], crcTable)
			crc = crc32.Update(crc, crcTable, rec)
			binary.BigEndian.PutUint32(header[12:16], crc)
			if _, err := w.Write(header[:]); err != nil {
				return err
			}
			if _, err := w.Write(rec); err != nil {
				return err
			}
			size += int64(walFrameHeader) + int64(len(rec))
			ends = append(ends, size)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if !s.cfg.DisableFsync {
			return f.Sync()
		}
		return nil
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rewrite wal: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rewrite wal: %w", err)
	}
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: rewrite wal: %w", err)
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		return fmt.Errorf("store: rewrite wal: %w", err)
	}
	s.file.Close()
	s.file = nf
	s.w = bufio.NewWriter(nf)
	s.size = size
	s.synced = size
	s.unsync = 0
	s.logStart = start
	s.recs = recs
	s.ends = ends
	return nil
}

// Reset implements Store: the log is rewritten empty and the snapshot file
// removed, returning the directory to its just-created state.
func (s *WAL) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.rewriteLocked(0, nil); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.cfg.Dir, walSnapName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: reset: %w", err)
	}
	s.hasSnap = false
	s.snapSeq = 0
	s.snap = nil
	return nil
}

// Load implements Store.
func (s *WAL) Load() (Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Recovery{}, ErrClosed
	}
	rec := Recovery{
		HasSnapshot: s.hasSnap,
		SnapshotSeq: s.snapSeq,
		LogStart:    s.logStart,
	}
	if s.hasSnap {
		rec.Snapshot = append([]byte(nil), s.snap...)
	}
	rec.Records = make([][]byte, len(s.recs))
	for i, r := range s.recs {
		rec.Records[i] = append([]byte(nil), r...)
	}
	return rec, nil
}

// PowerFail implements PowerFailer: everything past the synced frontier —
// buffered frames and, per the durability model, frames flushed but not
// fsynced — is discarded, as a power loss would.
func (s *WAL) PowerFail() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.w.Reset(io.Discard) // drop buffered bytes without flushing them
	if err := s.file.Truncate(s.synced); err != nil {
		return fmt.Errorf("store: power fail: %w", err)
	}
	if _, err := s.file.Seek(s.synced, io.SeekStart); err != nil {
		return fmt.Errorf("store: power fail: %w", err)
	}
	s.w.Reset(s.file)
	s.size = s.synced
	s.unsync = 0
	keep := len(s.ends)
	for keep > 0 && s.ends[keep-1] > s.synced {
		keep--
	}
	s.recs = s.recs[:keep]
	s.ends = s.ends[:keep]
	return nil
}

// SetStall implements Staller: every subsequent sync point (cadenced log
// syncs and snapshot writes) sleeps d first, modeling a stalling disk.
// A non-positive d clears the stall.
func (s *WAL) SetStall(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.stall.Store(int64(d))
	// Seq carries the injected latency in nanoseconds (0 = stall cleared).
	s.trace.Record(metrics.KindWALStall, s.node, -1, uint64(d))
}

// Close implements Store, flushing and syncing first.
func (s *WAL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.syncLocked()
	s.closed = true
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	return err
}

// HashDir returns an FNV-1a hash over a store directory's file names and
// contents (sorted, recursive), used by determinism tests to compare the
// on-disk state two runs left behind.
func HashDir(dir string) (uint64, error) {
	h := fnv.New64a()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: hash dir: %w", err)
	}
	sort.Strings(files)
	for _, path := range files {
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return 0, fmt.Errorf("store: hash dir: %w", err)
		}
		h.Write([]byte(rel))
		h.Write([]byte{0})
		b, err := os.ReadFile(path)
		if err != nil {
			return 0, fmt.Errorf("store: hash dir: %w", err)
		}
		h.Write(b)
		h.Write([]byte{0})
	}
	return h.Sum64(), nil
}
