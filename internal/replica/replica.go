// Package replica defines the backend-neutral surface of the replicated
// server tier: the Server interface both replication engines (pb, smr)
// implement, and the Backend selector fortress deployments and experiment
// grids use to choose between them.
//
// The paper's central comparison (§1, §4) is between replication styles —
// primary-backup, where only the primary executes, versus state machine
// replication, where every replica executes a leader-sequenced order. The
// executable stack mirrors that axis: both engines are built on the shared
// node runtime in replica/core and expose the same lifecycle and wire-level
// request surface, so a FORTRESS deployment (and every fault sweep driving
// one) can swap the server tier's replication style without touching the
// proxy tier, the attacker, or the fault scheduler.
package replica

import "fmt"

// Server is the backend-neutral view of one server replica: what the
// fortress assembly layer and fault schedules need, independent of the
// replication protocol behind it. Both pb.Replica and smr.Replica satisfy
// it.
type Server interface {
	// Index returns the replica's unique server index.
	Index() int
	// Addr returns the replica's netsim address.
	Addr() string
	// PublicKey exposes the response-signing verification key.
	PublicKey() []byte
	// Executed reports how many requests this replica has executed (or, for
	// a PB backup, applied as state updates) — the convergence metric
	// catch-up tests compare across replicas.
	Executed() uint64
	// Stop shuts the replica down and waits for its goroutines.
	Stop()
	// Crash makes the replica inert and tears its address out of the
	// network, observably to peers.
	Crash()
	// Restart re-opens a stopped or crashed replica in place.
	Restart() error
}

// LeaseReader is the optional read-lease surface of a Server: a backend
// whose replicas can answer read-only requests locally under a
// heartbeat-bounded lease (smr with Config.Leases on) reports whether this
// replica currently holds a valid one. Requests themselves still arrive
// over the wire — proxies tag reads in the doubly-signed request and a
// replica without a valid lease falls back to ordering them — so the
// interface only exposes the lease state, for tests and experiments that
// assert on it. pb.Replica does not implement it: backups have no safe
// local read path.
type LeaseReader interface {
	LeaseValid() bool
}

// Backend selects the server tier's replication engine.
type Backend int

const (
	// BackendPB is classical primary-backup (paper §3) — the default and
	// the tier FORTRESS fortifies.
	BackendPB Backend = iota
	// BackendSMR is state machine replication (paper Def. 1): a
	// leader-sequenced total order executed by every replica.
	BackendSMR
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendPB:
		return "pb"
	case BackendSMR:
		return "smr"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend resolves a backend name ("pb" or "smr").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "pb":
		return BackendPB, nil
	case "smr":
		return BackendSMR, nil
	default:
		return 0, fmt.Errorf("replica: unknown backend %q (want pb or smr)", s)
	}
}

// BackendNames returns the known backend names, in presentation order.
func BackendNames() []string { return []string{"pb", "smr"} }
