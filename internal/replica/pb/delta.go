package pb

import "hash/fnv"

// Snapshot deltas: the incremental-update encoding the primary ships in
// place of a full state snapshot. A delta is the minimal contiguous edit
// turning the previous snapshot into the next one — the bytes outside the
// longest common prefix and suffix of the two encodings. Every service in
// the repo snapshots canonically (sorted keys, canonical JSON), so a
// request that touches one key perturbs one contiguous region and the
// delta scales with the state actually touched, not with total state size.
// Correctness never depends on that locality: a delta that would not
// reproduce the primary's bytes exactly is rejected by the base hash and
// the backup falls back to a full checkpoint.

// DiffSnapshot computes the delta from old to new: new equals
// old[:prefix] + patch + old[len(old)-suffix:]. Exported for the fan-out
// benchmark, which compares delta-sized against full-snapshot-sized update
// payloads.
func DiffSnapshot(old, new []byte) (prefix int, patch []byte, suffix int) {
	limit := min(len(old), len(new))
	for prefix < limit && old[prefix] == new[prefix] {
		prefix++
	}
	for suffix < limit-prefix && old[len(old)-1-suffix] == new[len(new)-1-suffix] {
		suffix++
	}
	return prefix, new[prefix : len(new)-suffix], suffix
}

// ApplyDelta reconstructs the new snapshot from the old one and a delta
// produced by DiffSnapshot. It reports false when the delta cannot apply to
// old (trim lengths out of range), which a backup treats as a chain break.
func ApplyDelta(old []byte, prefix int, patch []byte, suffix int) ([]byte, bool) {
	if prefix < 0 || suffix < 0 || prefix+suffix > len(old) {
		return nil, false
	}
	out := make([]byte, 0, prefix+len(patch)+suffix)
	out = append(out, old[:prefix]...)
	out = append(out, patch...)
	out = append(out, old[len(old)-suffix:]...)
	return out, true
}

// snapHash fingerprints a snapshot encoding (FNV-1a). Deltas carry the hash
// of the base they chain from; a backup whose current snapshot bytes hash
// differently has silently diverged (nondeterministic encoder, missed
// update) and must resync via checkpoint rather than apply the delta to the
// wrong base.
func snapHash(snap []byte) uint64 {
	h := fnv.New64a()
	h.Write(snap)
	return h.Sum64()
}
