package pb

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"fortress/internal/metrics"
	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/sig"
	"fortress/internal/xrand"
)

const (
	hbInterval = 5 * time.Millisecond
	hbTimeout  = 40 * time.Millisecond
	reqTimeout = 2 * time.Second
)

// cluster stands up n replicas hosting fresh services built by mk.
func cluster(t *testing.T, n int, mk func(i int) service.Service) (*netsim.Network, []*Replica) {
	t.Helper()
	net := netsim.NewNetwork()
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		peers[i] = fmt.Sprintf("server-%d", i)
	}
	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Index:             i,
			Addr:              peers[i],
			Peers:             peers,
			InitialPrimary:    0,
			Service:           mk(i),
			Keys:              keys,
			Net:               net,
			HeartbeatInterval: hbInterval,
			HeartbeatTimeout:  hbTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
		t.Cleanup(r.Stop)
	}
	return net, replicas
}

func kvPut(t *testing.T, key, val string) []byte {
	t.Helper()
	b, err := json.Marshal(service.KVRequest{Op: "put", Key: key, Value: val})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func kvGet(t *testing.T, key string) []byte {
	t.Helper()
	b, err := json.Marshal(service.KVRequest{Op: "get", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	net := netsim.NewNetwork()
	keys, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	good := Config{
		Index: 0, Addr: "a", Peers: map[int]string{0: "a"},
		InitialPrimary: 0, Service: service.NewKV(), Keys: keys, Net: net,
		HeartbeatInterval: time.Millisecond, HeartbeatTimeout: time.Millisecond,
	}
	mutations := []func(c *Config){
		func(c *Config) { c.Service = nil },
		func(c *Config) { c.Keys = nil },
		func(c *Config) { c.Net = nil },
		func(c *Config) { c.Addr = "" },
		func(c *Config) { c.Peers = nil },
		func(c *Config) { c.Peers = map[int]string{9: "x"} },
		func(c *Config) { c.InitialPrimary = 7 },
		func(c *Config) { c.HeartbeatInterval = 0 },
		func(c *Config) { c.HeartbeatTimeout = 0 },
	}
	for i, mutate := range mutations {
		c := good
		c.Peers = map[int]string{0: "a"}
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	r, err := New(good)
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	r.Stop()
}

// respCacheReplica stands up a single-node cluster with the given response
// cache bound.
func respCacheReplica(t *testing.T, limit int) (*netsim.Network, *Replica) {
	t.Helper()
	net := netsim.NewNetwork()
	keys, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Index: 0, Addr: "solo", Peers: map[int]string{0: "solo"},
		InitialPrimary: 0, Service: service.NewKV(), Keys: keys, Net: net,
		HeartbeatInterval: hbInterval, HeartbeatTimeout: hbTimeout,
		RespCacheLimit: limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return net, r
}

// TestRespCacheBounded pins the retry-horizon eviction: with a limit of 4,
// six distinct requests leave exactly the four youngest responses cached,
// in insertion order, and the evicted ids are gone — a retry past the
// horizon re-executes instead of replaying.
func TestRespCacheBounded(t *testing.T) {
	net, r := respCacheReplica(t, 4)
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("r%d", i)
		if _, err := Request(net, "client", r.Addr(), id, kvPut(t, "k", id), reqTimeout); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	cached := len(r.respCache)
	ordered := len(r.respOrder)
	_, hasOldest := r.respCache["r0"]
	_, hasEvictEdge := r.respCache["r1"]
	_, hasSurvivor := r.respCache["r2"]
	_, hasNewest := r.respCache["r5"]
	r.mu.Unlock()
	if cached != 4 || ordered != 4 {
		t.Fatalf("cache holds %d entries (%d ordered), want 4", cached, ordered)
	}
	if hasOldest || hasEvictEdge {
		t.Error("oldest responses not evicted at the bound")
	}
	if !hasSurvivor || !hasNewest {
		t.Error("responses inside the retry horizon were evicted")
	}
}

// TestRespCacheUnboundedWhenNegative pins the opt-out: a negative limit
// retains every response.
func TestRespCacheUnboundedWhenNegative(t *testing.T) {
	net, r := respCacheReplica(t, -1)
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("u%d", i)
		if _, err := Request(net, "client", r.Addr(), id, kvPut(t, "k", id), reqTimeout); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	cached := len(r.respCache)
	r.mu.Unlock()
	if cached != 6 {
		t.Fatalf("cache holds %d entries, want all 6", cached)
	}
}

func TestPrimaryServesSignedResponse(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	resp, err := Request(net, "client", reps[0].Addr(), "r1", kvPut(t, "k", "v"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ServerIndex != 0 {
		t.Fatalf("signed by %d, want 0", resp.ServerIndex)
	}
	if err := sig.VerifyServerResponse(reps[0].PublicKey(), resp); err != nil {
		t.Fatalf("signature invalid: %v", err)
	}
	var kr service.KVResponse
	if err := json.Unmarshal(resp.Body, &kr); err != nil {
		t.Fatal(err)
	}
	if !kr.Found || kr.Value != "v" {
		t.Fatalf("response = %+v", kr)
	}
}

func TestBackupCoSignsAfterUpdate(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewKV() })

	// Ask primary and a backup for the same request, as a proxy would.
	done := make(chan sig.ServerResponse, 1)
	go func() {
		resp, err := Request(net, "proxy-b", reps[1].Addr(), "r1", kvPut(t, "k", "v"), reqTimeout)
		if err == nil {
			done <- resp
		}
	}()
	// Give the backup a moment to park the request, then drive the primary.
	time.Sleep(10 * time.Millisecond)
	if _, err := Request(net, "proxy-a", reps[0].Addr(), "r1", kvPut(t, "k", "v"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-done:
		if resp.ServerIndex != 1 {
			t.Fatalf("backup response signed by %d", resp.ServerIndex)
		}
		if err := sig.VerifyServerResponse(reps[1].PublicKey(), resp); err != nil {
			t.Fatalf("backup signature invalid: %v", err)
		}
		var kr service.KVResponse
		if err := json.Unmarshal(resp.Body, &kr); err != nil {
			t.Fatal(err)
		}
		if kr.Value != "v" {
			t.Fatalf("backup response = %+v", kr)
		}
	case <-time.After(reqTimeout):
		t.Fatal("backup never co-signed")
	}
}

func TestBackupRepliesFromCacheOnLateRequest(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	if _, err := Request(net, "p", reps[0].Addr(), "r1", kvPut(t, "a", "1"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[1].Seq() >= 1 })
	// Now the backup already has the update; a late request is served
	// immediately from cache.
	resp, err := Request(net, "p", reps[1].Addr(), "r1", kvPut(t, "a", "1"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ServerIndex != 1 {
		t.Fatalf("signed by %d", resp.ServerIndex)
	}
}

func TestStateReplicationReachesAllBackups(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	for i := 0; i < 5; i++ {
		reqID := fmt.Sprintf("r%d", i)
		if _, err := Request(net, "c", reps[0].Addr(), reqID, kvPut(t, fmt.Sprintf("k%d", i), "v"), reqTimeout); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return reps[1].Seq() == 5 && reps[2].Seq() == 5 })
}

func TestDuplicateRequestIdempotent(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewCounter() })
	r1, err := Request(net, "c", reps[0].Addr(), "dup", []byte("inc"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Request(net, "c", reps[0].Addr(), "dup", []byte("inc"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Body) != "1" || string(r2.Body) != "1" {
		t.Fatalf("duplicate executed twice: %s then %s", r1.Body, r2.Body)
	}
}

func TestApplicationErrorPropagates(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewCounter() })
	resp, err := Request(net, "c", reps[0].Addr(), "bad", []byte("explode"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body[:6]) != "error:" {
		t.Fatalf("body = %s", resp.Body)
	}
}

func TestFailoverPromotesNextIndex(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	if _, err := Request(net, "c", reps[0].Addr(), "r1", kvPut(t, "k", "v1"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[1].Seq() == 1 && reps[2].Seq() == 1 })

	reps[0].Crash()
	waitFor(t, func() bool { return reps[1].Role() == RolePrimary })

	// The new primary serves with the preserved state.
	resp, err := Request(net, "c", reps[1].Addr(), "r2", kvGet(t, "k"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var kr service.KVResponse
	if err := json.Unmarshal(resp.Body, &kr); err != nil {
		t.Fatal(err)
	}
	if !kr.Found || kr.Value != "v1" {
		t.Fatalf("state lost across failover: %+v", kr)
	}
	// The remaining backup follows the new primary.
	waitFor(t, func() bool { return reps[2].PrimaryIndex() == 1 })
}

func TestDoubleFailover(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewCounter() })
	if _, err := Request(net, "c", reps[0].Addr(), "a", []byte("add 5"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[1].Seq() == 1 && reps[2].Seq() == 1 })
	reps[0].Crash()
	waitFor(t, func() bool { return reps[1].Role() == RolePrimary })
	if _, err := Request(net, "c", reps[1].Addr(), "b", []byte("add 2"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[2].Seq() == 2 })
	reps[1].Crash()
	waitFor(t, func() bool { return reps[2].Role() == RolePrimary })
	resp, err := Request(net, "c", reps[2].Addr(), "c", []byte("read"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "7" {
		t.Fatalf("state after two failovers = %s, want 7", resp.Body)
	}
}

func TestNondeterministicServiceReplicatesFine(t *testing.T) {
	// The paper's point: PB hosts non-DSM services because backups never
	// re-execute.
	rng := xrand.New(77)
	net, reps := cluster(t, 3, func(i int) service.Service {
		return service.NewNondet(service.NewCounter(), rng.Split())
	})
	if _, err := Request(net, "c", reps[0].Addr(), "n1", []byte("add 3"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reps[1].Seq() == 1 && reps[2].Seq() == 1 })
	reps[0].Crash()
	waitFor(t, func() bool { return reps[1].Role() == RolePrimary })
	resp, err := Request(net, "c", reps[1].Addr(), "n2", []byte("read"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Inner []byte `json:"inner"`
	}
	if err := json.Unmarshal(resp.Body, &env); err != nil {
		t.Fatal(err)
	}
	if string(env.Inner) != "3" {
		t.Fatalf("nondet state lost: %s", env.Inner)
	}
}

func TestRequestToCrashedReplicaFails(t *testing.T) {
	net, reps := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	reps[2].Crash()
	if _, err := Request(net, "c", reps[2].Addr(), "x", kvGet(t, "k"), 100*time.Millisecond); err == nil {
		t.Fatal("request to crashed replica succeeded")
	}
}

func TestStopIdempotent(t *testing.T) {
	_, reps := cluster(t, 2, func(int) service.Service { return service.NewKV() })
	reps[0].Stop()
	reps[0].Stop() // must not panic or deadlock
}

func TestRoleString(t *testing.T) {
	if RolePrimary.String() != "primary" || RoleBackup.String() != "backup" {
		t.Fatal("role strings wrong")
	}
	if Role(9).String() == "" {
		t.Fatal("unknown role empty")
	}
}

func TestPrimaryHeartbeatKeepsBackupsQuiet(t *testing.T) {
	_, reps := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	time.Sleep(4 * hbTimeout)
	if reps[1].Role() != RoleBackup || reps[2].Role() != RoleBackup {
		t.Fatal("backup promoted despite live primary")
	}
	if reps[0].Role() != RolePrimary {
		t.Fatal("primary demoted itself")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func BenchmarkPrimaryRequest(b *testing.B) {
	net := netsim.NewNetwork()
	peers := map[int]string{0: "s0", 1: "s1", 2: "s2"}
	var reps []*Replica
	for i := 0; i < 3; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			b.Fatal(err)
		}
		r, err := New(Config{
			Index: i, Addr: peers[i], Peers: peers, InitialPrimary: 0,
			Service: service.NewKV(), Keys: keys, Net: net,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		reps = append(reps, r)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()
	conn, err := net.Dial("bench-client", "s0")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	body := []byte(`{"op":"put","key":"k","value":"v"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RequestOn(conn, fmt.Sprintf("b%d", i), body, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStopTerminatesWithIdleInboundConns pins the shutdown liveness fix:
// stopping replicas in index order must terminate promptly even while peers
// still hold open connections to the stopped node that will never carry
// another message — shutdown closes inbound connections instead of waiting
// for traffic to wake their serving goroutines.
func TestStopTerminatesWithIdleInboundConns(t *testing.T) {
	net, replicas := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	if _, err := Request(net, "client", replicas[0].Addr(), "w1", kvPut(t, "k", "v"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	for i, r := range replicas {
		done := make(chan struct{})
		go func() { r.Stop(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("replica %d Stop did not terminate — inbound conns not closed on shutdown", i)
		}
	}
}

// TestRestartAfterCrash is the restartable-serve-loop contract: a crashed
// replica re-registers its listener at the same address, serves again, and
// keeps its response cache and sequence number.
func TestRestartAfterCrash(t *testing.T) {
	net, rs := cluster(t, 1, func(int) service.Service { return service.NewKV() })
	orig, err := Request(net, "c", rs[0].Addr(), "w1", kvPut(t, "k", "v"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	seqBefore := rs[0].Seq()

	rs[0].Crash()
	if _, err := net.Dial("c", rs[0].Addr()); err == nil {
		t.Fatal("crashed replica accepted a dial")
	}
	if err := rs[0].Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if rs[0].Seq() != seqBefore {
		t.Fatalf("seq %d after restart, want %d", rs[0].Seq(), seqBefore)
	}
	// The response cache survived: a duplicate of the pre-crash request is
	// answered from cache, and fresh requests execute against retained state.
	resp, err := Request(net, "c", rs[0].Addr(), "w1", nil, reqTimeout)
	if err != nil {
		t.Fatalf("cached request after restart: %v", err)
	}
	if string(resp.Body) != string(orig.Body) {
		t.Fatalf("cached response %q, want %q", resp.Body, orig.Body)
	}
	resp, err = Request(net, "c", rs[0].Addr(), "r1", kvGet(t, "k"), reqTimeout)
	if err != nil {
		t.Fatalf("fresh request after restart: %v", err)
	}
	var got service.KVResponse
	if err := json.Unmarshal(resp.Body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Found || got.Value != "v" {
		t.Fatalf("read %+v after restart, want value \"v\"", got)
	}
}

func TestRestartOfRunningReplicaErrors(t *testing.T) {
	_, rs := cluster(t, 1, func(int) service.Service { return service.NewKV() })
	if err := rs[0].Restart(); err == nil {
		t.Fatal("restart of a running replica accepted")
	}
}

// TestRestartRejoinsAsBackup checks a restarted non-initial-primary rejoins
// as a backup and resyncs from the primary's next update.
func TestRestartRejoinsAsBackup(t *testing.T) {
	net, rs := cluster(t, 2, func(int) service.Service { return service.NewKV() })
	if _, err := Request(net, "c", rs[0].Addr(), "w1", kvPut(t, "k", "v1"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	rs[1].Crash()
	if err := rs[1].Restart(); err != nil {
		t.Fatal(err)
	}
	if rs[1].Role() != RoleBackup {
		t.Fatalf("restarted replica role %v, want backup", rs[1].Role())
	}
	if _, err := Request(net, "c", rs[0].Addr(), "w2", kvPut(t, "k", "v2"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	// The update that carried w2 resynced the restarted backup.
	deadline := time.Now().Add(2 * time.Second)
	for rs[1].Seq() < rs[0].Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("backup seq %d never caught primary seq %d", rs[1].Seq(), rs[0].Seq())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeltaCapableFastPathConverges pins the DeltaCapable hot path: a
// primary hosting a delta-reporting KV service splices its chain states
// from the reported edits (the fast counter moves) and backups still
// converge to byte-identical state through the same delta wire format —
// deletes, overwrites and reads included.
func TestDeltaCapableFastPathConverges(t *testing.T) {
	net := netsim.NewNetwork()
	reg := metrics.New()
	peers := map[int]string{0: "dc-0", 1: "dc-1"}
	replicas := make([]*Replica, len(peers))
	for i := range replicas {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Index: i, Addr: peers[i], Peers: peers, InitialPrimary: 0,
			Service: service.NewKV(), Keys: keys, Net: net,
			HeartbeatInterval: hbInterval, HeartbeatTimeout: hbTimeout,
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
		t.Cleanup(r.Stop)
	}
	ops := []struct {
		id   string
		body []byte
	}{
		{"w1", kvPut(t, "k1", "v1")},
		{"w2", kvPut(t, "k0", "v0")}, // insert before k1
		{"w3", kvPut(t, "k1", "v1-longer-value")},
		{"r1", kvGet(t, "k0")}, // unchanged delta
		{"w4", []byte(`{"op":"delete","key":"k0"}`)},
		{"w5", kvPut(t, "k9", "tail")},
		{"w6", []byte(`{"op":"nope"}`)}, // request error, unchanged delta
	}
	// The first update anchors the fresh backup with a checkpoint; every
	// jump after that would mean a spliced delta diverged.
	if _, err := Request(net, "c", replicas[0].Addr(), ops[0].id, ops[0].body, reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return replicas[1].Seq() == 1 })
	anchors := replicas[1].CheckpointJumps()
	for _, op := range ops[1:] {
		if _, err := Request(net, "c", replicas[0].Addr(), op.id, op.body, reqTimeout); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return replicas[1].Seq() == replicas[0].Seq() })
	// Convergence must have come from the in-order delta chain alone: a
	// mis-spliced delta would diverge the backup and force a checkpoint
	// re-anchor.
	if jumps := replicas[1].CheckpointJumps(); jumps != anchors {
		t.Errorf("backup needed %d extra checkpoint re-anchors — spliced deltas diverged", jumps-anchors)
	}
	// Execute a read on the primary, then fetch it from the backup's
	// replicated cache: the backup co-signs the same state the primary saw.
	if _, err := Request(net, "c", replicas[0].Addr(), "r2", kvGet(t, "k9"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return replicas[1].Seq() == replicas[0].Seq() })
	resp, err := Request(net, "c", replicas[1].Addr(), "r2", kvGet(t, "k9"), reqTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var got service.KVResponse
	if err := json.Unmarshal(resp.Body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Found || got.Value != "tail" {
		t.Fatalf("backup read %+v, want tail", got)
	}
	fast := reg.Snapshot().Timing[fmt.Sprintf("pb_updates_delta_fast_total{node=%q}", replicas[0].Addr())]
	if fast < 5 {
		t.Errorf("fast-path deltas = %d, want >= 5 (every post-checkpoint op should splice)", fast)
	}
}

// TestOutboxShedTriggersCheckpointResync pins the backpressure contract:
// with a tiny per-peer outbox bound, a resync burst wider than the bound
// sheds its oldest deltas — and the runtime's shed notification makes the
// primary anchor the backup with a full checkpoint on the next tick, so
// replication converges instead of wedging on the gap the shed opened.
func TestOutboxShedTriggersCheckpointResync(t *testing.T) {
	net := netsim.NewNetwork()
	peers := map[int]string{0: "shed-0", 1: "shed-1"}
	replicas := make([]*Replica, len(peers))
	for i := range replicas {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Index: i, Addr: peers[i], Peers: peers, InitialPrimary: 0,
			Service: service.NewKV(), Keys: keys, Net: net,
			HeartbeatInterval: hbInterval, HeartbeatTimeout: hbTimeout,
			OutboxLimit: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
		t.Cleanup(r.Stop)
	}
	if _, err := Request(net, "c", replicas[0].Addr(), "w0", kvPut(t, "k", "v0"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return replicas[1].Seq() == 1 })

	// Open a gap far wider than the outbox bound while the backup is down:
	// the nack-driven delta retransmission can never fit through intact.
	replicas[1].Crash()
	for i := 1; i <= 8; i++ {
		id := fmt.Sprintf("w%d", i)
		if _, err := Request(net, "c", replicas[0].Addr(), id, kvPut(t, "k", "v"+id), reqTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if err := replicas[1].Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return replicas[1].Seq() == replicas[0].Seq() })
	if jumps := replicas[1].CheckpointJumps(); jumps == 0 {
		t.Error("backup converged without a checkpoint anchor — an 8-delta suffix cannot fit a 2-deep outbox")
	}
}

// TestRejoinResetsAckStallClock pins the restart half of the ack-stall
// detector: frontier observations from before a crash describe a link that
// no longer exists, so Rejoin must clear the stall clock (last-seen acks,
// consecutive stalled ticks, and the per-peer backoff wait). Before the
// fix, only a full rebuild via New reset them — an in-place Restart
// inherited pre-crash state and could fire a spurious or badly delayed
// stall resync on its first ticks back.
func TestRejoinResetsAckStallClock(t *testing.T) {
	_, rs := cluster(t, 3, func(int) service.Service { return service.NewKV() })
	r := rs[0]
	r.mu.Lock()
	r.ackSeen[1] = 7
	r.stallTicks[1] = 3
	r.stallWait[1] = 64
	r.mu.Unlock()
	r.Rejoin()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ackSeen) != 0 || len(r.stallTicks) != 0 || len(r.stallWait) != 0 {
		t.Errorf("stall clock survived Rejoin: ackSeen=%v stallTicks=%v stallWait=%v",
			r.ackSeen, r.stallTicks, r.stallWait)
	}
}

// TestRestartedInitialPrimaryDoesNotReclaimRole pins the failover-safety
// contract: after the cluster has failed over, a restarted initial primary
// rejoins as a backup and adopts the successor instead of usurping it with
// stale state.
func TestRestartedInitialPrimaryDoesNotReclaimRole(t *testing.T) {
	net, rs := cluster(t, 2, func(int) service.Service { return service.NewKV() })
	if _, err := Request(net, "c", rs[0].Addr(), "w1", kvPut(t, "k", "v1"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	rs[0].Crash()
	deadline := time.Now().Add(2 * time.Second)
	for rs[1].Role() != RolePrimary {
		if time.Now().After(deadline) {
			t.Fatal("backup never promoted after primary crash")
		}
		time.Sleep(time.Millisecond)
	}
	if err := rs[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if rs[0].Role() != RoleBackup {
		t.Fatalf("restarted initial primary rejoined as %v, want backup", rs[0].Role())
	}
	// Commit a write through the successor; the restarted node must adopt it
	// and resync rather than demote it.
	if _, err := Request(net, "c", rs[1].Addr(), "w2", kvPut(t, "k", "v2"), reqTimeout); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for rs[0].PrimaryIndex() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted node follows %d, want 1", rs[0].PrimaryIndex())
		}
		time.Sleep(time.Millisecond)
	}
	if rs[1].Role() != RolePrimary {
		t.Fatalf("successor demoted to %v by the restarted node", rs[1].Role())
	}
}
