package pb

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/sig"
	"fortress/internal/xrand"
)

// clusterWith mirrors cluster but lets the test pin the update-stream knobs
// (checkpoint cadence, retransmission window).
func clusterWith(t *testing.T, n int, mk func(i int) service.Service, mutate func(c *Config)) (*netsim.Network, []*Replica) {
	t.Helper()
	net := netsim.NewNetwork()
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		peers[i] = fmt.Sprintf("server-%d", i)
	}
	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		keys, err := sig.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Index:             i,
			Addr:              peers[i],
			Peers:             peers,
			InitialPrimary:    0,
			Service:           mk(i),
			Keys:              keys,
			Net:               net,
			HeartbeatInterval: hbInterval,
			HeartbeatTimeout:  hbTimeout,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
		t.Cleanup(r.Stop)
	}
	return net, replicas
}

// writeN drives n distinct puts through the primary, retrying like a real
// requester would: request IDs dedupe retries, so a send or response lost
// to a lossy link costs a round, never a double execution.
func writeN(t *testing.T, net *netsim.Network, primary *Replica, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%03d", (base+i)%16)
		body := kvPut(t, key, fmt.Sprintf("v%d", base+i))
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			if _, err = Request(net, "c", primary.Addr(), fmt.Sprintf("w%d", base+i),
				body, 500*time.Millisecond); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// waitConverged waits until every replica has applied the primary's
// frontier and holds byte-identical service state.
func waitConverged(t *testing.T, kvs []*service.KV, reps []*Replica) {
	t.Helper()
	waitFor(t, func() bool {
		want := reps[0].Seq()
		for _, r := range reps[1:] {
			if r.Seq() != want {
				return false
			}
		}
		ref, err := kvs[0].Snapshot()
		if err != nil {
			return false
		}
		for _, kv := range kvs[1:] {
			snap, err := kv.Snapshot()
			if err != nil || !bytes.Equal(snap, ref) {
				return false
			}
		}
		return true
	})
}

// TestDeltaStreamReplicatesAndTrimsOnAck is the happy path of the
// ack-windowed incremental stream: deltas (with periodic checkpoints) keep
// every backup in lockstep with the primary, the duplex links deliver the
// backups' cumulative acks to the primary's reader loops, and acked deltas
// are released from the retransmission window ahead of the capacity bound.
func TestDeltaStreamReplicatesAndTrimsOnAck(t *testing.T) {
	kvs := make([]*service.KV, 3)
	net, reps := clusterWith(t, 3, func(i int) service.Service {
		kvs[i] = service.NewKV()
		return kvs[i]
	}, func(c *Config) { c.CheckpointEvery = 4; c.UpdateWindow = 64 })

	const writes = 20
	writeN(t, net, reps[0], 0, writes)
	waitConverged(t, kvs, reps)

	// The acks flowed back over the update connections themselves.
	waitFor(t, func() bool {
		return reps[0].Acked(1) == uint64(writes) && reps[0].Acked(2) == uint64(writes)
	})
	reps[0].mu.Lock()
	retained := reps[0].window.Len()
	reps[0].mu.Unlock()
	if retained > 1 {
		t.Fatalf("window retains %d deltas after every backup acked the frontier", retained)
	}
}

// TestAckForAlreadyCheckpointedDelta pins the late-ack edge case: an ack
// for a delta the primary has already released (trimmed by newer acks or
// superseded by a checkpoint) must be absorbed without disturbing the
// window or the stream.
func TestAckForAlreadyCheckpointedDelta(t *testing.T) {
	kvs := make([]*service.KV, 3)
	net, reps := clusterWith(t, 3, func(i int) service.Service {
		kvs[i] = service.NewKV()
		return kvs[i]
	}, func(c *Config) { c.CheckpointEvery = 4; c.UpdateWindow = 2 })

	writeN(t, net, reps[0], 0, 10)
	waitConverged(t, kvs, reps)

	// Replay a long-stale cumulative ack straight at the primary, as a
	// delayed or duplicated reply would arrive.
	conn, err := net.Dial("late-acker", reps[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encode(wireMsg{Type: msgAck, Seq: 1, From: 1, Stream: 0})); err != nil {
		t.Fatal(err)
	}
	// An ack far beyond anything sent must be equally harmless.
	if err := conn.Send(encode(wireMsg{Type: msgAck, Seq: 1 << 40, From: 2, Stream: 0})); err != nil {
		t.Fatal(err)
	}

	writeN(t, net, reps[0], 10, 6)
	waitConverged(t, kvs, reps)
	if got := kvs[1].Len(); got == 0 {
		t.Fatal("backup lost state after stale acks")
	}
}

// TestBackupRestartMidWindowUnderLossy is the recovery scenario the
// ack-driven stream exists for, under the lossy preset's drop rate: a
// backup crashes mid-window, sleeps through updates, restarts with retained
// state, and must converge to the primary's exact state over the duplex
// link — nack-triggered retransmission when its gap fits the window,
// checkpoint fallback otherwise — with 2% of all messages (updates, acks,
// nacks, resyncs alike) dropped throughout.
func TestBackupRestartMidWindowUnderLossy(t *testing.T) {
	kvs := make([]*service.KV, 3)
	net, reps := clusterWith(t, 3, func(i int) service.Service {
		kvs[i] = service.NewKV()
		return kvs[i]
	}, func(c *Config) { c.CheckpointEvery = 8; c.UpdateWindow = 32 })
	net.SetDropRate(0.02, xrand.New(99)) // the lossy preset's rate

	writeN(t, net, reps[0], 0, 8)
	waitConverged(t, kvs, reps)

	reps[2].Crash()
	writeN(t, net, reps[0], 8, 12) // advances the window past the sleeper
	if err := reps[2].Restart(); err != nil {
		t.Fatal(err)
	}
	writeN(t, net, reps[0], 20, 4)
	waitConverged(t, kvs, reps)
}

// TestResyncRetransmitsDeltaSuffix forces the retransmission path: the
// checkpoint cadence is pushed out of reach and the window is large, so the
// only way a restarted backup can converge is by receiving the retained
// delta suffix from its nack frontier.
func TestResyncRetransmitsDeltaSuffix(t *testing.T) {
	kvs := make([]*service.KV, 2)
	net, reps := clusterWith(t, 2, func(i int) service.Service {
		kvs[i] = service.NewKV()
		return kvs[i]
	}, func(c *Config) { c.CheckpointEvery = 1 << 20; c.UpdateWindow = 128 })

	writeN(t, net, reps[0], 0, 4)
	waitConverged(t, kvs, reps)

	reps[1].Crash()
	writeN(t, net, reps[0], 4, 8)
	if err := reps[1].Restart(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, kvs, reps)
}

// TestResyncFallsBackToCheckpoint forces the other path: a window that
// retains nothing leaves the primary no delta suffix to replay, so the
// restarted backup must be re-anchored by a full checkpoint carrying the
// response cache.
func TestResyncFallsBackToCheckpoint(t *testing.T) {
	kvs := make([]*service.KV, 2)
	net, reps := clusterWith(t, 2, func(i int) service.Service {
		kvs[i] = service.NewKV()
		return kvs[i]
	}, func(c *Config) { c.CheckpointEvery = 1 << 20; c.UpdateWindow = -1 })

	writeN(t, net, reps[0], 0, 4)
	waitConverged(t, kvs, reps)

	reps[1].Crash()
	writeN(t, net, reps[0], 4, 8)
	if err := reps[1].Restart(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, kvs, reps)

	// The checkpoint carried the response cache: a duplicate of a request
	// the backup jumped over is answered from cache, not re-parked.
	resp, err := Request(net, "c", reps[1].Addr(), "w6", nil, reqTimeout)
	if err != nil {
		t.Fatalf("jumped-over request not answerable from cache: %v", err)
	}
	if len(resp.Body) == 0 {
		t.Fatal("cached response empty")
	}
}

// TestDivergedBackupResyncsViaCheckpoint pins the divergence path: a
// backup whose snapshot bytes have silently rotted fails the delta's
// base-hash check, drops off-stream, and must be re-anchored by a
// checkpoint — retransmitting the same delta could never succeed, so the
// nack must not steer the primary onto the retransmission path even though
// the window fully covers the gap.
func TestDivergedBackupResyncsViaCheckpoint(t *testing.T) {
	kvs := make([]*service.KV, 2)
	net, reps := clusterWith(t, 2, func(i int) service.Service {
		kvs[i] = service.NewKV()
		return kvs[i]
	}, func(c *Config) { c.CheckpointEvery = 1 << 20; c.UpdateWindow = 128 })

	writeN(t, net, reps[0], 0, 4)
	waitConverged(t, kvs, reps)

	reps[1].mu.Lock()
	reps[1].snapBytes = []byte("rotten")
	reps[1].mu.Unlock()

	writeN(t, net, reps[0], 4, 4)
	waitConverged(t, kvs, reps)
}

// TestUpdateStreamStopCrashRace races live delta traffic (and the ack
// stream riding back over the duplex links) against backup crash/restart
// and primary shutdown — a race-detector companion to the core-level
// reader-shutdown test, through the full protocol stack.
func TestUpdateStreamStopCrashRace(t *testing.T) {
	kvs := make([]*service.KV, 3)
	net, reps := clusterWith(t, 3, func(i int) service.Service {
		kvs[i] = service.NewKV()
		return kvs[i]
	}, func(c *Config) { c.CheckpointEvery = 4; c.UpdateWindow = 8 })

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			// Ignore errors: the primary may be mid-shutdown below.
			_, _ = Request(net, "c", reps[0].Addr(), fmt.Sprintf("race%d", i),
				kvPut(t, fmt.Sprintf("k%d", i%4), "v"), 200*time.Millisecond)
		}
	}()
	for i := 0; i < 4; i++ {
		time.Sleep(3 * time.Millisecond)
		reps[2].Crash()
		if err := reps[2].Restart(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	reps[0].Stop() // readers mid-ack-drain: must terminate
}
