package pb

import (
	"bytes"
	"testing"
)

func TestDiffApplyRoundTrip(t *testing.T) {
	cases := [][2]string{
		{"", ""},
		{"", "abc"},
		{"abc", ""},
		{"abc", "abc"},
		{`{"a":"1","b":"2","c":"3"}`, `{"a":"1","b":"9","c":"3"}`},
		{`{"a":"1"}`, `{"a":"1","b":"2"}`},
		{"aab", "ab"},
		{"ab", "aab"},
		{"xxxx", "xx"},
	}
	for _, c := range cases {
		old, new := []byte(c[0]), []byte(c[1])
		prefix, patch, suffix := DiffSnapshot(old, new)
		got, ok := ApplyDelta(old, prefix, patch, suffix)
		if !ok {
			t.Fatalf("delta %q→%q did not apply", c[0], c[1])
		}
		if !bytes.Equal(got, new) {
			t.Fatalf("delta %q→%q reconstructed %q", c[0], c[1], got)
		}
	}
}

func TestDiffLocality(t *testing.T) {
	// A single-key edit in a canonical map encoding must produce a delta
	// that scales with the touched region, not the whole snapshot.
	old := []byte(`{"a":"000","b":"111","c":"222","d":"333","e":"444"}`)
	new := []byte(`{"a":"000","b":"111","c":"999","d":"333","e":"444"}`)
	_, patch, _ := DiffSnapshot(old, new)
	if len(patch) > 3 {
		t.Fatalf("single-key delta carries %d bytes of a %d-byte snapshot", len(patch), len(new))
	}
}

func TestApplyDeltaRejectsOutOfRange(t *testing.T) {
	if _, ok := ApplyDelta([]byte("abc"), 2, nil, 2); ok {
		t.Fatal("overlapping trim accepted")
	}
	if _, ok := ApplyDelta([]byte("abc"), -1, nil, 0); ok {
		t.Fatal("negative prefix accepted")
	}
	if _, ok := ApplyDelta([]byte("abc"), 0, nil, 4); ok {
		t.Fatal("suffix past the base accepted")
	}
}
