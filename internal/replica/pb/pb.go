// Package pb implements classical primary-backup replication (paper §1, §3),
// the server tier FORTRESS fortifies.
//
// One replica — the primary — executes client requests; after each execution
// it ships the response and a state update to every backup. Each replica
// (primary and backups alike) signs the response together with its own index
// and returns it to the requester, exactly as §3 prescribes for the FORTRESS
// interaction pattern. Backups never execute requests, which is why the
// hosted service need not be deterministic.
//
// The update stream is incremental and ack-windowed rather than
// fire-and-forget full snapshots:
//
//   - Each executed request ships a delta — the contiguous edit turning the
//     previous snapshot encoding into the next (see delta.go) — so the
//     per-request fan-out payload scales with the state the request touched,
//     not with total state size. Every Config.CheckpointEvery-th update is a
//     full snapshot checkpoint that re-anchors the chain.
//   - Peer links are full duplex (replica/core): a backup acks each applied
//     update as a reply on the very connection the update arrived on, and
//     the primary's per-peer reader loop drains those acks into a cumulative
//     per-backup frontier. Deltas every backup has acknowledged are released
//     early; at most Config.UpdateWindow unacknowledged ones are retained.
//   - A backup that detects a chain break — a sequence gap from dropped
//     updates, a base-hash mismatch, or an update stream from a different
//     primary — nacks with its applied frontier. The primary retransmits the
//     retained suffix when the gap fits the window, and otherwise falls back
//     to a full checkpoint carrying its response cache. A stalled cumulative
//     ack (backup crashed, restarted, or rebuilt) triggers the same resync
//     from the primary's heartbeat timer, so a backup that restarts
//     mid-window converges over the same duplex link without waiting for
//     the next full snapshot.
//
// Failure handling: the primary heartbeats the backups (carrying its
// executed frontier, so a lagging backup self-detects); a backup that misses
// heartbeats for the configured timeout deterministically promotes the
// lowest-indexed surviving replica (itself included) to primary. A fresh
// primary starts its update stream with a checkpoint, which re-anchors every
// backup regardless of what it had applied under the old stream.
package pb

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fortress/internal/metrics"
	"fortress/internal/netsim"
	"fortress/internal/replica/core"
	"fortress/internal/replica/store"
	"fortress/internal/service"
	"fortress/internal/sig"
)

// Role distinguishes the primary from backups.
type Role int

const (
	// RolePrimary executes requests and ships state updates.
	RolePrimary Role = iota + 1
	// RoleBackup applies state updates and co-signs responses.
	RoleBackup
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// wire message types exchanged between replicas and with requesters.
const (
	msgRequest    = "request"    // requester → replica: please serve
	msgResponse   = "response"   // replica → requester: signed response
	msgUpdate     = "update"     // primary → backup: executed request + state delta
	msgCheckpoint = "checkpoint" // primary → backup: full snapshot anchor
	msgAck        = "ack"        // backup → primary: cumulative applied frontier
	msgNack       = "nack"       // backup → primary: chain break, resync me
	msgHeartbeat  = "heartbeat"  // primary → backup (carries executed frontier)
)

type wireMsg struct {
	Type      string              `json:"type"`
	RequestID string              `json:"requestId,omitempty"`
	Body      []byte              `json:"body,omitempty"`
	Seq       uint64              `json:"seq,omitempty"`
	From      int                 `json:"from,omitempty"`
	Response  *sig.ServerResponse `json:"response,omitempty"`
	RespBody  []byte              `json:"respBody,omitempty"`
	RespErr   string              `json:"respErr,omitempty"`
	// Snapshot carries a checkpoint's full state; Responses rides a resync
	// checkpoint so requests the receiver jumps over stay answerable from
	// cache (values are the signable response payloads).
	Snapshot  []byte            `json:"snapshot,omitempty"`
	Responses map[string][]byte `json:"responses,omitempty"`
	// DeltaPrefix/Delta/DeltaSuffix carry an incremental update (delta.go);
	// BaseHash fingerprints the snapshot encoding the delta chains from.
	DeltaPrefix int    `json:"deltaPrefix,omitempty"`
	DeltaSuffix int    `json:"deltaSuffix,omitempty"`
	Delta       []byte `json:"delta,omitempty"`
	BaseHash    uint64 `json:"baseHash,omitempty"`
	// Stream identifies, on acks and nacks, the primary index whose update
	// stream the sender is positioned in — the primary retransmits deltas
	// only to a backup confirmed on its own chain, and checkpoint-resyncs
	// everyone else.
	Stream int `json:"stream,omitempty"`
	// Read tags a request the sender classified as a pure read. The pb
	// engine itself ignores it (backups park request connections until the
	// primary's update broadcast arrives, so there is no safe local read
	// path to shortcut into), but the field keeps the request wire shape
	// shared with smr, whose lease-read path the tag enables — proxies
	// speak this one encoder to both backends.
	Read bool `json:"read,omitempty"`
}

// sortedKeys returns m's keys in sorted order, for deterministic iteration.
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func encode(m wireMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// wireMsg contains only marshal-safe fields; this cannot happen.
		panic(fmt.Sprintf("pb: marshal wire message: %v", err))
	}
	return b
}

const (
	// defaultCheckpointEvery is the full-snapshot cadence of the update
	// stream when Config.CheckpointEvery is zero.
	defaultCheckpointEvery = 32
	// defaultUpdateWindow bounds the retained unacknowledged deltas when
	// Config.UpdateWindow is zero.
	defaultUpdateWindow = 256
	// defaultRespCacheLimit bounds the response cache when
	// Config.RespCacheLimit is zero.
	defaultRespCacheLimit = 4096
	// streamUnknown marks a backup that is not positioned in any primary's
	// update stream (fresh, rebuilt, or deposed): only a checkpoint anchors
	// it.
	streamUnknown = -1
)

// Config describes one replica.
type Config struct {
	// Index is this replica's unique server index, known to proxies and
	// clients through the name server.
	Index int
	// Addr is the netsim address this replica listens on.
	Addr string
	// Peers maps every replica index (including this one) to its address.
	Peers map[int]string
	// InitialPrimary is the index of the replica that starts as primary.
	InitialPrimary int
	// Service is the hosted service instance (each replica owns one).
	Service service.Service
	// Keys signs this replica's responses.
	Keys *sig.KeyPair
	// Net is the simulated network.
	Net *netsim.Network
	// HeartbeatInterval is how often the primary pings backups.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a backup waits before declaring the
	// primary dead. It should be several intervals.
	HeartbeatTimeout time.Duration
	// CheckpointEvery makes every k-th update a full snapshot checkpoint
	// instead of a delta, bounding how long a delta chain can grow. Zero
	// selects the default (32); one disables deltas entirely — every update
	// ships the full snapshot, the classic PB stream.
	CheckpointEvery int
	// UpdateWindow bounds the unacknowledged deltas the primary retains for
	// retransmission: a backup whose nack frontier fits the window gets the
	// missing suffix replayed, one that has fallen further behind gets a
	// checkpoint. Zero selects the default (256); negative retains nothing,
	// forcing every resync onto the checkpoint path.
	UpdateWindow int
	// RespCacheLimit bounds the response cache: past the limit the oldest
	// cached responses are evicted, so checkpoints, resyncs, and on-disk
	// snapshots stop growing with total request history. An evicted request
	// retried past this horizon re-executes instead of replaying from cache.
	// Zero selects the default (4096); negative retains everything.
	RespCacheLimit int
	// OutboxLimit bounds each per-peer outbox (replica/core) to the most
	// recent k staged messages: staging past the bound sheds the oldest, and
	// the runtime's shed notification makes this replica answer with a
	// checkpoint resync for the affected backup — a slow or partitioned
	// backup costs bounded memory instead of an unbounded staged backlog.
	// Zero is unbounded (the historical behaviour).
	OutboxLimit int
	// Store persists the update stream: deltas are journaled as records and
	// checkpoints overwrite the snapshot slot, so a replica rebuilt over a
	// non-empty store recovers its state from disk before protocol catch-up
	// fills any remaining gap. Nil selects the in-memory no-op store
	// (nothing durable — today's semantics — and nothing extra allocated on
	// the hot path).
	Store store.Store
	// Metrics, when non-nil, receives the replica's protocol instruments
	// (delta vs checkpoint counts, window occupancy, nack/resync causes,
	// ack-stall detections) and its trace-event ring, labelled by Addr.
	// Observational only — no protocol decision reads them back.
	Metrics *metrics.Registry
}

func (c Config) validate() error {
	switch {
	case c.Service == nil:
		return errors.New("pb: config needs a Service")
	case c.Keys == nil:
		return errors.New("pb: config needs Keys")
	case c.Net == nil:
		return errors.New("pb: config needs Net")
	case c.Addr == "":
		return errors.New("pb: config needs Addr")
	case len(c.Peers) == 0:
		return errors.New("pb: config needs Peers")
	case c.HeartbeatInterval <= 0 || c.HeartbeatTimeout <= 0:
		return errors.New("pb: config needs positive heartbeat timings")
	case c.CheckpointEvery < 0:
		return errors.New("pb: config needs a non-negative CheckpointEvery")
	}
	if _, ok := c.Peers[c.Index]; !ok {
		return fmt.Errorf("pb: Peers must contain own index %d", c.Index)
	}
	if _, ok := c.Peers[c.InitialPrimary]; !ok {
		return fmt.Errorf("pb: Peers must contain initial primary %d", c.InitialPrimary)
	}
	return nil
}

// retained is one update held in the primary's retransmission window: the
// executed request's response plus either the delta or, for checkpoint
// sequences, the full snapshot it shipped as.
type retained struct {
	requestID string
	respBody  []byte
	respErr   string
	// checkpoint holds the snapshot bytes when this sequence shipped as a
	// full checkpoint; nil for delta sequences.
	checkpoint []byte
	// delta fields, valid when checkpoint is nil.
	prefix, suffix int
	patch          []byte
	baseHash       uint64
}

// Replica is one primary-backup replica: the PB protocol handler mounted on
// a core.Node runtime.
type Replica struct {
	cfg     Config
	node    *core.Node
	peerIdx []int // every other replica index, ascending

	// execMu serializes state transitions against the hosted service: on the
	// primary it orders execute+snapshot+diff so the delta chain is the diff
	// of consecutive states, on a backup it orders delta/checkpoint
	// installation, and resync construction takes it so a retransmitted
	// suffix cannot interleave with a concurrently executed update. Always
	// acquired before mu.
	execMu sync.Mutex

	// store is the persistence layer; durable caches store.Durable() so the
	// zero-persistence configuration skips record encoding entirely.
	store   store.Store
	durable bool

	mu            sync.Mutex
	role          Role
	primaryIdx    int
	seq           uint64
	lastHeartbeat time.Time
	respCache     map[string]cachedResp
	respOrder     []string // respCache keys, insertion order (eviction)
	respLimit     int      // 0 = unbounded
	ckptJumps     int      // installed checkpoints that re-anchored the chain
	pending       map[string][]*netsim.Conn
	suspected     map[int]bool

	// Primary-side update stream state.
	lastSnap   []byte // snapshot encoding at seq; nil forces a checkpoint
	window     core.Window[retained]
	acked      map[int]uint64 // cumulative applied frontier per backup
	ackSeen    map[int]uint64 // acked at the previous tick (stall detection)
	stallTicks map[int]int
	stallWait  map[int]int // per-peer ticks before the next stall resync
	stallLimit int

	// Backup-side update stream state.
	snapBytes []byte // snapshot encoding the next delta must chain from
	updFrom   int    // primary index whose stream we are positioned in
	resyncing bool   // a nack is outstanding; suppress duplicates
	nackedAt  time.Time

	// shedMu guards shedPeers — peers whose outbox shed staged updates
	// since the last tick. Deliberately its own small lock, never nested
	// inside mu or execMu: HandleOutboxShed arrives from the runtime's
	// flush path, which can run while a handler still holds both.
	shedMu    sync.Mutex
	shedPeers map[int]bool

	// Instruments (nil no-ops when Config.Metrics is unset). Observational
	// only: nothing below feeds back into a protocol decision.
	mDeltas       *metrics.Counter // delta updates executed/applied
	mDeltaFast    *metrics.Counter // deltas spliced from DeltaCapable reports
	mCheckpoints  *metrics.Counter // checkpoint updates executed/applied
	mCkptJumps    *metrics.Counter // checkpoints that re-anchored the chain
	mNackGap      *metrics.Counter // nack cause: sequence gap
	mNackDiverged *metrics.Counter // nack cause: base-hash divergence
	mNackStream   *metrics.Counter // nack cause: cross-stream anchor needed
	mResyncRetx   *metrics.Counter // resyncs answered by suffix retransmit
	mResyncCkpt   *metrics.Counter // resyncs answered by checkpoint fallback
	mStallFires   *metrics.Counter // ack-stall detector fires
	hStallNanos   *metrics.Histogram
	gWindow       *metrics.Gauge // retained-window occupancy
	gAckFrontier  *metrics.Gauge // min cumulative ack across backups
	trace         *metrics.TraceRing
}

type cachedResp struct {
	body   []byte
	errMsg string
}

// payload is the signable response body: what every replica signs for this
// request, and what checkpoint Responses maps carry — one definition, so a
// response transferred by resync signs the same bytes a live replica signs.
func (c cachedResp) payload() []byte {
	if c.errMsg != "" {
		return []byte("error: " + c.errMsg)
	}
	return c.body
}

// New starts a replica. Call Stop to shut it down.
func New(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = defaultCheckpointEvery
	}
	windowKeep := cfg.UpdateWindow
	switch {
	case windowKeep == 0:
		windowKeep = defaultUpdateWindow
	case windowKeep < 0:
		windowKeep = 0
	}
	respLimit := cfg.RespCacheLimit
	switch {
	case respLimit == 0:
		respLimit = defaultRespCacheLimit
	case respLimit < 0:
		respLimit = 0
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMem()
	}
	r := &Replica{
		cfg:        cfg,
		store:      st,
		durable:    st.Durable(),
		respLimit:  respLimit,
		role:       RoleBackup,
		primaryIdx: cfg.InitialPrimary,
		respCache:  make(map[string]cachedResp),
		pending:    make(map[string][]*netsim.Conn),
		suspected:  make(map[int]bool),
		window:     core.NewWindow[retained](1, windowKeep),
		acked:      make(map[int]uint64),
		ackSeen:    make(map[int]uint64),
		stallTicks: make(map[int]int),
		stallWait:  make(map[int]int),
		stallLimit: int(cfg.HeartbeatTimeout/cfg.HeartbeatInterval) + 1,
		updFrom:    streamUnknown,
		shedPeers:  make(map[int]bool),
	}
	for idx := range cfg.Peers {
		if idx != cfg.Index {
			r.peerIdx = append(r.peerIdx, idx)
		}
	}
	sort.Ints(r.peerIdx)
	if reg := cfg.Metrics; reg != nil {
		node := fmt.Sprintf("{node=%q}", cfg.Addr)
		r.mDeltas = reg.Counter("pb_updates_delta_total"+node, metrics.Timing)
		r.mDeltaFast = reg.Counter("pb_updates_delta_fast_total"+node, metrics.Timing)
		r.mCheckpoints = reg.Counter("pb_updates_checkpoint_total"+node, metrics.Timing)
		r.mCkptJumps = reg.Counter("pb_checkpoint_jumps_total"+node, metrics.Timing)
		cause := func(c string) string {
			return fmt.Sprintf("pb_nack_cause_total{node=%q,cause=%q}", cfg.Addr, c)
		}
		r.mNackGap = reg.Counter(cause("gap"), metrics.Timing)
		r.mNackDiverged = reg.Counter(cause("diverged"), metrics.Timing)
		r.mNackStream = reg.Counter(cause("stream"), metrics.Timing)
		r.mResyncRetx = reg.Counter("pb_resync_retransmit_total"+node, metrics.Timing)
		r.mResyncCkpt = reg.Counter("pb_resync_checkpoint_total"+node, metrics.Timing)
		r.mStallFires = reg.Counter("pb_ack_stall_fires_total"+node, metrics.Timing)
		r.hStallNanos = reg.Histogram("pb_ack_stall_ns"+node, metrics.DefaultLatencyBuckets)
		r.gWindow = reg.Gauge("pb_window_occupancy" + node)
		r.gAckFrontier = reg.Gauge("pb_ack_frontier_min" + node)
		r.trace = reg.Ring(cfg.Addr, 0)
	}
	if cfg.Index == cfg.InitialPrimary {
		r.role = RolePrimary
	}
	r.lastHeartbeat = time.Now()
	if err := r.RecoverFromStore(); err != nil {
		return nil, fmt.Errorf("pb: %w", err)
	}
	node, err := core.NewNode(core.Config{
		Index:        cfg.Index,
		Addr:         cfg.Addr,
		Peers:        cfg.Peers,
		Net:          cfg.Net,
		TickInterval: cfg.HeartbeatInterval,
		OutboxLimit:  cfg.OutboxLimit,
		Metrics:      cfg.Metrics,
	}, r)
	if err != nil {
		return nil, fmt.Errorf("pb: %w", err)
	}
	r.node = node
	if err := node.Start(); err != nil {
		return nil, fmt.Errorf("pb: %w", err)
	}
	return r, nil
}

// Index returns the replica's server index.
func (r *Replica) Index() int { return r.cfg.Index }

// Addr returns the replica's network address.
func (r *Replica) Addr() string { return r.cfg.Addr }

// Role returns the replica's current role.
func (r *Replica) Role() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role
}

// PrimaryIndex returns who this replica currently believes is primary.
func (r *Replica) PrimaryIndex() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primaryIdx
}

// Seq returns the number of state updates applied (or, on the primary,
// executed).
func (r *Replica) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Executed is Seq under the backend-neutral replica.Server name.
func (r *Replica) Executed() uint64 { return r.Seq() }

// Acked returns the cumulative update frontier peer has acknowledged on
// this replica's update stream — meaningful on the primary, whose reader
// loops drain the acks off the duplex peer links.
func (r *Replica) Acked(peer int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked[peer]
}

// CheckpointJumps counts the installed checkpoints that re-anchored this
// backup's chain — cross-stream anchors and gap jumps, not the stream's
// scheduled in-order checkpoints. Tests use it to assert a restarted backup
// converged by delta retransmission alone, without a checkpoint resync.
func (r *Replica) CheckpointJumps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ckptJumps
}

// PublicKey exposes the verification key for name-server registration.
func (r *Replica) PublicKey() []byte { return r.cfg.Keys.Public() }

// cacheRespLocked inserts one cached response, evicting oldest-first past
// the configured bound. Caller holds r.mu.
func (r *Replica) cacheRespLocked(id string, c cachedResp) {
	if _, ok := r.respCache[id]; !ok {
		r.respOrder = append(r.respOrder, id)
	}
	r.respCache[id] = c
	if r.respLimit <= 0 {
		return
	}
	for len(r.respOrder) > r.respLimit {
		evicted := r.respOrder[0]
		r.respOrder = r.respOrder[1:]
		delete(r.respCache, evicted)
	}
}

// Stop shuts the replica down and waits for its goroutines to exit.
func (r *Replica) Stop() { r.node.Stop() }

// Crash simulates a node crash: the replica is made inert and its address
// torn out of the network synchronously — every peer and requester observes
// closed connections and the replica can take no further protocol actions —
// while goroutine shutdown completes in the background.
//
// Crash is safe to call from within request handling (a wrong-key exploit
// probe crashes the node mid-request): nothing here waits on the caller's
// own serving goroutine.
func (r *Replica) Crash() { r.node.Crash() }

// Restart re-opens a stopped or crashed replica in place — the supervised
// respawn-and-reconnect idiom: the listener re-registers at the same address
// (netsim allows it once CrashAddr or Close has torn the old one out), the
// serve loops come back, and the node rejoins the group under its retained
// service state and sequence number.
//
// A multi-replica node always rejoins as a backup, whatever its start-up
// role: the cluster may have failed over while it was down, and a rejoining
// initial primary that reclaimed its role would overwrite the current
// primary's newer state with its stale updates. Having kept its stream
// position and snapshot bytes, it converges over the duplex link: in-window
// gaps are retransmitted as deltas, anything worse resyncs via checkpoint.
// Only a single-replica deployment restarts straight into the primary role
// (there is no one else to defer to). Restarting a running replica is an
// error.
//
// This is the node-local restart primitive (a process supervisor's view);
// fortress-level fault recovery instead rebuilds the replica from a live
// peer's snapshot (fortress.RestartServer), trading retained local state
// for guaranteed freshness.
func (r *Replica) Restart() error { return r.node.Restart() }

// Rejoin implements core.Handler: protocol-state reset on restart.
func (r *Replica) Rejoin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.role = RoleBackup
	if len(r.cfg.Peers) == 1 {
		r.role = RolePrimary
	}
	// primaryIdx keeps its pre-crash value; the current primary's next
	// heartbeat corrects it, and the failover timer covers a silent group.
	// snapBytes/updFrom/seq are retained too: if the stream is unchanged the
	// node resumes exactly where it stopped, and any gap it slept through
	// resolves with a nack on the first update or heartbeat it hears.
	r.suspected = make(map[int]bool)
	// Parked requesters were disconnected by the shutdown; they resubmit.
	r.pending = make(map[string][]*netsim.Conn)
	r.resyncing = false
	// The ack-stall clock compares frontiers observed on consecutive live
	// ticks; observations from before the crash describe a link that no
	// longer exists. Without this reset a node that restarts (rather than
	// being rebuilt via New) would inherit pre-crash stall ticks and backoff
	// waits and could fire a spurious — or badly delayed — stall resync on
	// its first ticks back as primary.
	r.ackSeen = make(map[int]uint64)
	r.stallTicks = make(map[int]int)
	r.stallWait = make(map[int]int)
	r.lastHeartbeat = time.Now()
}

// RecoverFromStore implements core.StoreRecoverer: a virgin replica built
// over a non-empty store reloads its state from disk — the persisted
// checkpoint, then the journaled delta suffix replayed over it, verifying
// the chain hashes exactly as a live backup would — before the protocol's
// own catch-up closes whatever gap the disk does not cover. New calls it
// too, so a fortress-level rebuild over a surviving store recovers without
// a donor: that is what makes a whole-cluster blackout survivable.
//
// A replica that has applied anything already (an in-place restart, whose
// memory the journal never runs ahead of) is left untouched.
//
// In a multi-replica group the recovered node always comes back as a
// backup positioned at its journaled stream: the cluster may have moved on
// while it was down, and heartbeats plus the failover timer sort out who
// leads now. Because the stream position (updFrom, snapBytes, seq) is
// restored rather than reset, an in-window gap converges by delta
// retransmission over the duplex link — no checkpoint resync.
func (r *Replica) RecoverFromStore() error {
	if !r.durable {
		return nil
	}
	rec, err := r.store.Load()
	if err != nil || rec.Empty() {
		return err
	}
	r.execMu.Lock()
	defer r.execMu.Unlock()
	r.mu.Lock()
	virgin := r.seq == 0
	r.mu.Unlock()
	if !virgin {
		return nil
	}
	var (
		state []byte
		seq   uint64
		from  = streamUnknown
		resps = make(map[string]cachedResp)
	)
	if rec.HasSnapshot {
		var cp wireMsg
		if err := json.Unmarshal(rec.Snapshot, &cp); err != nil {
			return fmt.Errorf("pb: recover snapshot: %w", err)
		}
		state = cp.Snapshot
		seq = cp.Seq
		from = cp.From
		if cp.RequestID != "" {
			resps[cp.RequestID] = cachedResp{body: cp.RespBody, errMsg: cp.RespErr}
		}
		for id, payload := range cp.Responses {
			if _, ok := resps[id]; !ok {
				resps[id] = cachedResp{body: payload}
			}
		}
	}
replay:
	for i, raw := range rec.Records {
		rseq := rec.LogStart + uint64(i)
		if rseq <= seq {
			continue // covered by the snapshot
		}
		if rseq != seq+1 {
			break // journal does not chain onto the snapshot: keep the prefix
		}
		var m wireMsg
		if json.Unmarshal(raw, &m) != nil {
			break
		}
		switch m.Type {
		case msgCheckpoint:
			state = m.Snapshot
			from = m.From
		case msgUpdate:
			if state == nil || snapHash(state) != m.BaseHash {
				break replay
			}
			next, ok := ApplyDelta(state, m.DeltaPrefix, m.Delta, m.DeltaSuffix)
			if !ok {
				break replay
			}
			state = next
			from = m.From
		default:
			break replay
		}
		if m.RequestID != "" {
			resps[m.RequestID] = cachedResp{body: m.RespBody, errMsg: m.RespErr}
		}
		seq = rseq
	}
	if state == nil || seq == 0 {
		return nil
	}
	if err := r.cfg.Service.Restore(state); err != nil {
		return fmt.Errorf("pb: recover restore: %w", err)
	}
	r.mu.Lock()
	r.seq = seq
	r.snapBytes = state
	r.updFrom = from
	// If this node is later promoted, its first execution must ship a
	// checkpoint anchoring every backup, and its retransmission window must
	// restart past the recovered history.
	r.lastSnap = nil
	r.window.Reset(seq + 1)
	if len(r.cfg.Peers) > 1 {
		r.role = RoleBackup
		if from != streamUnknown {
			r.primaryIdx = from
		}
	} else {
		r.role = RolePrimary
	}
	ids := make([]string, 0, len(resps))
	for id := range resps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r.cacheRespLocked(id, resps[id])
	}
	r.lastHeartbeat = time.Now()
	r.mu.Unlock()
	return nil
}

// HandleMessage implements core.Handler: one decoded wire message.
func (r *Replica) HandleMessage(conn *netsim.Conn, raw []byte, replies [][]byte) [][]byte {
	var m wireMsg
	if json.Unmarshal(raw, &m) != nil {
		return replies // malformed traffic is dropped, never crashes a replica
	}
	switch m.Type {
	case msgRequest:
		if resp := r.handleRequest(conn, m); resp != nil {
			replies = append(replies, resp)
		}
	case msgUpdate, msgCheckpoint:
		if ack := r.handleUpdate(m); ack != nil {
			replies = append(replies, ack)
		}
	case msgHeartbeat:
		r.handleHeartbeat(m)
	case msgAck:
		// Acks normally ride the duplex link back to the primary's reader
		// loop (HandlePeerReply); one arriving here came over the backup's
		// own outbox connection and means the same thing.
		r.handleAck(m)
	case msgNack:
		r.handleNack(m)
	}
	return replies
}

// HandlePeerReply implements core.Handler: one message read back off the
// cached peer connection to peer — the reply direction of the full-duplex
// link. For the primary that is the ack/nack stream its update broadcasts
// come back as.
func (r *Replica) HandlePeerReply(peer int, raw []byte) {
	var m wireMsg
	if json.Unmarshal(raw, &m) != nil {
		return
	}
	switch m.Type {
	case msgAck:
		r.handleAck(m)
	case msgNack:
		r.handleNack(m)
	}
}

// handleRequest serves a request according to the current role. It returns
// the encoded response to deliver on the caller's connection — nil when the
// request is parked on a backup — so the runtime can batch a whole drain's
// responses into one SendBatch.
func (r *Replica) handleRequest(conn *netsim.Conn, m wireMsg) []byte {
	r.mu.Lock()
	if cached, ok := r.respCache[m.RequestID]; ok {
		r.mu.Unlock()
		return r.responseBytes(m.RequestID, cached)
	}
	if r.role != RolePrimary {
		// Backup: park the connection until the primary's update arrives.
		r.pending[m.RequestID] = append(r.pending[m.RequestID], conn)
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	return r.execute(m)
}

// execute runs one request on the primary and stages its update. execMu
// serializes execution with snapshotting, so each delta is the exact diff
// of consecutive states and the window stays in lockstep with seq; it also
// keeps a concurrent resync from interleaving retransmitted deltas between
// a fresh update's execution and its staging (the per-peer outbox is FIFO,
// so backups always see the stream in chain order).
func (r *Replica) execute(m wireMsg) []byte {
	r.execMu.Lock()
	defer r.execMu.Unlock()
	r.mu.Lock()
	// Re-check under execMu: a concurrent duplicate may have executed while
	// this request waited, and must not run the service twice.
	if prior, ok := r.respCache[m.RequestID]; ok {
		r.mu.Unlock()
		return r.responseBytes(m.RequestID, prior)
	}
	r.mu.Unlock()

	body, applyErr := r.cfg.Service.Apply(m.Body)
	cached := cachedResp{body: body}
	if applyErr != nil {
		cached = cachedResp{errMsg: applyErr.Error()}
	}

	// Fast path: a DeltaCapable service described this Apply's exact
	// snapshot edit, so the next chain state is a splice of the previous
	// one — no full Snapshot() marshal and no DiffSnapshot scan. Reading
	// seq/lastSnap outside r.mu is safe here: execMu serializes every
	// writer of both. Only delta sequences qualify; checkpoints ship the
	// whole snapshot regardless.
	delta, deltaOK := service.LastDeltaOf(r.cfg.Service)
	r.mu.Lock()
	base := r.lastSnap
	nextSeq := r.seq + 1
	r.mu.Unlock()
	var snap []byte
	var snapErr error
	fast := false
	if deltaOK && base != nil && nextSeq%uint64(r.cfg.CheckpointEvery) != 0 {
		if delta.Unchanged {
			delta = service.SnapshotDelta{PrefixLen: len(base)}
			snap, fast = base, true
		} else if s, ok := ApplyDelta(base, delta.PrefixLen, delta.Patch, delta.SuffixLen); ok {
			snap, fast = s, true
		}
	}
	if !fast {
		snap, snapErr = r.cfg.Service.Snapshot()
	}

	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.cacheRespLocked(m.RequestID, cached)
	if snapErr != nil {
		// The new state cannot be described: break the chain so the next
		// update checkpoints, and restart the window past the hole.
		r.lastSnap = nil
		r.window.Reset(seq + 1)
		r.mu.Unlock()
		return r.responseBytes(m.RequestID, cached)
	}
	up := retained{requestID: m.RequestID, respBody: cached.body, respErr: cached.errMsg}
	if r.lastSnap == nil || seq%uint64(r.cfg.CheckpointEvery) == 0 {
		up.checkpoint = snap
		r.mCheckpoints.Inc()
	} else {
		r.mDeltas.Inc()
		up.baseHash = snapHash(r.lastSnap)
		if fast {
			r.mDeltaFast.Inc()
			up.prefix, up.suffix = delta.PrefixLen, delta.SuffixLen
			up.patch = append([]byte(nil), delta.Patch...)
		} else {
			var patch []byte
			up.prefix, patch, up.suffix = DiffSnapshot(r.lastSnap, snap)
			// Copy: the patch sub-slices snap, and a retained alias would
			// pin the whole historical snapshot in the window for the life
			// of the entry — the exact memory scaling deltas exist to
			// avoid.
			up.patch = append([]byte(nil), patch...)
		}
	}
	r.lastSnap = snap
	r.window.Append(up)
	r.gWindow.Set(int64(r.window.Len()))
	// Staged on the per-backup outboxes: every update executed while
	// draining one inbound batch leaves in a single SendBatch per backup
	// when the runtime flushes at the end of the drain.
	wire := encode(updateMsg(seq, r.cfg.Index, up, nil))
	r.node.Broadcast(wire)
	if r.durable {
		r.persistUpdateLocked(seq, up, wire)
	}
	r.mu.Unlock()
	return r.responseBytes(m.RequestID, cached)
}

// persistUpdateLocked journals one executed update on the primary: deltas
// append the exact broadcast bytes (the encoding is immutable, so sharing
// it with the outboxes is safe), checkpoints overwrite the snapshot slot —
// with the response cache attached, like a resync checkpoint — and clear
// the journal the snapshot supersedes. Store errors are dropped: durability
// degrades (recovery covers less) but the replica keeps serving. Caller
// holds execMu and r.mu.
func (r *Replica) persistUpdateLocked(seq uint64, up retained, wire []byte) {
	if up.checkpoint == nil {
		_ = r.store.Append(seq, wire)
		return
	}
	responses := make(map[string][]byte, len(r.respCache))
	for id, c := range r.respCache {
		responses[id] = c.payload()
	}
	if r.store.WriteSnapshot(seq, encode(updateMsg(seq, r.cfg.Index, up, responses))) == nil {
		_ = r.store.TruncateTo(store.TruncateAll)
	}
}

// updateMsg encodes one retained update (delta or checkpoint) for the wire;
// responses rides only on resync checkpoints.
func updateMsg(seq uint64, from int, up retained, responses map[string][]byte) wireMsg {
	m := wireMsg{
		Seq:       seq,
		From:      from,
		RequestID: up.requestID,
		RespBody:  up.respBody,
		RespErr:   up.respErr,
		Responses: responses,
	}
	if up.checkpoint != nil {
		m.Type = msgCheckpoint
		m.Snapshot = up.checkpoint
	} else {
		m.Type = msgUpdate
		m.DeltaPrefix = up.prefix
		m.DeltaSuffix = up.suffix
		m.Delta = up.patch
		m.BaseHash = up.baseHash
	}
	return m
}

// responseBytes signs and encodes the response for a request.
func (r *Replica) responseBytes(requestID string, c cachedResp) []byte {
	resp := sig.SignServerResponse(r.cfg.Keys, requestID, c.payload(), r.cfg.Index)
	return encode(wireMsg{Type: msgResponse, RequestID: requestID, Response: &resp})
}

// reply signs and sends the response for a request on the given connection.
func (r *Replica) reply(conn *netsim.Conn, requestID string, c cachedResp) {
	_ = conn.Send(r.responseBytes(requestID, c))
}

// handleUpdate applies a primary update (delta or checkpoint) on a backup
// and returns the cumulative ack to send back on the update's connection —
// or a nack when the update does not chain onto this backup's state. execMu
// serializes installations, so two primaries racing a failover window
// cannot interleave restores.
func (r *Replica) handleUpdate(m wireMsg) []byte {
	r.execMu.Lock()
	defer r.execMu.Unlock()

	r.mu.Lock()
	if r.role == RolePrimary {
		// A deposed primary re-joining as backup would handle this; a live
		// primary ignores stale updates.
		r.mu.Unlock()
		return nil
	}
	sameStream := m.From == r.updFrom
	prevSeq := r.seq
	base := r.snapBytes
	if m.Type == msgCheckpoint {
		if sameStream && m.Seq <= prevSeq {
			// Duplicate (a retransmission crossed our ack, or the ack was
			// lost): re-ack the frontier instead of staying silent, or the
			// primary keeps believing us stalled and retransmits forever.
			ack := r.ackLocked(m.From)
			r.mu.Unlock()
			return ack
		}
		if !sameStream && m.From != r.primaryIdx {
			// A checkpoint from a primary this backup does not follow — a
			// deposed primary's stall detector, or a pre-failover
			// checkpoint delayed in flight. Anchoring to it would regress
			// the backup onto a dead stream; only the followed primary
			// (maintained by heartbeats and failover) may re-anchor.
			r.mu.Unlock()
			return nil
		}
		r.mu.Unlock()
		return r.installCheckpoint(m, sameStream, prevSeq)
	}
	switch {
	case !sameStream:
		// A delta from a stream this backup is not positioned in: only a
		// checkpoint can anchor it.
		r.mNackStream.Inc()
		r.trace.Record(metrics.KindResyncStream, r.cfg.Addr, m.From, m.Seq)
		return r.nackLocked()
	case m.Seq <= prevSeq:
		// Duplicate delta (retransmission crossed our ack): re-ack so the
		// primary relearns the frontier even when the original ack was
		// lost on a lossy link.
		ack := r.ackLocked(m.From)
		r.mu.Unlock()
		return ack
	case m.Seq > prevSeq+1:
		r.mNackGap.Inc()
		r.trace.Record(metrics.KindResyncGap, r.cfg.Addr, m.From, m.Seq)
		return r.nackLocked() // gap: updates were dropped or slept through
	}
	r.mu.Unlock()

	// In-order delta: verify the chain base and install. Failures here are
	// divergence, not gaps — retransmitting the same delta could never
	// succeed — so the backup drops off-stream first and its nack carries
	// streamUnknown, steering the primary straight to the checkpoint
	// fallback (and making the stream's later deltas cross-stream drops
	// instead of a fresh spurious nack each).
	if snapHash(base) != m.BaseHash {
		return r.nackDiverged()
	}
	newSnap, ok := ApplyDelta(base, m.DeltaPrefix, m.Delta, m.DeltaSuffix)
	if !ok {
		return r.nackDiverged()
	}
	if err := r.cfg.Service.Restore(newSnap); err != nil {
		return r.nackDiverged()
	}

	cached := cachedResp{body: m.RespBody, errMsg: m.RespErr}
	r.mDeltas.Inc()
	r.mu.Lock()
	r.seq = m.Seq
	r.snapBytes = newSnap
	r.primaryIdx = m.From
	r.lastHeartbeat = time.Now()
	r.resyncing = false
	r.cacheRespLocked(m.RequestID, cached)
	if r.durable {
		// Journal the installed update so a rebuild over this store resumes
		// from the applied frontier instead of an empty state.
		_ = r.store.Append(m.Seq, encode(m))
	}
	waiting := r.pending[m.RequestID]
	delete(r.pending, m.RequestID)
	ack := r.ackLocked(m.From)
	r.mu.Unlock()

	for _, w := range waiting {
		r.reply(w, m.RequestID, cached)
	}
	return ack
}

// installCheckpoint anchors a backup at a full-snapshot update: cross-stream
// checkpoints reposition the backup in the sender's stream wholesale (its
// sequence space, not ours), same-stream ones jump a gap or continue the
// chain. Caller holds execMu.
func (r *Replica) installCheckpoint(m wireMsg, sameStream bool, prevSeq uint64) []byte {
	if err := r.cfg.Service.Restore(m.Snapshot); err != nil {
		// Unusable snapshot: stay put; the primary's stall detector retries.
		return nil
	}
	type answered struct {
		requestID string
		resp      cachedResp
		conns     []*netsim.Conn
	}
	var serve []answered
	var orphaned []*netsim.Conn

	r.mu.Lock()
	jumped := !sameStream || m.Seq > prevSeq+1
	r.seq = m.Seq
	r.snapBytes = m.Snapshot
	r.updFrom = m.From
	r.primaryIdx = m.From
	r.lastHeartbeat = time.Now()
	r.resyncing = false
	r.mCheckpoints.Inc()
	if jumped {
		r.ckptJumps++
		r.mCkptJumps.Inc()
	}
	if m.RequestID != "" {
		r.cacheRespLocked(m.RequestID, cachedResp{body: m.RespBody, errMsg: m.RespErr})
	}
	// Sorted merge: with a bounded cache, insertion order decides eviction
	// order, and map iteration order would make it nondeterministic.
	for _, id := range sortedKeys(m.Responses) {
		if _, ok := r.respCache[id]; !ok {
			r.cacheRespLocked(id, cachedResp{body: m.Responses[id]})
		}
	}
	if r.durable {
		// The checkpoint message carries everything recovery needs (state,
		// stream, responses): persist it whole as the snapshot slot and drop
		// the journal it supersedes — including any orphans a jump left
		// above the new sequence.
		if r.store.WriteSnapshot(m.Seq, encode(m)) == nil {
			_ = r.store.TruncateTo(store.TruncateAll)
		}
	}
	for id, conns := range r.pending {
		if cached, ok := r.respCache[id]; ok {
			delete(r.pending, id)
			serve = append(serve, answered{id, cached, conns})
		}
	}
	if jumped {
		// The jump skipped requests this checkpoint carries no responses
		// for: close their parked connections so the requesters resubmit
		// (the primary answers retries from its cache), exactly as failover
		// does for requests orphaned by a dead primary.
		for id, conns := range r.pending {
			delete(r.pending, id)
			orphaned = append(orphaned, conns...)
		}
	}
	ack := r.ackLocked(m.From)
	r.mu.Unlock()

	for _, a := range serve {
		for _, c := range a.conns {
			r.reply(c, a.requestID, a.resp)
		}
	}
	for _, c := range orphaned {
		c.Close()
	}
	return ack
}

// ackLocked encodes the cumulative applied-frontier ack. Caller holds r.mu.
func (r *Replica) ackLocked(stream int) []byte {
	return encode(wireMsg{Type: msgAck, Seq: r.seq, From: r.cfg.Index, Stream: stream})
}

// nackDiverged reports a chain break that no retransmission can repair
// (base-hash mismatch, unappliable delta, failed restore): the backup
// abandons its stream position so the nack's streamUnknown forces the
// primary onto the checkpoint path.
func (r *Replica) nackDiverged() []byte {
	r.mNackDiverged.Inc()
	r.mu.Lock()
	r.trace.Record(metrics.KindResyncDiverged, r.cfg.Addr, r.primaryIdx, r.seq)
	r.updFrom = streamUnknown
	r.snapBytes = nil
	return r.nackLocked()
}

// nackLocked encodes a chain-break report carrying the backup's applied
// frontier and stream position, rate-limited so a burst of unapplicable
// deltas triggers one resync, not one per delta. Caller holds r.mu; the
// lock is released.
func (r *Replica) nackLocked() []byte {
	if r.resyncing && time.Since(r.nackedAt) < r.cfg.HeartbeatTimeout {
		r.mu.Unlock()
		return nil
	}
	r.resyncing = true
	r.nackedAt = time.Now()
	n := encode(wireMsg{Type: msgNack, Seq: r.seq, From: r.cfg.Index, Stream: r.updFrom})
	r.mu.Unlock()
	return n
}

// handleAck records a backup's cumulative applied frontier and releases
// retained deltas every backup has acknowledged.
func (r *Replica) handleAck(m wireMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != RolePrimary || m.Stream != r.cfg.Index {
		return // an ack for another primary's stream says nothing about ours
	}
	if m.Seq > r.acked[m.From] {
		r.acked[m.From] = m.Seq
	}
	// Ack-driven early release: everything every peer has applied can go
	// before the capacity bound forces it out. An ack for an
	// already-trimmed (checkpointed) sequence is simply below every
	// frontier and trims nothing.
	minAck := m.Seq
	for _, idx := range r.peerIdx {
		if a := r.acked[idx]; a < minAck {
			minAck = a
		}
	}
	if minAck > 0 {
		r.window.TrimTo(minAck + 1)
	}
	r.gAckFrontier.Set(int64(minAck))
	r.gWindow.Set(int64(r.window.Len()))
}

// handleNack resyncs a backup that reported a chain break.
func (r *Replica) handleNack(m wireMsg) {
	r.resyncPeer(m.From, m.Seq, m.Stream)
}

// HandleOutboxShed implements core.OutboxShedHandler: the runtime's bounded
// outbox dropped the oldest staged messages for peer, so whatever update
// suffix the backup observes next has a gap at worst. The peer is only
// marked here — the checkpoint resync runs on the next Tick. Resyncing
// synchronously would deadlock: the notification arrives from Flush, which
// can run while this replica's own handler still holds execMu.
func (r *Replica) HandleOutboxShed(peer int, dropped int) {
	r.shedMu.Lock()
	r.shedPeers[peer] = true
	r.shedMu.Unlock()
}

// takeShedPeers returns and clears the peers marked by HandleOutboxShed
// since the last tick, in ascending order.
func (r *Replica) takeShedPeers() []int {
	r.shedMu.Lock()
	peers := make([]int, 0, len(r.shedPeers))
	for p := range r.shedPeers {
		peers = append(peers, p)
	}
	clear(r.shedPeers)
	r.shedMu.Unlock()
	sort.Ints(peers)
	return peers
}

// resyncPeer brings one backup back onto the update stream: a backup
// confirmed on this primary's own chain (stream) whose gap fits the
// retained window gets the missing suffix retransmitted delta-by-delta;
// anything else — cross-stream, out-the-window, or never-acked — gets a
// full checkpoint carrying the response cache. execMu is held across
// staging so the resync cannot interleave with a concurrent execution's
// broadcast: the per-peer outbox is FIFO, so the backup receives the suffix
// and any newer live updates in chain order.
func (r *Replica) resyncPeer(peer int, from uint64, stream int) {
	r.execMu.Lock()
	defer r.execMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != RolePrimary {
		return
	}
	if _, ok := r.cfg.Peers[peer]; !ok || peer == r.cfg.Index {
		return
	}
	if stream == r.cfg.Index {
		// The nack frontier is an observation of the backup's position on
		// our own chain — trust it even when it regresses (an in-place
		// restart slept through updates).
		r.acked[peer] = from
	} else {
		r.acked[peer] = 0
	}
	if from >= r.seq && stream == r.cfg.Index {
		return // already current
	}
	inWindow := stream == r.cfg.Index &&
		from+1 >= r.window.Base() && r.window.End() == r.seq+1
	if inWindow {
		for s := from + 1; s <= r.seq; s++ {
			up, ok := r.window.Get(s)
			if !ok {
				inWindow = false
				break
			}
			r.node.SendTo(peer, encode(updateMsg(s, r.cfg.Index, up, nil)))
		}
		if inWindow {
			r.mResyncRetx.Inc()
			return // staged; the runtime flushes on the way out
		}
	}
	// Checkpoint fallback: the whole state plus the response cache, so
	// requests the backup jumps over stay answerable from cache.
	if r.lastSnap == nil {
		return // nothing executed yet; the first update will checkpoint
	}
	responses := make(map[string][]byte, len(r.respCache))
	for id, c := range r.respCache {
		responses[id] = c.payload()
	}
	r.mResyncCkpt.Inc()
	r.node.SendTo(peer, encode(wireMsg{
		Type:      msgCheckpoint,
		Seq:       r.seq,
		From:      r.cfg.Index,
		Snapshot:  r.lastSnap,
		Responses: responses,
	}))
}

func (r *Replica) handleHeartbeat(m wireMsg) {
	r.mu.Lock()
	if r.role == RolePrimary && m.From != r.cfg.Index {
		// Two primaries: the lower index wins, the higher demotes itself —
		// and, now a backup with a dead chain, waits for the winner's
		// checkpoint to anchor it.
		if m.From < r.cfg.Index {
			r.role = RoleBackup
			r.primaryIdx = m.From
			r.updFrom = streamUnknown
			r.snapBytes = nil
			r.resyncing = false
		}
		r.mu.Unlock()
		return
	}
	r.primaryIdx = m.From
	r.lastHeartbeat = time.Now()
	// The heartbeat carries the primary's executed frontier: a backup that
	// is behind with no update in flight (it slept through the whole tail)
	// would otherwise wait for the next execution to notice.
	behind := m.Seq > r.seq && m.From != r.cfg.Index
	if !behind {
		r.mu.Unlock()
		return
	}
	nack := r.nackLocked() // releases r.mu
	if nack != nil {
		r.node.SendTo(m.From, nack)
	}
}

// Tick implements core.Handler: heartbeats plus ack-stall detection
// (primary) and failure detection (backup). Staged messages are flushed by
// the runtime when Tick returns.
func (r *Replica) Tick() {
	r.mu.Lock()
	role := r.role
	stale := time.Since(r.lastHeartbeat) > r.cfg.HeartbeatTimeout
	primary := r.primaryIdx
	seq := r.seq
	type stalledPeer struct {
		peer   int
		from   uint64
		stream int
	}
	var stalled []stalledPeer
	if role == RolePrimary {
		for _, idx := range r.peerIdx {
			a := r.acked[idx]
			switch {
			case a >= seq:
				r.stallTicks[idx] = 0
				r.stallWait[idx] = r.stallLimit
			case a == r.ackSeen[idx]:
				r.stallTicks[idx]++
			default:
				r.stallTicks[idx] = 0
				r.stallWait[idx] = r.stallLimit
			}
			r.ackSeen[idx] = a
			wait := r.stallWait[idx]
			if wait == 0 {
				wait = r.stallLimit
			}
			if r.stallTicks[idx] >= wait {
				r.stallTicks[idx] = 0
				// Satellite observability for the detector itself: how often
				// it fires and how long (in wall time) each detected stall
				// lasted before the resync went out.
				r.mStallFires.Inc()
				r.hStallNanos.Observe(uint64(wait) * uint64(r.cfg.HeartbeatInterval))
				r.trace.Record(metrics.KindResyncStall, r.cfg.Addr, idx, a)
				// Back off while the peer keeps not answering (crashed or
				// partitioned away): each unanswered resync doubles the
				// wait, capped at 8× — a dead backup must not cost a full
				// state+cache encode every timeout. Ack progress resets it.
				r.stallWait[idx] = min(wait*2, r.stallLimit*8)
				// A peer that has acked on this stream is retransmitted
				// from its frontier; one that never has gets a checkpoint.
				stream := r.cfg.Index
				if a == 0 {
					stream = streamUnknown
				}
				stalled = append(stalled, stalledPeer{idx, a, stream})
			}
		}
	}
	r.mu.Unlock()

	switch role {
	case RolePrimary:
		r.node.Broadcast(encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index, Seq: seq}))
		for _, s := range stalled {
			r.resyncPeer(s.peer, s.from, s.stream)
		}
		// Backups whose outbox shed updates since the last tick have a gap
		// nothing retained can fill deterministically: anchor each with a
		// full checkpoint. (A backup's own sheds — dropped acks — clear here
		// too; the primary's stall detector already covers lost acks.)
		for _, p := range r.takeShedPeers() {
			r.resyncPeer(p, 0, streamUnknown)
		}
	case RoleBackup:
		if stale {
			r.promote(primary)
		}
	}
}

// promote deterministically elects the next primary after deadPrimary: the
// lowest index greater than the dead one, wrapping around, excluding
// suspected-dead replicas. Every backup applies the same rule, so they
// converge without coordination.
//
// execMu is taken first: handleUpdate releases mu around a slow Restore,
// and a promotion sliding into that gap would let the install finish on a
// node that just became primary — overwriting the fresh primary's state
// with the dead stream's update and desyncing seq from the retransmission
// window. Under execMu the promotion waits out any in-flight install.
func (r *Replica) promote(deadPrimary int) {
	r.execMu.Lock()
	defer r.execMu.Unlock()
	r.mu.Lock()
	r.suspected[deadPrimary] = true
	indices := make([]int, 0, len(r.cfg.Peers))
	for i := range r.cfg.Peers {
		if !r.suspected[i] {
			indices = append(indices, i)
		}
	}
	if len(indices) == 0 {
		r.mu.Unlock()
		return
	}
	sort.Ints(indices)
	next := indices[0]
	for _, i := range indices {
		if i > deadPrimary {
			next = i
			break
		}
	}
	r.primaryIdx = next
	r.lastHeartbeat = time.Now()
	becamePrimary := next == r.cfg.Index && r.role != RolePrimary
	if becamePrimary {
		r.role = RolePrimary
		// A fresh primary starts a fresh update stream: its first executed
		// update ships as a checkpoint (lastSnap is nil), anchoring every
		// backup whatever it had applied under the old stream, and the
		// retransmission window restarts past everything inherited.
		r.lastSnap = nil
		r.window.Reset(r.seq + 1)
		for _, idx := range r.peerIdx {
			r.acked[idx] = 0
			r.ackSeen[idx] = 0
			r.stallTicks[idx] = 0
			r.stallWait[idx] = r.stallLimit // a new term owes no old backoff
		}
	}
	r.mu.Unlock()

	if becamePrimary {
		// Announce immediately so peers stop their own failover timers.
		r.node.Broadcast(encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index, Seq: r.Seq()}))
	}
	// Requests parked waiting for the dead primary's update will never be
	// answered; close them so requesters resubmit (to the new primary).
	r.serveParkedRequests()
}

// serveParkedRequests answers requests that were parked while this replica
// was a backup and never got an update from the dead primary.
func (r *Replica) serveParkedRequests() {
	r.mu.Lock()
	parked := r.pending
	r.pending = make(map[string][]*netsim.Conn)
	r.mu.Unlock()
	for reqID, conns := range parked {
		r.mu.Lock()
		cached, ok := r.respCache[reqID]
		r.mu.Unlock()
		if !ok {
			// The request body is gone with the parked message; requesters
			// resubmit on timeout (proxies do). Close so they notice now.
			for _, c := range conns {
				c.Close()
			}
			continue
		}
		for _, c := range conns {
			r.reply(c, reqID, cached)
		}
	}
}

// --- Requester --------------------------------------------------------

// Request sends one request to the replica at addr over net and waits for
// its signed response. It is the requester-side helper proxies and tests
// use; from is the caller's network identity.
func Request(net *netsim.Network, from, addr, requestID string, body []byte, timeout time.Duration) (sig.ServerResponse, error) {
	return RequestTagged(net, from, addr, requestID, body, false, timeout)
}

// RequestTagged is Request with an explicit read tag: read requests are
// eligible for the smr lease-read fast path at the receiving replica (the
// pb engine serves them through the ordinary primary path regardless).
func RequestTagged(net *netsim.Network, from, addr, requestID string, body []byte, read bool, timeout time.Duration) (sig.ServerResponse, error) {
	conn, err := net.Dial(from, addr)
	if err != nil {
		return sig.ServerResponse{}, fmt.Errorf("pb: request dial: %w", err)
	}
	defer conn.Close()
	return requestOnTagged(conn, requestID, body, read, timeout)
}

// RequestOn issues a request on an existing connection and waits for the
// matching signed response, skipping unrelated traffic.
func RequestOn(conn *netsim.Conn, requestID string, body []byte, timeout time.Duration) (sig.ServerResponse, error) {
	return requestOnTagged(conn, requestID, body, false, timeout)
}

func requestOnTagged(conn *netsim.Conn, requestID string, body []byte, read bool, timeout time.Duration) (sig.ServerResponse, error) {
	if err := conn.Send(encode(wireMsg{Type: msgRequest, RequestID: requestID, Body: body, Read: read})); err != nil {
		return sig.ServerResponse{}, fmt.Errorf("pb: request send: %w", err)
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return sig.ServerResponse{}, netsim.ErrTimeout
		}
		raw, err := conn.RecvTimeout(remaining)
		if err != nil {
			return sig.ServerResponse{}, fmt.Errorf("pb: request recv: %w", err)
		}
		var m wireMsg
		uerr := json.Unmarshal(raw, &m)
		netsim.Release(raw) // decoded: json copied every field out of raw
		if uerr != nil {
			continue
		}
		if m.Type == msgResponse && m.RequestID == requestID && m.Response != nil {
			return *m.Response, nil
		}
	}
}
