// Package pb implements classical primary-backup replication (paper §1, §3),
// the server tier FORTRESS fortifies.
//
// One replica — the primary — executes client requests; after each execution
// it ships the response and a full state snapshot to every backup. Each
// replica (primary and backups alike) signs the response together with its
// own index and returns it to the requester, exactly as §3 prescribes for
// the FORTRESS interaction pattern. Backups never execute requests, which is
// why the hosted service need not be deterministic.
//
// Failure handling: the primary heartbeats the backups; a backup that
// misses heartbeats for the configured timeout deterministically promotes
// the lowest-indexed surviving replica (itself included) to primary.
//
// Transport, lifecycle and peer fan-out come from the shared node runtime
// in replica/core: the primary's update broadcast goes through the per-peer
// batched outboxes, so a drained batch of requests ships one coalesced
// SendBatch of updates per backup instead of one Send per update.
package pb

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fortress/internal/netsim"
	"fortress/internal/replica/core"
	"fortress/internal/service"
	"fortress/internal/sig"
)

// Role distinguishes the primary from backups.
type Role int

const (
	// RolePrimary executes requests and ships state updates.
	RolePrimary Role = iota + 1
	// RoleBackup applies state updates and co-signs responses.
	RoleBackup
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// wire message types exchanged between replicas and with requesters.
const (
	msgRequest   = "request"   // requester → replica: please serve
	msgResponse  = "response"  // replica → requester: signed response
	msgUpdate    = "update"    // primary → backup: executed request + state
	msgAck       = "ack"       // backup → primary
	msgHeartbeat = "heartbeat" // primary → backup
)

type wireMsg struct {
	Type      string              `json:"type"`
	RequestID string              `json:"requestId,omitempty"`
	Body      []byte              `json:"body,omitempty"`
	Seq       uint64              `json:"seq,omitempty"`
	Snapshot  []byte              `json:"snapshot,omitempty"`
	RespBody  []byte              `json:"respBody,omitempty"`
	RespErr   string              `json:"respErr,omitempty"`
	From      int                 `json:"from,omitempty"`
	Response  *sig.ServerResponse `json:"response,omitempty"`
}

func encode(m wireMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// wireMsg contains only marshal-safe fields; this cannot happen.
		panic(fmt.Sprintf("pb: marshal wire message: %v", err))
	}
	return b
}

// Config describes one replica.
type Config struct {
	// Index is this replica's unique server index, known to proxies and
	// clients through the name server.
	Index int
	// Addr is the netsim address this replica listens on.
	Addr string
	// Peers maps every replica index (including this one) to its address.
	Peers map[int]string
	// InitialPrimary is the index of the replica that starts as primary.
	InitialPrimary int
	// Service is the hosted service instance (each replica owns one).
	Service service.Service
	// Keys signs this replica's responses.
	Keys *sig.KeyPair
	// Net is the simulated network.
	Net *netsim.Network
	// HeartbeatInterval is how often the primary pings backups.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a backup waits before declaring the
	// primary dead. It should be several intervals.
	HeartbeatTimeout time.Duration
}

func (c Config) validate() error {
	switch {
	case c.Service == nil:
		return errors.New("pb: config needs a Service")
	case c.Keys == nil:
		return errors.New("pb: config needs Keys")
	case c.Net == nil:
		return errors.New("pb: config needs Net")
	case c.Addr == "":
		return errors.New("pb: config needs Addr")
	case len(c.Peers) == 0:
		return errors.New("pb: config needs Peers")
	case c.HeartbeatInterval <= 0 || c.HeartbeatTimeout <= 0:
		return errors.New("pb: config needs positive heartbeat timings")
	}
	if _, ok := c.Peers[c.Index]; !ok {
		return fmt.Errorf("pb: Peers must contain own index %d", c.Index)
	}
	if _, ok := c.Peers[c.InitialPrimary]; !ok {
		return fmt.Errorf("pb: Peers must contain initial primary %d", c.InitialPrimary)
	}
	return nil
}

// Replica is one primary-backup replica: the PB protocol handler mounted on
// a core.Node runtime.
type Replica struct {
	cfg  Config
	node *core.Node

	mu            sync.Mutex
	role          Role
	primaryIdx    int
	seq           uint64
	lastHeartbeat time.Time
	respCache     map[string]cachedResp
	pending       map[string][]*netsim.Conn
	suspected     map[int]bool
}

type cachedResp struct {
	body   []byte
	errMsg string
}

// New starts a replica. Call Stop to shut it down.
func New(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:        cfg,
		role:       RoleBackup,
		primaryIdx: cfg.InitialPrimary,
		respCache:  make(map[string]cachedResp),
		pending:    make(map[string][]*netsim.Conn),
		suspected:  make(map[int]bool),
	}
	if cfg.Index == cfg.InitialPrimary {
		r.role = RolePrimary
	}
	r.lastHeartbeat = time.Now()
	node, err := core.NewNode(core.Config{
		Index:        cfg.Index,
		Addr:         cfg.Addr,
		Peers:        cfg.Peers,
		Net:          cfg.Net,
		TickInterval: cfg.HeartbeatInterval,
	}, r)
	if err != nil {
		return nil, fmt.Errorf("pb: %w", err)
	}
	r.node = node
	if err := node.Start(); err != nil {
		return nil, fmt.Errorf("pb: %w", err)
	}
	return r, nil
}

// Index returns the replica's server index.
func (r *Replica) Index() int { return r.cfg.Index }

// Addr returns the replica's network address.
func (r *Replica) Addr() string { return r.cfg.Addr }

// Role returns the replica's current role.
func (r *Replica) Role() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role
}

// PrimaryIndex returns who this replica currently believes is primary.
func (r *Replica) PrimaryIndex() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primaryIdx
}

// Seq returns the number of state updates applied (or, on the primary,
// executed).
func (r *Replica) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Executed is Seq under the backend-neutral replica.Server name.
func (r *Replica) Executed() uint64 { return r.Seq() }

// PublicKey exposes the verification key for name-server registration.
func (r *Replica) PublicKey() []byte { return r.cfg.Keys.Public() }

// Stop shuts the replica down and waits for its goroutines to exit.
func (r *Replica) Stop() { r.node.Stop() }

// Crash simulates a node crash: the replica is made inert and its address
// torn out of the network synchronously — every peer and requester observes
// closed connections and the replica can take no further protocol actions —
// while goroutine shutdown completes in the background.
//
// Crash is safe to call from within request handling (a wrong-key exploit
// probe crashes the node mid-request): nothing here waits on the caller's
// own serving goroutine.
func (r *Replica) Crash() { r.node.Crash() }

// Restart re-opens a stopped or crashed replica in place — the supervised
// respawn-and-reconnect idiom: the listener re-registers at the same address
// (netsim allows it once CrashAddr or Close has torn the old one out), the
// serve loops come back, and the node rejoins the group under its retained
// service state and sequence number.
//
// A multi-replica node always rejoins as a backup, whatever its start-up
// role: the cluster may have failed over while it was down, and a rejoining
// initial primary that reclaimed its role would overwrite the current
// primary's newer state with its stale snapshot. Its stale state converges
// at the next primary update, which carries a full snapshot. Only a
// single-replica deployment restarts straight into the primary role (there
// is no one else to defer to). Restarting a running replica is an error.
//
// This is the node-local restart primitive (a process supervisor's view);
// fortress-level fault recovery instead rebuilds the replica from a live
// peer's snapshot (fortress.RestartServer), trading retained local state
// for guaranteed freshness.
func (r *Replica) Restart() error { return r.node.Restart() }

// Rejoin implements core.Handler: protocol-state reset on restart.
func (r *Replica) Rejoin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.role = RoleBackup
	if len(r.cfg.Peers) == 1 {
		r.role = RolePrimary
	}
	// primaryIdx keeps its pre-crash value; the current primary's next
	// heartbeat corrects it, and the failover timer covers a silent group.
	r.suspected = make(map[int]bool)
	// Parked requesters were disconnected by the shutdown; they resubmit.
	r.pending = make(map[string][]*netsim.Conn)
	r.lastHeartbeat = time.Now()
}

// HandleMessage implements core.Handler: one decoded wire message.
func (r *Replica) HandleMessage(conn *netsim.Conn, raw []byte, replies [][]byte) [][]byte {
	var m wireMsg
	if json.Unmarshal(raw, &m) != nil {
		return replies // malformed traffic is dropped, never crashes a replica
	}
	switch m.Type {
	case msgRequest:
		if resp := r.handleRequest(conn, m); resp != nil {
			replies = append(replies, resp)
		}
	case msgUpdate:
		if ack := r.handleUpdate(m); ack != nil {
			replies = append(replies, ack)
		}
	case msgHeartbeat:
		r.handleHeartbeat(m)
	case msgAck:
		// Asynchronous PB: acks are informational.
	}
	return replies
}

// handleRequest serves a request according to the current role. It returns
// the encoded response to deliver on the caller's connection — nil when the
// request is parked on a backup — so the runtime can batch a whole drain's
// responses into one SendBatch.
func (r *Replica) handleRequest(conn *netsim.Conn, m wireMsg) []byte {
	r.mu.Lock()
	if cached, ok := r.respCache[m.RequestID]; ok {
		r.mu.Unlock()
		return r.responseBytes(m.RequestID, cached)
	}
	isPrimary := r.role == RolePrimary
	if !isPrimary {
		// Backup: park the connection until the primary's update arrives.
		r.pending[m.RequestID] = append(r.pending[m.RequestID], conn)
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()

	// Primary path: execute, snapshot, replicate, reply.
	body, applyErr := r.cfg.Service.Apply(m.Body)
	cached := cachedResp{body: body}
	if applyErr != nil {
		cached = cachedResp{errMsg: applyErr.Error()}
	}
	snapshot, snapErr := r.cfg.Service.Snapshot()

	r.mu.Lock()
	// Re-check: a concurrent duplicate may have won the race.
	if prior, ok := r.respCache[m.RequestID]; ok {
		r.mu.Unlock()
		return r.responseBytes(m.RequestID, prior)
	}
	r.seq++
	seq := r.seq
	r.respCache[m.RequestID] = cached
	r.mu.Unlock()

	if snapErr == nil {
		// Staged on the per-backup outboxes: every update executed while
		// draining one inbound batch leaves in a single SendBatch per
		// backup when the runtime flushes at the end of the drain.
		r.node.Broadcast(encode(wireMsg{
			Type:      msgUpdate,
			RequestID: m.RequestID,
			Seq:       seq,
			Snapshot:  snapshot,
			RespBody:  cached.body,
			RespErr:   cached.errMsg,
			From:      r.cfg.Index,
		}))
	}
	return r.responseBytes(m.RequestID, cached)
}

// responseBytes signs and encodes the response for a request.
func (r *Replica) responseBytes(requestID string, c cachedResp) []byte {
	payload := c.body
	if c.errMsg != "" {
		payload = []byte("error: " + c.errMsg)
	}
	resp := sig.SignServerResponse(r.cfg.Keys, requestID, payload, r.cfg.Index)
	return encode(wireMsg{Type: msgResponse, RequestID: requestID, Response: &resp})
}

// reply signs and sends the response for a request on the given connection.
func (r *Replica) reply(conn *netsim.Conn, requestID string, c cachedResp) {
	_ = conn.Send(r.responseBytes(requestID, c))
}

// handleUpdate applies a primary state update on a backup and returns the
// ack to send back on the update's connection (nil when the update is
// stale or this replica is itself primary).
func (r *Replica) handleUpdate(m wireMsg) []byte {
	r.mu.Lock()
	if r.role == RolePrimary {
		// A deposed primary re-joining as backup would handle this; a live
		// primary ignores stale updates.
		r.mu.Unlock()
		return nil
	}
	if m.Seq <= r.seq {
		r.mu.Unlock() // duplicate or out-of-date snapshot
		return nil
	}
	r.seq = m.Seq
	r.primaryIdx = m.From
	r.lastHeartbeat = time.Now()
	cached := cachedResp{body: m.RespBody, errMsg: m.RespErr}
	r.respCache[m.RequestID] = cached
	waiting := r.pending[m.RequestID]
	delete(r.pending, m.RequestID)
	r.mu.Unlock()

	var ack []byte
	if err := r.cfg.Service.Restore(m.Snapshot); err == nil {
		ack = encode(wireMsg{Type: msgAck, RequestID: m.RequestID, Seq: m.Seq, From: r.cfg.Index})
	}
	for _, w := range waiting {
		r.reply(w, m.RequestID, cached)
	}
	return ack
}

func (r *Replica) handleHeartbeat(m wireMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role == RolePrimary && m.From != r.cfg.Index {
		// Two primaries: the lower index wins, the higher demotes itself.
		if m.From < r.cfg.Index {
			r.role = RoleBackup
			r.primaryIdx = m.From
		}
		return
	}
	r.primaryIdx = m.From
	r.lastHeartbeat = time.Now()
}

// Tick implements core.Handler: heartbeats (primary) and failure detection
// (backup). Staged broadcasts are flushed by the runtime when Tick returns.
func (r *Replica) Tick() {
	r.mu.Lock()
	role := r.role
	stale := time.Since(r.lastHeartbeat) > r.cfg.HeartbeatTimeout
	primary := r.primaryIdx
	r.mu.Unlock()

	switch role {
	case RolePrimary:
		r.node.Broadcast(encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index}))
	case RoleBackup:
		if stale {
			r.promote(primary)
		}
	}
}

// promote deterministically elects the next primary after deadPrimary: the
// lowest index greater than the dead one, wrapping around, excluding
// suspected-dead replicas. Every backup applies the same rule, so they
// converge without coordination.
func (r *Replica) promote(deadPrimary int) {
	r.mu.Lock()
	r.suspected[deadPrimary] = true
	indices := make([]int, 0, len(r.cfg.Peers))
	for i := range r.cfg.Peers {
		if !r.suspected[i] {
			indices = append(indices, i)
		}
	}
	if len(indices) == 0 {
		r.mu.Unlock()
		return
	}
	sort.Ints(indices)
	next := indices[0]
	for _, i := range indices {
		if i > deadPrimary {
			next = i
			break
		}
	}
	r.primaryIdx = next
	r.lastHeartbeat = time.Now()
	becamePrimary := next == r.cfg.Index && r.role != RolePrimary
	if becamePrimary {
		r.role = RolePrimary
	}
	r.mu.Unlock()

	if becamePrimary {
		// Announce immediately so peers stop their own failover timers.
		r.node.Broadcast(encode(wireMsg{Type: msgHeartbeat, From: r.cfg.Index}))
	}
	// Requests parked waiting for the dead primary's update will never be
	// answered; close them so requesters resubmit (to the new primary).
	r.serveParkedRequests()
}

// serveParkedRequests answers requests that were parked while this replica
// was a backup and never got an update from the dead primary.
func (r *Replica) serveParkedRequests() {
	r.mu.Lock()
	parked := r.pending
	r.pending = make(map[string][]*netsim.Conn)
	r.mu.Unlock()
	for reqID, conns := range parked {
		r.mu.Lock()
		cached, ok := r.respCache[reqID]
		r.mu.Unlock()
		if !ok {
			// The request body is gone with the parked message; requesters
			// resubmit on timeout (proxies do). Close so they notice now.
			for _, c := range conns {
				c.Close()
			}
			continue
		}
		for _, c := range conns {
			r.reply(c, reqID, cached)
		}
	}
}

// --- Requester --------------------------------------------------------

// Request sends one request to the replica at addr over net and waits for
// its signed response. It is the requester-side helper proxies and tests
// use; from is the caller's network identity.
func Request(net *netsim.Network, from, addr, requestID string, body []byte, timeout time.Duration) (sig.ServerResponse, error) {
	conn, err := net.Dial(from, addr)
	if err != nil {
		return sig.ServerResponse{}, fmt.Errorf("pb: request dial: %w", err)
	}
	defer conn.Close()
	return RequestOn(conn, requestID, body, timeout)
}

// RequestOn issues a request on an existing connection and waits for the
// matching signed response, skipping unrelated traffic.
func RequestOn(conn *netsim.Conn, requestID string, body []byte, timeout time.Duration) (sig.ServerResponse, error) {
	if err := conn.Send(encode(wireMsg{Type: msgRequest, RequestID: requestID, Body: body})); err != nil {
		return sig.ServerResponse{}, fmt.Errorf("pb: request send: %w", err)
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return sig.ServerResponse{}, netsim.ErrTimeout
		}
		raw, err := conn.RecvTimeout(remaining)
		if err != nil {
			return sig.ServerResponse{}, fmt.Errorf("pb: request recv: %w", err)
		}
		var m wireMsg
		uerr := json.Unmarshal(raw, &m)
		netsim.Release(raw) // decoded: json copied every field out of raw
		if uerr != nil {
			continue
		}
		if m.Type == msgResponse && m.RequestID == requestID && m.Response != nil {
			return *m.Response, nil
		}
	}
}
