package netsim

import (
	"testing"
	"time"

	"fortress/internal/xrand"
)

// dropPattern sends n one-byte messages on c and reports which of them the
// receiver observed (true = delivered). Messages are numbered so the
// pattern is positional, not just a count.
func dropPattern(t *testing.T, c, s *Conn, n int) []bool {
	t.Helper()
	delivered := make([]bool, n)
	for i := 0; i < n; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		msg, err := s.RecvTimeout(50 * time.Millisecond)
		if err != nil {
			break
		}
		delivered[msg[0]] = true
		Release(msg)
	}
	return delivered
}

// TestPerPairDropStreamsIndependent is the per-directed-pair determinism
// contract: the drop decisions on one pair are a pure function of (seed,
// pair, send index) — traffic on other pairs, however much of it and
// however interleaved, cannot perturb them.
func TestPerPairDropStreamsIndependent(t *testing.T) {
	const msgs = 200
	run := func(background int) []bool {
		n := NewNetwork(WithDropRate(0.3, xrand.New(99)))
		ab, abSrv := pipe(t, n, "a", "b")
		cd, cdSrv := pipe(t, n, "c", "d")
		defer ab.Close()
		defer cd.Close()
		// Interleave background sends on c→d between every a→b send.
		delivered := make([]bool, msgs)
		for i := 0; i < msgs; i++ {
			for j := 0; j < background; j++ {
				if err := cd.Send([]byte{0}); err != nil {
					t.Fatal(err)
				}
			}
			if err := ab.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for {
			msg, err := abSrv.RecvTimeout(50 * time.Millisecond)
			if err != nil {
				break
			}
			delivered[msg[0]] = true
			Release(msg)
		}
		// Drain the background pair so its buffers recycle.
		for {
			msg, err := cdSrv.RecvTimeout(time.Millisecond)
			if err != nil {
				break
			}
			Release(msg)
		}
		return delivered
	}

	quiet := run(0)
	noisy := run(7)
	dropped := 0
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("a→b drop pattern diverged at send %d under background traffic", i)
		}
		if !quiet[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == msgs {
		t.Fatalf("dropped %d/%d at rate 0.3: sampling looks broken", dropped, msgs)
	}
}

// TestPerPairDropStreamsSurviveReconnect: the stream belongs to the address
// pair, not the connection, so a re-dialed connection continues the same
// deterministic sequence instead of restarting it.
func TestPerPairDropStreamsSurviveReconnect(t *testing.T) {
	const msgs = 100
	pattern := func(reconnectAt int) []bool {
		n := NewNetwork(WithDropRate(0.4, xrand.New(7)))
		l, err := n.Listen("b")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		connect := func() (client, server *Conn) {
			done := make(chan *Conn, 1)
			go func() {
				srv, err := l.Accept()
				if err != nil {
					done <- nil
					return
				}
				done <- srv
			}()
			c, err := n.Dial("a", "b")
			if err != nil {
				t.Fatal(err)
			}
			s := <-done
			if s == nil {
				t.Fatal("accept failed")
			}
			return c, s
		}
		delivered := make([]bool, msgs)
		c, s := connect()
		for i := 0; i < msgs; i++ {
			if i == reconnectAt {
				c.Close()
				c, s = connect()
			}
			if err := c.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			msg, err := s.RecvTimeout(20 * time.Millisecond)
			if err == nil {
				delivered[msg[0]] = true
				Release(msg)
			}
		}
		c.Close()
		return delivered
	}
	uninterrupted := pattern(-1)
	reconnected := pattern(msgs / 2)
	for i := range uninterrupted {
		if uninterrupted[i] != reconnected[i] {
			t.Fatalf("drop pattern diverged at send %d across a reconnect", i)
		}
	}
}

// TestDirectedPairsDistinct: the a→b and b→a streams differ (directed), and
// distinct pairs get distinct streams from the same base seed.
func TestDirectedPairsDistinct(t *testing.T) {
	n := NewNetwork(WithDropRate(0.5, xrand.New(123)))
	ab, abSrv := pipe(t, n, "a", "b")
	defer ab.Close()
	const msgs = 128
	forward := dropPattern(t, ab, abSrv, msgs)
	// b→a rides the same connection, opposite direction.
	backward := dropPattern(t, abSrv, ab, msgs)
	same := 0
	for i := range forward {
		if forward[i] == backward[i] {
			same++
		}
	}
	if same == msgs {
		t.Fatal("a→b and b→a share one drop stream; directed pairs must differ")
	}
}

// TestSetDropRateReseedsPairStreams: installing a new generator re-derives
// every pair stream, and a rate change with a nil generator keeps them.
func TestSetDropRateReseedsPairStreams(t *testing.T) {
	n1 := NewNetwork(WithDropRate(0.5, xrand.New(1)))
	n2 := NewNetwork(WithDropRate(0.5, xrand.New(2)))
	c1, s1 := pipe(t, n1, "a", "b")
	c2, s2 := pipe(t, n2, "a", "b")
	defer c1.Close()
	defer c2.Close()
	const msgs = 128
	p1 := dropPattern(t, c1, s1, msgs)
	p2 := dropPattern(t, c2, s2, msgs)
	same := 0
	for i := range p1 {
		if p1[i] == p2[i] {
			same++
		}
	}
	if same == msgs {
		t.Fatal("different base generators produced identical pair streams")
	}
}
