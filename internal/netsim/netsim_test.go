package netsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fortress/internal/xrand"
)

// pipe sets up a listener at addr and returns the dial-side and accept-side
// connections.
func pipe(t *testing.T, n *Network, from, addr string) (client, server *Conn) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = l.Accept()
	}()
	client, derr := n.Dial(from, addr)
	if derr != nil {
		t.Fatal(derr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestSendRecvRoundTrip(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "client", "server")
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	// And the reverse direction.
	if err := s.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
}

func TestFIFOOrdering(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	const count = 1000
	for i := 0; i < count; i++ {
		if err := c.Send([]byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		got, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("%d", i) {
			t.Fatalf("message %d arrived as %q", i, got)
		}
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	buf := []byte("abc")
	if err := c.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z'
	got, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("message aliased sender buffer: %q", got)
	}
}

func TestCloseObservableByPeer(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "attacker", "victim")
	if c.Closed() || s.Closed() {
		t.Fatal("fresh connection reports closed")
	}
	s.Close()
	if !c.Closed() {
		t.Fatal("peer close not observable — the crash oracle is broken")
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer close: %v", err)
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after peer close: %v", err)
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); c.Close() }()
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()
	if n.OpenConns() != 0 {
		t.Fatalf("OpenConns = %d after close", n.OpenConns())
	}
}

func TestRecvDrainsAfterClose(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	if err := c.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	got, err := s.Recv()
	if err != nil {
		t.Fatalf("in-flight message lost: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("got %q", got)
	}
	if _, err := s.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	got := make(chan []byte, 1)
	go func() {
		msg, err := s.Recv()
		if err == nil {
			got <- msg
		}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("Recv returned before Send")
	default:
	}
	if err := c.Send([]byte("now")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg) != "now" {
			t.Fatalf("got %q", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv never woke")
	}
}

func TestRecvTimeout(t *testing.T) {
	n := NewNetwork()
	_, s := pipe(t, n, "a", "b")
	start := time.Now()
	_, err := s.RecvTimeout(20 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("timeout fired early")
	}
}

func TestRecvTimeoutDelivers(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	if err := c.Send([]byte("quick")); err != nil {
		t.Fatal(err)
	}
	got, err := s.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "quick" {
		t.Fatalf("got %q", got)
	}
}

func TestListenDuplicate(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("x"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("want ErrAddrInUse, got %v", err)
	}
}

func TestListenReuseAfterClose(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := n.Listen("x")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	l2.Close()
}

func TestDialNoListener(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("a", "nobody"); !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
}

func TestDialEphemeralLocal(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, aerr := l.Accept()
		if aerr == nil {
			_ = c.Send([]byte("hi"))
		}
	}()
	c, err := n.Dial("", "srv")
	if err != nil {
		t.Fatal(err)
	}
	if c.LocalAddr() == "" {
		t.Fatal("no ephemeral address assigned")
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptAfterListenerClose(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	go l.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestCrashAddrClosesEverything(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("victim")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, aerr := l.Accept(); aerr != nil {
				return
			}
		}
	}()
	c1, err := n.Dial("attacker", "victim")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.Dial("other", "victim")
	if err != nil {
		t.Fatal(err)
	}
	bystander, _ := pipe(t, n, "a", "b")

	n.CrashAddr("victim")

	if !c1.Closed() || !c2.Closed() {
		t.Fatal("connections to crashed node still open")
	}
	if bystander.Closed() {
		t.Fatal("bystander connection closed")
	}
	// Listener is gone: dialing is refused.
	if _, err := n.Dial("x", "victim"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial to crashed node: %v", err)
	}
}

func TestCrashOracleEndToEnd(t *testing.T) {
	// The de-randomization feedback loop: attacker holds a connection,
	// victim crashes, attacker's poll of Closed() flips to true.
	n := NewNetwork()
	attacker, _ := pipe(t, n, "attacker", "victim")
	if attacker.Closed() {
		t.Fatal("premature close")
	}
	n.CrashAddr("victim")
	select {
	case <-attacker.Done():
	case <-time.After(time.Second):
		t.Fatal("Done channel never closed")
	}
	if !attacker.Closed() {
		t.Fatal("oracle did not fire")
	}
}

func TestPartition(t *testing.T) {
	n := NewNetwork()
	c, _ := pipe(t, n, "a", "b")
	n.Partition("a", "b")
	if !c.Closed() {
		t.Fatal("partition did not close existing connection")
	}
	if _, err := n.Dial("a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial across partition: %v", err)
	}
	// Symmetric.
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Dial("b", "a"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("reverse dial across partition: %v", err)
	}
	n.Heal("a", "b")
	go func() {
		if conn, aerr := l.Accept(); aerr == nil {
			defer conn.Close()
			_, _ = conn.Recv()
		}
	}()
	c2, err := n.Dial("b", "a")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
}

func TestDropRate(t *testing.T) {
	rng := xrand.New(42)
	n := NewNetwork(WithDropRate(0.5, rng))
	c, s := pipe(t, n, "a", "b")
	const sent = 2000
	for i := 0; i < sent; i++ {
		if err := c.Send([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	delivered := 0
	for {
		if _, err := s.Recv(); err != nil {
			break
		}
		delivered++
	}
	if delivered == 0 || delivered == sent {
		t.Fatalf("delivered %d/%d with 50%% drop", delivered, sent)
	}
	if delivered < sent/3 || delivered > 2*sent/3 {
		t.Fatalf("delivered %d/%d, far from 50%%", delivered, sent)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	n := NewNetwork()
	const pairs = 8
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		srvAddr := fmt.Sprintf("s%d", p)
		l, err := n.Listen(srvAddr)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			conn, aerr := l.Accept()
			if aerr != nil {
				return
			}
			for {
				msg, rerr := conn.Recv()
				if rerr != nil {
					return
				}
				if serr := conn.Send(msg); serr != nil {
					return
				}
			}
		}()
		go func(p int) {
			defer wg.Done()
			conn, derr := n.Dial(fmt.Sprintf("c%d", p), srvAddr)
			if derr != nil {
				t.Error(derr)
				return
			}
			defer conn.Close()
			for i := 0; i < 200; i++ {
				if serr := conn.Send([]byte{byte(i)}); serr != nil {
					t.Error(serr)
					return
				}
				got, rerr := conn.Recv()
				if rerr != nil {
					t.Error(rerr)
					return
				}
				if got[0] != byte(i) {
					t.Errorf("echo mismatch %d vs %d", got[0], i)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func BenchmarkSendRecv(b *testing.B) {
	n := NewNetwork()
	l, err := n.Listen("s")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var server *Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, _ = l.Accept()
	}()
	client, err := n.Dial("c", "s")
	if err != nil {
		b.Fatal(err)
	}
	<-done
	payload := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
