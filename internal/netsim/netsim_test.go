package netsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fortress/internal/xrand"
)

// pipe sets up a listener at addr and returns the dial-side and accept-side
// connections.
func pipe(t *testing.T, n *Network, from, addr string) (client, server *Conn) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = l.Accept()
	}()
	client, derr := n.Dial(from, addr)
	if derr != nil {
		t.Fatal(derr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestSendRecvRoundTrip(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "client", "server")
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	// And the reverse direction.
	if err := s.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
}

func TestFIFOOrdering(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	const count = 1000
	for i := 0; i < count; i++ {
		if err := c.Send([]byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		got, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("%d", i) {
			t.Fatalf("message %d arrived as %q", i, got)
		}
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	buf := []byte("abc")
	if err := c.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z'
	got, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("message aliased sender buffer: %q", got)
	}
}

func TestCloseObservableByPeer(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "attacker", "victim")
	if c.Closed() || s.Closed() {
		t.Fatal("fresh connection reports closed")
	}
	s.Close()
	if !c.Closed() {
		t.Fatal("peer close not observable — the crash oracle is broken")
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer close: %v", err)
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after peer close: %v", err)
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); c.Close() }()
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()
	if n.OpenConns() != 0 {
		t.Fatalf("OpenConns = %d after close", n.OpenConns())
	}
}

func TestRecvDrainsAfterClose(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	if err := c.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	got, err := s.Recv()
	if err != nil {
		t.Fatalf("in-flight message lost: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("got %q", got)
	}
	if _, err := s.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	got := make(chan []byte, 1)
	go func() {
		msg, err := s.Recv()
		if err == nil {
			got <- msg
		}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("Recv returned before Send")
	default:
	}
	if err := c.Send([]byte("now")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg) != "now" {
			t.Fatalf("got %q", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv never woke")
	}
}

func TestRecvTimeout(t *testing.T) {
	n := NewNetwork()
	_, s := pipe(t, n, "a", "b")
	start := time.Now()
	_, err := s.RecvTimeout(20 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("timeout fired early")
	}
}

func TestRecvTimeoutDelivers(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	if err := c.Send([]byte("quick")); err != nil {
		t.Fatal(err)
	}
	got, err := s.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "quick" {
		t.Fatalf("got %q", got)
	}
}

func TestListenDuplicate(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("x"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("want ErrAddrInUse, got %v", err)
	}
}

func TestListenReuseAfterClose(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := n.Listen("x")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	l2.Close()
}

func TestDialNoListener(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("a", "nobody"); !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
}

func TestDialEphemeralLocal(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, aerr := l.Accept()
		if aerr == nil {
			_ = c.Send([]byte("hi"))
		}
	}()
	c, err := n.Dial("", "srv")
	if err != nil {
		t.Fatal(err)
	}
	if c.LocalAddr() == "" {
		t.Fatal("no ephemeral address assigned")
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptAfterListenerClose(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	go l.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestCrashAddrClosesEverything(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("victim")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, aerr := l.Accept(); aerr != nil {
				return
			}
		}
	}()
	c1, err := n.Dial("attacker", "victim")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.Dial("other", "victim")
	if err != nil {
		t.Fatal(err)
	}
	bystander, _ := pipe(t, n, "a", "b")

	n.CrashAddr("victim")

	if !c1.Closed() || !c2.Closed() {
		t.Fatal("connections to crashed node still open")
	}
	if bystander.Closed() {
		t.Fatal("bystander connection closed")
	}
	// Listener is gone: dialing is refused.
	if _, err := n.Dial("x", "victim"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial to crashed node: %v", err)
	}
}

func TestCrashOracleEndToEnd(t *testing.T) {
	// The de-randomization feedback loop: attacker holds a connection,
	// victim crashes, attacker's poll of Closed() flips to true.
	n := NewNetwork()
	attacker, _ := pipe(t, n, "attacker", "victim")
	if attacker.Closed() {
		t.Fatal("premature close")
	}
	n.CrashAddr("victim")
	select {
	case <-attacker.Done():
	case <-time.After(time.Second):
		t.Fatal("Done channel never closed")
	}
	if !attacker.Closed() {
		t.Fatal("oracle did not fire")
	}
}

func TestPartition(t *testing.T) {
	n := NewNetwork()
	c, _ := pipe(t, n, "a", "b")
	n.Partition("a", "b")
	if !c.Closed() {
		t.Fatal("partition did not close existing connection")
	}
	if _, err := n.Dial("a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial across partition: %v", err)
	}
	// Symmetric.
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Dial("b", "a"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("reverse dial across partition: %v", err)
	}
	n.Heal("a", "b")
	go func() {
		if conn, aerr := l.Accept(); aerr == nil {
			defer conn.Close()
			_, _ = conn.Recv()
		}
	}()
	c2, err := n.Dial("b", "a")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
}

func TestDropRate(t *testing.T) {
	rng := xrand.New(42)
	n := NewNetwork(WithDropRate(0.5, rng))
	c, s := pipe(t, n, "a", "b")
	const sent = 2000
	for i := 0; i < sent; i++ {
		if err := c.Send([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	delivered := 0
	for {
		if _, err := s.Recv(); err != nil {
			break
		}
		delivered++
	}
	if delivered == 0 || delivered == sent {
		t.Fatalf("delivered %d/%d with 50%% drop", delivered, sent)
	}
	if delivered < sent/3 || delivered > 2*sent/3 {
		t.Fatalf("delivered %d/%d, far from 50%%", delivered, sent)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	n := NewNetwork()
	const pairs = 8
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		srvAddr := fmt.Sprintf("s%d", p)
		l, err := n.Listen(srvAddr)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			conn, aerr := l.Accept()
			if aerr != nil {
				return
			}
			for {
				msg, rerr := conn.Recv()
				if rerr != nil {
					return
				}
				if serr := conn.Send(msg); serr != nil {
					return
				}
			}
		}()
		go func(p int) {
			defer wg.Done()
			conn, derr := n.Dial(fmt.Sprintf("c%d", p), srvAddr)
			if derr != nil {
				t.Error(derr)
				return
			}
			defer conn.Close()
			for i := 0; i < 200; i++ {
				if serr := conn.Send([]byte{byte(i)}); serr != nil {
					t.Error(serr)
					return
				}
				got, rerr := conn.Recv()
				if rerr != nil {
					t.Error(rerr)
					return
				}
				if got[0] != byte(i) {
					t.Errorf("echo mismatch %d vs %d", got[0], i)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestSendBatchFIFOAcrossBatchBoundaries(t *testing.T) {
	// Messages must arrive in global FIFO order no matter how sends and
	// receives are batched: single sends interleaved with batches, drained
	// by a mix of Recv and RecvBatch.
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	var want []string
	next := 0
	push := func(k int) [][]byte {
		var batch [][]byte
		for i := 0; i < k; i++ {
			m := fmt.Sprintf("%d", next)
			next++
			want = append(want, m)
			batch = append(batch, []byte(m))
		}
		return batch
	}
	if err := c.SendBatch(push(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(push(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(push(5)); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 2; i++ { // two singles off the front
		m, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(m))
	}
	batch, err := s.RecvBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range batch {
		got = append(got, string(m))
	}
	if err := c.SendBatch(push(4)); err != nil { // queue reuse after full drain
		t.Fatal(err)
	}
	batch, err = s.RecvBatch(batch[:0])
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range batch {
		got = append(got, string(m))
	}
	if len(got) != len(want) {
		t.Fatalf("received %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d arrived as %q, want %q (full order %v)", i, got[i], want[i], got)
		}
	}
}

func TestSendBatchEmptyAndClosed(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	if err := c.SendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	s.Close()
	if err := c.SendBatch([][]byte{[]byte("x")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendBatch after close: %v", err)
	}
}

func TestRecvBatchDrainsAfterClose(t *testing.T) {
	// The close-drain contract: a backlog enqueued before the close is
	// delivered in full by one RecvBatch, and only the next call reports
	// ErrClosed.
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	if err := c.SendBatch([][]byte{[]byte("one"), []byte("two"), []byte("three")}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	got, err := s.RecvBatch(nil)
	if err != nil {
		t.Fatalf("backlog lost at close: %v", err)
	}
	if len(got) != 3 || string(got[0]) != "one" || string(got[2]) != "three" {
		t.Fatalf("drained %q", got)
	}
	if _, err := s.RecvBatch(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
}

func TestRecvBatchBlocksUntilSend(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	got := make(chan [][]byte, 1)
	go func() {
		msgs, err := s.RecvBatch(nil)
		if err == nil {
			got <- msgs
		}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("RecvBatch returned before any send")
	default:
	}
	if err := c.SendBatch([][]byte{[]byte("x"), []byte("y")}); err != nil {
		t.Fatal(err)
	}
	select {
	case msgs := <-got:
		if len(msgs) != 2 {
			t.Fatalf("drained %d messages, want 2", len(msgs))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvBatch never woke")
	}
}

func TestPooledBuffersNotAliasedAfterRecv(t *testing.T) {
	// Once Recv hands a buffer to the receiver, later sends must never
	// scribble on it — even with the pool warm from Released buffers.
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	// Warm the pool so sends actually exercise reuse.
	for i := 0; i < 8; i++ {
		Release(make([]byte, 64))
	}
	const rounds = 200
	held := make([][]byte, 0, rounds)
	for i := 0; i < rounds; i++ {
		if err := c.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
		got, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, got) // hold every buffer; none released
	}
	for i, msg := range held {
		if want := fmt.Sprintf("msg-%03d", i); string(msg) != want {
			t.Fatalf("held buffer %d corrupted: %q, want %q — pool aliased a live buffer", i, msg, want)
		}
	}
}

func TestReleaseRecyclesBuffers(t *testing.T) {
	// The cooperative path: receive, decode, Release. Contents must stay
	// correct through arbitrary reuse.
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	for i := 0; i < 500; i++ {
		want := fmt.Sprintf("round-%d", i)
		if err := c.Send([]byte(want)); err != nil {
			t.Fatal(err)
		}
		got, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("round %d: got %q", i, got)
		}
		Release(got)
	}
}

func TestQueueCompactsUnderSustainedBacklog(t *testing.T) {
	// A connection whose backlog never momentarily drains must still shed
	// its consumed prefix: memory stays proportional to the backlog, not to
	// the total messages ever sent.
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")
	// Establish a standing backlog of 2, then push/pop far more messages
	// than any reasonable queue capacity.
	for i := 0; i < 2; i++ {
		if err := c.Send([]byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 50000
	for i := 0; i < rounds; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		msg, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		want := byte(0)
		if i >= 2 {
			want = byte(i - 2) // two standing-backlog messages drain first
		}
		if msg[0] != want {
			t.Fatalf("round %d: got byte %d, want %d — FIFO broken across compaction", i, msg[0], want)
		}
		Release(msg)
	}
	s.mu.Lock()
	capacity := cap(s.queue)
	s.mu.Unlock()
	if capacity > 4*compactAt {
		t.Fatalf("queue capacity %d after %d backlogged rounds — consumed prefix not compacted", capacity, rounds)
	}
	// FIFO integrity across compactions: the standing backlog drains last.
	for i := 0; i < 2; i++ {
		if _, err := s.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDialCrashAddrRace(t *testing.T) {
	// The satellite race fix: a connection must never survive, observably
	// open, to a crashed address. Dials race CrashAddr; after both settle,
	// every successfully dialed connection must be closed.
	for iter := 0; iter < 50; iter++ {
		n := NewNetwork()
		l, err := n.Listen("victim")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				if _, aerr := l.Accept(); aerr != nil {
					return
				}
			}
		}()
		var mu sync.Mutex
		var conns []*Conn
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c, derr := n.Dial(fmt.Sprintf("attacker-%d", i), "victim")
				if derr != nil {
					return // listener crashed: refused from here on
				}
				mu.Lock()
				conns = append(conns, c)
				mu.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			n.CrashAddr("victim")
		}()
		wg.Wait()
		for i, c := range conns {
			if !c.Closed() {
				t.Fatalf("iter %d: conn %d to crashed address still open — oracle race", iter, i)
			}
		}
	}
}

func BenchmarkSendRecv(b *testing.B) {
	n := NewNetwork()
	l, err := n.Listen("s")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var server *Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, _ = l.Accept()
	}()
	client, err := n.Dial("c", "s")
	if err != nil {
		b.Fatal(err)
	}
	<-done
	payload := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(payload); err != nil {
			b.Fatal(err)
		}
		msg, err := server.Recv()
		if err != nil {
			b.Fatal(err)
		}
		Release(msg)
	}
}

// BenchmarkSendRecvBatch measures the batched path: one SendBatch and one
// RecvBatch per 16 messages, per op.
func BenchmarkSendRecvBatch(b *testing.B) {
	n := NewNetwork()
	l, err := n.Listen("s")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var server *Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, _ = l.Accept()
	}()
	client, err := n.Dial("c", "s")
	if err != nil {
		b.Fatal(err)
	}
	<-done
	const batchLen = 16
	batch := make([][]byte, batchLen)
	for i := range batch {
		batch[i] = []byte("0123456789abcdef")
	}
	var recvBuf [][]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.SendBatch(batch); err != nil {
			b.Fatal(err)
		}
		recvBuf, err = server.RecvBatch(recvBuf[:0])
		if err != nil {
			b.Fatal(err)
		}
		for _, msg := range recvBuf {
			Release(msg)
		}
	}
}

func TestPartitionGroupSeversOnlyCrossPairs(t *testing.T) {
	n := NewNetwork()
	groupA := []string{"a1", "a2", "a3"}
	groupB := []string{"b1", "b2", "b3"}
	intra, _ := pipe(t, n, "a1", "a2") // within group A
	cross, _ := pipe(t, n, "a3", "b1")
	// An accepting listener at b3, untouched by pipe, for the heal check.
	lb, err := n.Listen("b3")
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	go func() {
		for {
			conn, aerr := lb.Accept()
			if aerr != nil {
				return
			}
			conn.Close()
		}
	}()

	n.PartitionGroup(groupA, groupB)
	if !cross.Closed() {
		t.Fatal("cross-group connection survived the cut")
	}
	if intra.Closed() {
		t.Fatal("intra-group connection closed by the cut")
	}
	for _, pair := range [][2]string{{"a1", "b1"}, {"a2", "b3"}, {"b2", "a1"}} {
		if _, err := n.Dial(pair[0], pair[1]); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("dial %s→%s across cut: %v", pair[0], pair[1], err)
		}
	}
	// Addresses outside either group are unaffected.
	if _, err := n.Dial("outsider", "b3"); err != nil {
		t.Fatalf("outside dial during cut: %v", err)
	}

	n.HealGroup(groupA, groupB)
	if _, err := n.Dial("a1", "b3"); err != nil {
		t.Fatalf("dial after HealGroup: %v", err)
	}
}

func TestHealAll(t *testing.T) {
	n := NewNetwork()
	n.Partition("a", "b")
	n.PartitionGroup([]string{"c"}, []string{"d", "e"})
	n.HealAll()
	for _, pair := range [][2]string{{"a", "b"}, {"c", "d"}, {"c", "e"}} {
		l, err := n.Listen(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			if conn, aerr := l.Accept(); aerr == nil {
				conn.Close()
			}
		}()
		if _, err := n.Dial(pair[0], pair[1]); err != nil {
			t.Fatalf("dial %s→%s after HealAll: %v", pair[0], pair[1], err)
		}
		l.Close()
	}
}

// TestSetDropRateRuntime flips the drop rate on a live connection: rate 1
// with a generator drops everything, rate 0 restores delivery, and a
// positive rate with no generator configured never drops.
func TestSetDropRateRuntime(t *testing.T) {
	n := NewNetwork()
	c, s := pipe(t, n, "a", "b")

	n.SetDropRate(1, nil) // no generator yet: must not drop
	if err := c.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecvTimeout(time.Second); err != nil {
		t.Fatalf("send with rate 1 but no rng was dropped: %v", err)
	}

	n.SetDropRate(1, xrand.New(7))
	if got := n.DropRate(); got != 1 {
		t.Fatalf("DropRate = %v", got)
	}
	if err := c.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecvTimeout(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("send at rate 1 was delivered: %v", err)
	}

	n.SetDropRate(0, nil)
	if err := c.Send([]byte{3}); err != nil {
		t.Fatal(err)
	}
	msg, err := s.RecvTimeout(time.Second)
	if err != nil {
		t.Fatalf("send after rate reset: %v", err)
	}
	if msg[0] != 3 {
		t.Fatalf("got payload %v", msg)
	}
	Release(msg)
}

// TestLinkDelayDefersDelivery pins the link-delay model: a message sent over
// a delayed link is withheld from every Recv variant until its delivery
// time, FIFO order survives the delay, a close flushes in-flight messages,
// and resetting the delay to zero restores instantaneous delivery.
func TestLinkDelayDefersDelivery(t *testing.T) {
	const d = 40 * time.Millisecond
	n := NewNetwork(WithLinkDelay(d))
	if n.LinkDelay() != d {
		t.Fatalf("LinkDelay = %v, want %v", n.LinkDelay(), d)
	}
	c, s := pipe(t, n, "client", "server")

	start := time.Now()
	if err := c.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	// A deadline shorter than the remaining flight time must expire.
	if _, err := s.RecvTimeout(5 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("in-flight message delivered early: %v", err)
	}
	msg, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Errorf("first message delivered after %v, want >= %v", elapsed, d)
	}
	if msg[0] != 1 {
		t.Fatalf("FIFO broken: got payload %v first", msg)
	}
	Release(msg)
	batch, err := s.RecvBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0][0] != 2 {
		t.Fatalf("second message: got %v", batch)
	}
	Release(batch[0])

	// Zeroing the delay restores instantaneous delivery.
	n.SetLinkDelay(0)
	if err := c.Send([]byte{3}); err != nil {
		t.Fatal(err)
	}
	msg, err = s.RecvTimeout(5 * time.Millisecond)
	if err != nil {
		t.Fatalf("zero-delay send: %v", err)
	}
	if msg[0] != 3 {
		t.Fatalf("got payload %v", msg)
	}
	Release(msg)

	// A close flushes whatever is still in flight.
	n.SetLinkDelay(time.Minute)
	if err := c.Send([]byte{4}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	msg, err = s.Recv()
	if err != nil {
		t.Fatalf("close did not flush in-flight backlog: %v", err)
	}
	if msg[0] != 4 {
		t.Fatalf("got payload %v", msg)
	}
	Release(msg)
	if _, err := s.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed conn: %v", err)
	}
}
