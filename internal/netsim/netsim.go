// Package netsim provides an in-process simulated network with TCP-like
// connection semantics.
//
// The property the paper's attack model depends on (§2.1–2.2) is that a
// connection to a process that crashes is observably closed: that closure is
// the oracle a de-randomization attacker uses to distinguish wrong key
// guesses from right ones. netsim reproduces it: crashing a node (CrashAddr)
// closes its listener and every connection terminating at it, and the remote
// peers' Recv/Send fail with ErrClosed.
//
// Connections carry opaque byte payloads; higher layers (replication
// engines, proxies) marshal their own messages. Delivery within a connection
// is FIFO and reliable unless a drop rate or partition is configured.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fortress/internal/xrand"
)

var (
	// ErrClosed is returned by operations on a closed connection or listener.
	ErrClosed = errors.New("netsim: closed")
	// ErrAddrInUse is returned by Listen when the address already has a listener.
	ErrAddrInUse = errors.New("netsim: address in use")
	// ErrRefused is returned by Dial when no listener accepts at the address.
	ErrRefused = errors.New("netsim: connection refused")
	// ErrTimeout is returned by RecvTimeout on expiry.
	ErrTimeout = errors.New("netsim: timeout")
	// ErrUnreachable is returned by Dial across a partition.
	ErrUnreachable = errors.New("netsim: unreachable")
)

// Network is a simulated network. It is safe for concurrent use.
type Network struct {
	mu         sync.Mutex
	listeners  map[string]*Listener
	conns      map[*Conn]struct{}
	partitions map[[2]string]struct{}
	dropRate   float64
	rng        *xrand.RNG
	nextEph    int
}

// Option configures a Network.
type Option func(*Network)

// WithDropRate makes every Send independently drop its message with
// probability p, using the deterministic generator rng. Connections remain
// open; only payloads vanish — modelling a lossy but unbroken link.
func WithDropRate(p float64, rng *xrand.RNG) Option {
	return func(n *Network) {
		n.dropRate = p
		n.rng = rng
	}
}

// NewNetwork creates an empty network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		listeners:  make(map[string]*Listener),
		conns:      make(map[*Conn]struct{}),
		partitions: make(map[[2]string]struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

func partKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition severs communication between addresses a and b: existing
// connections between them are closed and new dials fail with
// ErrUnreachable until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	n.partitions[partKey(a, b)] = struct{}{}
	var toClose []*Conn
	for c := range n.conns {
		if (c.local == a && c.remote == b) || (c.local == b && c.remote == a) {
			toClose = append(toClose, c)
		}
	}
	n.mu.Unlock()
	for _, c := range toClose {
		c.Close()
	}
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, partKey(a, b))
}

func (n *Network) partitioned(a, b string) bool {
	_, ok := n.partitions[partKey(a, b)]
	return ok
}

// Listen opens a listener at addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("listen %q: %w", addr, ErrAddrInUse)
	}
	l := &Listener{
		net:    n,
		addr:   addr,
		accept: make(chan *Conn),
		closed: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects from the local address to a listener at remote. The local
// address identifies the caller for partition and crash semantics; pass ""
// for an ephemeral client address.
func (n *Network) Dial(local, remote string) (*Conn, error) {
	n.mu.Lock()
	if local == "" {
		n.nextEph++
		local = fmt.Sprintf("eph-%d", n.nextEph)
	}
	if n.partitioned(local, remote) {
		n.mu.Unlock()
		return nil, fmt.Errorf("dial %q→%q: %w", local, remote, ErrUnreachable)
	}
	l, ok := n.listeners[remote]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dial %q→%q: %w", local, remote, ErrRefused)
	}

	client, server := newConnPair(n, local, remote)
	select {
	case l.accept <- server:
	case <-l.closed:
		return nil, fmt.Errorf("dial %q→%q: %w", local, remote, ErrRefused)
	}
	n.mu.Lock()
	n.conns[client] = struct{}{}
	n.conns[server] = struct{}{}
	n.mu.Unlock()
	return client, nil
}

// CrashAddr simulates the process at addr crashing: its listener closes and
// every connection with an endpoint at addr closes, observably to peers.
func (n *Network) CrashAddr(addr string) {
	n.mu.Lock()
	l := n.listeners[addr]
	delete(n.listeners, addr)
	var toClose []*Conn
	for c := range n.conns {
		if c.local == addr || c.remote == addr {
			toClose = append(toClose, c)
		}
	}
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range toClose {
		c.Close()
	}
}

// OpenConns reports the number of live connection endpoints, for tests.
func (n *Network) OpenConns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

func (n *Network) forget(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

func (n *Network) shouldDrop() bool {
	if n.dropRate <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rng == nil {
		return false
	}
	return n.rng.Bernoulli(n.dropRate)
}

// Listener accepts inbound connections at a fixed address.
type Listener struct {
	net       *Network
	addr      string
	accept    chan *Conn
	closed    chan struct{}
	closeOnce sync.Once
}

// Addr returns the listening address.
func (l *Listener) Addr() string { return l.addr }

// Accept blocks until a connection arrives or the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Close stops the listener. Established connections are unaffected.
func (l *Listener) Close() {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	})
}

// Conn is one endpoint of a bidirectional connection. Closing either
// endpoint closes both directions, and the peer observes it — the TCP-reset
// behaviour the de-randomization oracle needs.
type Conn struct {
	net    *Network
	local  string
	remote string
	peer   *Conn

	mu    sync.Mutex
	queue [][]byte
	ready chan struct{} // wake-up signal: buffered, size 1

	// closed and once are shared by both endpoints of a pair, so a close
	// from either side closes both directions atomically and concurrent
	// closes from both sides cannot deadlock.
	closed chan struct{}
	once   *sync.Once
}

func newConnPair(n *Network, dialer, listener string) (client, server *Conn) {
	closed := make(chan struct{})
	once := &sync.Once{}
	client = &Conn{net: n, local: dialer, remote: listener,
		ready: make(chan struct{}, 1), closed: closed, once: once}
	server = &Conn{net: n, local: listener, remote: dialer,
		ready: make(chan struct{}, 1), closed: closed, once: once}
	client.peer = server
	server.peer = client
	return client, server
}

// LocalAddr returns this endpoint's address.
func (c *Conn) LocalAddr() string { return c.local }

// RemoteAddr returns the peer endpoint's address.
func (c *Conn) RemoteAddr() string { return c.remote }

// Send enqueues msg for the peer. It copies msg, so the caller may reuse the
// buffer. It fails with ErrClosed once either endpoint has closed.
func (c *Conn) Send(msg []byte) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	if c.net != nil && c.net.shouldDrop() {
		return nil // dropped in flight; sender cannot tell
	}
	p := c.peer
	cp := make([]byte, len(msg))
	copy(cp, msg)

	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		return ErrClosed
	default:
	}
	p.queue = append(p.queue, cp)
	select {
	case p.ready <- struct{}{}:
	default:
	}
	p.mu.Unlock()
	return nil
}

// Recv blocks until a message arrives or the connection closes.
func (c *Conn) Recv() ([]byte, error) {
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			msg := c.queue[0]
			c.queue = c.queue[1:]
			c.mu.Unlock()
			return msg, nil
		}
		c.mu.Unlock()
		select {
		case <-c.ready:
		case <-c.closed:
			// Drain any message that raced with the close.
			c.mu.Lock()
			if len(c.queue) > 0 {
				msg := c.queue[0]
				c.queue = c.queue[1:]
				c.mu.Unlock()
				return msg, nil
			}
			c.mu.Unlock()
			return nil, ErrClosed
		}
	}
}

// RecvTimeout is Recv with a deadline; it returns ErrTimeout on expiry.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			msg := c.queue[0]
			c.queue = c.queue[1:]
			c.mu.Unlock()
			return msg, nil
		}
		c.mu.Unlock()
		select {
		case <-c.ready:
		case <-c.closed:
			c.mu.Lock()
			if len(c.queue) > 0 {
				msg := c.queue[0]
				c.queue = c.queue[1:]
				c.mu.Unlock()
				return msg, nil
			}
			c.mu.Unlock()
			return nil, ErrClosed
		case <-timer.C:
			return nil, ErrTimeout
		}
	}
}

// Close closes both endpoints of the connection. It is idempotent and safe
// to call concurrently from both sides.
func (c *Conn) Close() {
	c.once.Do(func() {
		close(c.closed)
		if c.net != nil {
			c.net.forget(c)
			c.net.forget(c.peer)
		}
	})
}

// Closed reports whether the connection has been closed (by either side).
// This is the attacker's crash oracle: polling Closed on a connection to a
// victim reveals whether the victim process died.
func (c *Conn) Closed() bool {
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}

// Done returns a channel closed when the connection closes, for select-based
// observers.
func (c *Conn) Done() <-chan struct{} { return c.closed }
