// Package netsim provides an in-process simulated network with TCP-like
// connection semantics and batched message delivery.
//
// The property the paper's attack model depends on (§2.1–2.2) is that a
// connection to a process that crashes is observably closed: that closure is
// the oracle a de-randomization attacker uses to distinguish wrong key
// guesses from right ones. netsim reproduces it: crashing a node (CrashAddr)
// closes its listener and every connection terminating at it, and the remote
// peers' Recv/Send fail with ErrClosed.
//
// Connections carry opaque byte payloads; higher layers (replication
// engines, proxies) marshal their own messages. Delivery within a connection
// is FIFO and reliable unless a drop rate or partition is configured.
//
// # Batched delivery model
//
// Delivery is batched at both ends of a connection. Each endpoint owns a
// ring-indexed receive queue guarded by its own mutex: Send and SendBatch
// append whole payload batches under a single lock acquisition of the
// receiving endpoint, and Recv/RecvBatch pop or drain under a single
// acquisition, so the per-message cost is one append and one index bump
// rather than a channel operation. Payload buffers are copies of the
// caller's bytes taken from a sync.Pool; a receiver owns each returned
// buffer outright (the pool never hands it out again while the receiver
// holds it) and may return it for reuse with Release once decoded.
// Per-connection queue mutexes plus a dedicated drop-rate mutex keep
// steady-state traffic entirely off the global Network mutex, so concurrent
// campaigns on one network — or many networks in one process — stop
// serializing on a single lock.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fortress/internal/metrics"
	"fortress/internal/xrand"
)

var (
	// ErrClosed is returned by operations on a closed connection or listener.
	ErrClosed = errors.New("netsim: closed")
	// ErrAddrInUse is returned by Listen when the address already has a listener.
	ErrAddrInUse = errors.New("netsim: address in use")
	// ErrRefused is returned by Dial when no listener accepts at the address.
	ErrRefused = errors.New("netsim: connection refused")
	// ErrTimeout is returned by RecvTimeout on expiry.
	ErrTimeout = errors.New("netsim: timeout")
	// ErrUnreachable is returned by Dial across a partition.
	ErrUnreachable = errors.New("netsim: unreachable")
)

// Payload buffers are recycled through a pair of sync.Pools chosen so that
// neither obtaining nor releasing a buffer allocates in steady state:
// bufPool holds loaded *[]byte boxes (pointer-typed, so pooling them never
// boxes a slice header); hdrPool holds empty boxes whose slice has been
// handed to a sender. getBuf moves a box from bufPool to hdrPool as it takes
// the slice out, and Release moves one back as it puts a slice in.
var (
	bufPool sync.Pool
	hdrPool = sync.Pool{New: func() any { return new([]byte) }}
)

// getBuf returns a payload buffer of length n, reusing pooled capacity when
// it suffices.
func getBuf(n int) []byte {
	var b []byte
	if bp, ok := bufPool.Get().(*[]byte); ok {
		b = *bp
		*bp = nil
		hdrPool.Put(bp)
	}
	if cap(b) < n {
		b = make([]byte, n)
	}
	return b[:n]
}

// Release returns a payload buffer previously obtained from Recv, RecvBatch
// or RecvTimeout to the pool for reuse by future Sends. Calling it is
// optional — unreleased buffers are simply collected by the GC — but hot
// paths that release their buffers make the whole delivery loop
// allocation-free in steady state. The caller must not touch buf after
// Release; until then the buffer is exclusively the receiver's, never
// aliased by the pool.
func Release(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	bp := hdrPool.Get().(*[]byte)
	*bp = buf[:0]
	bufPool.Put(bp)
}

// Network is a simulated network. It is safe for concurrent use.
type Network struct {
	mu         sync.Mutex
	listeners  map[string]*Listener
	conns      map[*Conn]struct{}
	partitions map[[2]string]struct{}
	nextEph    int

	// The drop-rate state has its own mutex so lossy-link sampling on the
	// Send fast path never touches the topology lock above: concurrent
	// connections (and concurrent campaigns sharing a process) contend only
	// on dropMu, and only when a drop rate is configured at all. The rate
	// itself is an atomic (Float64bits) so the no-drop fast path is one
	// relaxed load even while a fault schedule mutates the rate at runtime.
	//
	// Sampling is per directed address pair: each (sender, receiver) pair
	// owns its own deterministic generator, seeded from the configured base
	// seed and the pair's addresses, whose state is the pair's send
	// counter. Whether the k-th send from A to B is dropped is therefore a
	// pure function of (seed, A, B, k) — background traffic on other pairs
	// (heartbeats, replication) cannot perturb it, which is what makes
	// positive-drop-rate fault campaigns bit-identical at any worker count.
	// Pair streams survive reconnects (the map is keyed by address, not
	// connection) and are re-derived lazily whenever a new generator is
	// installed.
	dropMu   sync.Mutex
	dropRate atomic.Uint64 // math.Float64bits of the current rate
	dropSeed uint64        // base seed for pair streams; guarded by dropMu
	hasSeed  bool          // a generator has been configured; guarded by dropMu
	pairRNG  map[[2]string]*xrand.RNG

	// Drop observability (WithMetrics): one counter per directed pair,
	// created lazily alongside the pair's sampling stream. Guarded by
	// dropMu; purely observational — the sampling decision never reads it.
	metrics   *metrics.Registry
	pairDrops map[[2]string]*metrics.Counter

	// delay is the symmetric one-way link delay in nanoseconds applied to
	// every message delivery (0 = instantaneous, the default). Messages
	// stay FIFO per connection; a delayed message is simply withheld from
	// Recv until its delivery time. Atomic so SetLinkDelay may adjust it
	// while traffic flows.
	delay atomic.Int64
}

// Option configures a Network.
type Option func(*Network)

// WithMetrics registers per-directed-pair drop counters
// (netsim_drops_total{pair="from->to"}) on reg as lossy links discard
// messages. Observational only: sampling stays a pure function of the
// configured generator, with or without a registry.
func WithMetrics(reg *metrics.Registry) Option {
	return func(n *Network) {
		n.dropMu.Lock()
		n.metrics = reg
		n.pairDrops = make(map[[2]string]*metrics.Counter)
		n.dropMu.Unlock()
	}
}

// WithDropRate makes every Send independently drop its message with
// probability p, deriving per-directed-pair sampling streams from the
// deterministic generator rng. Connections remain open; only payloads
// vanish — modelling a lossy but unbroken link.
func WithDropRate(p float64, rng *xrand.RNG) Option {
	return func(n *Network) {
		n.dropRate.Store(math.Float64bits(p))
		n.installDropRNG(rng)
	}
}

// SetDropRate changes the lossy-link drop probability at runtime — the knob
// fault schedules turn mid-campaign. A non-nil rng replaces the drop
// generator: one seed is drawn from it and every directed address pair's
// sampling stream is re-derived from that seed on first use. A nil rng
// keeps the current streams (messages are never dropped while no generator
// has ever been configured, whatever the rate). Safe for concurrent use
// with live traffic.
func (n *Network) SetDropRate(p float64, rng *xrand.RNG) {
	n.installDropRNG(rng)
	n.dropRate.Store(math.Float64bits(p))
}

// installDropRNG derives the pair-stream base seed from rng (nil keeps the
// current one).
func (n *Network) installDropRNG(rng *xrand.RNG) {
	if rng == nil {
		return
	}
	n.dropMu.Lock()
	n.dropSeed = rng.Uint64()
	n.hasSeed = true
	n.pairRNG = make(map[[2]string]*xrand.RNG)
	n.dropMu.Unlock()
}

// DropRate returns the current lossy-link drop probability.
func (n *Network) DropRate() float64 {
	return math.Float64frombits(n.dropRate.Load())
}

// WithLinkDelay gives every link a symmetric one-way delivery delay: a
// message sent at t becomes receivable at t+d. Zero (the default) keeps
// the historical instantaneous delivery. Delay models wire time only —
// it never reorders a connection's FIFO stream and is independent of the
// lossy-link drop model. Throughput benchmarks use it to expose pipeline
// overlap (a single ordering pipeline is bounded by round trips, many
// shards overlap theirs); campaigns and sweeps leave it at zero, so
// their determinism contract is untouched.
func WithLinkDelay(d time.Duration) Option {
	return func(n *Network) { n.delay.Store(int64(d)) }
}

// SetLinkDelay changes the one-way link delay at runtime. Messages already
// in flight keep the delivery time stamped when they were sent. Safe for
// concurrent use with live traffic.
func (n *Network) SetLinkDelay(d time.Duration) { n.delay.Store(int64(d)) }

// LinkDelay returns the current one-way link delay.
func (n *Network) LinkDelay() time.Duration { return time.Duration(n.delay.Load()) }

// NewNetwork creates an empty network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		listeners:  make(map[string]*Listener),
		conns:      make(map[*Conn]struct{}),
		partitions: make(map[[2]string]struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

func partKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition severs communication between addresses a and b: existing
// connections between them are closed and new dials fail with
// ErrUnreachable until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	n.partitions[partKey(a, b)] = struct{}{}
	var toClose []*Conn
	for c := range n.conns {
		if (c.local == a && c.remote == b) || (c.local == b && c.remote == a) {
			toClose = append(toClose, c)
		}
	}
	n.mu.Unlock()
	for _, c := range toClose {
		c.Close()
	}
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, partKey(a, b))
}

// PartitionGroup severs every cross pair between the two address groups
// under a single topology-lock pass: existing connections crossing the cut
// are closed and new dials across it fail with ErrUnreachable until healed.
// Pairs within one group are unaffected — this is the multi-node network
// split (a rack losing its uplink, a quorum islanded from the proxy tier)
// that per-pair Partition calls would apply one teardown scan at a time.
func (n *Network) PartitionGroup(groupA, groupB []string) {
	inA := addrSet(groupA)
	inB := addrSet(groupB)
	n.mu.Lock()
	for a := range inA {
		for b := range inB {
			if a != b {
				n.partitions[partKey(a, b)] = struct{}{}
			}
		}
	}
	var toClose []*Conn
	for c := range n.conns {
		if (inA[c.local] && inB[c.remote]) || (inB[c.local] && inA[c.remote]) {
			toClose = append(toClose, c)
		}
	}
	n.mu.Unlock()
	for _, c := range toClose {
		c.Close()
	}
}

// HealGroup removes every cross-pair partition between the two groups.
func (n *Network) HealGroup(groupA, groupB []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range groupA {
		for _, b := range groupB {
			delete(n.partitions, partKey(a, b))
		}
	}
}

// HealAll removes every partition on the network.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = make(map[[2]string]struct{})
}

func addrSet(addrs []string) map[string]bool {
	s := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		s[a] = true
	}
	return s
}

func (n *Network) partitioned(a, b string) bool {
	_, ok := n.partitions[partKey(a, b)]
	return ok
}

// Listen opens a listener at addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("listen %q: %w", addr, ErrAddrInUse)
	}
	l := &Listener{
		net:    n,
		addr:   addr,
		accept: make(chan *Conn),
		closed: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects from the local address to a listener at remote. The local
// address identifies the caller for partition and crash semantics; pass ""
// for an ephemeral client address.
//
// The connection pair is registered in the network's connection table in the
// same critical section as the listener lookup, before the accept handoff.
// This closes the crash-oracle race the old two-phase registration had: a
// CrashAddr (or Partition) that interleaves with a Dial now always sees the
// new connection and closes it — a conn can never slip past the teardown
// scan and stay observably open to a crashed address.
func (n *Network) Dial(local, remote string) (*Conn, error) {
	n.mu.Lock()
	if local == "" {
		n.nextEph++
		local = fmt.Sprintf("eph-%d", n.nextEph)
	}
	if n.partitioned(local, remote) {
		n.mu.Unlock()
		return nil, fmt.Errorf("dial %q→%q: %w", local, remote, ErrUnreachable)
	}
	l, ok := n.listeners[remote]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("dial %q→%q: %w", local, remote, ErrRefused)
	}
	client, server := newConnPair(n, local, remote)
	n.conns[client] = struct{}{}
	n.conns[server] = struct{}{}
	n.mu.Unlock()

	select {
	case l.accept <- server:
	case <-l.closed:
		// The listener went away between registration and handoff (closed
		// or crashed); tear the pair down — Close also deregisters it.
		client.Close()
		return nil, fmt.Errorf("dial %q→%q: %w", local, remote, ErrRefused)
	}
	return client, nil
}

// CrashAddr simulates the process at addr crashing: its listener closes and
// every connection with an endpoint at addr closes, observably to peers.
func (n *Network) CrashAddr(addr string) {
	n.mu.Lock()
	l := n.listeners[addr]
	delete(n.listeners, addr)
	var toClose []*Conn
	for c := range n.conns {
		if c.local == addr || c.remote == addr {
			toClose = append(toClose, c)
		}
	}
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range toClose {
		c.Close()
	}
}

// OpenConns reports the number of live connection endpoints, for tests.
func (n *Network) OpenConns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

func (n *Network) forget(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// shouldDrop samples the lossy-link model for one send from `from` to `to`.
// It touches only dropMu, never the topology lock, and not even that when
// no drop rate is configured — the fast path is a single atomic load, so
// SetDropRate may flip the rate while traffic flows. Each directed pair
// draws from its own stream (see the field docs on Network), so the
// decision for a pair's k-th send is independent of all other traffic.
func (n *Network) shouldDrop(from, to string) bool {
	if math.Float64frombits(n.dropRate.Load()) <= 0 {
		return false
	}
	n.dropMu.Lock()
	defer n.dropMu.Unlock()
	p := math.Float64frombits(n.dropRate.Load())
	if !n.hasSeed || p <= 0 {
		return false
	}
	key := [2]string{from, to}
	rng := n.pairRNG[key]
	if rng == nil {
		rng = xrand.New(pairSeed(n.dropSeed, from, to))
		if n.pairRNG == nil {
			n.pairRNG = make(map[[2]string]*xrand.RNG)
		}
		n.pairRNG[key] = rng
	}
	drop := rng.Bernoulli(p)
	if drop && n.metrics != nil {
		c := n.pairDrops[key]
		if c == nil {
			c = n.metrics.Counter(
				fmt.Sprintf("netsim_drops_total{pair=%q}", from+"->"+to), metrics.Timing)
			n.pairDrops[key] = c
		}
		c.Inc()
	}
	return drop
}

// pairSeed derives a directed pair's stream seed: an FNV-1a hash of the two
// addresses (with a separator so ("ab","c") and ("a","bc") differ), mixed
// with the configured base seed.
func pairSeed(base uint64, from, to string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(from); i++ {
		h = (h ^ uint64(from[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(to); i++ {
		h = (h ^ uint64(to[i])) * prime
	}
	return h ^ base
}

// Listener accepts inbound connections at a fixed address.
type Listener struct {
	net       *Network
	addr      string
	accept    chan *Conn
	closed    chan struct{}
	closeOnce sync.Once
}

// Addr returns the listening address.
func (l *Listener) Addr() string { return l.addr }

// Accept blocks until a connection arrives or the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Close stops the listener. Established connections are unaffected.
func (l *Listener) Close() {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	})
}

// Conn is one endpoint of a bidirectional connection. Closing either
// endpoint closes both directions, and the peer observes it — the TCP-reset
// behaviour the de-randomization oracle needs.
type Conn struct {
	net    *Network
	local  string
	remote string
	peer   *Conn

	// The receive queue is ring-indexed: queue[head:] holds undelivered
	// messages, and draining resets the slice in place so the backing array
	// is reused across batches instead of re-allocated as a sliced-forward
	// queue would be. Each entry carries the delivery time its link delay
	// stamped at send (0 when no delay is configured).
	mu    sync.Mutex
	queue []qmsg
	head  int
	ready chan struct{} // wake-up signal: buffered, size 1

	// closed and once are shared by both endpoints of a pair, so a close
	// from either side closes both directions atomically and concurrent
	// closes from both sides cannot deadlock.
	closed chan struct{}
	once   *sync.Once
}

// qmsg is one queued message: the payload buffer plus the UnixNano time
// before which the link delay withholds it from delivery (0 = deliverable
// immediately).
type qmsg struct {
	buf []byte
	due int64
}

func newConnPair(n *Network, dialer, listener string) (client, server *Conn) {
	closed := make(chan struct{})
	once := &sync.Once{}
	client = &Conn{net: n, local: dialer, remote: listener,
		ready: make(chan struct{}, 1), closed: closed, once: once}
	server = &Conn{net: n, local: listener, remote: dialer,
		ready: make(chan struct{}, 1), closed: closed, once: once}
	client.peer = server
	server.peer = client
	return client, server
}

// LocalAddr returns this endpoint's address.
func (c *Conn) LocalAddr() string { return c.local }

// RemoteAddr returns the peer endpoint's address.
func (c *Conn) RemoteAddr() string { return c.remote }

// Send enqueues msg for the peer. It copies msg into a pooled buffer, so the
// caller may reuse its own buffer immediately. It fails with ErrClosed once
// either endpoint has closed.
func (c *Conn) Send(msg []byte) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	if c.net != nil && c.net.shouldDrop(c.local, c.remote) {
		return nil // dropped in flight; sender cannot tell
	}
	cp := getBuf(len(msg))
	copy(cp, msg)
	var due int64
	if c.net != nil {
		if d := c.net.delay.Load(); d > 0 {
			due = time.Now().UnixNano() + d
		}
	}

	p := c.peer
	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		Release(cp)
		return ErrClosed
	default:
	}
	p.queue = append(p.queue, qmsg{buf: cp, due: due})
	select {
	case p.ready <- struct{}{}:
	default:
	}
	p.mu.Unlock()
	return nil
}

// sendChunk is how many staged messages SendBatch appends per acquisition
// of the receiving queue's mutex. Batches up to this size see exactly one
// acquisition; larger ones amortize to one per chunk.
const sendChunk = 32

// SendBatch enqueues every message in msgs for the peer, appending whole
// staged chunks (sendChunk messages at a time) under one lock acquisition of
// the receiving queue each — the batched counterpart of calling Send in a
// loop, with identical copy and drop-rate semantics per message. Drop-rate
// sampling and payload copying happen before the queue lock is taken, so a
// lossy-link configuration never holds the receiver's mutex while drawing
// from the shared drop RNG. It fails with ErrClosed once either endpoint has
// closed; if the close lands between chunks of an oversized batch, earlier
// chunks have already been delivered.
func (c *Conn) SendBatch(msgs [][]byte) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	p := c.peer
	var staged [sendChunk]qmsg
	i := 0
	for i < len(msgs) {
		var due int64
		if c.net != nil {
			if d := c.net.delay.Load(); d > 0 {
				due = time.Now().UnixNano() + d
			}
		}
		n := 0
		for i < len(msgs) && n < sendChunk {
			msg := msgs[i]
			i++
			if c.net != nil && c.net.shouldDrop(c.local, c.remote) {
				continue
			}
			cp := getBuf(len(msg))
			copy(cp, msg)
			staged[n] = qmsg{buf: cp, due: due}
			n++
		}
		if n == 0 {
			continue
		}
		p.mu.Lock()
		select {
		case <-p.closed:
			p.mu.Unlock()
			for _, m := range staged[:n] {
				Release(m.buf)
			}
			return ErrClosed
		default:
		}
		p.queue = append(p.queue, staged[:n]...)
		select {
		case p.ready <- struct{}{}:
		default:
		}
		p.mu.Unlock()
	}
	return nil
}

// compactAt is the consumed-prefix length beyond which popLocked compacts
// the queue in place, so a connection whose backlog never momentarily drains
// still sheds its dead prefix instead of growing the backing array with
// every message ever sent.
const compactAt = 64

// popLocked removes and returns the oldest queued message whose delivery
// time has arrived. Caller holds c.mu. When the head message is still in
// flight (link delay), ok is false and wait reports how long until it
// becomes deliverable; force delivers it regardless — the close path uses
// that to flush the backlog that raced with the close.
func (c *Conn) popLocked(force bool) (msg []byte, ok bool, wait time.Duration) {
	if c.head == len(c.queue) {
		return nil, false, 0
	}
	m := c.queue[c.head]
	if m.due > 0 && !force {
		if rem := m.due - time.Now().UnixNano(); rem > 0 {
			return nil, false, time.Duration(rem)
		}
	}
	c.queue[c.head].buf = nil // drop the queue's reference: the receiver owns msg now
	c.head++
	c.shedPrefixLocked()
	return m.buf, true, 0
}

// shedPrefixLocked reclaims the consumed queue prefix. Caller holds c.mu.
func (c *Conn) shedPrefixLocked() {
	switch {
	case c.head == len(c.queue):
		c.queue = c.queue[:0]
		c.head = 0
	case c.head >= compactAt && c.head >= len(c.queue)/2:
		// Compact once the dead prefix dominates: move the live window to
		// the front and clear the vacated tail references.
		n := copy(c.queue, c.queue[c.head:])
		for i := n; i < len(c.queue); i++ {
			c.queue[i] = qmsg{}
		}
		c.queue = c.queue[:n]
		c.head = 0
	}
}

// drainLocked appends every deliverable queued message to dst and reclaims
// the consumed prefix for backing-array reuse. Caller holds c.mu. When it
// stops at a head still in flight (link delay), wait reports how long until
// that message becomes deliverable; force drains everything regardless.
func (c *Conn) drainLocked(dst [][]byte, force bool) (out [][]byte, got bool, wait time.Duration) {
	var now int64
	for c.head < len(c.queue) {
		m := c.queue[c.head]
		if m.due > 0 && !force {
			if now == 0 {
				now = time.Now().UnixNano()
			}
			if m.due > now {
				wait = time.Duration(m.due - now)
				break
			}
		}
		dst = append(dst, m.buf)
		c.queue[c.head].buf = nil
		c.head++
		got = true
	}
	c.shedPrefixLocked()
	return dst, got, wait
}

// Recv blocks until a message arrives or the connection closes. The returned
// buffer is owned by the caller; pass it to Release when done to recycle it.
func (c *Conn) Recv() ([]byte, error) {
	for {
		c.mu.Lock()
		msg, ok, wait := c.popLocked(false)
		c.mu.Unlock()
		if ok {
			return msg, nil
		}
		if wait > 0 {
			// The head message is in flight; sleep out its link delay. A
			// close during the wait flushes the backlog like any close.
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-c.closed:
				t.Stop()
				return c.recvClosed()
			}
			continue
		}
		select {
		case <-c.ready:
		case <-c.closed:
			return c.recvClosed()
		}
	}
}

// recvClosed drains any message that raced with the close (link delay no
// longer applies — the connection is gone either way).
func (c *Conn) recvClosed() ([]byte, error) {
	c.mu.Lock()
	msg, ok, _ := c.popLocked(true)
	c.mu.Unlock()
	if ok {
		return msg, nil
	}
	return nil, ErrClosed
}

// RecvBatch blocks until at least one message is available (or the
// connection closes), then moves the connection's whole queued backlog into
// dst under a single lock acquisition and returns the extended slice. Like
// append, it may grow dst; pass a previous call's result (re-sliced to [:0])
// to amortize the slice itself. Each returned buffer is owned by the caller,
// exactly as with Recv.
//
// After both endpoints close, any backlog that raced with the close is still
// delivered first; only then does RecvBatch fail with ErrClosed, matching
// Recv's drain semantics.
func (c *Conn) RecvBatch(dst [][]byte) ([][]byte, error) {
	for {
		c.mu.Lock()
		out, ok, wait := c.drainLocked(dst, false)
		c.mu.Unlock()
		if ok {
			return out, nil
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-c.closed:
				t.Stop()
				return c.recvBatchClosed(dst)
			}
			continue
		}
		select {
		case <-c.ready:
		case <-c.closed:
			return c.recvBatchClosed(dst)
		}
	}
}

// recvBatchClosed drains the backlog that raced with the close, in-flight
// messages included, matching Recv's close semantics.
func (c *Conn) recvBatchClosed(dst [][]byte) ([][]byte, error) {
	c.mu.Lock()
	out, ok, _ := c.drainLocked(dst, true)
	c.mu.Unlock()
	if ok {
		return out, nil
	}
	return dst, ErrClosed
}

// RecvTimeout is Recv with a deadline; it returns ErrTimeout on expiry.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		c.mu.Lock()
		msg, ok, wait := c.popLocked(false)
		c.mu.Unlock()
		if ok {
			return msg, nil
		}
		var dueCh <-chan time.Time
		var dueTimer *time.Timer
		if wait > 0 {
			dueTimer = time.NewTimer(wait)
			dueCh = dueTimer.C
		}
		select {
		case <-c.ready:
		case <-dueCh:
		case <-c.closed:
			if dueTimer != nil {
				dueTimer.Stop()
			}
			return c.recvClosed()
		case <-timer.C:
			if dueTimer != nil {
				dueTimer.Stop()
			}
			return nil, ErrTimeout
		}
		if dueTimer != nil {
			dueTimer.Stop()
		}
	}
}

// Close closes both endpoints of the connection. It is idempotent and safe
// to call concurrently from both sides.
func (c *Conn) Close() {
	c.once.Do(func() {
		close(c.closed)
		if c.net != nil {
			c.net.forget(c)
			c.net.forget(c.peer)
		}
	})
}

// Closed reports whether the connection has been closed (by either side).
// This is the attacker's crash oracle: polling Closed on a connection to a
// victim reveals whether the victim process died.
func (c *Conn) Closed() bool {
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}

// Done returns a channel closed when the connection closes, for select-based
// observers.
func (c *Conn) Done() <-chan struct{} { return c.closed }
