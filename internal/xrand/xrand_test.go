package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeats within 100 draws: %d unique", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split streams collided at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 65536} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(13)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency %v", p, freq)
	}
}

func TestBinomialRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		k := r.Binomial(4, 0.5)
		if k < 0 || k > 4 {
			t.Fatalf("Binomial(4, .5) = %d", k)
		}
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(19)
	const n, p, trials = 10, 0.25, 50000
	var sum int
	for i := 0; i < trials; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-n*p) > 0.05 {
		t.Fatalf("Binomial mean %v, want %v", mean, n*p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	const p, trials = 0.01, 50000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / trials
	want := (1 - p) / p
	if math.Abs(mean-want) > want*0.05 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	cfg := &quick.Config{MaxCount: 200}
	prop := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := r.Uint64n(1 << 16)
		if v >= 1<<16 {
			t.Fatalf("Uint64n(2^16) = %d", v)
		}
	}
}

func TestFillMatchesSequentialUint64(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256, 1000} {
		seq, bulk := New(51), New(51)
		want := make([]uint64, n)
		for i := range want {
			want[i] = seq.Uint64()
		}
		got := make([]uint64, n)
		bulk.Fill(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Fill(%d) diverged from Uint64 at index %d", n, i)
			}
		}
		// The post-block states must agree too, so interleaving Fill with
		// single draws stays on the same stream.
		if seq.Uint64() != bulk.Uint64() {
			t.Fatalf("Fill(%d) left a different generator state than %d Uint64 calls", n, n)
		}
	}
}

func TestBlockServesIdenticalStream(t *testing.T) {
	// Every Source method on a Block must consume and produce exactly what
	// the same method on the bare RNG would — the property that lets the
	// shard kernels adopt Block without changing any simulation result.
	direct := New(53)
	blk := NewBlock(New(53), 16) // small block to cross refills often
	for i := 0; i < 5000; i++ {
		switch i % 4 {
		case 0:
			if a, b := direct.Uint64(), blk.Uint64(); a != b {
				t.Fatalf("Uint64 diverged at draw %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := direct.Uint64n(97), blk.Uint64n(97); a != b {
				t.Fatalf("Uint64n diverged at draw %d: %d vs %d", i, a, b)
			}
		case 2:
			if a, b := direct.Float64(), blk.Float64(); a != b {
				t.Fatalf("Float64 diverged at draw %d: %v vs %v", i, a, b)
			}
		case 3:
			if a, b := direct.Bernoulli(0.3), blk.Bernoulli(0.3); a != b {
				t.Fatalf("Bernoulli diverged at draw %d", i)
			}
		}
	}
}

func TestBlockDefaultSize(t *testing.T) {
	blk := NewBlock(New(1), 0)
	if len(blk.buf) != defaultBlockSize {
		t.Fatalf("default block size %d, want %d", len(blk.buf), defaultBlockSize)
	}
	direct := New(1)
	for i := 0; i < 3*defaultBlockSize; i++ {
		if direct.Uint64() != blk.Uint64() {
			t.Fatalf("default-size block diverged at draw %d", i)
		}
	}
}

var sinkUint64 uint64

func BenchmarkFill(b *testing.B) {
	r := New(1)
	buf := make([]uint64, defaultBlockSize)
	b.SetBytes(int64(len(buf) * 8))
	for i := 0; i < b.N; i++ {
		r.Fill(buf)
		sinkUint64 += buf[0]
	}
}

func BenchmarkBlockUint64(b *testing.B) {
	blk := NewBlock(New(1), defaultBlockSize)
	for i := 0; i < b.N; i++ {
		sinkUint64 += blk.Uint64()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Bernoulli(0.001)
	}
}
