// Package xrand provides deterministic, splittable pseudo-random number
// generation for reproducible simulation runs.
//
// Every Monte-Carlo component in this repository draws randomness through an
// *xrand.RNG seeded explicitly by the caller, so that any experiment can be
// replayed bit-for-bit from its seed. The generator is a 64-bit SplitMix64
// followed by xoshiro256**, a small, fast, well-tested combination that needs
// nothing outside the standard library.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator.
//
// RNG is NOT safe for concurrent use; derive one generator per goroutine with
// Split, which produces statistically independent streams.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Distinct seeds yield independent
// streams for all practical simulation purposes.
func New(seed uint64) *RNG {
	r := &RNG{}
	// Seed the xoshiro state with SplitMix64 outputs, as recommended by the
	// xoshiro authors, so that even seed=0 produces a well-mixed state.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is independent of the receiver's
// future output. It advances the receiver.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// Bernoulli reports true with probability p. Values of p outside [0, 1] are
// clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial returns the number of successes in n independent Bernoulli(p)
// trials. It is exact (trial-by-trial) for the small n used in this
// repository's models (n <= a handful of replicas).
func (r *RNG) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) process, i.e. a sample of the geometric distribution on
// {0, 1, 2, ...}. It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) uint64 {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs p in (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln(U) / ln(1-p)) with U in (0, 1).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxUint64/2 {
		return math.MaxUint64 / 2
	}
	return uint64(g)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as math/rand.Shuffle does.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
