// Package xrand provides deterministic, splittable pseudo-random number
// generation for reproducible simulation runs.
//
// Every Monte-Carlo component in this repository draws randomness through an
// *xrand.RNG seeded explicitly by the caller, so that any experiment can be
// replayed bit-for-bit from its seed. The generator is a 64-bit SplitMix64
// followed by xoshiro256**, a small, fast, well-tested combination that needs
// nothing outside the standard library.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator.
//
// RNG is NOT safe for concurrent use; derive one generator per goroutine with
// Split, which produces statistically independent streams.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Distinct seeds yield independent
// streams for all practical simulation purposes.
func New(seed uint64) *RNG {
	r := &RNG{}
	// Seed the xoshiro state with SplitMix64 outputs, as recommended by the
	// xoshiro authors, so that even seed=0 produces a well-mixed state.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is independent of the receiver's
// future output. It advances the receiver.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Fill writes the next len(dst) values of the stream into dst. The result is
// bit-identical to len(dst) successive Uint64 calls, but the generator state
// lives in locals for the whole block, so bulk consumers (Block, the
// Monte-Carlo shard kernels) avoid the per-call state loads and stores.
func (r *RNG) Fill(dst []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Source is the minimal drawing interface the Monte-Carlo kernels consume.
// Both *RNG and *Block satisfy it; a kernel fed a Block sees exactly the
// value stream it would have drawn from the underlying RNG directly.
type Source interface {
	Uint64() uint64
	Uint64n(n uint64) uint64
	Float64() float64
	Bernoulli(p float64) bool
}

// rawSource is the generic constraint the shared sampling algorithms build
// on: one implementation of Lemire rejection etc., statically instantiated
// for each concrete generator so the hot paths stay devirtualized.
type rawSource interface{ Uint64() uint64 }

func float64Of[S rawSource](s S) float64 {
	// 53 high-quality bits into the mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// uint64nOf returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func uint64nOf[S rawSource](s S, n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		hi, lo := bits.Mul64(s.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

func bernoulliOf[S rawSource](s S, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64Of(s) < p
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64Of(r) }

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 { return uint64nOf(r, n) }

// Bernoulli reports true with probability p. Values of p outside [0, 1] are
// clamped.
func (r *RNG) Bernoulli(p float64) bool { return bernoulliOf(r, p) }

// defaultBlockSize is the Fill granularity a Block uses when the caller does
// not choose one: large enough to amortize the block refill, small enough
// that per-shard Blocks cost a few KiB at most.
const defaultBlockSize = 256

// Block serves the same value stream as its underlying RNG, pre-generating
// values a fixed-size block at a time with Fill. Every sampling method
// consumes the stream exactly as the corresponding RNG method would, so
// swapping a Block in for the RNG it wraps never changes simulation results.
//
// A Block over-advances the underlying generator by up to one block of raw
// values (the unconsumed remainder of the last refill), so use it only where
// the generator is dedicated to the consumer — the per-shard RNGs of the
// parallel Monte-Carlo engine, which are split off and discarded per run.
// Block is not safe for concurrent use, matching RNG.
type Block struct {
	rng  *RNG
	next int
	buf  []uint64
}

// NewBlock wraps rng in a block-buffered source. size <= 0 selects
// defaultBlockSize.
func NewBlock(rng *RNG, size int) *Block {
	if size <= 0 {
		size = defaultBlockSize
	}
	return &Block{rng: rng, buf: make([]uint64, size), next: size}
}

// Uint64 returns the next 64 uniformly distributed bits, refilling the block
// from the underlying generator when it runs dry.
func (b *Block) Uint64() uint64 {
	if b.next == len(b.buf) {
		b.rng.Fill(b.buf)
		b.next = 0
	}
	v := b.buf[b.next]
	b.next++
	return v
}

// Uint64n returns a uniform value in [0, n); it panics if n == 0.
func (b *Block) Uint64n(n uint64) uint64 { return uint64nOf(b, n) }

// Float64 returns a uniform value in [0, 1).
func (b *Block) Float64() float64 { return float64Of(b) }

// Bernoulli reports true with probability p, clamping p to [0, 1].
func (b *Block) Bernoulli(p float64) bool { return bernoulliOf(b, p) }

// Binomial returns the number of successes in n independent Bernoulli(p)
// trials. It is exact (trial-by-trial) for the small n used in this
// repository's models (n <= a handful of replicas).
func (r *RNG) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) process, i.e. a sample of the geometric distribution on
// {0, 1, 2, ...}. It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) uint64 {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs p in (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln(U) / ln(1-p)) with U in (0, 1).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxUint64/2 {
		return math.MaxUint64 / 2
	}
	return uint64(g)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as math/rand.Shuffle does.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
