package shard

import (
	"fmt"
	"testing"
)

func TestNewRejectsZeroGroups(t *testing.T) {
	if _, err := New(0, 0, 1); err == nil {
		t.Fatal("New(0, ...) succeeded, want error")
	}
}

// TestOwnerDeterministic pins that identical (groups, vnodes, seed)
// triples produce identical routing — the property sharded sweeps lean
// on for workers-{1,2,8} bit-identical results.
func TestOwnerDeterministic(t *testing.T) {
	a, err := New(4, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(4, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("Owner(%q) diverged: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestOwnerRange(t *testing.T) {
	for _, groups := range []int{1, 2, 3, 8} {
		r, err := New(groups, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1024; i++ {
			g := r.Owner(fmt.Sprintf("k%d", i))
			if g < 0 || g >= groups {
				t.Fatalf("groups=%d: Owner returned %d", groups, g)
			}
		}
	}
}

// TestOwnerBalance checks the ring spreads a key population roughly
// evenly: with 64 vnodes per group no group should own less than half
// or more than double its fair share.
func TestOwnerBalance(t *testing.T) {
	const groups, keys = 4, 8192
	r, err := New(groups, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, groups)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("user-%d", i))]++
	}
	fair := keys / groups
	for g, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("group %d owns %d of %d keys (fair share %d): %v", g, c, keys, fair, counts)
		}
	}
}

// TestOwnerStableUnderGrowth pins consistent hashing's defining
// property: growing the ring from M to M+1 groups only moves keys to
// the new group — no key moves between pre-existing groups.
func TestOwnerStableUnderGrowth(t *testing.T) {
	const seed = 11
	small, err := New(3, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(4, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	moved, stayed := 0, 0
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("doc/%d", i)
		was, now := small.Owner(key), big.Owner(key)
		switch {
		case was == now:
			stayed++
		case now == 3:
			moved++
		default:
			t.Fatalf("key %q moved between existing groups: %d -> %d", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new group")
	}
	if stayed == 0 {
		t.Fatal("no keys stayed put")
	}
}

func TestProbeKeyOwnedByGroup(t *testing.T) {
	r, err := New(8, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for g := 0; g < 8; g++ {
		key := r.ProbeKey(g)
		if r.Owner(key) != g {
			t.Fatalf("ProbeKey(%d) = %q owned by %d", g, key, r.Owner(key))
		}
		if seen[key] {
			t.Fatalf("ProbeKey(%d) = %q duplicates another group's probe key", g, key)
		}
		seen[key] = true
	}
}

func TestSingleGroupOwnsEverything(t *testing.T) {
	r, err := New(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "health", "a", "zzzz"} {
		if g := r.Owner(key); g != 0 {
			t.Fatalf("Owner(%q) = %d, want 0", key, g)
		}
	}
}
