// Package shard maps request keys to replica groups with a deterministic
// consistent-hash ring.
//
// A sharded fortress deployment partitions the service keyspace across M
// independent replica groups so aggregate ordering throughput scales with
// M instead of capping at what one sequencer/primary can order. The ring
// is the routing function shared by every layer that needs it: proxies
// route each client request to the owning group, campaigns derive one
// probe key per group, and fault schedules name groups directly.
//
// Placement is fully deterministic: a fixed virtual-node count per group
// and a seeded 64-bit hash mean the same (groups, vnodes, seed) triple
// always yields byte-identical routing, which keeps sharded sweeps
// bit-identical at any -workers value.
package shard

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per group used when callers
// pass vnodes <= 0. 64 vnodes keep the per-group keyspace share within a
// few percent of 1/M for small M without making ring construction
// noticeable.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a fixed set of replica
// groups. It is safe for concurrent use.
type Ring struct {
	groups int
	seed   uint64
	points []point // sorted by hash
}

// point is one virtual node on the 64-bit hash circle.
type point struct {
	hash  uint64
	group int
}

// New builds a ring that maps keys onto groups replica groups using
// vnodes virtual nodes per group (DefaultVnodes when vnodes <= 0) and
// seeded placement. groups must be at least 1.
func New(groups, vnodes int, seed uint64) (*Ring, error) {
	if groups < 1 {
		return nil, fmt.Errorf("shard: groups must be at least 1, got %d", groups)
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		groups: groups,
		seed:   seed,
		points: make([]point, 0, groups*vnodes),
	}
	for g := 0; g < groups; g++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(seed ^ mix64(uint64(g)<<32|uint64(v)+0x9e3779b97f4a7c15))
			r.points = append(r.points, point{hash: h, group: g})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare) break by group so placement stays
		// deterministic regardless of sort internals.
		return r.points[i].group < r.points[j].group
	})
	return r, nil
}

// Groups reports the number of replica groups on the ring.
func (r *Ring) Groups() int { return r.groups }

// Owner returns the replica group that owns key: the group of the first
// virtual node at or clockwise of the key's hash.
func (r *Ring) Owner(key string) int {
	if r.groups == 1 {
		return 0
	}
	h := r.hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group
}

// ProbeKey returns a deterministic key owned by group — the first
// "shard-probe-<group>-<n>" string the ring routes to it. Campaigns use
// one probe key per group so per-step health checks exercise every
// shard.
func (r *Ring) ProbeKey(group int) string {
	for n := 0; ; n++ {
		key := fmt.Sprintf("shard-probe-%d-%d", group, n)
		if r.Owner(key) == group {
			return key
		}
	}
}

// hashKey hashes a key onto the ring's circle: FNV-1a over the bytes,
// folded with the ring seed and finalized with a 64-bit mixer so nearby
// keys land far apart.
func (r *Ring) hashKey(key string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return mix64(h ^ r.seed)
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer with good
// avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
