// Package service defines the replicatable-service abstraction and several
// concrete services used by the replication engines and examples.
//
// The paper's motivating distinction (§1) is that state machine replication
// requires the hosted service to be a deterministic state machine (DSM),
// whereas primary-backup can replicate any service because only the primary
// executes requests and backups apply state updates. The Service interface
// supports both styles: Apply for execution, and Snapshot/Restore for
// primary-to-backup state transfer.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"fortress/internal/xrand"
)

// ErrBadRequest is returned for malformed or unsupported requests.
var ErrBadRequest = errors.New("service: bad request")

// Service is a replicatable service.
//
// Implementations must be safe for concurrent use. Deterministic reports
// whether Apply is a pure function of (current state, request); SMR hosting
// requires it, primary-backup does not.
type Service interface {
	// Name identifies the service type.
	Name() string
	// Apply executes one request and returns the response.
	Apply(req []byte) ([]byte, error)
	// Snapshot serializes the full service state.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a previous Snapshot.
	Restore(snapshot []byte) error
	// Deterministic reports whether Apply is replay-safe on a DSM.
	Deterministic() bool
}

// ReadClassifier is the optional read-only invoke surface: a service that
// implements it can vouch that Apply(req) leaves its state untouched, which
// lets a replication engine serve the request outside the order protocol
// (the SMR lease-read path). The classification is authoritative on the
// replica side — a client may *tag* a request as a read, but the engine
// only skips ordering when the hosted service agrees, so a mis-tagged
// write can never bypass sequencing.
type ReadClassifier interface {
	// ReadOnly reports whether req is a pure read: Apply(req) must not
	// change any state observable through Apply, Snapshot or Restore.
	ReadOnly(req []byte) bool
}

// IsReadOnly reports whether svc classifies req as a pure read. A service
// that does not implement ReadClassifier classifies nothing as read-only,
// so every request keeps the ordered write path.
func IsReadOnly(svc Service, req []byte) bool {
	rc, ok := svc.(ReadClassifier)
	return ok && rc.ReadOnly(req)
}

// SnapshotDelta describes how one Apply changed the service's snapshot
// encoding: the new snapshot is
//
//	prev[:PrefixLen] + Patch + prev[len(prev)-SuffixLen:]
//
// where prev is the snapshot immediately before the Apply. Unchanged set
// means the Apply left the snapshot byte-identical (a read, a no-op, or a
// failed request) and the splice fields are meaningless.
type SnapshotDelta struct {
	Unchanged bool
	PrefixLen int
	Patch     []byte
	SuffixLen int
}

// DeltaCapable is the optional incremental-snapshot surface: a service that
// implements it reports each Apply's exact snapshot edit, which lets the PB
// primary splice the next chain state from the previous one instead of
// re-serializing the whole state (Snapshot) and scanning for the difference
// (DiffSnapshot) on every request.
type DeltaCapable interface {
	// LastDelta reports the snapshot edit of the most recent Apply (or
	// Restore, which reports Unchanged). The returned Patch must not be
	// modified and stays valid until the next Apply/Restore; callers that
	// pair Apply with LastDelta must serialize the two against concurrent
	// Applies — the replication engines do, under their execution lock.
	LastDelta() (SnapshotDelta, bool)
}

// LastDeltaOf returns svc's delta for its most recent Apply when svc
// implements DeltaCapable; ok=false otherwise, steering the caller to the
// Snapshot-and-diff fallback.
func LastDeltaOf(svc Service) (SnapshotDelta, bool) {
	if dc, ok := svc.(DeltaCapable); ok {
		return dc.LastDelta()
	}
	return SnapshotDelta{}, false
}

// spliceBytes builds prev[:prefix] + patch + prev[len(prev)-suffix:] as a
// fresh slice — the incremental-editor primitive. Snapshots handed out
// earlier stay immutable: the editor never modifies a snapshot in place.
func spliceBytes(prev []byte, prefix int, patch []byte, suffix int) []byte {
	next := make([]byte, 0, prefix+len(patch)+suffix)
	next = append(next, prev[:prefix]...)
	next = append(next, patch...)
	return append(next, prev[len(prev)-suffix:]...)
}

// --- KV store ---------------------------------------------------------

// KVRequest is the request format of the KV store: op is "get", "put" or
// "delete".
type KVRequest struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// KVResponse is the KV store's reply.
type KVResponse struct {
	Found bool   `json:"found"`
	Value string `json:"value,omitempty"`
}

// KV is a deterministic key-value store.
type KV struct {
	mu   sync.Mutex
	data map[string]string
	// Incremental-snapshot editor state (DeltaCapable): snap is the
	// canonical snapshot encoding — byte-identical to json.Marshal(data),
	// whose object keys are sorted — maintained by splicing one entry per
	// mutation; keys/encs hold the sorted keys and each entry's encoded
	// bytes; last is the edit the most recent Apply performed.
	snap []byte
	keys []string
	encs [][]byte
	last SnapshotDelta
}

var (
	_ Service      = (*KV)(nil)
	_ DeltaCapable = (*KV)(nil)
)

// NewKV returns an empty KV store.
func NewKV() *KV {
	return &KV{data: make(map[string]string), snap: []byte("{}")}
}

// encodeKVEntry renders one `"key":"value"` object member exactly as
// encoding/json renders it inside json.Marshal(map[string]string) — same
// string escaping, no whitespace — so spliced snapshots stay byte-identical
// to marshalled ones.
func encodeKVEntry(k, v string) []byte {
	kb, _ := json.Marshal(k)
	vb, _ := json.Marshal(v)
	enc := make([]byte, 0, len(kb)+1+len(vb))
	enc = append(enc, kb...)
	enc = append(enc, ':')
	return append(enc, vb...)
}

// entryOffset returns the byte offset of entry i in an editor snapshot: one
// opening bracket, then each earlier entry plus its separating comma.
func entryOffset(encs [][]byte, i int) int {
	off := 1
	for j := 0; j < i; j++ {
		off += len(encs[j]) + 1
	}
	return off
}

// editPut records a put as a one-entry splice: replace in place when the
// key exists, insert at its sorted position otherwise. Caller holds kv.mu.
func (kv *KV) editPut(k, v string) {
	enc := encodeKVEntry(k, v)
	i := sort.SearchStrings(kv.keys, k)
	var prefix, suffix int
	patch := enc
	switch {
	case i < len(kv.keys) && kv.keys[i] == k: // replace
		prefix = entryOffset(kv.encs, i)
		suffix = len(kv.snap) - prefix - len(kv.encs[i])
		kv.encs[i] = enc
	case len(kv.keys) == 0: // first entry: between the braces
		prefix, suffix = 1, 1
	case i == len(kv.keys): // append: before the closing brace
		prefix, suffix = len(kv.snap)-1, 1
		patch = append([]byte{','}, enc...)
	default: // insert before entry i
		prefix = entryOffset(kv.encs, i)
		suffix = len(kv.snap) - prefix
		patch = append(append([]byte{}, enc...), ',')
	}
	if !(i < len(kv.keys) && kv.keys[i] == k) {
		kv.keys = append(kv.keys, "")
		copy(kv.keys[i+1:], kv.keys[i:])
		kv.keys[i] = k
		kv.encs = append(kv.encs, nil)
		copy(kv.encs[i+1:], kv.encs[i:])
		kv.encs[i] = enc
	}
	kv.last = SnapshotDelta{PrefixLen: prefix, Patch: patch, SuffixLen: suffix}
	kv.snap = spliceBytes(kv.snap, prefix, patch, suffix)
}

// editDelete records a delete of existing key k as a one-entry splice that
// also eats the adjacent comma. Caller holds kv.mu.
func (kv *KV) editDelete(k string) {
	i := sort.SearchStrings(kv.keys, k)
	var prefix, suffix int
	switch {
	case len(kv.keys) == 1: // last entry out: back to {}
		prefix, suffix = 1, 1
	case i == 0: // first entry and its trailing comma
		prefix = 1
		suffix = len(kv.snap) - 2 - len(kv.encs[0])
	default: // preceding comma and the entry
		off := entryOffset(kv.encs, i)
		prefix = off - 1
		suffix = len(kv.snap) - off - len(kv.encs[i])
	}
	kv.keys = append(kv.keys[:i], kv.keys[i+1:]...)
	kv.encs = append(kv.encs[:i], kv.encs[i+1:]...)
	kv.last = SnapshotDelta{PrefixLen: prefix, SuffixLen: suffix}
	kv.snap = spliceBytes(kv.snap, prefix, nil, suffix)
}

// Name implements Service.
func (kv *KV) Name() string { return "kv" }

// Deterministic implements Service.
func (kv *KV) Deterministic() bool { return true }

// ReadOnly implements ReadClassifier: "get" is the KV store's only pure
// read. Malformed requests are not reads — they take the ordered path and
// fail there, keeping error responses identical across replicas.
func (kv *KV) ReadOnly(req []byte) bool {
	var r KVRequest
	return json.Unmarshal(req, &r) == nil && r.Op == "get"
}

// Apply implements Service.
func (kv *KV) Apply(req []byte) ([]byte, error) {
	var r KVRequest
	uerr := json.Unmarshal(req, &r)
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.last = SnapshotDelta{Unchanged: true}
	if uerr != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, uerr)
	}
	var resp KVResponse
	switch r.Op {
	case "get":
		v, ok := kv.data[r.Key]
		resp = KVResponse{Found: ok, Value: v}
	case "put":
		kv.data[r.Key] = r.Value
		kv.editPut(r.Key, r.Value)
		resp = KVResponse{Found: true, Value: r.Value}
	case "delete":
		_, ok := kv.data[r.Key]
		if ok {
			delete(kv.data, r.Key)
			kv.editDelete(r.Key)
		}
		resp = KVResponse{Found: ok}
	default:
		return nil, fmt.Errorf("%w: unknown op %q", ErrBadRequest, r.Op)
	}
	return json.Marshal(resp)
}

// LastDelta implements DeltaCapable.
func (kv *KV) LastDelta() (SnapshotDelta, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.last, true
}

// Snapshot implements Service. The returned bytes are the maintained
// canonical encoding (sorted keys, identical to marshalling the map) and
// must not be modified.
func (kv *KV) Snapshot() ([]byte, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.snap, nil
}

// Restore implements Service.
func (kv *KV) Restore(snapshot []byte) error {
	data := make(map[string]string)
	if err := json.Unmarshal(snapshot, &data); err != nil {
		return fmt.Errorf("service: restore kv: %w", err)
	}
	// Re-canonicalize rather than adopting the input bytes: the editor's
	// splices must chain from the sorted no-whitespace encoding.
	snap, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("service: restore kv: %v", err)
	}
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	encs := make([][]byte, len(keys))
	for i, k := range keys {
		encs[i] = encodeKVEntry(k, data[k])
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.data = data
	kv.snap = snap
	kv.keys = keys
	kv.encs = encs
	kv.last = SnapshotDelta{Unchanged: true}
	return nil
}

// Len reports the number of stored keys (for tests and examples).
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.data)
}

// --- Counter ----------------------------------------------------------

// Counter is a deterministic monotonic counter; requests are "inc", "add N"
// or "read", responses the decimal value.
type Counter struct {
	mu sync.Mutex
	n  int64
	// snap caches the decimal snapshot encoding; last is the DeltaCapable
	// edit of the most recent Apply — a whole-value replacement, since the
	// entire snapshot is one number.
	snap []byte
	last SnapshotDelta
}

var (
	_ Service      = (*Counter)(nil)
	_ DeltaCapable = (*Counter)(nil)
)

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{snap: []byte("0")} }

// Name implements Service.
func (c *Counter) Name() string { return "counter" }

// Deterministic implements Service.
func (c *Counter) Deterministic() bool { return true }

// ReadOnly implements ReadClassifier: "read" returns the count unchanged.
func (c *Counter) ReadOnly(req []byte) bool { return string(req) == "read" }

// Apply implements Service.
func (c *Counter) Apply(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last = SnapshotDelta{Unchanged: true}
	s := string(req)
	switch {
	case s == "inc":
		c.bump(1)
	case s == "read":
	case len(s) > 4 && s[:4] == "add ":
		d, err := strconv.ParseInt(s[4:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		c.bump(d)
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadRequest, s)
	}
	return []byte(strconv.FormatInt(c.n, 10)), nil
}

// bump applies a mutation and records it as a whole-value replacement.
// Caller holds c.mu.
func (c *Counter) bump(d int64) {
	c.n += d
	c.snap = []byte(strconv.FormatInt(c.n, 10))
	c.last = SnapshotDelta{Patch: c.snap}
}

// LastDelta implements DeltaCapable.
func (c *Counter) LastDelta() (SnapshotDelta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last, true
}

// Snapshot implements Service. The returned bytes must not be modified.
func (c *Counter) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snap, nil
}

// Restore implements Service.
func (c *Counter) Restore(snapshot []byte) error {
	n, err := strconv.ParseInt(string(snapshot), 10, 64)
	if err != nil {
		return fmt.Errorf("service: restore counter: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = n
	c.snap = []byte(strconv.FormatInt(n, 10))
	c.last = SnapshotDelta{Unchanged: true}
	return nil
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// --- Bank -------------------------------------------------------------

// BankRequest operates on accounts: op is "open", "deposit", "withdraw",
// "transfer" or "balance".
type BankRequest struct {
	Op     string `json:"op"`
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Amount int64  `json:"amount,omitempty"`
}

// BankResponse reports the outcome and resulting balance of From (when
// meaningful).
type BankResponse struct {
	OK      bool   `json:"ok"`
	Balance int64  `json:"balance"`
	Err     string `json:"err,omitempty"`
}

// bankEntry is the canonical snapshot element: one account, one balance,
// array-ordered by account name.
type bankEntry struct {
	Account string `json:"account"`
	Balance int64  `json:"balance"`
}

// Bank is a deterministic multi-account ledger with non-negative balances.
type Bank struct {
	mu       sync.Mutex
	accounts map[string]int64
	// Incremental-snapshot editor state (DeltaCapable), mirroring KV's: the
	// canonical sorted-entry array encoding, maintained by splicing the one
	// or two entries each request touches.
	snap []byte
	keys []string
	encs [][]byte
	last SnapshotDelta
}

var (
	_ Service      = (*Bank)(nil)
	_ DeltaCapable = (*Bank)(nil)
)

// NewBank returns a bank with no accounts.
func NewBank() *Bank {
	return &Bank{accounts: make(map[string]int64), snap: []byte("[]")}
}

// encodeBankEntry renders one account entry exactly as json.Marshal renders
// a bankEntry inside the snapshot array.
func encodeBankEntry(k string, v int64) []byte {
	enc, _ := json.Marshal(bankEntry{Account: k, Balance: v})
	return enc
}

// editInsert records a new account (balance 0) as a one-entry splice at its
// sorted position. Caller holds b.mu.
func (b *Bank) editInsert(k string) {
	enc := encodeBankEntry(k, 0)
	i := sort.SearchStrings(b.keys, k)
	var prefix, suffix int
	patch := enc
	switch {
	case len(b.keys) == 0:
		prefix, suffix = 1, 1
	case i == len(b.keys):
		prefix, suffix = len(b.snap)-1, 1
		patch = append([]byte{','}, enc...)
	default:
		prefix = entryOffset(b.encs, i)
		suffix = len(b.snap) - prefix
		patch = append(append([]byte{}, enc...), ',')
	}
	b.keys = append(b.keys, "")
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = k
	b.encs = append(b.encs, nil)
	copy(b.encs[i+1:], b.encs[i:])
	b.encs[i] = enc
	b.last = SnapshotDelta{PrefixLen: prefix, Patch: patch, SuffixLen: suffix}
	b.snap = spliceBytes(b.snap, prefix, patch, suffix)
}

// editReplace re-encodes one existing account in place. Caller holds b.mu.
func (b *Bank) editReplace(k string) {
	i := sort.SearchStrings(b.keys, k)
	enc := encodeBankEntry(k, b.accounts[k])
	prefix := entryOffset(b.encs, i)
	suffix := len(b.snap) - prefix - len(b.encs[i])
	b.encs[i] = enc
	b.last = SnapshotDelta{PrefixLen: prefix, Patch: enc, SuffixLen: suffix}
	b.snap = spliceBytes(b.snap, prefix, enc, suffix)
}

// editReplace2 re-encodes the two accounts a transfer touched as one
// contiguous splice spanning from the lower entry to the higher, keeping
// the original bytes between them. Caller holds b.mu.
func (b *Bank) editReplace2(from, to string) {
	if from == to {
		b.editReplace(from)
		return
	}
	i := sort.SearchStrings(b.keys, from)
	j := sort.SearchStrings(b.keys, to)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	encLo := encodeBankEntry(b.keys[lo], b.accounts[b.keys[lo]])
	encHi := encodeBankEntry(b.keys[hi], b.accounts[b.keys[hi]])
	offLo := entryOffset(b.encs, lo)
	offHi := entryOffset(b.encs, hi)
	prefix := offLo
	suffix := len(b.snap) - offHi - len(b.encs[hi])
	patch := make([]byte, 0, len(encLo)+(offHi-offLo-len(b.encs[lo]))+len(encHi))
	patch = append(patch, encLo...)
	patch = append(patch, b.snap[offLo+len(b.encs[lo]):offHi]...)
	patch = append(patch, encHi...)
	b.encs[lo] = encLo
	b.encs[hi] = encHi
	b.last = SnapshotDelta{PrefixLen: prefix, Patch: patch, SuffixLen: suffix}
	b.snap = spliceBytes(b.snap, prefix, patch, suffix)
}

// Name implements Service.
func (b *Bank) Name() string { return "bank" }

// Deterministic implements Service.
func (b *Bank) Deterministic() bool { return true }

// ReadOnly implements ReadClassifier: "balance" is the ledger's only pure
// read.
func (b *Bank) ReadOnly(req []byte) bool {
	var r BankRequest
	return json.Unmarshal(req, &r) == nil && r.Op == "balance"
}

// Apply implements Service.
func (b *Bank) Apply(req []byte) ([]byte, error) {
	var r BankRequest
	uerr := json.Unmarshal(req, &r)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.last = SnapshotDelta{Unchanged: true}
	if uerr != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, uerr)
	}
	resp := b.apply(r)
	return json.Marshal(resp)
}

// LastDelta implements DeltaCapable.
func (b *Bank) LastDelta() (SnapshotDelta, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last, true
}

func (b *Bank) apply(r BankRequest) BankResponse {
	fail := func(msg string) BankResponse { return BankResponse{Err: msg} }
	switch r.Op {
	case "open":
		if _, ok := b.accounts[r.From]; ok {
			return fail("account exists")
		}
		b.accounts[r.From] = 0
		b.editInsert(r.From)
		return BankResponse{OK: true}
	case "deposit":
		if _, ok := b.accounts[r.From]; !ok {
			return fail("no such account")
		}
		if r.Amount < 0 {
			return fail("negative amount")
		}
		b.accounts[r.From] += r.Amount
		b.editReplace(r.From)
		return BankResponse{OK: true, Balance: b.accounts[r.From]}
	case "withdraw":
		bal, ok := b.accounts[r.From]
		if !ok {
			return fail("no such account")
		}
		if r.Amount < 0 || bal < r.Amount {
			return fail("insufficient funds")
		}
		b.accounts[r.From] = bal - r.Amount
		b.editReplace(r.From)
		return BankResponse{OK: true, Balance: b.accounts[r.From]}
	case "transfer":
		fromBal, ok := b.accounts[r.From]
		if !ok {
			return fail("no such account")
		}
		if _, ok := b.accounts[r.To]; !ok {
			return fail("no such destination")
		}
		if r.Amount < 0 || fromBal < r.Amount {
			return fail("insufficient funds")
		}
		b.accounts[r.From] -= r.Amount
		b.accounts[r.To] += r.Amount
		b.editReplace2(r.From, r.To)
		return BankResponse{OK: true, Balance: b.accounts[r.From]}
	case "balance":
		bal, ok := b.accounts[r.From]
		if !ok {
			return fail("no such account")
		}
		return BankResponse{OK: true, Balance: bal}
	default:
		return fail("unknown op " + r.Op)
	}
}

// TotalFunds returns the sum over all balances — conserved by transfers,
// used as a property-test invariant.
func (b *Bank) TotalFunds() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var sum int64
	for _, v := range b.accounts {
		sum += v
	}
	return sum
}

// Snapshot implements Service. Account order is canonicalized (sorted by
// name) so identical states produce identical snapshots; the returned bytes
// are the maintained encoding and must not be modified.
func (b *Bank) Snapshot() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snap, nil
}

// Restore implements Service.
func (b *Bank) Restore(snapshot []byte) error {
	var entries []bankEntry
	if err := json.Unmarshal(snapshot, &entries); err != nil {
		return fmt.Errorf("service: restore bank: %w", err)
	}
	accounts := make(map[string]int64, len(entries))
	for _, e := range entries {
		accounts[e.Account] = e.Balance
	}
	// Re-canonicalize: the editor's splices must chain from the sorted
	// no-whitespace encoding whatever shape the input bytes had.
	keys := make([]string, 0, len(accounts))
	for k := range accounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	encs := make([][]byte, len(keys))
	canonical := make([]bankEntry, len(keys))
	for i, k := range keys {
		encs[i] = encodeBankEntry(k, accounts[k])
		canonical[i] = bankEntry{Account: k, Balance: accounts[k]}
	}
	snap, err := json.Marshal(canonical)
	if err != nil {
		return fmt.Errorf("service: restore bank: %v", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accounts = accounts
	b.snap = snap
	b.keys = keys
	b.encs = encs
	b.last = SnapshotDelta{Unchanged: true}
	return nil
}

// --- Nondeterministic wrapper -----------------------------------------

// Nondet wraps a service and injects per-execution nondeterminism (a random
// token folded into every response). A primary-backup system hosts it
// without trouble — only the primary executes, and backups receive state
// updates. An SMR system cannot: replicas executing the same request produce
// divergent responses, which the SMR engine's response voting detects. This
// realizes the paper's motivating example for why PB "can replicate any
// service" (§1).
type Nondet struct {
	inner Service
	mu    sync.Mutex
	rng   *xrand.RNG
}

var _ Service = (*Nondet)(nil)

// NewNondet wraps inner with nondeterminism drawn from rng.
func NewNondet(inner Service, rng *xrand.RNG) *Nondet {
	return &Nondet{inner: inner, rng: rng}
}

// Name implements Service.
func (n *Nondet) Name() string { return "nondet-" + n.inner.Name() }

// Deterministic implements Service.
func (n *Nondet) Deterministic() bool { return false }

// nondetEnvelope is the response format: the inner response plus the token.
type nondetEnvelope struct {
	Inner []byte `json:"inner"`
	Token uint64 `json:"token"`
}

// Apply implements Service.
func (n *Nondet) Apply(req []byte) ([]byte, error) {
	inner, err := n.inner.Apply(req)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	token := n.rng.Uint64()
	n.mu.Unlock()
	return json.Marshal(nondetEnvelope{Inner: inner, Token: token})
}

// Snapshot implements Service.
func (n *Nondet) Snapshot() ([]byte, error) { return n.inner.Snapshot() }

// Restore implements Service.
func (n *Nondet) Restore(snapshot []byte) error { return n.inner.Restore(snapshot) }
