// Package service defines the replicatable-service abstraction and several
// concrete services used by the replication engines and examples.
//
// The paper's motivating distinction (§1) is that state machine replication
// requires the hosted service to be a deterministic state machine (DSM),
// whereas primary-backup can replicate any service because only the primary
// executes requests and backups apply state updates. The Service interface
// supports both styles: Apply for execution, and Snapshot/Restore for
// primary-to-backup state transfer.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"fortress/internal/xrand"
)

// ErrBadRequest is returned for malformed or unsupported requests.
var ErrBadRequest = errors.New("service: bad request")

// Service is a replicatable service.
//
// Implementations must be safe for concurrent use. Deterministic reports
// whether Apply is a pure function of (current state, request); SMR hosting
// requires it, primary-backup does not.
type Service interface {
	// Name identifies the service type.
	Name() string
	// Apply executes one request and returns the response.
	Apply(req []byte) ([]byte, error)
	// Snapshot serializes the full service state.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a previous Snapshot.
	Restore(snapshot []byte) error
	// Deterministic reports whether Apply is replay-safe on a DSM.
	Deterministic() bool
}

// ReadClassifier is the optional read-only invoke surface: a service that
// implements it can vouch that Apply(req) leaves its state untouched, which
// lets a replication engine serve the request outside the order protocol
// (the SMR lease-read path). The classification is authoritative on the
// replica side — a client may *tag* a request as a read, but the engine
// only skips ordering when the hosted service agrees, so a mis-tagged
// write can never bypass sequencing.
type ReadClassifier interface {
	// ReadOnly reports whether req is a pure read: Apply(req) must not
	// change any state observable through Apply, Snapshot or Restore.
	ReadOnly(req []byte) bool
}

// IsReadOnly reports whether svc classifies req as a pure read. A service
// that does not implement ReadClassifier classifies nothing as read-only,
// so every request keeps the ordered write path.
func IsReadOnly(svc Service, req []byte) bool {
	rc, ok := svc.(ReadClassifier)
	return ok && rc.ReadOnly(req)
}

// --- KV store ---------------------------------------------------------

// KVRequest is the request format of the KV store: op is "get", "put" or
// "delete".
type KVRequest struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// KVResponse is the KV store's reply.
type KVResponse struct {
	Found bool   `json:"found"`
	Value string `json:"value,omitempty"`
}

// KV is a deterministic key-value store.
type KV struct {
	mu   sync.Mutex
	data map[string]string
}

var _ Service = (*KV)(nil)

// NewKV returns an empty KV store.
func NewKV() *KV {
	return &KV{data: make(map[string]string)}
}

// Name implements Service.
func (kv *KV) Name() string { return "kv" }

// Deterministic implements Service.
func (kv *KV) Deterministic() bool { return true }

// ReadOnly implements ReadClassifier: "get" is the KV store's only pure
// read. Malformed requests are not reads — they take the ordered path and
// fail there, keeping error responses identical across replicas.
func (kv *KV) ReadOnly(req []byte) bool {
	var r KVRequest
	return json.Unmarshal(req, &r) == nil && r.Op == "get"
}

// Apply implements Service.
func (kv *KV) Apply(req []byte) ([]byte, error) {
	var r KVRequest
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	var resp KVResponse
	switch r.Op {
	case "get":
		v, ok := kv.data[r.Key]
		resp = KVResponse{Found: ok, Value: v}
	case "put":
		kv.data[r.Key] = r.Value
		resp = KVResponse{Found: true, Value: r.Value}
	case "delete":
		_, ok := kv.data[r.Key]
		delete(kv.data, r.Key)
		resp = KVResponse{Found: ok}
	default:
		return nil, fmt.Errorf("%w: unknown op %q", ErrBadRequest, r.Op)
	}
	return json.Marshal(resp)
}

// Snapshot implements Service.
func (kv *KV) Snapshot() ([]byte, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return json.Marshal(kv.data)
}

// Restore implements Service.
func (kv *KV) Restore(snapshot []byte) error {
	data := make(map[string]string)
	if err := json.Unmarshal(snapshot, &data); err != nil {
		return fmt.Errorf("service: restore kv: %w", err)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.data = data
	return nil
}

// Len reports the number of stored keys (for tests and examples).
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.data)
}

// --- Counter ----------------------------------------------------------

// Counter is a deterministic monotonic counter; requests are "inc", "add N"
// or "read", responses the decimal value.
type Counter struct {
	mu sync.Mutex
	n  int64
}

var _ Service = (*Counter)(nil)

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Name implements Service.
func (c *Counter) Name() string { return "counter" }

// Deterministic implements Service.
func (c *Counter) Deterministic() bool { return true }

// ReadOnly implements ReadClassifier: "read" returns the count unchanged.
func (c *Counter) ReadOnly(req []byte) bool { return string(req) == "read" }

// Apply implements Service.
func (c *Counter) Apply(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := string(req)
	switch {
	case s == "inc":
		c.n++
	case s == "read":
	case len(s) > 4 && s[:4] == "add ":
		d, err := strconv.ParseInt(s[4:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		c.n += d
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadRequest, s)
	}
	return []byte(strconv.FormatInt(c.n, 10)), nil
}

// Snapshot implements Service.
func (c *Counter) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return []byte(strconv.FormatInt(c.n, 10)), nil
}

// Restore implements Service.
func (c *Counter) Restore(snapshot []byte) error {
	n, err := strconv.ParseInt(string(snapshot), 10, 64)
	if err != nil {
		return fmt.Errorf("service: restore counter: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = n
	return nil
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// --- Bank -------------------------------------------------------------

// BankRequest operates on accounts: op is "open", "deposit", "withdraw",
// "transfer" or "balance".
type BankRequest struct {
	Op     string `json:"op"`
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Amount int64  `json:"amount,omitempty"`
}

// BankResponse reports the outcome and resulting balance of From (when
// meaningful).
type BankResponse struct {
	OK      bool   `json:"ok"`
	Balance int64  `json:"balance"`
	Err     string `json:"err,omitempty"`
}

// Bank is a deterministic multi-account ledger with non-negative balances.
type Bank struct {
	mu       sync.Mutex
	accounts map[string]int64
}

var _ Service = (*Bank)(nil)

// NewBank returns a bank with no accounts.
func NewBank() *Bank {
	return &Bank{accounts: make(map[string]int64)}
}

// Name implements Service.
func (b *Bank) Name() string { return "bank" }

// Deterministic implements Service.
func (b *Bank) Deterministic() bool { return true }

// ReadOnly implements ReadClassifier: "balance" is the ledger's only pure
// read.
func (b *Bank) ReadOnly(req []byte) bool {
	var r BankRequest
	return json.Unmarshal(req, &r) == nil && r.Op == "balance"
}

// Apply implements Service.
func (b *Bank) Apply(req []byte) ([]byte, error) {
	var r BankRequest
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	resp := b.apply(r)
	return json.Marshal(resp)
}

func (b *Bank) apply(r BankRequest) BankResponse {
	fail := func(msg string) BankResponse { return BankResponse{Err: msg} }
	switch r.Op {
	case "open":
		if _, ok := b.accounts[r.From]; ok {
			return fail("account exists")
		}
		b.accounts[r.From] = 0
		return BankResponse{OK: true}
	case "deposit":
		if _, ok := b.accounts[r.From]; !ok {
			return fail("no such account")
		}
		if r.Amount < 0 {
			return fail("negative amount")
		}
		b.accounts[r.From] += r.Amount
		return BankResponse{OK: true, Balance: b.accounts[r.From]}
	case "withdraw":
		bal, ok := b.accounts[r.From]
		if !ok {
			return fail("no such account")
		}
		if r.Amount < 0 || bal < r.Amount {
			return fail("insufficient funds")
		}
		b.accounts[r.From] = bal - r.Amount
		return BankResponse{OK: true, Balance: b.accounts[r.From]}
	case "transfer":
		fromBal, ok := b.accounts[r.From]
		if !ok {
			return fail("no such account")
		}
		if _, ok := b.accounts[r.To]; !ok {
			return fail("no such destination")
		}
		if r.Amount < 0 || fromBal < r.Amount {
			return fail("insufficient funds")
		}
		b.accounts[r.From] -= r.Amount
		b.accounts[r.To] += r.Amount
		return BankResponse{OK: true, Balance: b.accounts[r.From]}
	case "balance":
		bal, ok := b.accounts[r.From]
		if !ok {
			return fail("no such account")
		}
		return BankResponse{OK: true, Balance: bal}
	default:
		return fail("unknown op " + r.Op)
	}
}

// TotalFunds returns the sum over all balances — conserved by transfers,
// used as a property-test invariant.
func (b *Bank) TotalFunds() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var sum int64
	for _, v := range b.accounts {
		sum += v
	}
	return sum
}

// Snapshot implements Service. Account order is canonicalized so identical
// states produce identical snapshots.
func (b *Bank) Snapshot() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.accounts))
	for k := range b.accounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type entry struct {
		Account string `json:"account"`
		Balance int64  `json:"balance"`
	}
	entries := make([]entry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, entry{Account: k, Balance: b.accounts[k]})
	}
	return json.Marshal(entries)
}

// Restore implements Service.
func (b *Bank) Restore(snapshot []byte) error {
	type entry struct {
		Account string `json:"account"`
		Balance int64  `json:"balance"`
	}
	var entries []entry
	if err := json.Unmarshal(snapshot, &entries); err != nil {
		return fmt.Errorf("service: restore bank: %w", err)
	}
	accounts := make(map[string]int64, len(entries))
	for _, e := range entries {
		accounts[e.Account] = e.Balance
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accounts = accounts
	return nil
}

// --- Nondeterministic wrapper -----------------------------------------

// Nondet wraps a service and injects per-execution nondeterminism (a random
// token folded into every response). A primary-backup system hosts it
// without trouble — only the primary executes, and backups receive state
// updates. An SMR system cannot: replicas executing the same request produce
// divergent responses, which the SMR engine's response voting detects. This
// realizes the paper's motivating example for why PB "can replicate any
// service" (§1).
type Nondet struct {
	inner Service
	mu    sync.Mutex
	rng   *xrand.RNG
}

var _ Service = (*Nondet)(nil)

// NewNondet wraps inner with nondeterminism drawn from rng.
func NewNondet(inner Service, rng *xrand.RNG) *Nondet {
	return &Nondet{inner: inner, rng: rng}
}

// Name implements Service.
func (n *Nondet) Name() string { return "nondet-" + n.inner.Name() }

// Deterministic implements Service.
func (n *Nondet) Deterministic() bool { return false }

// nondetEnvelope is the response format: the inner response plus the token.
type nondetEnvelope struct {
	Inner []byte `json:"inner"`
	Token uint64 `json:"token"`
}

// Apply implements Service.
func (n *Nondet) Apply(req []byte) ([]byte, error) {
	inner, err := n.inner.Apply(req)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	token := n.rng.Uint64()
	n.mu.Unlock()
	return json.Marshal(nondetEnvelope{Inner: inner, Token: token})
}

// Snapshot implements Service.
func (n *Nondet) Snapshot() ([]byte, error) { return n.inner.Snapshot() }

// Restore implements Service.
func (n *Nondet) Restore(snapshot []byte) error { return n.inner.Restore(snapshot) }
