package service

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

func kvReq(t *testing.T, op, key, val string) []byte {
	t.Helper()
	b, err := json.Marshal(KVRequest{Op: op, Key: key, Value: val})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func kvResp(t *testing.T, raw []byte) KVResponse {
	t.Helper()
	var r KVResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestKVPutGetDelete(t *testing.T) {
	kv := NewKV()
	if _, err := kv.Apply(kvReq(t, "put", "a", "1")); err != nil {
		t.Fatal(err)
	}
	got, err := kv.Apply(kvReq(t, "get", "a", ""))
	if err != nil {
		t.Fatal(err)
	}
	if r := kvResp(t, got); !r.Found || r.Value != "1" {
		t.Fatalf("get = %+v", r)
	}
	got, err = kv.Apply(kvReq(t, "delete", "a", ""))
	if err != nil {
		t.Fatal(err)
	}
	if r := kvResp(t, got); !r.Found {
		t.Fatalf("delete = %+v", r)
	}
	got, err = kv.Apply(kvReq(t, "get", "a", ""))
	if err != nil {
		t.Fatal(err)
	}
	if r := kvResp(t, got); r.Found {
		t.Fatal("deleted key still found")
	}
}

func TestKVBadRequests(t *testing.T) {
	kv := NewKV()
	if _, err := kv.Apply([]byte("{not json")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
	if _, err := kv.Apply(kvReq(t, "fly", "a", "")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
}

func TestKVSnapshotRestore(t *testing.T) {
	kv := NewKV()
	for _, k := range []string{"x", "y", "z"} {
		if _, err := kv.Apply(kvReq(t, "put", k, k+k)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := kv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewKV()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Apply(kvReq(t, "get", "y", ""))
	if err != nil {
		t.Fatal(err)
	}
	if r := kvResp(t, got); !r.Found || r.Value != "yy" {
		t.Fatalf("restored get = %+v", r)
	}
	if fresh.Len() != 3 {
		t.Fatalf("restored len = %d", fresh.Len())
	}
}

func TestKVRestoreRejectsGarbage(t *testing.T) {
	if err := NewKV().Restore([]byte("?")); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

func TestKVDeterministicReplay(t *testing.T) {
	// Same request sequence on two instances yields identical snapshots —
	// the DSM property SMR requires.
	a, b := NewKV(), NewKV()
	reqs := [][]byte{
		kvReq(t, "put", "k1", "v1"),
		kvReq(t, "put", "k2", "v2"),
		kvReq(t, "delete", "k1", ""),
		kvReq(t, "get", "k2", ""),
	}
	for _, r := range reqs {
		ra, err := a.Apply(r)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Apply(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(ra) != string(rb) {
			t.Fatalf("divergent responses: %s vs %s", ra, rb)
		}
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(sa) != string(sb) {
		t.Fatal("divergent snapshots after identical request sequence")
	}
	if !a.Deterministic() {
		t.Fatal("KV must report deterministic")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	if _, err := c.Apply([]byte("inc")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Apply([]byte("add 41"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "42" {
		t.Fatalf("counter = %s", got)
	}
	got, err = c.Apply([]byte("read"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "42" || c.Value() != 42 {
		t.Fatalf("read = %s, Value = %d", got, c.Value())
	}
}

func TestCounterBadRequests(t *testing.T) {
	c := NewCounter()
	for _, bad := range []string{"", "bump", "add x", "add"} {
		if _, err := c.Apply([]byte(bad)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%q: want ErrBadRequest, got %v", bad, err)
		}
	}
}

func TestCounterSnapshotRestore(t *testing.T) {
	c := NewCounter()
	if _, err := c.Apply([]byte("add 7")); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewCounter()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Value() != 7 {
		t.Fatalf("restored = %d", fresh.Value())
	}
	if err := fresh.Restore([]byte("NaN")); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

func bankReq(t *testing.T, r BankRequest) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func bankResp(t *testing.T, raw []byte) BankResponse {
	t.Helper()
	var r BankResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBankLifecycle(t *testing.T) {
	b := NewBank()
	steps := []struct {
		req    BankRequest
		wantOK bool
		bal    int64
	}{
		{BankRequest{Op: "open", From: "alice"}, true, 0},
		{BankRequest{Op: "open", From: "bob"}, true, 0},
		{BankRequest{Op: "deposit", From: "alice", Amount: 100}, true, 100},
		{BankRequest{Op: "transfer", From: "alice", To: "bob", Amount: 30}, true, 70},
		{BankRequest{Op: "withdraw", From: "bob", Amount: 10}, true, 20},
		{BankRequest{Op: "balance", From: "alice"}, true, 70},
	}
	for i, s := range steps {
		raw, err := b.Apply(bankReq(t, s.req))
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		r := bankResp(t, raw)
		if r.OK != s.wantOK {
			t.Fatalf("step %d: OK = %v (%s)", i, r.OK, r.Err)
		}
		if s.req.Op != "open" && r.Balance != s.bal {
			t.Fatalf("step %d: balance = %d, want %d", i, r.Balance, s.bal)
		}
	}
	if b.TotalFunds() != 90 {
		t.Fatalf("total = %d", b.TotalFunds())
	}
}

func TestBankRejections(t *testing.T) {
	b := NewBank()
	if _, err := b.Apply(bankReq(t, BankRequest{Op: "open", From: "a"})); err != nil {
		t.Fatal(err)
	}
	cases := []BankRequest{
		{Op: "open", From: "a"},                             // duplicate
		{Op: "deposit", From: "ghost", Amount: 1},           // no account
		{Op: "deposit", From: "a", Amount: -5},              // negative
		{Op: "withdraw", From: "a", Amount: 1},              // insufficient
		{Op: "transfer", From: "a", To: "ghost", Amount: 0}, // no destination
		{Op: "balance", From: "ghost"},                      // no account
		{Op: "explode"},                                     // unknown op
	}
	for i, c := range cases {
		raw, err := b.Apply(bankReq(t, c))
		if err != nil {
			t.Fatalf("case %d: transport error %v", i, err)
		}
		if r := bankResp(t, raw); r.OK {
			t.Fatalf("case %d (%+v) accepted", i, c)
		}
	}
}

func TestBankSnapshotCanonical(t *testing.T) {
	// Two banks reaching the same state via different routes must produce
	// identical snapshots (map-order independence).
	b1, b2 := NewBank(), NewBank()
	seq1 := []BankRequest{
		{Op: "open", From: "a"}, {Op: "open", From: "b"},
		{Op: "deposit", From: "a", Amount: 5},
	}
	seq2 := []BankRequest{
		{Op: "open", From: "b"}, {Op: "open", From: "a"},
		{Op: "deposit", From: "a", Amount: 5},
	}
	for _, r := range seq1 {
		if _, err := b1.Apply(bankReq(t, r)); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range seq2 {
		if _, err := b2.Apply(bankReq(t, r)); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := b1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Fatalf("non-canonical snapshots:\n%s\n%s", s1, s2)
	}
	fresh := NewBank()
	if err := fresh.Restore(s1); err != nil {
		t.Fatal(err)
	}
	if fresh.TotalFunds() != 5 {
		t.Fatalf("restored funds = %d", fresh.TotalFunds())
	}
}

// Property: transfers conserve total funds no matter the request sequence.
func TestBankConservationProperty(t *testing.T) {
	type step struct {
		FromIdx, ToIdx uint8
		Amount         int16
		Op             uint8
	}
	accounts := []string{"a", "b", "c", "d"}
	prop := func(steps []step) bool {
		b := NewBank()
		var deposited int64
		for _, acc := range accounts {
			if _, err := b.Apply([]byte(`{"op":"open","from":"` + acc + `"}`)); err != nil {
				return false
			}
		}
		for _, s := range steps {
			from := accounts[int(s.FromIdx)%len(accounts)]
			to := accounts[int(s.ToIdx)%len(accounts)]
			amt := int64(s.Amount)
			var r BankRequest
			switch s.Op % 3 {
			case 0:
				r = BankRequest{Op: "deposit", From: from, Amount: amt}
			case 1:
				r = BankRequest{Op: "withdraw", From: from, Amount: amt}
			case 2:
				r = BankRequest{Op: "transfer", From: from, To: to, Amount: amt}
			}
			raw, err := json.Marshal(r)
			if err != nil {
				return false
			}
			out, err := b.Apply(raw)
			if err != nil {
				return false
			}
			var resp BankResponse
			if err := json.Unmarshal(out, &resp); err != nil {
				return false
			}
			if resp.OK {
				switch r.Op {
				case "deposit":
					deposited += amt
				case "withdraw":
					deposited -= amt
				}
			}
		}
		return b.TotalFunds() == deposited
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNondetDiverges(t *testing.T) {
	// Two replicas of a nondeterministic service executing the same request
	// produce different responses — the reason SMR cannot host it.
	r := xrand.New(1)
	a := NewNondet(NewCounter(), r.Split())
	b := NewNondet(NewCounter(), r.Split())
	ra, err := a.Apply([]byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Apply([]byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) == string(rb) {
		t.Fatal("nondeterministic replicas agreed; wrapper is broken")
	}
	if a.Deterministic() {
		t.Fatal("Nondet reports deterministic")
	}
	if a.Name() != "nondet-counter" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestNondetStateStillTransfers(t *testing.T) {
	// Primary-backup hosts it fine: state transfers via Snapshot/Restore.
	r := xrand.New(2)
	primary := NewNondet(NewCounter(), r.Split())
	backup := NewNondet(NewCounter(), r.Split())
	if _, err := primary.Apply([]byte("add 9")); err != nil {
		t.Fatal(err)
	}
	snap, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := backup.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := backup.Apply([]byte("read"))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Inner []byte `json:"inner"`
	}
	if err := json.Unmarshal(got, &env); err != nil {
		t.Fatal(err)
	}
	if string(env.Inner) != "9" {
		t.Fatalf("backup state = %s", env.Inner)
	}
}

func TestNondetPropagatesErrors(t *testing.T) {
	n := NewNondet(NewCounter(), xrand.New(3))
	if _, err := n.Apply([]byte("bogus")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
}

// deltaStep applies one request and checks the DeltaCapable contract: the
// reported edit, spliced onto the previous snapshot, must be byte-identical
// to the service's own next snapshot — and that snapshot must match a
// from-scratch canonical re-encoding of the state.
func deltaStep(t *testing.T, svc Service, req []byte) {
	t.Helper()
	prev, err := svc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	prev = append([]byte(nil), prev...)
	_, _ = svc.Apply(req) // request-level errors are legal; state must not change then
	delta, ok := LastDeltaOf(svc)
	if !ok {
		t.Fatalf("service %s does not report deltas", svc.Name())
	}
	next, err := svc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var spliced []byte
	if delta.Unchanged {
		spliced = prev
	} else {
		if delta.PrefixLen < 0 || delta.SuffixLen < 0 || delta.PrefixLen+delta.SuffixLen > len(prev) {
			t.Fatalf("req %s: delta out of bounds: prefix=%d suffix=%d len(prev)=%d",
				req, delta.PrefixLen, delta.SuffixLen, len(prev))
		}
		spliced = spliceBytes(prev, delta.PrefixLen, delta.Patch, delta.SuffixLen)
	}
	if string(spliced) != string(next) {
		t.Fatalf("req %s: splice diverged from snapshot:\nprev    %s\nspliced %s\nsnap    %s",
			req, prev, spliced, next)
	}
}

// TestKVDeltaEquivalence drives randomized puts, deletes, gets and bad
// requests, checking every reported delta splices to the exact snapshot.
func TestKVDeltaEquivalence(t *testing.T) {
	kv := NewKV()
	rng := xrand.New(11)
	keys := []string{"a", "b", "κλειδί", `qu"ote`, "x\n<y>&", "", "zz"}
	for i := 0; i < 400; i++ {
		k := keys[rng.Intn(len(keys))]
		var req []byte
		switch rng.Intn(5) {
		case 0, 1:
			req = kvReq(t, "put", k, string(rune('A'+rng.Intn(26))))
		case 2:
			req = kvReq(t, "delete", k, "")
		case 3:
			req = kvReq(t, "get", k, "")
		default:
			req = []byte(`{"op":"nope"}`)
		}
		deltaStep(t, kv, req)
	}
	// The maintained snapshot must equal a from-scratch marshal of the map.
	snap, _ := kv.Snapshot()
	want, _ := json.Marshal(kv.data)
	if string(snap) != string(want) {
		t.Fatalf("cached snapshot %s != marshalled %s", snap, want)
	}
}

// TestBankDeltaEquivalence does the same over opens, deposits, withdrawals
// and transfers (including transfer-to-self and failing requests).
func TestBankDeltaEquivalence(t *testing.T) {
	b := NewBank()
	rng := xrand.New(13)
	accts := []string{"alice", "bob", "carol", "dave", "える"}
	for i := 0; i < 400; i++ {
		from := accts[rng.Intn(len(accts))]
		to := accts[rng.Intn(len(accts))]
		var r BankRequest
		switch rng.Intn(5) {
		case 0:
			r = BankRequest{Op: "open", From: from}
		case 1:
			r = BankRequest{Op: "deposit", From: from, Amount: int64(rng.Intn(100))}
		case 2:
			r = BankRequest{Op: "withdraw", From: from, Amount: int64(rng.Intn(120))}
		case 3:
			r = BankRequest{Op: "transfer", From: from, To: to, Amount: int64(rng.Intn(80))}
		default:
			r = BankRequest{Op: "balance", From: from}
		}
		req, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		deltaStep(t, b, req)
	}
	snap, _ := b.Snapshot()
	var entries []bankEntry
	if err := json.Unmarshal(snap, &entries); err != nil {
		t.Fatalf("cached snapshot is not valid: %v", err)
	}
	if len(entries) != len(b.accounts) {
		t.Fatalf("snapshot has %d entries, state has %d", len(entries), len(b.accounts))
	}
}

// TestCounterDeltaEquivalence covers the whole-value replacement deltas.
func TestCounterDeltaEquivalence(t *testing.T) {
	c := NewCounter()
	for _, req := range []string{"inc", "read", "add 41", "add -100", "inc", "bogus", "add 7"} {
		deltaStep(t, c, []byte(req))
	}
	if c.Value() != -50 {
		t.Fatalf("value = %d, want -50", c.Value())
	}
}

// TestDeltaSurvivesRestore pins the editor re-canonicalization: a service
// restored from a snapshot keeps reporting correct deltas afterwards.
func TestDeltaSurvivesRestore(t *testing.T) {
	kv := NewKV()
	for _, k := range []string{"b", "a", "c"} {
		if _, err := kv.Apply(kvReq(t, "put", k, "v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := kv.Snapshot()
	fresh := NewKV()
	if err := fresh.Restore(append([]byte(nil), snap...)); err != nil {
		t.Fatal(err)
	}
	deltaStep(t, fresh, kvReq(t, "put", "ab", "new"))
	deltaStep(t, fresh, kvReq(t, "delete", "b", ""))
	got, _ := fresh.Snapshot()
	want, _ := json.Marshal(fresh.data)
	if string(got) != string(want) {
		t.Fatalf("post-restore snapshot %s != marshalled %s", got, want)
	}
}
