// Package stats provides the summary statistics used to report Monte-Carlo
// lifetime estimates: streaming mean/variance, normal confidence intervals
// and simple fixed-width histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that need at least one observation.
var ErrEmpty = errors.New("stats: no observations")

// Accumulator computes streaming mean and variance with Welford's algorithm,
// avoiding the catastrophic cancellation of the naive sum-of-squares method.
//
// The zero value is ready to use.
type Accumulator struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Merge folds another accumulator into a, as if every observation recorded
// by other had been Added to a. It uses the Chan et al. pairwise combination
// of counts, means and M2 sums, which is numerically stable for shards of
// any relative size. Merging is deterministic: folding the same shards in
// the same order always yields bit-identical state, which is what lets the
// parallel Monte-Carlo engine reproduce results independently of worker
// count.
func (a *Accumulator) Merge(other Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = other
		return
	}
	n := a.n + other.n
	delta := other.mean - a.mean
	a.mean += delta * float64(other.n) / float64(n)
	a.m2 += other.m2 + delta*delta*float64(a.n)*float64(other.n)/float64(n)
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.n = n
}

// N returns the number of observations recorded.
func (a *Accumulator) N() uint64 { return a.n }

// Mean returns the sample mean, or 0 if no observations were recorded.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation, or 0 if none were recorded.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 if none were recorded.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance. It returns 0 for fewer than
// two observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Summary is an immutable snapshot of an Accumulator together with a normal
// 95% confidence half-width for the mean.
type Summary struct {
	N      uint64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval for the mean: 1.96 * stddev / sqrt(n).
	CI95 float64
}

// Summarize snapshots the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{
		N:      a.n,
		Mean:   a.mean,
		StdDev: a.StdDev(),
		Min:    a.min,
		Max:    a.max,
		CI95:   1.96 * a.StdErr(),
	}
}

// String formats the summary as "mean ± ci (n=...)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.3g (n=%d)", s.Mean, s.CI95, s.N)
}

// Overlaps reports whether the 95% confidence intervals of s and t intersect.
// It is the comparison used when cross-checking Monte-Carlo estimates against
// analytic values with an extra tolerance factor.
func (s Summary) Overlaps(t Summary) bool {
	loS, hiS := s.Mean-s.CI95, s.Mean+s.CI95
	loT, hiT := t.Mean-t.CI95, t.Mean+t.CI95
	return loS <= hiT && loT <= hiS
}

// Contains reports whether v lies within the 95% confidence interval widened
// by the multiplicative factor slack (slack = 1 means the plain interval).
func (s Summary) Contains(v, slack float64) bool {
	hw := s.CI95 * slack
	return v >= s.Mean-hw && v <= s.Mean+hw
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean(), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram is a fixed-width histogram over [Lo, Hi); out-of-range samples
// are clamped into the edge buckets so no observation is lost.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	total   uint64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bucket count, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// BucketRange returns the [lo, hi) span of bucket i.
func (h *Histogram) BucketRange(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}
