package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 3 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if math.Abs(a.Variance()-2.5) > 1e-12 {
		t.Fatalf("Variance = %v, want 2.5", a.Variance())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(7)
	if a.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", a.Variance())
	}
	if a.Min() != 7 || a.Max() != 7 {
		t.Fatal("single-sample min/max wrong")
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Constrain to a sane range to keep the naive formula stable.
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(xs)-1)
		scale := math.Max(1, naive)
		return math.Abs(a.Variance()-naive) < 1e-6*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryCI(t *testing.T) {
	var a Accumulator
	r := xrand.New(99)
	for i := 0; i < 10000; i++ {
		a.Add(r.Float64())
	}
	s := a.Summarize()
	if !s.Contains(0.5, 3) {
		t.Fatalf("uniform mean CI %v does not contain 0.5", s)
	}
	if s.CI95 <= 0 {
		t.Fatal("CI95 should be positive")
	}
}

func TestSummaryOverlaps(t *testing.T) {
	a := Summary{Mean: 10, CI95: 2}
	b := Summary{Mean: 11, CI95: 0.5}
	c := Summary{Mean: 20, CI95: 1}
	if !a.Overlaps(b) {
		t.Fatal("expected a and b to overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("expected a and c to be disjoint")
	}
	if !a.Overlaps(a) {
		t.Fatal("summary must overlap itself")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 1.5, CI95: 0.25, N: 10}
	if got := s.String(); got == "" {
		t.Fatal("empty summary string")
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{2, 4, 6})
	if err != nil || m != 4 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("want error for q < 0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("want error for q > 1")
	}
}

func TestQuantileSingle(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Fatalf("Quantile single = %v, %v", got, err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 9.99, -5, 100} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Buckets[0] != 3 { // 0, 1.9, clamped -5
		t.Fatalf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.99, clamped 100
		t.Fatalf("bucket 4 = %d, want 2", h.Buckets[4])
	}
	lo, hi := h.BucketRange(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BucketRange(1) = [%v, %v)", lo, hi)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("want error for zero buckets")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("want error for lo == hi")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Fatal("want error for lo > hi")
	}
}

func TestAccumulatorMinMaxOrderProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		var a Accumulator
		ok := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Constrain magnitude so the incremental mean cannot lose the
			// min <= mean <= max invariant to floating-point rounding.
			a.Add(math.Mod(x, 1e9))
			ok++
		}
		if ok == 0 {
			return true
		}
		tol := 1e-6 * (math.Abs(a.Min()) + math.Abs(a.Max()) + 1)
		return a.Min() <= a.Mean()+tol && a.Mean() <= a.Max()+tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
