package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 3 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if math.Abs(a.Variance()-2.5) > 1e-12 {
		t.Fatalf("Variance = %v, want 2.5", a.Variance())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(7)
	if a.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", a.Variance())
	}
	if a.Min() != 7 || a.Max() != 7 {
		t.Fatal("single-sample min/max wrong")
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Constrain to a sane range to keep the naive formula stable.
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(xs)-1)
		scale := math.Max(1, naive)
		return math.Abs(a.Variance()-naive) < 1e-6*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryCI(t *testing.T) {
	var a Accumulator
	r := xrand.New(99)
	for i := 0; i < 10000; i++ {
		a.Add(r.Float64())
	}
	s := a.Summarize()
	if !s.Contains(0.5, 3) {
		t.Fatalf("uniform mean CI %v does not contain 0.5", s)
	}
	if s.CI95 <= 0 {
		t.Fatal("CI95 should be positive")
	}
}

func TestSummaryOverlaps(t *testing.T) {
	a := Summary{Mean: 10, CI95: 2}
	b := Summary{Mean: 11, CI95: 0.5}
	c := Summary{Mean: 20, CI95: 1}
	if !a.Overlaps(b) {
		t.Fatal("expected a and b to overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("expected a and c to be disjoint")
	}
	if !a.Overlaps(a) {
		t.Fatal("summary must overlap itself")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 1.5, CI95: 0.25, N: 10}
	if got := s.String(); got == "" {
		t.Fatal("empty summary string")
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{2, 4, 6})
	if err != nil || m != 4 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("want error for q < 0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("want error for q > 1")
	}
}

func TestQuantileSingle(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Fatalf("Quantile single = %v, %v", got, err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 9.99, -5, 100} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Buckets[0] != 3 { // 0, 1.9, clamped -5
		t.Fatalf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.99, clamped 100
		t.Fatalf("bucket 4 = %d, want 2", h.Buckets[4])
	}
	lo, hi := h.BucketRange(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BucketRange(1) = [%v, %v)", lo, hi)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("want error for zero buckets")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("want error for lo == hi")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Fatal("want error for lo > hi")
	}
}

func TestAccumulatorMinMaxOrderProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		var a Accumulator
		ok := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Constrain magnitude so the incremental mean cannot lose the
			// min <= mean <= max invariant to floating-point rounding.
			a.Add(math.Mod(x, 1e9))
			ok++
		}
		if ok == 0 {
			return true
		}
		tol := 1e-6 * (math.Abs(a.Min()) + math.Abs(a.Max()) + 1)
		return a.Min() <= a.Mean()+tol && a.Mean() <= a.Max()+tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeMatchesSequentialProperty: splitting a random observation
// sequence at random points, accumulating each chunk independently and
// folding the chunks with Merge must agree with one sequential pass — N,
// Min and Max exactly, mean and variance to floating-point accuracy. This
// is the reduction the parallel Monte-Carlo engine relies on.
func TestMergeMatchesSequentialProperty(t *testing.T) {
	rng := xrand.New(90210)
	prop := func(seed uint64, nRaw, cutsRaw uint16) bool {
		n := int(nRaw%2000) + 2
		r := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*2000 - 1000
		}

		var sequential Accumulator
		for _, x := range xs {
			sequential.Add(x)
		}

		// Split into 1 + cuts chunks at random boundaries (possibly empty).
		chunks := int(cutsRaw%8) + 1
		var merged Accumulator
		start := 0
		for c := 0; c < chunks; c++ {
			end := n
			if c < chunks-1 {
				end = start + rng.Intn(n-start+1)
			}
			var part Accumulator
			for _, x := range xs[start:end] {
				part.Add(x)
			}
			merged.Merge(part)
			start = end
		}

		if merged.N() != sequential.N() {
			t.Logf("N: merged %d vs sequential %d", merged.N(), sequential.N())
			return false
		}
		if merged.Min() != sequential.Min() || merged.Max() != sequential.Max() {
			t.Logf("min/max: merged %v/%v vs %v/%v",
				merged.Min(), merged.Max(), sequential.Min(), sequential.Max())
			return false
		}
		if !nearlyEqual(merged.Mean(), sequential.Mean(), 1e-9) {
			t.Logf("mean: merged %v vs sequential %v", merged.Mean(), sequential.Mean())
			return false
		}
		if !nearlyEqual(merged.Variance(), sequential.Variance(), 1e-9) {
			t.Logf("variance: merged %v vs sequential %v", merged.Variance(), sequential.Variance())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// nearlyEqual compares with relative tolerance (absolute near zero).
func nearlyEqual(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

func TestMergeEmptyAndZeroValue(t *testing.T) {
	var a, b Accumulator
	a.Merge(b) // zero into zero: still empty
	if a.N() != 0 {
		t.Fatalf("N = %d after empty merge", a.N())
	}
	b.Add(4)
	b.Add(8)
	a.Merge(b) // into zero value: adopts b wholesale
	if a.N() != 2 || a.Mean() != 6 || a.Min() != 4 || a.Max() != 8 {
		t.Fatalf("merge into zero value: %+v", a.Summarize())
	}
	before := a.Summarize()
	a.Merge(Accumulator{}) // empty into populated: no-op
	if a.Summarize() != before {
		t.Fatalf("empty merge changed state: %+v vs %+v", a.Summarize(), before)
	}
}

// TestMergeDeterministicOrder: folding the same shards in the same order is
// bit-identical, run to run — the property the worker pool leans on.
func TestMergeDeterministicOrder(t *testing.T) {
	build := func() Summary {
		rng := xrand.New(5)
		var merged Accumulator
		for s := 0; s < 16; s++ {
			var part Accumulator
			for i := 0; i < 100; i++ {
				part.Add(rng.Float64() * 100)
			}
			merged.Merge(part)
		}
		return merged.Summarize()
	}
	if build() != build() {
		t.Fatal("same shard fold produced different state")
	}
}
