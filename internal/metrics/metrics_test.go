package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHotPathAllocationFree pins the zero-alloc contract on every hot-path
// operation, the way store.Mem pins its no-op paths: instrumented hot loops
// (outbox staging, update execution, WAL appends) must not gain a per-op
// allocation from observability.
func TestHotPathAllocationFree(t *testing.T) {
	r := New()
	c := r.Counter("test_ops_total", Stable)
	g := r.Gauge("test_depth")
	h := r.Histogram("test_latency_ns", DefaultLatencyBuckets)
	ring := r.Ring("node-0", 16)
	ops := map[string]func(){
		"counter.Inc": func() { c.Inc() },
		"counter.Add": func() { c.Add(3) },
		"gauge.Set":   func() { g.Set(42) },
		"gauge.Add":   func() { g.Add(-1) },
		"histogram.Observe": func() {
			h.Observe(12_345)
		},
		"ring.Record": func() { ring.Record(KindCrash, "node-0", 1, 7) },
	}
	for name, op := range ops {
		if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestNilRegistrySafe: a nil registry hands out nil instruments and every
// operation on them is a no-op — disabled deployments pay one predictable
// branch, no conditionals at call sites.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", Stable)
	g := r.Gauge("y")
	h := r.Histogram("z", DefaultLatencyBuckets)
	ring := r.Ring("n", 8)
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	ring.Record(KindCrash, "n", 0, 0)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || ring.Total() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Timing)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("same", Stable)
	b := r.Counter("same", Timing) // original class wins
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	s := r.Snapshot()
	if s.Counters["same"] != 1 {
		t.Fatalf("counter registered Stable must snapshot into Counters, got %+v", s)
	}
	if r.Gauge("g") != r.Gauge("g") || r.Histogram("h", nil) != r.Histogram("h", nil) {
		t.Fatal("gauges and histograms must be idempotent too")
	}
	if r.Ring("n", 4) != r.Ring("n", 8) {
		t.Fatal("rings must be idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 1000, 1001, 5_000_000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []uint64{2, 1, 1, 2} // <=10: {5,10}; <=100: {11}; <=1000: {1000}; +Inf: {1001, 5e6}
	if len(s.Counts) != len(want) {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
}

// TestTraceRingWraparound fills a small ring far past capacity and checks
// the oldest events are evicted strictly in order, append stays O(1) and
// allocation-free, and the retained window is exactly the last cap events.
func TestTraceRingWraparound(t *testing.T) {
	const cap = 8
	ring := NewTraceRing(cap)
	for seq := uint64(0); seq < 3*cap+5; seq++ {
		ring.Record(KindRestart, "n", int(seq%3), seq)
	}
	events := ring.Events()
	if len(events) != cap {
		t.Fatalf("retained %d events, want %d", len(events), cap)
	}
	first := uint64(3*cap + 5 - cap)
	for i, e := range events {
		if e.Seq != first+uint64(i) {
			t.Fatalf("event %d has seq %d, want %d (oldest must evict in order)", i, e.Seq, first+uint64(i))
		}
	}
	if got := ring.Total(); got != 3*cap+5 {
		t.Fatalf("total = %d, want %d", got, 3*cap+5)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		ring.Record(KindCrash, "n", 0, 1)
	}); allocs != 0 {
		t.Fatalf("wrapped ring append allocates %v/op, want 0", allocs)
	}
}

func TestSnapshotMergeSumsCountersInOrder(t *testing.T) {
	mk := func(n uint64) Snapshot {
		r := New()
		r.Counter("c_total", Stable).Add(n)
		r.Counter("t_total", Timing).Add(2 * n)
		r.Gauge("depth").Set(int64(n))
		r.Histogram("lat", []uint64{10}).Observe(n)
		r.Ring("node", 4).Record(KindCrash, "node", -1, n)
		return r.Snapshot()
	}
	agg := mk(1)
	agg.Merge(mk(2), "rep1/")
	agg.Merge(mk(3), "rep2/")
	if agg.Counters["c_total"] != 6 || agg.Timing["t_total"] != 12 {
		t.Fatalf("merged counters wrong: %+v", agg)
	}
	if agg.Gauges["depth"] != 3 {
		t.Fatalf("merged gauge = %d, want max 3", agg.Gauges["depth"])
	}
	if agg.Histograms["lat"].Count != 3 {
		t.Fatalf("merged histogram count = %d, want 3", agg.Histograms["lat"].Count)
	}
	if len(agg.Traces["node"]) != 1 || len(agg.Traces["rep1/node"]) != 1 || len(agg.Traces["rep2/node"]) != 1 {
		t.Fatalf("merged traces wrong: %v", sortedKeys(agg.Traces))
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := New()
	r.Counter("proxy_requests_total", Stable).Add(7)
	r.Counter(`pb_deltas_total{node="server-0"}`, Timing).Add(3)
	r.Gauge(`pb_window_depth{node="server-0"}`).Set(5)
	r.Histogram("store_fsync_ns", []uint64{1000, 2000}).Observe(1500)
	var buf bytes.Buffer
	r.Snapshot().WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE proxy_requests_total counter",
		"proxy_requests_total 7",
		`pb_deltas_total{node="server-0"} 3`,
		`pb_window_depth{node="server-0"} 5`,
		`store_fsync_ns_bucket{le="1000"} 0`,
		`store_fsync_ns_bucket{le="2000"} 1`,
		`store_fsync_ns_bucket{le="+Inf"} 1`,
		"store_fsync_ns_sum 1500",
		"store_fsync_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotJSONDeterministic: two snapshots of identical registries
// marshal to identical bytes — what lets the workers-{1,2,8} metrics-out
// comparison diff raw JSON sections.
func TestSnapshotJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		r := New()
		for _, n := range []string{"b_total", "a_total", "c_total"} {
			r.Counter(n, Stable).Add(9)
		}
		b, err := json.Marshal(r.Snapshot().Counters)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("equal registries must marshal to equal bytes")
	}
}

func TestDashboardRendering(t *testing.T) {
	r := New()
	r.Counter("campaign_steps_total", Stable).Add(40)
	r.Gauge("depth").Set(2)
	r.Ring("server-0", 4).Record(KindLeaseGrant, "server-0", 1, 12)
	var buf bytes.Buffer
	r.Snapshot().WriteDashboard(&buf)
	out := buf.String()
	for _, want := range []string{"campaign_steps_total", "lease-grant", "server-0", "gauges"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkMetricsHotPath is recorded by scripts/bench.sh: the cost of the
// two operations instrumented code pays per hot-path event. Both must run
// at 0 allocs/op — asserted here, not just reported, so a regression fails
// the suite rather than only nudging a bench column.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := New()
	c := r.Counter("bench_ops_total", Timing)
	h := r.Histogram("bench_latency_ns", DefaultLatencyBuckets)
	b.Run("counter-inc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i) & 0xfffff)
		}
	})
	if allocs := testing.AllocsPerRun(100, func() { c.Inc(); h.Observe(99) }); allocs != 0 {
		b.Fatalf("metrics hot path allocates %v/op, want 0", allocs)
	}
}
