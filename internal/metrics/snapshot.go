package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Snapshot is a registry's state at one instant, partitioned for
// determinism comparisons: Counters holds Stable-class counters (identical
// across workers for the same seeded repetition), everything else is
// wall-clock shaped. It marshals directly to JSON (encoding/json sorts map
// keys, so equal snapshots produce equal bytes).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Timing     map[string]uint64            `json:"timing"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Traces     map[string][]Event           `json:"traces,omitempty"`
}

// Merge folds other into s: counters and histogram buckets sum (counter
// sums are order-independent, so merging per-repetition snapshots in
// repetition order is deterministic for the stable section), gauges keep
// the maximum (the peak across repetitions), and traces concatenate under
// the other snapshot's ring names prefixed with prefix (pass "" to merge
// same-named rings by concatenation).
func (s *Snapshot) Merge(other Snapshot, prefix string) {
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Timing {
		s.Timing[k] += v
	}
	for k, v := range other.Gauges {
		if cur, ok := s.Gauges[k]; !ok || v > cur {
			s.Gauges[k] = v
		}
	}
	for k, v := range other.Histograms {
		cur, ok := s.Histograms[k]
		if !ok {
			s.Histograms[k] = v
			continue
		}
		if len(cur.Counts) == len(v.Counts) {
			for i := range cur.Counts {
				cur.Counts[i] += v.Counts[i]
			}
			cur.Sum += v.Sum
			cur.Count += v.Count
			s.Histograms[k] = cur
		}
	}
	for k, v := range other.Traces {
		s.Traces[prefix+k] = append(s.Traces[prefix+k], v...)
	}
}

// splitName separates a `base{label="v"}` instrument name into its base and
// the label list (without braces); labels is "" when the name has none.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promLine renders one `base{labels,extra} value` exposition line.
func promLine(w io.Writer, name, extra string, value any) {
	base, labels := splitName(name)
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %v\n", base, value)
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %v\n", base, extra, value)
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %v\n", base, labels, value)
	default:
		fmt.Fprintf(w, "%s{%s,%s} %v\n", base, labels, extra, value)
	}
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters (both classes) as counters, gauges as
// gauges, histograms as cumulative `_bucket`/`_sum`/`_count` families.
// Traces are not exported — scrape the JSON status for those.
func (s Snapshot) WritePrometheus(w io.Writer) {
	typed := map[string]bool{}
	writeType := func(name, kind string) {
		base, _ := splitName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		writeType(name, "counter")
		promLine(w, name, "", s.Counters[name])
	}
	for _, name := range sortedKeys(s.Timing) {
		writeType(name, "counter")
		promLine(w, name, "", s.Timing[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		writeType(name, "gauge")
		promLine(w, name, "", s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		writeType(name, "histogram")
		base, labels := splitName(name)
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			bucketName := base + "_bucket"
			if labels != "" {
				bucketName += "{" + labels + "}"
			}
			promLine(w, bucketName, fmt.Sprintf("le=%q", le), cum)
		}
		promLine(w, base+"_sum"+labelSuffix(labels), "", h.Sum)
		promLine(w, base+"_count"+labelSuffix(labels), "", h.Count)
	}
}

func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WriteDashboard renders the snapshot as an aligned plain-text dashboard:
// stable counters, timing counters, gauges, histogram summaries, and the
// tail of every trace ring.
func (s Snapshot) WriteDashboard(w io.Writer) {
	section := func(title string) { fmt.Fprintf(w, "== %s ==\n", title) }
	if len(s.Counters) > 0 {
		section("counters (deterministic)")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-64s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Timing) > 0 {
		section("counters (timing)")
		for _, name := range sortedKeys(s.Timing) {
			fmt.Fprintf(w, "  %-64s %d\n", name, s.Timing[name])
		}
	}
	if len(s.Gauges) > 0 {
		section("gauges")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-64s %d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		section("histograms")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			mean := uint64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(w, "  %-64s count=%d mean=%dns\n", name, h.Count, mean)
		}
	}
	if len(s.Traces) > 0 {
		section("trace tails (last 8)")
		for _, name := range sortedKeys(s.Traces) {
			events := s.Traces[name]
			if len(events) == 0 {
				continue
			}
			tail := events
			if len(tail) > 8 {
				tail = tail[len(tail)-8:]
			}
			fmt.Fprintf(w, "  %s:\n", name)
			for _, e := range tail {
				fmt.Fprintf(w, "    %-18s peer=%-3d seq=%d\n", e.Kind, e.Peer, e.Seq)
			}
		}
	}
}
