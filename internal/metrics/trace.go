package metrics

import (
	"sync"
	"time"
)

// Event kinds. Constant strings so appending an event never allocates;
// layers add their own kinds freely, these are the ones the stack emits.
const (
	KindCatchupStart    = "catchup-start"    // smr: gap detected, request sent
	KindCatchupReplay   = "catchup-replay"   // smr: log-suffix replay applied
	KindCatchupSnapshot = "catchup-snapshot" // smr: frontier snapshot installed
	KindResyncGap       = "resync-gap"       // pb backup: sequence gap nack
	KindResyncDiverged  = "resync-diverged"  // pb backup: base-hash divergence nack
	KindResyncStream    = "resync-stream"    // pb backup: cross-stream anchor needed
	KindResyncStall     = "resync-stall"     // pb primary: ack-stall detector fired
	KindLeaseGrant      = "lease-grant"      // smr: lease grant accepted
	KindLeaseExpiry     = "lease-expiry"     // smr: valid lease observed expired
	KindCrash           = "crash"            // fortress: server/proxy crashed
	KindRestart         = "restart"          // fortress: server/proxy restarted
	KindPowerFail       = "power-fail"       // fortress: whole-cluster blackout
	KindWALStall        = "wal-stall"        // store: disk-stall injection toggled
)

// Event is one trace-ring entry. All fields are value types and Kind/Node
// are expected to be constant (or long-lived) strings, so recording an
// event allocates nothing.
type Event struct {
	// Time is the wall-clock instant the event was recorded (UnixNano).
	// Wall time is Timing-class information: determinism comparisons never
	// look at traces.
	Time int64 `json:"time"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Node names the emitting node (its address).
	Node string `json:"node"`
	// Peer is the other party's index, when one exists; -1 otherwise.
	Peer int `json:"peer"`
	// Seq is the protocol sequence number the event is about, when one
	// exists.
	Seq uint64 `json:"seq"`
}

// DefaultRingCapacity is the per-node trace ring size when none is given.
const DefaultRingCapacity = 256

// TraceRing is a bounded ring of trace events with O(1) append: once full,
// each append evicts the oldest event. Append takes a mutex (events are
// rare — node-lifecycle and resync transitions, not per-message traffic)
// but never allocates after construction.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // index the next event lands in
	total uint64 // events ever appended
}

// NewTraceRing creates a ring holding the last capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &TraceRing{buf: make([]Event, capacity)}
}

// Record appends an event stamped now. Nil-receiver-safe.
func (t *TraceRing) Record(kind, node string, peer int, seq uint64) {
	if t == nil {
		return
	}
	e := Event{Time: time.Now().UnixNano(), Kind: kind, Node: node, Peer: peer, Seq: seq}
	t.mu.Lock()
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many events have ever been recorded (including evicted
// ones); 0 on nil.
func (t *TraceRing) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first.
func (t *TraceRing) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > uint64(len(t.buf)) {
		n = uint64(len(t.buf))
	}
	out := make([]Event, 0, n)
	// At exactly capacity events next has wrapped to 0, so the buffer-tail
	// copy must run from total == len(buf) onward, not only past it.
	if t.total >= uint64(len(t.buf)) {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}
