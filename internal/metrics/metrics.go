// Package metrics is the repo's dependency-free runtime instrumentation
// layer: a registry of lock-free counters, gauges and fixed-bucket latency
// histograms whose hot-path operations (Inc, Add, Set, Observe) are
// allocation-free and safe for concurrent use, plus a bounded per-node
// trace-event ring (see trace.go) for the rare, interesting transitions —
// catch-up, resync, lease churn, crash/restart, WAL stalls.
//
// Metrics are strictly observational: nothing in the protocol, scheduling
// or fault-injection paths ever reads an instrument back, so instrumenting
// a deployment cannot perturb the deterministic campaign results the sweep
// CSVs pin at workers {1,2,8}.
//
// # Determinism partition
//
// Instruments are registered in one of two classes:
//
//   - Stable: counters whose value is a pure function of the deterministic
//     request/fault stream — campaign steps probed, the read/write mix,
//     availability numerators, fault events fired, proxy request mix. A
//     repetition's stable counters are bit-identical at any worker count,
//     and snapshots assert on them.
//   - Timing: everything driven by wall-clock goroutine interleaving —
//     heartbeat-paced flushes, ack frontiers, nack/resync causes, fsync
//     latency, drop sampling on pairs that also carry heartbeats. Reported
//     for operators, excluded from determinism comparisons.
//
// Gauges and histograms are always Timing: a gauge is last-write-wins and a
// latency histogram is wall time by definition.
//
// Handles are looked up once at construction time (Registry.Counter et al.
// take a lock and may allocate); hot paths hold the returned pointer. All
// registry lookups are idempotent — the same name returns the same
// instrument — so re-built replicas (fortress epochs) keep accumulating
// into the counters their predecessors registered. A nil *Registry is a
// valid no-op registry: it hands out nil instruments, and every instrument
// method is nil-receiver-safe, so call sites need no "metrics enabled?"
// branches.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Class partitions instruments for determinism comparisons. See the package
// comment.
type Class int

const (
	// Timing marks an instrument whose value depends on wall-clock
	// interleaving. The zero value, so it is also the safe default.
	Timing Class = iota
	// Stable marks a counter that is a pure function of the deterministic
	// request/fault stream: identical across repetitions of the same seed
	// at any worker count.
	Stable
)

// Counter is a monotonically increasing uint64. Inc and Add are lock-free
// and allocation-free; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value; 0 on a nil counter.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (queue depth, window occupancy, ack frontier).
// Always Timing class: last-write-wins has no deterministic meaning.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value; 0 on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// maxHistogramBuckets bounds a histogram's finite bucket list; one overflow
// bucket is always appended. Fixed so the counts array can live inline in
// the Histogram without a per-observation indirection.
const maxHistogramBuckets = 16

// DefaultLatencyBuckets is the standard latency bucket ladder, in
// nanoseconds: 1µs to 1s, one decade per bucket.
var DefaultLatencyBuckets = []uint64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
}

// Histogram is a fixed-bucket histogram of uint64 observations (typically
// latencies in nanoseconds). Observe is lock-free and allocation-free: a
// short linear scan over the bounds, then three atomic adds. Always Timing
// class.
type Histogram struct {
	bounds [maxHistogramBuckets]uint64 // upper bounds, ascending
	nb     int                         // finite buckets in use
	counts [maxHistogramBuckets + 1]atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
}

// Observe records one value: the first bucket whose bound is >= v, or the
// overflow bucket.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < h.nb && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns how many observations have been recorded; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds; Counts has one extra
	// trailing element for the overflow bucket. Counts are per-bucket, not
	// cumulative.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Registry holds a deployment's instruments. All methods are safe for
// concurrent use; a nil *Registry is a valid disabled registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*registeredCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	rings    map[string]*TraceRing
}

type registeredCounter struct {
	c     Counter
	class Class
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*registeredCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rings:    make(map[string]*TraceRing),
	}
}

// Counter returns the counter registered under name, creating it with the
// given class on first use. Names follow Prometheus conventions, with an
// optional `{label="value",...}` suffix (e.g.
// `pb_deltas_total{node="server-0"}`). Registering an existing name returns
// the existing counter; the original class wins.
func (r *Registry) Counter(name string, class Class) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rc, ok := r.counters[name]
	if !ok {
		rc = &registeredCounter{class: class}
		r.counters[name] = rc
	}
	return &rc.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given finite bucket bounds (ascending; at most maxHistogramBuckets,
// excess bounds are dropped) on first use. Pass DefaultLatencyBuckets for
// latencies in nanoseconds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		if len(bounds) > maxHistogramBuckets {
			bounds = bounds[:maxHistogramBuckets]
		}
		h.nb = copy(h.bounds[:], bounds)
		r.hists[name] = h
	}
	return h
}

// Ring returns the trace-event ring registered under name (conventionally
// the node's address), creating it with the given capacity on first use.
// Capacity <= 0 selects DefaultRingCapacity.
func (r *Registry) Ring(name string, capacity int) *TraceRing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tr, ok := r.rings[name]
	if !ok {
		tr = NewTraceRing(capacity)
		r.rings[name] = tr
	}
	return tr
}

// Snapshot captures every instrument's current value. Counters land in
// Counters (Stable class) or Timing; map iteration order does not matter —
// renderers sort, and encoding/json sorts map keys — so snapshots of equal
// registries compare equal.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Timing:     map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Traces:     map[string][]Event{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, rc := range r.counters {
		if rc.class == Stable {
			s.Counters[name] = rc.c.Load()
		} else {
			s.Timing[name] = rc.c.Load()
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]uint64(nil), h.bounds[:h.nb]...),
			Counts: make([]uint64, h.nb+1),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range hs.Counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	for name, tr := range r.rings {
		s.Traces[name] = tr.Events()
	}
	return s
}

// sortedKeys returns m's keys in ascending order — renderers and tests need
// a deterministic walk.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
