package model

import "sync"

// Memoization for the analytic hot spots (the ROADMAP "analytic-EL caching"
// item): the hypergeometric reductions behind the SO survival sums and the
// PO per-step compromise probabilities are exact functions of small integer
// and float parameter tuples, yet sweeps, the ordering chain and benchmark
// loops revisit the same tuples over and over. Each cache below is keyed on
// the complete input tuple and stores the float64 a fresh computation would
// produce, bit for bit — memoization can therefore never change a result,
// only skip recomputation, and analytic-only sweeps (`fig1 -trials 0`)
// become O(grid) lookups after first touch.
//
// hypergeomPMFWindow needs no cache of its own: its only caller is
// soSurvivalEL, whose result (the whole O(χ/ω · f) summation) is cached
// here, which is both a bigger win and a smaller table than caching the
// individual window PMFs would be.
//
// The caches are sync.Maps because sweep cells run concurrently on the
// parallel engine's worker pool; a racing first computation stores the same
// bits twice, which is benign. Keys per process are bounded by the distinct
// parameter points visited — a few hundred for the largest sweeps — so the
// tables never need eviction.

// soELKey identifies one soSurvivalEL computation: tier of k keys, failure
// threshold f, probed ω per step out of χ candidates.
type soELKey struct {
	chi, omega uint64
	k, f       int
}

var soELCache sync.Map // soELKey → float64

// soSurvivalELCached memoizes soSurvivalEL on (χ, ω, k, f).
func soSurvivalELCached(chi uint64, k, f int, omega uint64) (float64, error) {
	key := soELKey{chi: chi, omega: omega, k: k, f: f}
	if v, ok := soELCache.Load(key); ok {
		return v.(float64), nil
	}
	el, err := soSurvivalEL(chi, k, f, omega)
	if err != nil {
		return 0, err
	}
	soELCache.Store(key, el)
	return el, nil
}

// tailKey identifies one hypergeometric tail P(X ≥ k) for
// X ~ Hypergeometric(N, K, n).
type tailKey struct {
	n, special, draws uint64
	threshold         int
}

var tailCache sync.Map // tailKey → float64

// hypergeomTailCached memoizes hypergeomTail on its full argument tuple.
func hypergeomTailCached(N, K, n uint64, k int) (float64, error) {
	key := tailKey{n: N, special: K, draws: n, threshold: k}
	if v, ok := tailCache.Load(key); ok {
		return v.(float64), nil
	}
	tail, err := hypergeomTail(N, K, n, k)
	if err != nil {
		return 0, err
	}
	tailCache.Store(key, tail)
	return tail, nil
}

// s2poStepKey identifies one S2PO per-step compromise probability: the
// proxy-tier hypergeometric sum combined with the κ-paced indirect and
// λ-fraction launch-pad server streams.
type s2poStepKey struct {
	chi, omega uint64
	proxies    int
	kappa, lp  float64
}

var s2poStepCache sync.Map // s2poStepKey → float64

// s2soELKey identifies one S2SO exact expected lifetime: the full Params
// tuple the O(T²) conditioning sum depends on.
type s2soELKey struct {
	chi, omega uint64
	proxies    int
	kappa, lp  float64
}

var s2soELCache sync.Map // s2soELKey → float64

// s2soELCached memoizes s2soAnalyticEL on (χ, ω, n_p, κ, λ). The sum is the
// largest remaining analytic hot spot — quadratic in the horizon — and the
// fig1/fortify sweeps revisit identical tuples across cells and benchmark
// iterations.
func s2soELCached(chi, omega uint64, proxies int, kappa, lp float64) float64 {
	key := s2soELKey{chi: chi, omega: omega, proxies: proxies, kappa: kappa, lp: lp}
	if v, ok := s2soELCache.Load(key); ok {
		return v.(float64)
	}
	el := s2soAnalyticEL(chi, omega, proxies, kappa, lp)
	s2soELCache.Store(key, el)
	return el
}
