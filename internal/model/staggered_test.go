package model

import (
	"errors"
	"math"
	"testing"

	"fortress/internal/xrand"
)

func TestStaggeredAnalyticUnavailable(t *testing.T) {
	_, err := S0Staggered{P: DefaultParams(0.01, 0)}.AnalyticEL()
	if !errors.Is(err, ErrAnalyticUnavailable) {
		t.Fatalf("want ErrAnalyticUnavailable, got %v", err)
	}
}

func TestStaggeredShorterThanIdealPO(t *testing.T) {
	// Batched re-randomization leaves captured replicas standing for up to
	// n/f steps, so the staggered system must die sooner than idealized
	// S0PO, yet far outlive the never-re-randomized S0SO.
	p := DefaultParams(0.01, 0)
	rng := xrand.New(99)
	stag, err := EstimateSO(S0Staggered{P: p}, 30000, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := S0PO{P: p}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	so, err := S0SO{P: p}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	if stag.EL >= ideal {
		t.Errorf("staggered EL %v ≥ ideal PO EL %v", stag.EL, ideal)
	}
	if stag.EL <= so {
		t.Errorf("staggered EL %v ≤ SO EL %v", stag.EL, so)
	}
}

func TestStaggeredBiggerBatchLivesLonger(t *testing.T) {
	// Re-randomizing more replicas per step shrinks the capture-persistence
	// window and lengthens life.
	p := DefaultParams(0.02, 0)
	rng := xrand.New(123)
	slow, err := EstimateSO(S0Staggered{P: p, BatchSize: 1}, 20000, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := EstimateSO(S0Staggered{P: p, BatchSize: 3}, 20000, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if fast.EL <= slow.EL {
		t.Errorf("batch=3 EL %v ≤ batch=1 EL %v", fast.EL, slow.EL)
	}
}

func TestStaggeredBatchValidation(t *testing.T) {
	s := S0Staggered{P: DefaultParams(0.01, 0), BatchSize: 99}
	if _, err := s.SimulateLifetime(xrand.New(1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestStaggeredZeroAlphaImmortal(t *testing.T) {
	p := DefaultParams(0, 0)
	life, err := S0Staggered{P: p}.SimulateLifetime(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if life != math.MaxUint64 {
		t.Fatalf("life = %d with α=0", life)
	}
}

// Regression: the hypergeometric evaluation must stay finite at window
// boundaries (ω=1 sweeps the window right up to χ−1), where the previous
// product/step-up formulation produced NaN.
func TestSOAnalyticFiniteAtOmegaOne(t *testing.T) {
	for _, alpha := range []float64{0.00001, 0.00002} {
		p := DefaultParams(alpha, 0)
		if p.Omega() != 1 {
			t.Fatalf("precondition: ω=%d", p.Omega())
		}
		el, err := S0SO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(el) || math.IsInf(el, 0) || el <= 0 {
			t.Fatalf("α=%v: EL = %v", alpha, el)
		}
		// ω=1 means the discovery position IS the step count: the 2nd of 4
		// keys sits at expected position 2(χ+1)/5.
		want := 2*(float64(p.Chi)+1)/5 - 1
		if math.Abs(el-want) > 0.01*want {
			t.Fatalf("α=%v: EL = %v, want ≈ %v", alpha, el, want)
		}
	}
}
