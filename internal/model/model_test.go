package model

import (
	"errors"
	"math"
	"testing"

	"fortress/internal/xrand"
)

const mcTrials = 200000

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(0.001, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Chi = 0 },
		func(p *Params) { p.Alpha = -0.1 },
		func(p *Params) { p.Alpha = 1.1 },
		func(p *Params) { p.Kappa = -0.1 },
		func(p *Params) { p.Kappa = 1.1 },
		func(p *Params) { p.LaunchPadFraction = 2 },
		func(p *Params) { p.SMRReplicas = 1 },
		func(p *Params) { p.SMRTolerance = 0 },
		func(p *Params) { p.SMRTolerance = 4 },
		func(p *Params) { p.PBReplicas = 0 },
		func(p *Params) { p.Proxies = 0 },
		func(p *Params) { p.Chi = 3 },                    // fewer keys than SMR replicas
		func(p *Params) { p.Chi = 2; p.SMRReplicas = 2 }, // fewer keys than proxies
	}
	for i, mutate := range bad {
		p := DefaultParams(0.001, 0.5)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestOmegaRounding(t *testing.T) {
	p := DefaultParams(0.00001, 0)
	if p.Omega() != 1 {
		t.Fatalf("ω = %d for α=1e-5, want 1 (rounded up)", p.Omega())
	}
	p.Alpha = 0.01
	if got := p.Omega(); got != 655 {
		t.Fatalf("ω = %d for α=0.01·2¹⁶, want 655", got)
	}
	p.Alpha = 0
	if p.Omega() != 0 {
		t.Fatalf("ω = %d for α=0", p.Omega())
	}
}

func TestS1POAnalytic(t *testing.T) {
	p := DefaultParams(0.01, 0)
	sys := S1PO{P: p}
	el, err := sys.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	alpha := p.EffectiveAlpha()
	want := (1 - alpha) / alpha
	if math.Abs(el-want) > 1e-9*want {
		t.Fatalf("EL = %v, want %v", el, want)
	}
}

func TestS0POAnalyticApproximation(t *testing.T) {
	// For small α, p ≈ C(4,2)α² and EL ≈ 1/(6α²).
	p := DefaultParams(0.001, 0)
	sys := S0PO{P: p}
	el, err := sys.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	alpha := p.EffectiveAlpha()
	approx := 1 / (6 * alpha * alpha)
	if el < approx*0.9 || el > approx*1.1 {
		t.Fatalf("EL = %v, approx %v — more than 10%% apart", el, approx)
	}
}

func TestS2POAnalyticApproximation(t *testing.T) {
	// For small α, p ≈ κα + 3λα² + O(α³).
	p := DefaultParams(0.001, 0.5)
	sys := S2PO{P: p}
	pStep, err := sys.StepCompromiseProb()
	if err != nil {
		t.Fatal(err)
	}
	alpha := p.EffectiveAlpha()
	approx := p.Kappa*alpha + 3*p.LaunchPadFraction*alpha*alpha
	if math.Abs(pStep-approx) > 0.05*approx {
		t.Fatalf("p = %v, first-order approx %v", pStep, approx)
	}
}

func TestS2POKappaZeroStillVulnerable(t *testing.T) {
	// With κ=0 the launch-pad and all-proxies routes remain.
	p := DefaultParams(0.01, 0)
	pStep, err := S2PO{P: p}.StepCompromiseProb()
	if err != nil {
		t.Fatal(err)
	}
	if pStep <= 0 {
		t.Fatal("S2PO with κ=0 reported invulnerable")
	}
	// And with λ=0 too, only the all-proxies route remains: p ≈ α³.
	p.LaunchPadFraction = 0
	pStep, err = S2PO{P: p}.StepCompromiseProb()
	if err != nil {
		t.Fatal(err)
	}
	alpha := p.EffectiveAlpha()
	if math.Abs(pStep-alpha*alpha*alpha) > 0.05*alpha*alpha*alpha {
		t.Fatalf("κ=λ=0: p = %v, want ≈ α³ = %v", pStep, alpha*alpha*alpha)
	}
}

func TestMarkovChainAgreesWithClosedForm(t *testing.T) {
	for _, sys := range []StepSystem{
		S1PO{P: DefaultParams(0.01, 0.5)},
		S0PO{P: DefaultParams(0.01, 0.5)},
		S2PO{P: DefaultParams(0.01, 0.5)},
	} {
		closed, err := sys.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		chain, err := MarkovChainEL(sys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-chain) > 1e-6*closed {
			t.Errorf("%s: closed form %v vs Markov chain %v", sys.Name(), closed, chain)
		}
	}
}

func TestS1SOAnalyticClosedForm(t *testing.T) {
	// Discovery step is uniform over {1..χ/ω} (when ω divides χ), so
	// EL = E[T]−1 = (χ/ω+1)/2 − 1.
	p := DefaultParams(0, 0)
	p.Chi = 1 << 16
	p.Alpha = 1.0 / 1024 // ω = 64, divides χ
	el, err := S1SO{P: p}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	steps := float64(p.Chi) / float64(p.Omega())
	want := (steps+1)/2 - 1
	if math.Abs(el-want) > 1e-6*want {
		t.Fatalf("EL = %v, want %v", el, want)
	}
}

func TestS0SOAnalyticMatchesOrderStatistic(t *testing.T) {
	// E[position of 2nd of 4 keys] = 2(χ+1)/5; at ω probes per step the EL
	// is ≈ that position divided by ω.
	p := DefaultParams(0.001, 0)
	el, err := S0SO{P: p}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	approx := 2*(float64(p.Chi)+1)/5/float64(p.Omega()) - 1
	if math.Abs(el-approx) > 0.02*approx+1 {
		t.Fatalf("EL = %v, order-statistic approx %v", el, approx)
	}
}

func TestS2SOAnalyticAvailableAtModerateAlpha(t *testing.T) {
	// The exact conditional summation covers horizons up to
	// maxAnalyticSteps; see s2so_analytic_test.go for its MC validation
	// and the ErrAnalyticUnavailable guard at tiny α.
	el, err := S2SO{P: DefaultParams(0.001, 0.5)}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	if el <= 0 || math.IsNaN(el) {
		t.Fatalf("EL = %v", el)
	}
}

// --- Monte-Carlo cross-validation --------------------------------------

func TestMCMatchesAnalyticPO(t *testing.T) {
	rng := xrand.New(1234)
	for _, sys := range []StepSystem{
		S1PO{P: DefaultParams(0.01, 0.5)},
		S0PO{P: DefaultParams(0.01, 0.5)},
		S2PO{P: DefaultParams(0.01, 0.5)},
		S2PO{P: DefaultParams(0.01, 0)},
	} {
		want, err := sys.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		// S0PO at α=0.01 has p≈6e-4: 200k trials give enough hits.
		est, err := EstimatePO(sys, mcTrials, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(est.EL, 1) {
			t.Fatalf("%s: no compromise in %d trials", sys.Name(), mcTrials)
		}
		if math.Abs(est.EL-want) > 4*est.CI95+0.05*want {
			t.Errorf("%s: MC %v ± %v vs analytic %v", sys.Name(), est.EL, est.CI95, want)
		}
	}
}

func TestMCMatchesAnalyticSO(t *testing.T) {
	rng := xrand.New(5678)
	for _, sys := range []LifetimeSystem{
		S1SO{P: DefaultParams(0.001, 0)},
		S0SO{P: DefaultParams(0.001, 0)},
		S1SO{P: DefaultParams(0.01, 0)},
		S0SO{P: DefaultParams(0.01, 0)},
	} {
		want, err := sys.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateSO(sys, 100000, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.EL-want) > 4*est.CI95+0.01*want {
			t.Errorf("%s: MC %v ± %v vs analytic %v", sys.Name(), est.EL, est.CI95, want)
		}
	}
}

func TestEstimatorDispatch(t *testing.T) {
	rng := xrand.New(2)
	p := DefaultParams(0.01, 0.5)
	for _, sys := range AllSystems(p) {
		est, err := Estimator(sys, 2000, rng.Split())
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if est.System != sys.Name() {
			t.Errorf("estimate label %q for %q", est.System, sys.Name())
		}
		if est.EL < 0 {
			t.Errorf("%s: negative EL %v", sys.Name(), est.EL)
		}
	}
}

func TestEstimateRejectsZeroTrials(t *testing.T) {
	if _, err := EstimatePO(S1PO{P: DefaultParams(0.01, 0)}, 0, xrand.New(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := EstimateSO(S1SO{P: DefaultParams(0.01, 0)}, 0, xrand.New(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestEstimatePONoHits(t *testing.T) {
	// Tiny hazard + few trials: infinite-EL lower bound, not a crash.
	sys := S0PO{P: DefaultParams(0.00001, 0)}
	est, err := EstimatePO(sys, 1000, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.EL, 1) {
		t.Fatalf("EL = %v, want +Inf marker", est.EL)
	}
}

// --- The paper's §6 trends ----------------------------------------------

// analyticOrMC returns the best available EL for a system.
func analyticOrMC(t *testing.T, sys System, rng *xrand.RNG) float64 {
	t.Helper()
	el, err := sys.AnalyticEL()
	if err == nil {
		return el
	}
	if !errors.Is(err, ErrAnalyticUnavailable) {
		t.Fatal(err)
	}
	ls, ok := sys.(LifetimeSystem)
	if !ok {
		t.Fatalf("%s: no fallback", sys.Name())
	}
	est, err := EstimateSO(ls, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	return est.EL
}

func TestTrendS1SOOutlivesS0SO(t *testing.T) {
	for _, alpha := range []float64{0.00001, 0.0001, 0.001, 0.01} {
		p := DefaultParams(alpha, 0.5)
		s1, err := S1SO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		s0, err := S0SO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		if s1 <= s0 {
			t.Errorf("α=%v: EL(S1SO)=%v ≤ EL(S0SO)=%v — §6 trend 1 violated", alpha, s1, s0)
		}
	}
}

func TestTrendPOOutlivesSO(t *testing.T) {
	rng := xrand.New(777)
	for _, alpha := range []float64{0.0001, 0.001, 0.01} {
		p := DefaultParams(alpha, 0.5)
		s2po := analyticOrMC(t, S2PO{P: p}, rng.Split())
		s1po := analyticOrMC(t, S1PO{P: p}, rng.Split())
		s1so := analyticOrMC(t, S1SO{P: p}, rng.Split())
		s0so := analyticOrMC(t, S0SO{P: p}, rng.Split())
		for _, po := range []float64{s2po, s1po} {
			for _, so := range []float64{s1so, s0so} {
				if po <= so {
					t.Errorf("α=%v: PO EL %v ≤ SO EL %v — §6 trend 2 violated", alpha, po, so)
				}
			}
		}
	}
}

func TestTrendS2POvsS1POCrossover(t *testing.T) {
	// S2PO outlives S1PO for κ ≤ 0.9; the crossover sits in (0.9, 1].
	for _, alpha := range []float64{0.0001, 0.001, 0.01} {
		for _, kappa := range []float64{0, 0.3, 0.5, 0.7, 0.9} {
			p := DefaultParams(alpha, kappa)
			s2, err := S2PO{P: p}.AnalyticEL()
			if err != nil {
				t.Fatal(err)
			}
			s1, err := S1PO{P: p}.AnalyticEL()
			if err != nil {
				t.Fatal(err)
			}
			if s2 <= s1 {
				t.Errorf("α=%v κ=%v: EL(S2PO)=%v ≤ EL(S1PO)=%v — §6 trend 3 violated",
					alpha, kappa, s2, s1)
			}
		}
		// At κ = 1 the indirect attack is as strong as a direct one and the
		// extra S2 routes must tip the balance the other way.
		p := DefaultParams(alpha, 1)
		s2, err := S2PO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		s1, err := S1PO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		if s2 >= s1 {
			t.Errorf("α=%v κ=1: EL(S2PO)=%v ≥ EL(S1PO)=%v — crossover missing", alpha, s2, s1)
		}
	}
}

func TestTrendS0POvsS2PO(t *testing.T) {
	// S0PO outlives S2PO for κ > 0; at κ = 0 the order reverses.
	for _, alpha := range []float64{0.0001, 0.001, 0.01} {
		for _, kappa := range []float64{0.1, 0.5, 1} {
			p := DefaultParams(alpha, kappa)
			s0, err := S0PO{P: p}.AnalyticEL()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := S2PO{P: p}.AnalyticEL()
			if err != nil {
				t.Fatal(err)
			}
			if s0 <= s2 {
				t.Errorf("α=%v κ=%v: EL(S0PO)=%v ≤ EL(S2PO)=%v — §6 trend 4 violated",
					alpha, kappa, s0, s2)
			}
		}
		p := DefaultParams(alpha, 0)
		s0, err := S0PO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := S2PO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		if s2 <= s0 {
			t.Errorf("α=%v κ=0: EL(S2PO)=%v ≤ EL(S0PO)=%v — κ=0 exception violated", alpha, s2, s0)
		}
	}
}

func TestTrendFortifiedPBvsRecoveredSMR(t *testing.T) {
	// The [7] background claim (E4): under the paper's assumption that no
	// server can be compromised until at least one proxy is (κ = 0), a
	// fortified PB system under SO is at least as resilient as 4-replica
	// SMR with proactive recovery. The claim is κ-sensitive: once indirect
	// attacks work at full strength (κ = 1) the ordering flips, which the
	// second half of this test pins down.
	rng := xrand.New(4242)
	for _, kappa := range []float64{0, 0.1} {
		p := DefaultParams(0.001, kappa)
		s2so, err := EstimateSO(S2SO{P: p}, 200000, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		s0so, err := S0SO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		if s2so.EL+4*s2so.CI95 < s0so {
			t.Errorf("κ=%v: EL(S2SO)=%v ± %v < EL(S0SO)=%v — E4 violated",
				kappa, s2so.EL, s2so.CI95, s0so)
		}
	}
	p := DefaultParams(0.001, 1)
	s2so, err := EstimateSO(S2SO{P: p}, 200000, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	s0so, err := S0SO{P: p}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	if s2so.EL-4*s2so.CI95 > s0so {
		t.Errorf("κ=1: EL(S2SO)=%v ± %v > EL(S0SO)=%v — expected the ordering to flip",
			s2so.EL, s2so.CI95, s0so)
	}
}

func TestS2SOLaunchPadShortensLifetime(t *testing.T) {
	// Under SO the launch pad persists; disabling it (λ irrelevant once
	// open; compare κ=0 with and without proxies being capturable) must
	// lengthen life. Here: more proxies → later first capture → later
	// launch pad → longer life at κ=0.
	rng := xrand.New(31337)
	few := DefaultParams(0.001, 0)
	few.Proxies = 1
	many := DefaultParams(0.001, 0)
	many.Proxies = 3
	estFew, err := EstimateSO(S2SO{P: few}, 200000, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	estMany, err := EstimateSO(S2SO{P: many}, 200000, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if estFew.EL >= estMany.EL {
		t.Errorf("1 proxy EL %v ≥ 3 proxies EL %v — launch-pad timing wrong", estFew.EL, estMany.EL)
	}
}

func TestFullOrderingChain(t *testing.T) {
	// §6 summary: S0PO → S2PO → S1PO → S1SO → S0SO at κ=0.5.
	rng := xrand.New(9999)
	for _, alpha := range []float64{0.0001, 0.001, 0.01} {
		p := DefaultParams(alpha, 0.5)
		els := make([]float64, 0, 5)
		for _, sys := range []System{S0PO{P: p}, S2PO{P: p}, S1PO{P: p}, S1SO{P: p}, S0SO{P: p}} {
			els = append(els, analyticOrMC(t, sys, rng.Split()))
		}
		for i := 1; i < len(els); i++ {
			if els[i-1] <= els[i] {
				t.Errorf("α=%v: chain position %d: %v ≤ %v", alpha, i, els[i-1], els[i])
			}
		}
	}
}
