package model

import (
	"errors"
	"math"

	"fortress/internal/xrand"
)

// ErrAnalyticUnavailable is returned by AnalyticEL for systems whose state
// space is too large for the closed-form/Markov treatment; the paper (§5)
// uses Monte-Carlo simulation for exactly these cases, and so does this
// package (see LifetimeSystem and EstimateSO).
var ErrAnalyticUnavailable = errors.New("model: analytic EL unavailable, use Monte-Carlo")

// LifetimeSystem is an SO system: the without-replacement probing makes the
// hazard grow over time, so whole lifetimes are sampled directly.
type LifetimeSystem interface {
	System
	// SimulateLifetime samples one lifetime: the number of whole unit
	// time-steps that elapse before compromise. Both *xrand.RNG and the
	// block-buffered *xrand.Block the shard kernels use satisfy Source.
	SimulateLifetime(src xrand.Source) (uint64, error)
}

// soSurvivalEL computes EL = Σ_{t≥1} P(alive after step t) for a tier of K
// distinct keys probed ω per step by a single stream, where compromise
// means uncovering more than f of the keys. P(alive after t) is the
// hypergeometric probability of at most f special items within the first
// min(ω·t, χ) probed candidates.
func soSurvivalEL(chi uint64, k, f int, omega uint64) (float64, error) {
	if omega == 0 {
		return math.Inf(1), nil
	}
	maxSteps := chi/omega + 2
	var el float64
	for t := uint64(1); t <= maxSteps; t++ {
		window := t * omega
		if window >= chi {
			break // every key uncovered by now: survival is 0
		}
		var survive float64
		for j := 0; j <= f; j++ {
			p, err := hypergeomPMFWindow(chi, uint64(k), window, j)
			if err != nil {
				return 0, err
			}
			survive += p
		}
		el += survive
	}
	return el, nil
}

// sampleDistinctPositions draws k distinct probe-order positions, each in
// [1, χ], sorted ascending: the moments at which a single probe stream
// uncovers each of a tier's k keys. Results are appended to out, which
// callers pass as a stack-backed buffer (`var buf [smallTierKeys]uint64;
// sampleDistinctPositions(src, chi, k, buf[:0])`) so the per-trial sample
// allocates nothing; duplicates are rejected by scanning the k ≤ 4 drawn
// values instead of a map, consuming exactly the same random sequence as the
// former map-based implementation.
func sampleDistinctPositions(src xrand.Source, chi uint64, k int, out []uint64) []uint64 {
	out = out[:0]
	for len(out) < k {
		pos := src.Uint64n(chi) + 1
		if containsUint64(out, pos) {
			continue
		}
		out = append(out, pos)
	}
	// Insertion sort: k ≤ 4.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// stepOf converts a probe-order position to the unit time-step in which
// that probe is issued, at ω probes per step.
func stepOf(pos, omega uint64) uint64 {
	return (pos + omega - 1) / omega
}

// --- S1SO ---------------------------------------------------------------

// S1SO is primary-backup with start-up-only randomization: one shared key,
// fixed for ever; each unsuccessful probe eliminates a candidate for good.
type S1SO struct {
	P Params
}

var (
	_ LifetimeSystem = S1SO{}
	_ LifetimeSystem = S0SO{}
	_ LifetimeSystem = S2SO{}
)

// Name implements System.
func (s S1SO) Name() string { return "S1SO" }

func (s S1SO) params() Params { return s.P }
func (s S0SO) params() Params { return s.P }
func (s S2SO) params() Params { return s.P }

// AnalyticEL implements System.
func (s S1SO) AnalyticEL() (float64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return soSurvivalELCached(s.P.Chi, 1, 0, s.P.Omega())
}

// SimulateLifetime implements LifetimeSystem: the key's position in the
// probe order is uniform; the compromise step follows directly.
func (s S1SO) SimulateLifetime(src xrand.Source) (uint64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return s.lifetimeOnce(src)
}

// lifetimeOnce is the per-trial kernel, with validation hoisted to the caller.
func (s S1SO) lifetimeOnce(src xrand.Source) (uint64, error) {
	omega := s.P.Omega()
	if omega == 0 {
		return math.MaxUint64, nil
	}
	pos := src.Uint64n(s.P.Chi) + 1
	return stepOf(pos, omega) - 1, nil
}

// --- S0SO ---------------------------------------------------------------

// S0SO is 4-replica SMR with start-up-only diverse randomization and
// proactive recovery: the probe stream uncovers the replicas' distinct keys
// one by one; compromise when more than f are uncovered. This is the
// system the paper identifies as the least resilient (§6).
type S0SO struct {
	P Params
}

// Name implements System.
func (s S0SO) Name() string { return "S0SO" }

// AnalyticEL implements System.
func (s S0SO) AnalyticEL() (float64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return soSurvivalELCached(s.P.Chi, s.P.SMRReplicas, s.P.SMRTolerance, s.P.Omega())
}

// SimulateLifetime implements LifetimeSystem.
func (s S0SO) SimulateLifetime(src xrand.Source) (uint64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return s.lifetimeOnce(src)
}

// lifetimeOnce is the per-trial kernel, with validation hoisted to the caller.
func (s S0SO) lifetimeOnce(src xrand.Source) (uint64, error) {
	omega := s.P.Omega()
	if omega == 0 {
		return math.MaxUint64, nil
	}
	var buf [smallTierKeys]uint64
	positions := sampleDistinctPositions(src, s.P.Chi, s.P.SMRReplicas, buf[:0])
	// Compromise at the (f+1)-th uncovered key.
	critical := positions[s.P.SMRTolerance]
	return stepOf(critical, omega) - 1, nil
}

// --- S2SO ---------------------------------------------------------------

// S2SO is FORTRESS with start-up-only randomization and per-step recovery:
// proxies hold n_p distinct keys probed by one direct stream; servers share
// one key in an independent space, probed indirectly at rate κ·ω from the
// start and directly (launch pad) once the first proxy has been captured —
// under SO a captured proxy stays captured, so the launch pad persists.
// Compromise when the server key is uncovered or all proxies are captured.
//
// The state space (candidates eliminated per tier × proxies captured) is
// far too large for the fundamental-matrix method, so this system is
// evaluated by Monte-Carlo only, as the paper does (§5).
type S2SO struct {
	P Params
}

// Name implements System.
func (s S2SO) Name() string { return "S2SO" }

// maxAnalyticSteps bounds the O(T²) exact summation in AnalyticEL; beyond
// it (small α, ω = a handful of probes) Monte-Carlo is the right tool, as
// the paper notes for large state spaces.
const maxAnalyticSteps = 4096

// AnalyticEL implements System. For horizons T = ⌈χ/ω⌉ up to
// maxAnalyticSteps it computes the exact expectation by conditioning on
// the step u in which the first proxy falls:
//
//	E[EL] = Σ_{t≥1} P(T > t),   P(T > t) = Σ_u P(t_first = u, t_all > t) · P(server survives c_u(t))
//	                                      + P(t_first > t) · P(server pos > κωt)
//
// with the order-statistic identity (positions of the n_p proxy keys are a
// uniform without-replacement sample):
//
//	P(q₁ > a, q_np > b) = [C(χ−a, n_p) − C(b−a, n_p)] / C(χ, n_p)   (a ≤ b)
//
// evaluated as exact products. Larger horizons return
// ErrAnalyticUnavailable; use EstimateSO.
//
// The O(T²) conditioning sum is memoized on the full parameter tuple
// (χ, ω, n_p, κ, λ) in cache.go, like the other analytic hot spots.
func (s S2SO) AnalyticEL() (float64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	omega := s.P.Omega()
	if omega == 0 {
		return math.Inf(1), nil
	}
	horizon := (s.P.Chi + omega - 1) / omega
	if horizon > maxAnalyticSteps {
		return 0, ErrAnalyticUnavailable
	}
	return s2soELCached(s.P.Chi, omega, s.P.Proxies, s.P.Kappa, s.P.LaunchPadFraction), nil
}

// s2soAnalyticEL is the exact conditioning sum behind S2SO.AnalyticEL; the
// caller has already validated the parameters and bounded the horizon.
func s2soAnalyticEL(chiN, omega uint64, np int, kappa, lpFrac float64) float64 {
	horizon := (chiN + omega - 1) / omega
	chi := float64(chiN)
	w := float64(omega)
	kappaRate := kappa * w
	lp := lpFrac * w

	// ratioAllAbove(a) = P(all n_p proxy positions > a) = C(χ−a, np)/C(χ, np).
	ratioAllAbove := func(a uint64) float64 {
		if a >= chiN {
			return 0
		}
		p := 1.0
		for j := 0; j < np; j++ {
			num := float64(chiN-a) - float64(j)
			if num <= 0 {
				return 0
			}
			p *= num / (chi - float64(j))
		}
		return p
	}
	// ratioAllWithin(a, b) = P(all positions in (a, b]) = C(b−a, np)/C(χ, np).
	ratioAllWithin := func(a, b uint64) float64 {
		if b <= a {
			return 0
		}
		span := b - a
		p := 1.0
		for j := 0; j < np; j++ {
			num := float64(span) - float64(j)
			if num <= 0 {
				return 0
			}
			p *= num / (chi - float64(j))
		}
		return p
	}
	window := func(t uint64) uint64 {
		m := t * omega
		if m > chiN {
			m = chiN
		}
		return m
	}
	// serverSurvive(c) = P(server key position > c probes) with the
	// cumulative server-stream probe count c (continuous approximation).
	serverSurvive := func(c float64) float64 {
		if c <= 0 {
			return 1
		}
		if c >= chi {
			return 0
		}
		return (chi - c) / chi
	}

	var el float64
	for t := uint64(1); t <= horizon; t++ {
		wt := window(t)
		// Case t_first > t: no proxy captured yet; only the indirect stream
		// has been probing the server.
		survive := ratioAllAbove(wt) * serverSurvive(kappaRate*float64(t))
		// Case t_first = u ≤ t, with all n_p proxies NOT yet captured.
		for u := uint64(1); u <= t; u++ {
			pu := ratioAllAbove(window(u-1)) - ratioAllWithin(window(u-1), wt) -
				ratioAllAbove(window(u)) + ratioAllWithin(window(u), wt)
			if pu <= 0 {
				continue
			}
			c := kappaRate*float64(t) + lp + w*float64(t-u)
			survive += pu * serverSurvive(c)
		}
		el += survive
		if survive < 1e-15 {
			break
		}
	}
	return el
}

// SimulateLifetime implements LifetimeSystem.
func (s S2SO) SimulateLifetime(src xrand.Source) (uint64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return s.lifetimeOnce(src)
}

// lifetimeOnce is the per-trial kernel, with validation hoisted to the caller.
func (s S2SO) lifetimeOnce(src xrand.Source) (uint64, error) {
	omega := s.P.Omega()
	if omega == 0 {
		return math.MaxUint64, nil
	}
	w := float64(omega)

	var buf [smallTierKeys]uint64
	proxyPos := sampleDistinctPositions(src, s.P.Chi, s.P.Proxies, buf[:0])
	tFirst := stepOf(proxyPos[0], omega)             // first proxy captured
	tAll := stepOf(proxyPos[len(proxyPos)-1], omega) // all proxies captured
	serverPos := float64(src.Uint64n(s.P.Chi) + 1)   // server key position
	kappaRate := s.P.Kappa * w                       // indirect probes/step
	lp := s.P.LaunchPadFraction * w                  // launch-pad probes in step tFirst

	// Cumulative server-stream probes by the end of step t:
	//   c(t) = κ·ω·t                                   for t <  tFirst
	//   c(t) = κ·ω·t + λ·ω + ω·(t − tFirst)            for t ≥ tFirst
	// The server falls at the first step with c(t) ≥ serverPos. Both pieces
	// are linear in t, so each is solved in closed form.
	tServer := uint64(math.MaxUint64)
	if kappaRate > 0 {
		t := math.Ceil(serverPos / kappaRate)
		if uint64(t) < tFirst {
			tServer = uint64(t)
		}
	}
	if tServer == math.MaxUint64 {
		// Not captured before the launch pad opens; solve the second piece.
		// c(t) = (κω+ω)t + λω − ω·tFirst ≥ serverPos.
		rate := kappaRate + w
		offset := lp - w*float64(tFirst)
		t := math.Ceil((serverPos - offset) / rate)
		if t < float64(tFirst) {
			t = float64(tFirst)
		}
		tServer = uint64(t)
	}

	compromise := tServer
	if tAll < compromise {
		compromise = tAll
	}
	if compromise == 0 {
		compromise = 1
	}
	return compromise - 1, nil
}
