package model

import (
	"math"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

func TestHypergeomSmallExact(t *testing.T) {
	// Urn with N=10, K=3 special, draw n=4.
	// P(X=0) = C(7,4)/C(10,4) = 35/210 = 1/6.
	// P(X=1) = C(3,1)C(7,3)/C(10,4) = 3*35/210 = 1/2.
	// P(X=2) = C(3,2)C(7,2)/C(10,4) = 3*21/210 = 3/10.
	// P(X=3) = C(3,3)C(7,1)/C(10,4) = 7/210 = 1/30.
	want := []float64{1.0 / 6, 0.5, 0.3, 1.0 / 30}
	for k, w := range want {
		got, err := hypergeomPMF(10, 3, 4, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("P(X=%d) = %v, want %v", k, got, w)
		}
	}
}

func TestHypergeomSumsToOne(t *testing.T) {
	prop := func(nRaw, kRaw uint8) bool {
		N := uint64(nRaw)%200 + 10
		K := uint64(kRaw) % 5
		if K > N {
			return true
		}
		for _, n := range []uint64{0, 1, N / 3, N / 2, N} {
			var sum float64
			for k := 0; uint64(k) <= K; k++ {
				p, err := hypergeomPMF(N, K, n, k)
				if err != nil {
					return false
				}
				if p < -1e-15 || p > 1+1e-12 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHypergeomImpossibleCases(t *testing.T) {
	// More hits than draws or than special items: probability 0.
	for _, c := range []struct {
		N, K, n uint64
		k       int
	}{
		{100, 3, 2, 3},  // k > n
		{100, 2, 50, 3}, // k > K
		{100, 3, 5, -1}, // negative
	} {
		got, err := hypergeomPMF(c.N, c.K, c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("P(X=%d | N=%d K=%d n=%d) = %v, want 0", c.k, c.N, c.K, c.n, got)
		}
	}
}

func TestHypergeomValidation(t *testing.T) {
	if _, err := hypergeomPMF(10, 11, 5, 0); err == nil {
		t.Fatal("K > N accepted")
	}
	if _, err := hypergeomPMF(10, 3, 11, 0); err == nil {
		t.Fatal("n > N accepted")
	}
}

func TestHypergeomDrawAll(t *testing.T) {
	// Drawing the full population uncovers every special item surely.
	got, err := hypergeomPMF(50, 4, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("P(X=K | n=N) = %v", got)
	}
}

func TestHypergeomTail(t *testing.T) {
	// From the N=10,K=3,n=4 case: P(X ≥ 2) = 0.3 + 1/30 = 1/3.
	got, err := hypergeomTail(10, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("tail = %v", got)
	}
	// P(X ≥ 0) = 1.
	got, err = hypergeomTail(10, 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("tail(0) = %v", got)
	}
}

func TestHypergeomMatchesSampling(t *testing.T) {
	// sampleTierHits must draw from the same distribution hypergeomPMF
	// describes — the PO analytic and MC paths hinge on this agreement.
	const (
		chi    = 1 << 12
		k      = 4
		omega  = 300
		trials = 200000
	)
	rng := xrand.New(99)
	counts := make([]int, k+1)
	for i := 0; i < trials; i++ {
		hits, err := sampleTierHits(rng, chi, k, omega)
		if err != nil {
			t.Fatal(err)
		}
		counts[hits]++
	}
	for h := 0; h <= k; h++ {
		want, err := hypergeomPMF(chi, k, omega, h)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(counts[h]) / trials
		se := math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > 6*se {
			t.Errorf("P(X=%d): sampled %v, analytic %v (6se=%v)", h, got, want, 6*se)
		}
	}
}
