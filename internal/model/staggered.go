package model

import (
	"fmt"
	"math"

	"fortress/internal/xrand"
)

// S0Staggered models the batched proactive obfuscation of Roeder &
// Schneider that the paper summarizes in §2.3: the SMR system cannot stop,
// so instead of every replica re-randomizing at every step (the idealized
// S0PO), batches of at most f replicas exit, re-randomize and re-join in
// rotation. Each replica is therefore cleansed only once every ⌈n/f⌉ steps,
// and a captured replica stays captured until its own batch boundary.
//
// This is an extension experiment (the paper assumes instantaneous
// re-randomization, §4.1); it quantifies how much lifetime the batching
// costs relative to S0PO. The state space (capture pattern × rotation
// phase) is solved by Monte-Carlo.
type S0Staggered struct {
	P Params
	// BatchSize is how many replicas re-randomize per step (Roeder &
	// Schneider: at most f). Zero defaults to the SMR tolerance f.
	BatchSize int
}

var _ LifetimeSystem = S0Staggered{}

// Name implements System.
func (s S0Staggered) Name() string { return "S0PO-staggered" }

func (s S0Staggered) params() Params { return s.P }

func (s S0Staggered) batch() int {
	if s.BatchSize > 0 {
		return s.BatchSize
	}
	return s.P.SMRTolerance
}

// AnalyticEL implements System: the rotation-phase state space is handled
// by Monte-Carlo, as with the other large state spaces.
func (s S0Staggered) AnalyticEL() (float64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return 0, ErrAnalyticUnavailable
}

// SimulateLifetime implements LifetimeSystem by stepping the rotation.
//
// Per step: each standing (not-captured) replica falls independently with
// probability α — replicas hold distinct keys, and the staggered reboots
// keep their key ages unaligned, so the with-replacement approximation
// applies per replica. Then the step's batch re-randomizes, cleansing any
// captured replica in it. The system dies the moment more than f replicas
// are captured simultaneously.
func (s S0Staggered) SimulateLifetime(src xrand.Source) (uint64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return s.lifetimeOnce(src)
}

// lifetimeOnce is the per-trial kernel, with validation hoisted to the caller.
func (s S0Staggered) lifetimeOnce(src xrand.Source) (uint64, error) {
	alpha := s.P.EffectiveAlpha()
	if alpha <= 0 {
		return math.MaxUint64, nil
	}
	n := s.P.SMRReplicas
	f := s.P.SMRTolerance
	batch := s.batch()
	if batch > n {
		return 0, fmt.Errorf("model: batch %d exceeds %d replicas", batch, n)
	}

	captured := make([]bool, n)
	capturedCount := 0
	next := 0 // rotation cursor: which replica reboots next
	// A hard cap keeps adversarial parameters from spinning forever; at the
	// α range evaluated the expected lifetime is far below it.
	const maxSteps = 50_000_000
	for step := uint64(1); step <= maxSteps; step++ {
		for i := 0; i < n; i++ {
			if !captured[i] && src.Bernoulli(alpha) {
				captured[i] = true
				capturedCount++
			}
		}
		if capturedCount > f {
			return step - 1, nil
		}
		for b := 0; b < batch; b++ {
			if captured[next] {
				captured[next] = false
				capturedCount--
			}
			next = (next + 1) % n
		}
	}
	return maxSteps, nil
}
