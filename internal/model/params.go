// Package model implements the paper's abstract stochastic models of the
// three system classes (§4) and both evaluation methods (§5): closed-form /
// Markov-chain analysis and Monte-Carlo simulation of the expected lifetime
// (EL) — the expected number of whole unit time-steps until compromise.
//
// Model recap:
//
//   - S0: 4-replica SMR, replicas diversely randomized; compromised when
//     more than one replica is compromised.
//   - S1: 3-replica primary-backup, replicas identically randomized;
//     compromised when any replica (≡ the primary) is compromised.
//   - S2: FORTRESS = 3 proxies (distinct keys) + 3 PB servers (one shared
//     key); compromised when the server tier falls (indirectly at rate κ·α,
//     or directly from a captured proxy), or when all proxies are captured.
//
// Obfuscation regimes: PO re-randomizes every node each step (guessing is
// sampling with replacement — constant per-step hazard); SO randomizes only
// at start-up (guessing is sampling without replacement — the hazard αᵢ
// grows as candidates are eliminated).
//
// Because clients of an SMR (and FORTRESS clients via proxies) send every
// request to every replica of a tier, one probe request tests its guessed
// key against every key in that tier simultaneously; this is the basis of
// the paper's 4/(χ−i) vs 1/(χ−i) comparison in §6 and is modelled here as a
// single probe stream per tier.
package model

import (
	"errors"
	"fmt"
)

// Params are the attack/defence parameters shared by all system models.
type Params struct {
	// Chi is the number of possible randomization keys (χ). The paper
	// evaluates χ = 2¹⁶.
	Chi uint64
	// Alpha is the per-step direct-attack success probability against a
	// freshly randomized node: α = ω/χ (Definition 6).
	Alpha float64
	// Kappa is the indirect-attack coefficient (Definition 5): an indirect
	// attack through proxies succeeds with probability κ·αᵢ.
	Kappa float64
	// LaunchPadFraction (λ) is the fraction of a unit time-step's direct
	// probe budget still usable after a proxy is captured mid-step, for
	// same-step direct attacks on servers. The paper leaves the in-step
	// sequencing implicit; λ = 0.5 models capture at a uniformly random
	// point of the step, λ = 0 disables the same-step launch pad entirely
	// (see DESIGN.md §5 and the ablation bench).
	LaunchPadFraction float64
	// SMRReplicas is S0's replica count (paper: 4).
	SMRReplicas int
	// SMRTolerance is S0's intrusion tolerance f (paper: 1; compromise
	// requires f+1 = 2 captured replicas).
	SMRTolerance int
	// PBReplicas is S1's (and S2's server tier's) replica count (paper: 3).
	// It does not affect lifetimes — the tier shares one key — but is kept
	// for reporting.
	PBReplicas int
	// Proxies is S2's proxy count n_p (paper: 3).
	Proxies int
}

// DefaultParams returns the paper's evaluation configuration for a given α
// and κ: χ = 2¹⁶, 4-replica 1-tolerant SMR, 3-replica PB, 3 proxies, λ = ½.
func DefaultParams(alpha, kappa float64) Params {
	return Params{
		Chi:               1 << 16,
		Alpha:             alpha,
		Kappa:             kappa,
		LaunchPadFraction: 0.5,
		SMRReplicas:       4,
		SMRTolerance:      1,
		PBReplicas:        3,
		Proxies:           3,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Chi == 0:
		return errors.New("model: χ must be positive")
	case p.Alpha < 0 || p.Alpha > 1:
		return fmt.Errorf("model: α = %v outside [0,1]", p.Alpha)
	case p.Kappa < 0 || p.Kappa > 1:
		return fmt.Errorf("model: κ = %v outside [0,1]", p.Kappa)
	case p.LaunchPadFraction < 0 || p.LaunchPadFraction > 1:
		return fmt.Errorf("model: λ = %v outside [0,1]", p.LaunchPadFraction)
	case p.SMRReplicas < 2:
		return fmt.Errorf("model: SMR needs ≥2 replicas, got %d", p.SMRReplicas)
	case p.SMRTolerance < 1 || p.SMRTolerance >= p.SMRReplicas:
		return fmt.Errorf("model: SMR tolerance %d invalid for %d replicas", p.SMRTolerance, p.SMRReplicas)
	case p.PBReplicas < 1:
		return fmt.Errorf("model: PB needs ≥1 replica, got %d", p.PBReplicas)
	case p.Proxies < 1:
		return fmt.Errorf("model: FORTRESS needs ≥1 proxy, got %d", p.Proxies)
	case uint64(p.SMRReplicas) > p.Chi:
		// Each replica needs a distinct key; more replicas than keys would
		// make the distinct-position samplers loop forever.
		return fmt.Errorf("model: %d SMR replicas exceed χ = %d", p.SMRReplicas, p.Chi)
	case uint64(p.Proxies) > p.Chi:
		return fmt.Errorf("model: %d proxies exceed χ = %d", p.Proxies, p.Chi)
	}
	if p.Omega() > p.Chi {
		return fmt.Errorf("model: ω = %d exceeds χ = %d", p.Omega(), p.Chi)
	}
	return nil
}

// Omega is the attacker's probe budget per unit time-step, ω = α·χ rounded
// to at least one probe for positive α.
func (p Params) Omega() uint64 {
	if p.Alpha <= 0 {
		return 0
	}
	w := uint64(p.Alpha*float64(p.Chi) + 0.5)
	if w == 0 {
		w = 1
	}
	if w > p.Chi {
		w = p.Chi
	}
	return w
}

// EffectiveAlpha is ω/χ after rounding ω to whole probes; analytic and
// Monte-Carlo paths both use it so they agree exactly.
func (p Params) EffectiveAlpha() float64 {
	return float64(p.Omega()) / float64(p.Chi)
}
