package model

import (
	"testing"

	"fortress/internal/xrand"
)

// sinkUint64 defeats dead-code elimination in the alloc checks and benches.
var sinkUint64 uint64

// TestSampleDistinctPositionsNoAllocs pins the fixed-array rejection scan:
// drawing a tier's distinct key positions must not touch the heap (the old
// implementation allocated a map and a slice per trial).
func TestSampleDistinctPositionsNoAllocs(t *testing.T) {
	rng := xrand.New(1)
	allocs := testing.AllocsPerRun(1000, func() {
		var buf [smallTierKeys]uint64
		out := sampleDistinctPositions(rng, 1<<16, 4, buf[:0])
		sinkUint64 += out[0]
	})
	if allocs != 0 {
		t.Fatalf("sampleDistinctPositions allocates %v per run, want 0", allocs)
	}
}

// TestSampleTierHitsNoAllocs pins the PO counterpart.
func TestSampleTierHitsNoAllocs(t *testing.T) {
	rng := xrand.New(2)
	allocs := testing.AllocsPerRun(1000, func() {
		hits, err := sampleTierHits(rng, 1<<16, 4, 655)
		if err != nil {
			t.Fatal(err)
		}
		sinkUint64 += uint64(hits)
	})
	if allocs != 0 {
		t.Fatalf("sampleTierHits allocates %v per run, want 0", allocs)
	}
}

// TestSampleDistinctPositionsContract: k distinct, sorted, in [1, χ].
func TestSampleDistinctPositionsContract(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 1000; trial++ {
		var buf [smallTierKeys]uint64
		out := sampleDistinctPositions(rng, 97, 4, buf[:0])
		if len(out) != 4 {
			t.Fatalf("got %d positions", len(out))
		}
		for i, pos := range out {
			if pos < 1 || pos > 97 {
				t.Fatalf("position %d outside [1, 97]", pos)
			}
			if i > 0 && out[i-1] >= pos {
				t.Fatalf("positions not strictly ascending: %v", out)
			}
		}
	}
}

// TestSampleDistinctPositionsBeyondBuffer: k larger than the stack buffer
// spills to the heap but stays correct.
func TestSampleDistinctPositionsBeyondBuffer(t *testing.T) {
	rng := xrand.New(4)
	var buf [smallTierKeys]uint64
	out := sampleDistinctPositions(rng, 50, smallTierKeys+4, buf[:0])
	if len(out) != smallTierKeys+4 {
		t.Fatalf("got %d positions", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatalf("positions not strictly ascending: %v", out)
		}
	}
}

func BenchmarkSampleDistinctPositions(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf [smallTierKeys]uint64
		out := sampleDistinctPositions(rng, 1<<16, 4, buf[:0])
		sinkUint64 += out[0]
	}
}

func BenchmarkSampleTierHits(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hits, err := sampleTierHits(rng, 1<<16, 4, 655)
		if err != nil {
			b.Fatal(err)
		}
		sinkUint64 += uint64(hits)
	}
}

// BenchmarkPOTrial measures one step-hazard trial through the hoisted
// validation path — params are validated once per POHits call, not per
// trial.
func BenchmarkPOTrial(b *testing.B) {
	sys := S2PO{P: DefaultParams(0.01, 0.5)}
	rng := xrand.New(1)
	b.ReportAllocs()
	hits, err := POHits(sys, uint64(b.N), rng)
	if err != nil {
		b.Fatal(err)
	}
	sinkUint64 += hits
}

// BenchmarkSOTrial measures one lifetime trial, likewise hoisted.
func BenchmarkSOTrial(b *testing.B) {
	sys := S2SO{P: DefaultParams(0.01, 0.5)}
	rng := xrand.New(1)
	b.ReportAllocs()
	acc, err := SOAccumulate(sys, uint64(b.N), rng)
	if err != nil {
		b.Fatal(err)
	}
	sinkUint64 += acc.N()
}
