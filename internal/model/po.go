package model

import (
	"fmt"

	"fortress/internal/markov"
	"fortress/internal/xrand"
)

// System is one (system class, obfuscation regime) pair whose expected
// lifetime can be computed analytically.
type System interface {
	// Name identifies the system, e.g. "S2PO".
	Name() string
	// AnalyticEL returns the expected number of whole unit time-steps that
	// elapse before the system is compromised (Definition 7).
	AnalyticEL() (float64, error)
}

// StepSystem is a PO system: re-randomization every step makes the per-step
// compromise probability constant, so a lifetime is Geometric(p).
type StepSystem interface {
	System
	// StepCompromiseProb returns the constant per-step compromise
	// probability p.
	StepCompromiseProb() (float64, error)
	// SimulateStep simulates the within-step probe structure once and
	// reports whether the system was compromised in that step. Both
	// *xrand.RNG and the block-buffered *xrand.Block satisfy Source.
	SimulateStep(src xrand.Source) (bool, error)
}

// --- S1PO ---------------------------------------------------------------

// S1PO is primary-backup with proactive obfuscation: one shared key per
// step, per-step hazard α.
type S1PO struct {
	P Params
}

var (
	_ StepSystem = S1PO{}
	_ StepSystem = S0PO{}
	_ StepSystem = S2PO{}
)

// Name implements System.
func (s S1PO) Name() string { return "S1PO" }

func (s S1PO) params() Params { return s.P }
func (s S0PO) params() Params { return s.P }
func (s S2PO) params() Params { return s.P }

// StepCompromiseProb implements StepSystem: the single shared key is hit by
// ω distinct within-step probes with probability ω/χ.
func (s S1PO) StepCompromiseProb() (float64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return s.P.EffectiveAlpha(), nil
}

// AnalyticEL implements System.
func (s S1PO) AnalyticEL() (float64, error) {
	p, err := s.StepCompromiseProb()
	if err != nil {
		return 0, err
	}
	return markov.Geometric(p), nil
}

// SimulateStep implements StepSystem.
func (s S1PO) SimulateStep(src xrand.Source) (bool, error) {
	if err := s.P.Validate(); err != nil {
		return false, err
	}
	return s.stepOnce(src)
}

// stepOnce is the per-trial kernel, with validation hoisted to the caller.
func (s S1PO) stepOnce(src xrand.Source) (bool, error) {
	// ω distinct probes against one key hidden in χ: hit iff the key's
	// position in the probe order falls inside the first ω.
	return src.Uint64n(s.P.Chi) < s.P.Omega(), nil
}

// --- S0PO ---------------------------------------------------------------

// S0PO is 4-replica SMR with proactive obfuscation: per step, ω probes test
// all 4 distinct keys (every replica processes every request); the system
// is compromised when a single step captures more than f replicas.
type S0PO struct {
	P Params
}

// Name implements System.
func (s S0PO) Name() string { return "S0PO" }

// StepCompromiseProb implements StepSystem: P(X ≥ f+1) with
// X ~ Hypergeometric(χ, n_replicas, ω). The tail sum is memoized on
// (χ, n_replicas, ω, f+1) — see cache.go — so sweeps and benchmarks that
// revisit a parameter point pay for it once.
func (s S0PO) StepCompromiseProb() (float64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	return hypergeomTailCached(s.P.Chi, uint64(s.P.SMRReplicas), s.P.Omega(), s.P.SMRTolerance+1)
}

// AnalyticEL implements System.
func (s S0PO) AnalyticEL() (float64, error) {
	p, err := s.StepCompromiseProb()
	if err != nil {
		return 0, err
	}
	return markov.Geometric(p), nil
}

// SimulateStep implements StepSystem.
func (s S0PO) SimulateStep(src xrand.Source) (bool, error) {
	if err := s.P.Validate(); err != nil {
		return false, err
	}
	return s.stepOnce(src)
}

// stepOnce is the per-trial kernel, with validation hoisted to the caller.
func (s S0PO) stepOnce(src xrand.Source) (bool, error) {
	hits, err := sampleTierHits(src, s.P.Chi, s.P.SMRReplicas, s.P.Omega())
	if err != nil {
		return false, err
	}
	return hits > s.P.SMRTolerance, nil
}

// --- S2PO ---------------------------------------------------------------

// S2PO is FORTRESS with proactive obfuscation. Within one step:
//
//  1. ω probes test the n_p distinct proxy keys (X proxies captured);
//  2. the indirect stream tests the shared server key at rate κ·ω
//     (success probability κ·α);
//  3. if X ≥ 1, the attacker gains a same-step launch pad and spends the
//     remaining λ·ω direct probes on the server key (probability λ·α);
//  4. compromise iff the server key fell (2 or 3) or X = n_p.
//
// Re-randomization at the step boundary cleanses everything, so the state
// does not carry over (Definition 4 and §4.1).
type S2PO struct {
	P Params
}

// Name implements System.
func (s S2PO) Name() string { return "S2PO" }

// StepCompromiseProb implements StepSystem, summing over the proxy-hit
// count X. The probability is memoized on the complete parameter tuple
// (χ, ω, n_p, κ, λ) — see cache.go — so every κ cell of a sweep computes its
// hypergeometric sum exactly once per process.
func (s S2PO) StepCompromiseProb() (float64, error) {
	if err := s.P.Validate(); err != nil {
		return 0, err
	}
	key := s2poStepKey{
		chi:     s.P.Chi,
		omega:   s.P.Omega(),
		proxies: s.P.Proxies,
		kappa:   s.P.Kappa,
		lp:      s.P.LaunchPadFraction,
	}
	if v, ok := s2poStepCache.Load(key); ok {
		return v.(float64), nil
	}
	alpha := s.P.EffectiveAlpha()
	indirectMiss := 1 - s.P.Kappa*alpha
	lpMiss := 1 - s.P.LaunchPadFraction*alpha

	var survive float64
	for x := 0; x < s.P.Proxies; x++ { // X = n_p is compromise outright
		px, err := hypergeomPMF(s.P.Chi, uint64(s.P.Proxies), s.P.Omega(), x)
		if err != nil {
			return 0, err
		}
		miss := indirectMiss
		if x >= 1 {
			miss *= lpMiss
		}
		survive += px * miss
	}
	p := 1 - survive
	if p < 0 {
		p = 0
	}
	s2poStepCache.Store(key, p)
	return p, nil
}

// AnalyticEL implements System.
func (s S2PO) AnalyticEL() (float64, error) {
	p, err := s.StepCompromiseProb()
	if err != nil {
		return 0, err
	}
	return markov.Geometric(p), nil
}

// SimulateStep implements StepSystem.
func (s S2PO) SimulateStep(src xrand.Source) (bool, error) {
	if err := s.P.Validate(); err != nil {
		return false, err
	}
	return s.stepOnce(src)
}

// stepOnce is the per-trial kernel, with validation hoisted to the caller.
func (s S2PO) stepOnce(src xrand.Source) (bool, error) {
	alpha := s.P.EffectiveAlpha()
	proxyHits, err := sampleTierHits(src, s.P.Chi, s.P.Proxies, s.P.Omega())
	if err != nil {
		return false, err
	}
	if proxyHits == s.P.Proxies {
		return true, nil // route 3: all proxies captured
	}
	if src.Bernoulli(s.P.Kappa * alpha) {
		return true, nil // route 1: indirect server capture
	}
	if proxyHits >= 1 && src.Bernoulli(s.P.LaunchPadFraction*alpha) {
		return true, nil // route 2: same-step launch pad
	}
	return false, nil
}

// MarkovChainEL builds the explicit absorbing Markov chain for a PO system
// (one transient "healthy" state, one absorbing "compromised" state) and
// solves it with the fundamental-matrix method — the §5 calculation done
// literally, used to cross-validate the closed forms.
func MarkovChainEL(sys StepSystem) (float64, error) {
	p, err := sys.StepCompromiseProb()
	if err != nil {
		return 0, err
	}
	if p <= 0 {
		return 0, fmt.Errorf("model: %s has zero compromise probability", sys.Name())
	}
	c := markov.NewChain()
	healthy := c.AddState("healthy", false)
	dead := c.AddState("compromised", true)
	if err := c.SetTransition(healthy, dead, p); err != nil {
		return 0, err
	}
	if err := c.SetTransition(healthy, healthy, 1-p); err != nil {
		return 0, err
	}
	steps, err := c.ExpectedSteps(healthy)
	if err != nil {
		return 0, err
	}
	// ExpectedSteps counts the compromising step itself; EL counts whole
	// steps that elapse before it.
	return steps - 1, nil
}

// sampleTierHits draws how many of a tier's k distinct keys are uncovered
// by ω distinct probes into a χ-sized space — one hypergeometric sample,
// drawn by direct simulation of the k key positions.
//
// Duplicate rejection scans a small fixed-size array rather than a map: the
// tiers evaluated here hold k ≤ 4 keys, and the linear scan keeps the whole
// sample allocation-free (the O(k²) scan only matters for k far beyond any
// tier size in this repository). The probe sequence consumed from rng is
// identical to the former map-based implementation.
func sampleTierHits(src xrand.Source, chi uint64, k int, omega uint64) (int, error) {
	if uint64(k) > chi {
		return 0, fmt.Errorf("model: %d keys exceed χ=%d", k, chi)
	}
	// Draw k distinct positions in [0, χ); count how many land in the
	// probed window [0, ω). Rejection sampling is cheap for k ≪ χ.
	var buf [smallTierKeys]uint64
	positions := buf[:0]
	hits := 0
	for len(positions) < k {
		pos := src.Uint64n(chi)
		if containsUint64(positions, pos) {
			continue
		}
		positions = append(positions, pos)
		if pos < omega {
			hits++
		}
	}
	return hits, nil
}

// smallTierKeys sizes the stack buffers used when sampling distinct key
// positions; every tier in the paper holds at most 4 keys, so 8 leaves
// ample headroom before append spills to the heap.
const smallTierKeys = 8

// containsUint64 reports whether xs holds v — the duplicate check for the
// tiny distinct-position samples above.
func containsUint64(xs []uint64, v uint64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
