package model

import (
	"errors"
	"math"
	"testing"

	"fortress/internal/xrand"
)

func TestS2SOAnalyticMatchesMonteCarlo(t *testing.T) {
	rng := xrand.New(8888)
	for _, tc := range []struct {
		alpha, kappa float64
	}{
		{0.001, 0},
		{0.001, 0.5},
		{0.001, 1},
		{0.01, 0.3},
		{0.005, 0.9},
	} {
		p := DefaultParams(tc.alpha, tc.kappa)
		analytic, err := S2SO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatalf("α=%v κ=%v: %v", tc.alpha, tc.kappa, err)
		}
		est, err := EstimateSO(S2SO{P: p}, 200000, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		// The analytic form treats the indirect stream continuously while
		// the sampler quantizes positions to whole probes, so allow the CI
		// plus a small discretization margin.
		if math.Abs(est.EL-analytic) > 4*est.CI95+0.01*analytic+1 {
			t.Errorf("α=%v κ=%v: MC %v ± %v vs analytic %v",
				tc.alpha, tc.kappa, est.EL, est.CI95, analytic)
		}
	}
}

func TestS2SOAnalyticHorizonGuard(t *testing.T) {
	// α = 1e-5 means ω = 1 and a 2¹⁶-step horizon: the O(T²) sum is
	// declined in favour of Monte-Carlo.
	_, err := S2SO{P: DefaultParams(0.00001, 0.5)}.AnalyticEL()
	if !errors.Is(err, ErrAnalyticUnavailable) {
		t.Fatalf("want ErrAnalyticUnavailable, got %v", err)
	}
}

func TestS2SOAnalyticKappaMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, kappa := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := DefaultParams(0.001, kappa)
		el, err := S2SO{P: p}.AnalyticEL()
		if err != nil {
			t.Fatal(err)
		}
		if el > prev+1e-9 {
			t.Fatalf("EL rose with κ at %v: %v > %v", kappa, el, prev)
		}
		prev = el
	}
}

func TestS2SOAnalyticAgainstE4Numbers(t *testing.T) {
	// The Monte-Carlo E4 table (EXPERIMENTS.md) pinned EL(S2SO) ≈ 595.2 at
	// α=0.001, κ=0 and ≈ 339.7 at κ=1; the analytic path must land there.
	p0 := DefaultParams(0.001, 0)
	el0, err := S2SO{P: p0}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(el0-595) > 8 {
		t.Errorf("EL(S2SO, κ=0) analytic = %v, MC table says ≈ 595", el0)
	}
	p1 := DefaultParams(0.001, 1)
	el1, err := S2SO{P: p1}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(el1-340) > 8 {
		t.Errorf("EL(S2SO, κ=1) analytic = %v, MC table says ≈ 340", el1)
	}
}
