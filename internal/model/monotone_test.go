package model

import (
	"errors"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

// analyticELOrMC returns the best EL for the property tests below.
func analyticELOrMC(sys System, rng *xrand.RNG) (float64, error) {
	el, err := sys.AnalyticEL()
	if err == nil {
		return el, nil
	}
	if !errors.Is(err, ErrAnalyticUnavailable) {
		return 0, err
	}
	ls, ok := sys.(LifetimeSystem)
	if !ok {
		return 0, err
	}
	est, err := EstimateSO(ls, 40000, rng)
	if err != nil {
		return 0, err
	}
	return est.EL, nil
}

// Property: for every system, a stronger attacker (larger α) never extends
// the expected lifetime. Checked across random (α, κ) pairs.
func TestELMonotoneInAlphaProperty(t *testing.T) {
	rng := xrand.New(424242)
	prop := func(aRaw, kRaw uint16) bool {
		// α pairs in [1e-4, 1e-2], a strictly above b by at least one probe.
		lo := 0.0001 + float64(aRaw%800)/100000.0
		hi := lo * (1.5 + float64(aRaw%7))
		if hi > 0.01 {
			hi = 0.01
		}
		if hi <= lo {
			return true
		}
		kappa := float64(kRaw%11) / 10
		pLo := DefaultParams(lo, kappa)
		pHi := DefaultParams(hi, kappa)
		if pLo.Omega() >= pHi.Omega() {
			return true // rounding collapsed the pair; nothing to compare
		}
		systems := func(p Params) []System {
			return []System{S0PO{P: p}, S1PO{P: p}, S2PO{P: p}, S0SO{P: p}, S1SO{P: p}, S2SO{P: p}}
		}
		weak := systems(pLo)
		strong := systems(pHi)
		for i := range weak {
			elWeak, err := analyticELOrMC(weak[i], rng.Split())
			if err != nil {
				return false
			}
			elStrong, err := analyticELOrMC(strong[i], rng.Split())
			if err != nil {
				return false
			}
			// Allow a whisker of MC noise on the S2SO fallback path.
			if elStrong > elWeak*1.02+1 {
				t.Logf("%s: EL(α=%v)=%v < EL(α=%v)=%v", weak[i].Name(), lo, elWeak, hi, elStrong)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the §6 chain's PO segment (S0PO ≥ S2PO ≥ S1PO for κ ≤ 0.9)
// holds across random admissible parameters, not just the grid points the
// figures use.
func TestPOChainProperty(t *testing.T) {
	prop := func(aRaw, kRaw uint16) bool {
		alpha := 0.0001 + float64(aRaw%9900)/1000000.0 // [1e-4, ~1e-2]
		kappa := float64(kRaw%10) / 10                 // [0, 0.9]
		p := DefaultParams(alpha, kappa)
		s0, err := S0PO{P: p}.AnalyticEL()
		if err != nil {
			return false
		}
		s2, err := S2PO{P: p}.AnalyticEL()
		if err != nil {
			return false
		}
		s1, err := S1PO{P: p}.AnalyticEL()
		if err != nil {
			return false
		}
		if kappa == 0 {
			// At κ=0 the S0PO-vs-S2PO order reverses; only S2PO ≥ S1PO is
			// universal here.
			return s2 >= s1
		}
		return s0 >= s2 && s2 >= s1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
