package model

import (
	"sync"
	"testing"
)

// TestSOSurvivalELCachedMatchesFresh: the memoized value must be bit-identical
// to a fresh computation, for a spread of parameter tuples, on first and
// repeated lookups.
func TestSOSurvivalELCachedMatchesFresh(t *testing.T) {
	cases := []struct {
		chi   uint64
		k, f  int
		omega uint64
	}{
		{1 << 16, 1, 0, 65},
		{1 << 16, 4, 1, 655},
		{1 << 12, 4, 1, 40},
		{997, 3, 1, 10},
	}
	for _, c := range cases {
		fresh, err := soSurvivalEL(c.chi, c.k, c.f, c.omega)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := soSurvivalELCached(c.chi, c.k, c.f, c.omega)
			if err != nil {
				t.Fatal(err)
			}
			if got != fresh {
				t.Fatalf("cached soSurvivalEL(%+v) pass %d = %v, fresh = %v", c, pass, got, fresh)
			}
		}
	}
}

// TestHypergeomTailCachedMatchesFresh covers the S0PO step-probability cache.
func TestHypergeomTailCachedMatchesFresh(t *testing.T) {
	fresh, err := hypergeomTail(1<<16, 4, 655, 2)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := hypergeomTailCached(1<<16, 4, 655, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh {
			t.Fatalf("cached tail pass %d = %v, fresh = %v", pass, got, fresh)
		}
	}
}

// TestHypergeomTailCachedKeysDistinct: close-by tuples must not collide.
func TestHypergeomTailCachedKeysDistinct(t *testing.T) {
	a, err := hypergeomTailCached(1<<12, 4, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hypergeomTailCached(1<<12, 4, 41, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("distinct tuples returned identical tails %v — key collision?", a)
	}
}

// TestS2POStepProbCached: repeated and concurrent StepCompromiseProb calls
// return the same bits the first computation produced. Run with -race this
// also exercises the cache's concurrent first-touch path, which the parallel
// sweep engine hits in production.
func TestS2POStepProbCached(t *testing.T) {
	sys := S2PO{P: DefaultParams(0.003, 0.7)}
	want, err := sys.StepCompromiseProb()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got, err := sys.StepCompromiseProb()
				if err != nil {
					errs[g] = err
					return
				}
				if got != want {
					errs[g] = errMismatch{got, want}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type errMismatch struct{ got, want float64 }

func (e errMismatch) Error() string {
	return "cached step probability diverged"
}

// TestAnalyticELCachedAcrossSystems: the user-visible property — calling
// AnalyticEL twice on SO systems yields identical values (via the cache) and
// agrees with the direct summation.
func TestAnalyticELCachedAcrossSystems(t *testing.T) {
	p := DefaultParams(0.01, 0.5)
	for _, sys := range []System{S1SO{P: p}, S0SO{P: p}, S0PO{P: p}} {
		first, err := sys.AnalyticEL()
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		second, err := sys.AnalyticEL()
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if first != second {
			t.Fatalf("%s: AnalyticEL not stable across calls: %v vs %v", sys.Name(), first, second)
		}
	}
}
