package model

import (
	"fmt"
	"math"

	"fortress/internal/stats"
	"fortress/internal/xrand"
)

// Estimate is a Monte-Carlo EL estimate with its 95% confidence half-width.
type Estimate struct {
	System string
	EL     float64
	CI95   float64
	Trials uint64
	// Method records how the estimate was produced ("step-hazard" for PO
	// systems, "lifetime" for SO systems).
	Method string
}

// String formats the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%s: EL %.6g ± %.3g (%s, n=%d)", e.System, e.EL, e.CI95, e.Method, e.Trials)
}

// Summary converts to a stats.Summary for interval comparisons.
func (e Estimate) Summary() stats.Summary {
	return stats.Summary{N: e.Trials, Mean: e.EL, CI95: e.CI95}
}

// stepSampler is the validation-hoisted fast path of a StepSystem: the six
// in-package systems expose their per-trial kernel separately from the
// parameter check so that hot loops validate once, not once per trial.
type stepSampler interface {
	params() Params
	stepOnce(src xrand.Source) (bool, error)
}

// lifetimeSampler is the validation-hoisted fast path of a LifetimeSystem.
type lifetimeSampler interface {
	params() Params
	lifetimeOnce(src xrand.Source) (uint64, error)
}

// stepFunc returns the per-trial step kernel for sys with parameter
// validation hoisted out of the loop. Systems outside this package fall back
// to SimulateStep, which validates per call.
func stepFunc(sys StepSystem) (func(xrand.Source) (bool, error), error) {
	if f, ok := sys.(stepSampler); ok {
		if err := f.params().Validate(); err != nil {
			return nil, fmt.Errorf("simulate %s: %w", sys.Name(), err)
		}
		return f.stepOnce, nil
	}
	return sys.SimulateStep, nil
}

// lifetimeFunc is stepFunc's counterpart for SO systems.
func lifetimeFunc(sys LifetimeSystem) (func(xrand.Source) (uint64, error), error) {
	if f, ok := sys.(lifetimeSampler); ok {
		if err := f.params().Validate(); err != nil {
			return nil, fmt.Errorf("simulate %s: %w", sys.Name(), err)
		}
		return f.lifetimeOnce, nil
	}
	return sys.SimulateLifetime, nil
}

// The shard kernels draw through an xrand.Block (size 0 selects xrand's
// tuned default): per-trial draws come out of a pre-generated Fill block
// instead of advancing the xoshiro state one value at a time, amortizing the
// per-call state loads and stores across the whole block. The served stream
// is identical to direct RNG use, so estimates are unchanged; the underlying
// generator merely ends up advanced to the next block boundary, which is
// harmless for the per-shard generators these kernels consume (split off
// per run and then discarded).

// POHits simulates `trials` independent unit time-steps and counts how many
// compromise the system — the raw material of a step-hazard estimate. It is
// the per-shard kernel of the parallel engine: hit counts from disjoint
// shards sum exactly, so a sharded run reproduces the single-threaded count.
func POHits(sys StepSystem, trials uint64, rng *xrand.RNG) (uint64, error) {
	step, err := stepFunc(sys)
	if err != nil {
		return 0, err
	}
	src := xrand.NewBlock(rng, 0)
	var hits uint64
	for i := uint64(0); i < trials; i++ {
		compromised, err := step(src)
		if err != nil {
			return 0, fmt.Errorf("simulate %s: %w", sys.Name(), err)
		}
		if compromised {
			hits++
		}
	}
	return hits, nil
}

// SOAccumulate samples `trials` whole lifetimes into a streaming
// accumulator — the per-shard kernel for SO systems. Shard accumulators are
// combined with stats.Accumulator.Merge in shard order.
func SOAccumulate(sys LifetimeSystem, trials uint64, rng *xrand.RNG) (stats.Accumulator, error) {
	var acc stats.Accumulator
	lifetime, err := lifetimeFunc(sys)
	if err != nil {
		return acc, err
	}
	src := xrand.NewBlock(rng, 0)
	for i := uint64(0); i < trials; i++ {
		life, err := lifetime(src)
		if err != nil {
			return acc, fmt.Errorf("simulate %s: %w", sys.Name(), err)
		}
		acc.Add(float64(life))
	}
	return acc, nil
}

// EstimateFromHits maps a step-hazard hit count to an EL estimate through
// EL = (1−p)/p with a delta-method confidence interval.
func EstimateFromHits(name string, hits, trials uint64) Estimate {
	p := float64(hits) / float64(trials)
	if hits == 0 {
		// No compromise observed: report a lower bound using the
		// rule-of-three upper bound on p.
		pUpper := 3 / float64(trials)
		return Estimate{
			System: name,
			EL:     math.Inf(1),
			CI95:   (1 - pUpper) / pUpper,
			Trials: trials,
			Method: "step-hazard",
		}
	}
	se := math.Sqrt(p * (1 - p) / float64(trials))
	el := (1 - p) / p
	// Delta method: d/dp[(1−p)/p] = −1/p².
	ci := 1.96 * se / (p * p)
	return Estimate{System: name, EL: el, CI95: ci, Trials: trials, Method: "step-hazard"}
}

// EstimateFromAccumulator converts accumulated lifetimes to an EL estimate.
func EstimateFromAccumulator(name string, acc stats.Accumulator) Estimate {
	s := acc.Summarize()
	return Estimate{System: name, EL: s.Mean, CI95: s.CI95, Trials: s.N, Method: "lifetime"}
}

// EstimatePO estimates the EL of a PO system by simulating `trials`
// independent unit time-steps, estimating the per-step compromise hazard p̂,
// and mapping through EL = (1−p)/p with a delta-method confidence interval.
//
// Re-randomization every step makes lifetimes exactly Geometric(p), so
// estimating p is statistically equivalent to — and enormously cheaper
// than — stepping through lifetimes that reach 10⁹ steps at small α.
func EstimatePO(sys StepSystem, trials uint64, rng *xrand.RNG) (Estimate, error) {
	if trials == 0 {
		return Estimate{}, fmt.Errorf("model: EstimatePO needs trials > 0")
	}
	hits, err := POHits(sys, trials, rng)
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromHits(sys.Name(), hits, trials), nil
}

// EstimateSO estimates the EL of an SO system by sampling whole lifetimes.
func EstimateSO(sys LifetimeSystem, trials uint64, rng *xrand.RNG) (Estimate, error) {
	if trials == 0 {
		return Estimate{}, fmt.Errorf("model: EstimateSO needs trials > 0")
	}
	acc, err := SOAccumulate(sys, trials, rng)
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromAccumulator(sys.Name(), acc), nil
}

// Estimator evaluates any of the six systems with the appropriate
// Monte-Carlo method.
func Estimator(sys System, trials uint64, rng *xrand.RNG) (Estimate, error) {
	switch s := sys.(type) {
	case StepSystem:
		return EstimatePO(s, trials, rng)
	case LifetimeSystem:
		return EstimateSO(s, trials, rng)
	default:
		return Estimate{}, fmt.Errorf("model: %s supports no Monte-Carlo method", sys.Name())
	}
}

// AllSystems instantiates the five Figure-1 systems plus S2SO for the given
// parameters, in the paper's resilience order (most resilient first,
// assuming κ > 0; see §6).
func AllSystems(p Params) []System {
	return []System{
		S0PO{P: p},
		S2PO{P: p},
		S1PO{P: p},
		S2SO{P: p},
		S1SO{P: p},
		S0SO{P: p},
	}
}
