package model

import (
	"fmt"
	"math"

	"fortress/internal/stats"
	"fortress/internal/xrand"
)

// Estimate is a Monte-Carlo EL estimate with its 95% confidence half-width.
type Estimate struct {
	System string
	EL     float64
	CI95   float64
	Trials uint64
	// Method records how the estimate was produced ("step-hazard" for PO
	// systems, "lifetime" for SO systems).
	Method string
}

// String formats the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%s: EL %.6g ± %.3g (%s, n=%d)", e.System, e.EL, e.CI95, e.Method, e.Trials)
}

// Summary converts to a stats.Summary for interval comparisons.
func (e Estimate) Summary() stats.Summary {
	return stats.Summary{N: e.Trials, Mean: e.EL, CI95: e.CI95}
}

// EstimatePO estimates the EL of a PO system by simulating `trials`
// independent unit time-steps, estimating the per-step compromise hazard p̂,
// and mapping through EL = (1−p)/p with a delta-method confidence interval.
//
// Re-randomization every step makes lifetimes exactly Geometric(p), so
// estimating p is statistically equivalent to — and enormously cheaper
// than — stepping through lifetimes that reach 10⁹ steps at small α.
func EstimatePO(sys StepSystem, trials uint64, rng *xrand.RNG) (Estimate, error) {
	if trials == 0 {
		return Estimate{}, fmt.Errorf("model: EstimatePO needs trials > 0")
	}
	var hits uint64
	for i := uint64(0); i < trials; i++ {
		compromised, err := sys.SimulateStep(rng)
		if err != nil {
			return Estimate{}, fmt.Errorf("simulate %s: %w", sys.Name(), err)
		}
		if compromised {
			hits++
		}
	}
	p := float64(hits) / float64(trials)
	if hits == 0 {
		// No compromise observed: report a lower bound using the
		// rule-of-three upper bound on p.
		pUpper := 3 / float64(trials)
		return Estimate{
			System: sys.Name(),
			EL:     math.Inf(1),
			CI95:   (1 - pUpper) / pUpper,
			Trials: trials,
			Method: "step-hazard",
		}, nil
	}
	se := math.Sqrt(p * (1 - p) / float64(trials))
	el := (1 - p) / p
	// Delta method: d/dp[(1−p)/p] = −1/p².
	ci := 1.96 * se / (p * p)
	return Estimate{System: sys.Name(), EL: el, CI95: ci, Trials: trials, Method: "step-hazard"}, nil
}

// EstimateSO estimates the EL of an SO system by sampling whole lifetimes.
func EstimateSO(sys LifetimeSystem, trials uint64, rng *xrand.RNG) (Estimate, error) {
	if trials == 0 {
		return Estimate{}, fmt.Errorf("model: EstimateSO needs trials > 0")
	}
	var acc stats.Accumulator
	for i := uint64(0); i < trials; i++ {
		life, err := sys.SimulateLifetime(rng)
		if err != nil {
			return Estimate{}, fmt.Errorf("simulate %s: %w", sys.Name(), err)
		}
		acc.Add(float64(life))
	}
	s := acc.Summarize()
	return Estimate{System: sys.Name(), EL: s.Mean, CI95: s.CI95, Trials: trials, Method: "lifetime"}, nil
}

// Estimator evaluates any of the six systems with the appropriate
// Monte-Carlo method.
func Estimator(sys System, trials uint64, rng *xrand.RNG) (Estimate, error) {
	switch s := sys.(type) {
	case StepSystem:
		return EstimatePO(s, trials, rng)
	case LifetimeSystem:
		return EstimateSO(s, trials, rng)
	default:
		return Estimate{}, fmt.Errorf("model: %s supports no Monte-Carlo method", sys.Name())
	}
}

// AllSystems instantiates the five Figure-1 systems plus S2SO for the given
// parameters, in the paper's resilience order (most resilient first,
// assuming κ > 0; see §6).
func AllSystems(p Params) []System {
	return []System{
		S0PO{P: p},
		S2PO{P: p},
		S1PO{P: p},
		S2SO{P: p},
		S1SO{P: p},
		S0SO{P: p},
	}
}
