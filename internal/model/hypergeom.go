package model

import (
	"fmt"
	"math"
)

// hypergeomPMF returns P(X = k) for X ~ Hypergeometric(N, K, n): the number
// of special items drawn when n items are drawn without replacement from a
// population of N containing K special items.
//
// It models one unit time-step of probing a tier whose replicas hold K
// distinct randomization keys out of χ = N possibilities with ω = n probes:
// X is how many of the tier's keys the step uncovers.
//
// Computed with an incremental product over min(k, n−k) factors — exact to
// floating-point precision for the small K used here, with no factorial
// overflow.
func hypergeomPMF(N, K, n uint64, k int) (float64, error) {
	if K > N || n > N {
		return 0, fmt.Errorf("model: hypergeometric needs K ≤ N and n ≤ N, got N=%d K=%d n=%d", N, K, n)
	}
	if k < 0 || uint64(k) > K || uint64(k) > n {
		return 0, nil
	}
	if n-uint64(k) > N-K {
		return 0, nil // not enough non-special items to fill the draw
	}
	// P(X=k) = C(K,k)·C(N−K,n−k)/C(N,n), evaluated in log space. The
	// log-gamma route is O(1), carries ~1e-12 relative error (more than
	// enough for per-step hazards down to α³ ≈ 10⁻¹⁵, which are used
	// multiplicatively, never in cancelling subtractions), and — unlike
	// the product/step-up recurrences — has no division-by-zero pathology
	// at the window boundaries where the non-special population runs out.
	logP := lchoose(K, uint64(k)) + lchoose(N-K, n-uint64(k)) - lchoose(N, n)
	p := math.Exp(logP)
	if p > 1 {
		p = 1
	}
	return p, nil
}

// lchoose returns ln C(n, k) via the log-gamma function.
func lchoose(n, k uint64) float64 {
	if k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n) + 1)
	ln2, _ := math.Lgamma(float64(k) + 1)
	ln3, _ := math.Lgamma(float64(n-k) + 1)
	return ln1 - ln2 - ln3
}

// hypergeomTail returns P(X ≥ k) for the same distribution.
func hypergeomTail(N, K, n uint64, k int) (float64, error) {
	var sum float64
	for j := k; uint64(j) <= K; j++ {
		p, err := hypergeomPMF(N, K, n, j)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// hypergeomPMFWindow returns P(X = k) for K special items among N when the
// first m items of a fixed random order have been examined — used by the SO
// analysis where the attacker's probe stream is one fixed pass over the key
// space. It is the same distribution with n = min(m, N).
func hypergeomPMFWindow(N, K, m uint64, k int) (float64, error) {
	if m > N {
		m = N
	}
	return hypergeomPMF(N, K, m, k)
}
