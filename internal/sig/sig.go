// Package sig implements the message authentication FORTRESS prescribes
// (§3): servers sign responses together with their index, proxies over-sign
// one authentic server response, and clients accept a response only if it
// carries two authentic signatures — one from a proxy they know and one from
// a server index they know.
//
// Ed25519 (crypto/ed25519, stdlib) provides the signatures.
package sig

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
)

var (
	// ErrBadSignature is returned when signature verification fails.
	ErrBadSignature = errors.New("sig: bad signature")
	// ErrUnknownSigner is returned when the signer is not in the verifier's
	// trusted set.
	ErrUnknownSigner = errors.New("sig: unknown signer")
)

// KeyPair is an Ed25519 signing identity.
type KeyPair struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewKeyPair generates a fresh identity.
func NewKeyPair() (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sig: generate key: %w", err)
	}
	return &KeyPair{pub: pub, priv: priv}, nil
}

// Public returns the verification key.
func (k *KeyPair) Public() ed25519.PublicKey { return k.pub }

// Sign returns the signature over msg.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.priv, msg)
}

// Verify checks sig over msg against pub.
func Verify(pub ed25519.PublicKey, msg, signature []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("sig: bad public key length %d", len(pub))
	}
	if !ed25519.Verify(pub, msg, signature) {
		return ErrBadSignature
	}
	return nil
}

// ServerResponse is a server's signed reply: the response body bound to the
// server's index (the paper: "Each server signs the response together with
// its index").
type ServerResponse struct {
	RequestID   string `json:"requestId"`
	Body        []byte `json:"body"`
	ServerIndex int    `json:"serverIndex"`
	Signature   []byte `json:"signature"`
}

// serverSigningBytes is the canonical byte string a server signs.
func serverSigningBytes(requestID string, body []byte, index int) []byte {
	var buf bytes.Buffer
	buf.WriteString("server-response\x00")
	buf.WriteString(requestID)
	buf.WriteByte(0)
	fmt.Fprintf(&buf, "%d", index)
	buf.WriteByte(0)
	buf.Write(body)
	return buf.Bytes()
}

// SignServerResponse builds a server-signed response.
func SignServerResponse(k *KeyPair, requestID string, body []byte, serverIndex int) ServerResponse {
	return ServerResponse{
		RequestID:   requestID,
		Body:        append([]byte(nil), body...),
		ServerIndex: serverIndex,
		Signature:   k.Sign(serverSigningBytes(requestID, body, serverIndex)),
	}
}

// VerifyServerResponse checks the server signature against pub.
func VerifyServerResponse(pub ed25519.PublicKey, r ServerResponse) error {
	return Verify(pub, serverSigningBytes(r.RequestID, r.Body, r.ServerIndex), r.Signature)
}

// DoublySigned is a proxy's over-signed forwarding of one authentic server
// response. Clients require both signatures to verify.
type DoublySigned struct {
	Response  ServerResponse `json:"response"`
	ProxyID   string         `json:"proxyId"`
	Signature []byte         `json:"signature"`
}

// proxySigningBytes is the canonical byte string a proxy signs: the entire
// server response (including the server's signature), bound to the proxy ID,
// so a tampered inner response invalidates the outer signature too.
func proxySigningBytes(r ServerResponse, proxyID string) ([]byte, error) {
	inner, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("sig: marshal inner response: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString("proxy-oversign\x00")
	buf.WriteString(proxyID)
	buf.WriteByte(0)
	buf.Write(inner)
	return buf.Bytes(), nil
}

// OverSign wraps a server response in a proxy signature.
func OverSign(k *KeyPair, proxyID string, r ServerResponse) (DoublySigned, error) {
	msg, err := proxySigningBytes(r, proxyID)
	if err != nil {
		return DoublySigned{}, err
	}
	return DoublySigned{Response: r, ProxyID: proxyID, Signature: k.Sign(msg)}, nil
}

// VerifierSet is what a FORTRESS client learns from the trusted name server:
// proxy public keys by proxy ID, and server public keys by index.
type VerifierSet struct {
	Proxies map[string]ed25519.PublicKey
	Servers map[int]ed25519.PublicKey
}

// NewVerifierSet returns an empty verifier set.
func NewVerifierSet() *VerifierSet {
	return &VerifierSet{
		Proxies: make(map[string]ed25519.PublicKey),
		Servers: make(map[int]ed25519.PublicKey),
	}
}

// VerifyDoublySigned performs the client-side acceptance check of §3: the
// outer signature must verify under a known proxy key and the inner one
// under the known key for the claimed server index.
func (v *VerifierSet) VerifyDoublySigned(d DoublySigned) error {
	proxyPub, ok := v.Proxies[d.ProxyID]
	if !ok {
		return fmt.Errorf("proxy %q: %w", d.ProxyID, ErrUnknownSigner)
	}
	msg, err := proxySigningBytes(d.Response, d.ProxyID)
	if err != nil {
		return err
	}
	if err := Verify(proxyPub, msg, d.Signature); err != nil {
		return fmt.Errorf("proxy %q over-signature: %w", d.ProxyID, err)
	}
	serverPub, ok := v.Servers[d.Response.ServerIndex]
	if !ok {
		return fmt.Errorf("server index %d: %w", d.Response.ServerIndex, ErrUnknownSigner)
	}
	if err := VerifyServerResponse(serverPub, d.Response); err != nil {
		return fmt.Errorf("server %d signature: %w", d.Response.ServerIndex, err)
	}
	return nil
}
