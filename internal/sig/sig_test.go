package sig

import (
	"errors"
	"testing"
	"testing/quick"
)

func pair(t *testing.T) *KeyPair {
	t.Helper()
	k, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSignVerify(t *testing.T) {
	k := pair(t)
	msg := []byte("attack at dawn")
	s := k.Sign(msg)
	if err := Verify(k.Public(), msg, s); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	k := pair(t)
	msg := []byte("attack at dawn")
	s := k.Sign(msg)
	msg[0] ^= 1
	if err := Verify(k.Public(), msg, s); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	k1, k2 := pair(t), pair(t)
	msg := []byte("msg")
	if err := Verify(k2.Public(), msg, k1.Sign(msg)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsBadKeyLength(t *testing.T) {
	if err := Verify([]byte{1, 2, 3}, []byte("m"), []byte("s")); err == nil {
		t.Fatal("short public key accepted")
	}
}

func TestServerResponseRoundTrip(t *testing.T) {
	k := pair(t)
	r := SignServerResponse(k, "req-1", []byte("result"), 2)
	if err := VerifyServerResponse(k.Public(), r); err != nil {
		t.Fatal(err)
	}
	if r.ServerIndex != 2 || r.RequestID != "req-1" || string(r.Body) != "result" {
		t.Fatalf("fields mangled: %+v", r)
	}
}

func TestServerResponseBindsIndex(t *testing.T) {
	k := pair(t)
	r := SignServerResponse(k, "req-1", []byte("result"), 2)
	r.ServerIndex = 3 // a compromised proxy relabeling the signer
	if err := VerifyServerResponse(k.Public(), r); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("index swap not caught: %v", err)
	}
}

func TestServerResponseBindsRequestID(t *testing.T) {
	k := pair(t)
	r := SignServerResponse(k, "req-1", []byte("result"), 2)
	r.RequestID = "req-9" // replaying a response for a different request
	if err := VerifyServerResponse(k.Public(), r); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("request-id swap not caught: %v", err)
	}
}

func TestServerResponseBindsBody(t *testing.T) {
	k := pair(t)
	r := SignServerResponse(k, "req-1", []byte("result"), 2)
	r.Body = []byte("forged")
	if err := VerifyServerResponse(k.Public(), r); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("body swap not caught: %v", err)
	}
}

func TestSignServerResponseCopiesBody(t *testing.T) {
	k := pair(t)
	body := []byte("abc")
	r := SignServerResponse(k, "req", body, 0)
	body[0] = 'z'
	if string(r.Body) != "abc" {
		t.Fatal("response aliases caller's buffer")
	}
}

func TestDoubleSignatureAcceptance(t *testing.T) {
	serverKey, proxyKey := pair(t), pair(t)
	vs := NewVerifierSet()
	vs.Servers[1] = serverKey.Public()
	vs.Proxies["p0"] = proxyKey.Public()

	inner := SignServerResponse(serverKey, "r", []byte("ok"), 1)
	d, err := OverSign(proxyKey, "p0", inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.VerifyDoublySigned(d); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSignatureRejectsUnknownProxy(t *testing.T) {
	serverKey, proxyKey := pair(t), pair(t)
	vs := NewVerifierSet()
	vs.Servers[1] = serverKey.Public()
	// proxy key NOT registered
	inner := SignServerResponse(serverKey, "r", []byte("ok"), 1)
	d, err := OverSign(proxyKey, "p0", inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.VerifyDoublySigned(d); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("want ErrUnknownSigner, got %v", err)
	}
}

func TestDoubleSignatureRejectsUnknownServerIndex(t *testing.T) {
	serverKey, proxyKey := pair(t), pair(t)
	vs := NewVerifierSet()
	vs.Proxies["p0"] = proxyKey.Public()
	vs.Servers[1] = serverKey.Public()
	inner := SignServerResponse(serverKey, "r", []byte("ok"), 7) // index 7 unknown
	d, err := OverSign(proxyKey, "p0", inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.VerifyDoublySigned(d); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("want ErrUnknownSigner, got %v", err)
	}
}

func TestDoubleSignatureRejectsForgedInner(t *testing.T) {
	// A compromised proxy cannot forge a server response: it can over-sign,
	// but the inner signature fails under the real server key.
	serverKey, proxyKey, attackerKey := pair(t), pair(t), pair(t)
	vs := NewVerifierSet()
	vs.Servers[1] = serverKey.Public()
	vs.Proxies["p0"] = proxyKey.Public()

	forged := SignServerResponse(attackerKey, "r", []byte("lies"), 1)
	d, err := OverSign(proxyKey, "p0", forged)
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.VerifyDoublySigned(d); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged inner response accepted: %v", err)
	}
}

func TestDoubleSignatureRejectsTamperedInnerAfterOverSign(t *testing.T) {
	serverKey, proxyKey := pair(t), pair(t)
	vs := NewVerifierSet()
	vs.Servers[1] = serverKey.Public()
	vs.Proxies["p0"] = proxyKey.Public()
	inner := SignServerResponse(serverKey, "r", []byte("ok"), 1)
	d, err := OverSign(proxyKey, "p0", inner)
	if err != nil {
		t.Fatal(err)
	}
	d.Response.Body = []byte("swapped") // tamper after over-signing
	if err := vs.VerifyDoublySigned(d); err == nil {
		t.Fatal("tampered inner accepted")
	}
}

func TestDoubleSignatureRejectsProxyIDSwap(t *testing.T) {
	serverKey, p0, p1 := pair(t), pair(t), pair(t)
	vs := NewVerifierSet()
	vs.Servers[1] = serverKey.Public()
	vs.Proxies["p0"] = p0.Public()
	vs.Proxies["p1"] = p1.Public()
	inner := SignServerResponse(serverKey, "r", []byte("ok"), 1)
	d, err := OverSign(p0, "p0", inner)
	if err != nil {
		t.Fatal(err)
	}
	d.ProxyID = "p1" // claim another proxy signed it
	if err := vs.VerifyDoublySigned(d); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("proxy-id swap not caught: %v", err)
	}
}

// Property: round-trip holds for arbitrary bodies and indices.
func TestSignVerifyProperty(t *testing.T) {
	serverKey, proxyKey := pair(t), pair(t)
	vs := NewVerifierSet()
	vs.Proxies["p"] = proxyKey.Public()
	prop := func(body []byte, idxRaw uint8, reqID string) bool {
		idx := int(idxRaw)
		vs.Servers[idx] = serverKey.Public()
		inner := SignServerResponse(serverKey, reqID, body, idx)
		d, err := OverSign(proxyKey, "p", inner)
		if err != nil {
			return false
		}
		return vs.VerifyDoublySigned(d) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignServerResponse(b *testing.B) {
	k, err := NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	body := []byte("a typical small response body")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SignServerResponse(k, "req", body, 1)
	}
}

func BenchmarkVerifyDoublySigned(b *testing.B) {
	serverKey, err := NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	proxyKey, err := NewKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	vs := NewVerifierSet()
	vs.Servers[1] = serverKey.Public()
	vs.Proxies["p"] = proxyKey.Public()
	inner := SignServerResponse(serverKey, "req", []byte("body"), 1)
	d, err := OverSign(proxyKey, "p", inner)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vs.VerifyDoublySigned(d); err != nil {
			b.Fatal(err)
		}
	}
}
