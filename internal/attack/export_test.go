package attack

import (
	"fortress/internal/exploit"
	"fortress/internal/keyspace"
)

// exploitParse re-exports exploit.Parse for tests.
func exploitParse(raw []byte) (keyspace.Key, exploit.Tier, bool) {
	return exploit.Parse(raw)
}
