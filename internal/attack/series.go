package attack

import (
	"errors"
	"fmt"

	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/sim"
	"fortress/internal/stats"
	"fortress/internal/workload"
	"fortress/internal/xrand"
)

// SeriesConfig tunes a parallel series of independent campaign repetitions.
type SeriesConfig struct {
	// Campaign is the per-repetition attack configuration. Its Injector
	// must be nil — one injector is bound to one deployment, so per-rep
	// injectors come from MakeInjector below.
	Campaign CampaignConfig
	// Workers bounds how many repetitions run concurrently through
	// sim.ForEach. It never affects results — repetitions are fully
	// isolated and their random streams are pre-split in repetition order —
	// only wall-clock time. Zero or negative selects runtime.GOMAXPROCS(0).
	// Campaign repetitions are latency-bound (heartbeats, recovery and
	// teardown waits inside each live deployment), so Workers above the
	// core count still buys wall-clock time by overlapping those waits.
	Workers int
	// MakeInjector, when non-nil, builds a fault injector for each
	// repetition, bound to that repetition's freshly deployed system; rng
	// is split from the repetition's own pre-split stream, so fault
	// schedules never break the bit-identical-at-any-Workers contract.
	MakeInjector func(rep int, sys *fortress.System, rng *xrand.RNG) StepInjector
	// Customize, when non-nil, edits each repetition's deployment config
	// after the template copy and the per-repetition Seed/Net substitution,
	// just before the system is built. It is the hook for per-repetition
	// resources that a shared template cannot carry — most notably a
	// StoreFactory rooting each repetition's durable stores in its own
	// directory.
	Customize func(rep int, cfg *fortress.Config)
}

// SeriesResult aggregates n campaign repetitions.
type SeriesResult struct {
	// Reps is the number of repetitions run.
	Reps uint64
	// Compromised counts repetitions that fell within the horizon.
	Compromised uint64
	// Routes histograms the compromise routes observed.
	Routes map[string]uint64
	// Lifetime summarizes the empirical lifetimes (StepsElapsed) across all
	// repetitions, folded in repetition order.
	Lifetime stats.Summary
	// Availability summarizes per-repetition availability fractions
	// (CampaignResult.Availability) across the repetitions that measured
	// it, folded in repetition order. Zero-valued when no repetition ran
	// with MeasureAvailability.
	Availability stats.Summary
	// ShardAvailability summarizes per-replica-group availability across
	// repetitions, indexed by group and folded in repetition order. Nil
	// unless the campaigns ran sharded (fortress.Config.Groups > 1) with
	// MeasureAvailability.
	ShardAvailability []stats.Summary
	// Requests, RequestsOK and ReadRequests total the workload requests
	// resolved across all repetitions.
	Requests     uint64
	RequestsOK   uint64
	ReadRequests uint64
	// Latency merges every repetition's virtual-latency histogram in
	// repetition order (bucket merges are element-wise adds, so the fold
	// is order-independent anyway); ShardLatency is the per-replica-group
	// breakdown, nil unless the campaigns ran sharded. Zero-valued/empty
	// when no repetition measured.
	Latency      workload.Hist
	ShardLatency []workload.Hist
	// Results holds every repetition's outcome, in repetition order.
	Results []CampaignResult
}

// CampaignSeries runs n independent repetitions of a de-randomization
// campaign and merges their outcomes — the live-system counterpart of the
// Monte-Carlo engine's sharded trials, with the same determinism contract:
// the merged result is bit-identical at any Workers value.
//
// Each repetition is a fully isolated deployment: its own netsim.Network,
// its own fortress.System built from tmpl (with Space, a derived Seed and
// the private network substituted in), and its own attacker randomness. The
// n random streams are pre-split from rng in repetition order before any
// repetition runs, so scheduling cannot leak into the results; per-rep
// lifetime values are folded into one accumulator in repetition order, so
// the floating-point summary is reduction-order-stable too.
func CampaignSeries(tmpl fortress.Config, space *keyspace.Space, cfg SeriesConfig, n int, rng *xrand.RNG) (SeriesResult, error) {
	if n <= 0 {
		return SeriesResult{}, errors.New("attack: series needs at least one repetition")
	}
	if err := cfg.Campaign.validate(); err != nil {
		return SeriesResult{}, err
	}
	if cfg.Campaign.Injector != nil {
		return SeriesResult{}, errors.New("attack: series template must not carry an injector; use MakeInjector")
	}
	rngs := sim.SplitRNGs(rng, n)
	results := make([]CampaignResult, n)
	err := sim.ForEach(n, cfg.Workers, func(i int) error {
		repRNG := rngs[i]
		c := tmpl
		c.Space = space
		c.Seed = repRNG.Uint64()
		// Leave Net nil: fortress.New builds the private per-repetition
		// network itself, wiring its drop counters onto the repetition's
		// registry when Customize installs one (fortress.Config.Metrics).
		c.Net = nil
		if cfg.Customize != nil {
			cfg.Customize(i, &c)
		}
		sys, err := fortress.New(c)
		if err != nil {
			return fmt.Errorf("attack: series repetition %d deploy: %w", i, err)
		}
		defer sys.Stop()
		camp := cfg.Campaign
		if cfg.MakeInjector != nil {
			// Split before the campaign runs so the injector's stream layout
			// is a pure function of the repetition, like everything else.
			camp.Injector = cfg.MakeInjector(i, sys, repRNG.Split())
		}
		res, err := Campaign(sys, space, camp, repRNG)
		if err != nil {
			return fmt.Errorf("attack: series repetition %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return SeriesResult{}, err
	}

	out := SeriesResult{
		Reps:    uint64(n),
		Routes:  make(map[string]uint64),
		Results: results,
	}
	var acc, avail stats.Accumulator
	var shardAcc []stats.Accumulator
	for _, r := range results {
		acc.Add(float64(r.StepsElapsed))
		if r.ProbedSteps > 0 {
			avail.Add(r.Availability())
		}
		for g, a := range r.ShardAvailabilities() {
			if shardAcc == nil {
				shardAcc = make([]stats.Accumulator, len(r.ShardProbedSteps))
			}
			if r.ShardProbedSteps[g] > 0 {
				shardAcc[g].Add(a)
			}
		}
		out.Requests += r.Requests
		out.RequestsOK += r.RequestsOK
		out.ReadRequests += r.ReadRequests
		out.Latency.Merge(r.Latency)
		for g, h := range r.ShardLatency {
			if out.ShardLatency == nil {
				out.ShardLatency = make([]workload.Hist, len(r.ShardLatency))
			}
			out.ShardLatency[g].Merge(h)
		}
		if r.Compromised {
			out.Compromised++
			out.Routes[r.Route]++
		}
	}
	out.Lifetime = acc.Summarize()
	out.Availability = avail.Summarize()
	for _, a := range shardAcc {
		out.ShardAvailability = append(out.ShardAvailability, a.Summarize())
	}
	return out, nil
}
