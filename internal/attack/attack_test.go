package attack

import (
	"testing"
	"time"

	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/memlayout"
	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/stats"
	"fortress/internal/xrand"
)

func space(t *testing.T, chi uint64) *keyspace.Space {
	t.Helper()
	s, err := keyspace.NewSpace(chi)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDerandomizeSucceeds(t *testing.T) {
	s := space(t, 1024)
	rng := xrand.New(1)
	daemon := memlayout.NewForkingDaemon(s, rng.Split())
	res, err := Derandomize(s, daemon, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compromised {
		t.Fatal("attack failed")
	}
	if res.ProbesUsed >= s.Chi() {
		t.Fatalf("needed %d probes for χ=%d", res.ProbesUsed, s.Chi())
	}
	if daemon.Respawns() != res.ProbesUsed {
		t.Fatalf("respawns %d != probes %d — crash accounting wrong", daemon.Respawns(), res.ProbesUsed)
	}
}

func TestDerandomizeMeanProbes(t *testing.T) {
	// Phase-1 cost averages (χ+1)/2 probes — the [10, 12] result.
	s := space(t, 256)
	rng := xrand.New(2)
	var acc stats.Accumulator
	const trials = 400
	for i := 0; i < trials; i++ {
		daemon := memlayout.NewForkingDaemon(s, rng.Split())
		res, err := Derandomize(s, daemon, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(float64(res.ProbesUsed))
	}
	sum := acc.Summarize()
	want := (float64(s.Chi()) + 1) / 2
	if !sum.Contains(want, 4) {
		t.Fatalf("mean probes %v, want ~%v", sum, want)
	}
}

func TestDerandomizeOverNetwork(t *testing.T) {
	// Full network loop: victim is a forking service behind a netsim
	// listener; a wrong-key probe crashes the child (closing the
	// attacker's connection — the oracle) and the daemon loop brings a
	// fresh child, same key, back up for the next probe.
	s := space(t, 128)
	rng := xrand.New(3)
	net := netsim.NewNetwork()
	key := s.Draw(rng)

	stop := make(chan struct{})
	done := make(chan struct{})
	go runForkingVictim(net, "victim", key, stop, done)
	t.Cleanup(func() {
		close(stop)
		net.CrashAddr("victim")
		<-done
	})

	deliver := func(conn *netsim.Conn, probe []byte) error { return conn.Send(probe) }
	res, err := DerandomizeOverNetwork(s, net, "attacker", "victim", deliver, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compromised {
		t.Fatal("network attack failed")
	}
	if res.ProbesUsed >= s.Chi() {
		t.Fatalf("probes %d ≥ χ", res.ProbesUsed)
	}
}

// runForkingVictim is a forking daemon over the network: serve connections
// sequentially; when a probe crashes the child, tear the address down
// (closing the attacker's connection) and come back with a fresh child
// under the same key.
func runForkingVictim(net *netsim.Network, addr string, key keyspace.Key, stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		proc := memlayout.NewProcess(key)
		l, err := net.Listen(addr)
		if err != nil {
			return
		}
		crashed := false
		for !crashed {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed externally: daemon killed
			}
			for {
				raw, rerr := conn.Recv()
				if rerr != nil {
					conn.Close()
					break // attacker moved on; accept the next connection
				}
				guess, _, isProbe := exploitParse(raw)
				if !isProbe {
					_ = conn.Send([]byte("ok"))
					continue
				}
				res, derr := proc.DeliverExploit(guess)
				if derr != nil || res == memlayout.ProbeCrashed {
					// Child died: the whole address goes away, observably.
					net.CrashAddr(addr)
					l.Close()
					crashed = true
					break
				}
				_ = conn.Send([]byte("pwned"))
			}
		}
	}
}

func TestCampaignConfigValidation(t *testing.T) {
	sys := buildFortress(t, 64, 0)
	s := space(t, 64)
	if _, err := Campaign(sys, s, CampaignConfig{}, xrand.New(1)); err == nil {
		t.Fatal("zero MaxSteps accepted")
	}
	if _, err := Campaign(sys, s, CampaignConfig{MaxSteps: 1}, xrand.New(1)); err == nil {
		t.Fatal("zero budgets accepted")
	}
}

func buildFortress(t *testing.T, chi uint64, detectorThreshold int) *fortress.System {
	t.Helper()
	sp := space(t, chi)
	cfg := fortress.Config{
		Servers:           3,
		Proxies:           3,
		Space:             sp,
		Seed:              11,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  30 * time.Millisecond,
		ServerTimeout:     250 * time.Millisecond,
	}
	if detectorThreshold > 0 {
		cfg.DetectorWindow = time.Hour
		cfg.DetectorThreshold = detectorThreshold
	}
	sys, err := fortress.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

func TestCampaignCompromisesSOSystem(t *testing.T) {
	// Against a start-up-only system with a tiny key space, the campaign
	// must win: without-replacement probing exhausts χ quickly.
	sys := buildFortress(t, 32, 0)
	s := space(t, 32)
	res, err := Campaign(sys, s, CampaignConfig{
		OmegaDirect:   4,
		OmegaIndirect: 2,
		MaxSteps:      48,
		Rerandomize:   false,
	}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compromised {
		t.Fatalf("SO campaign failed within %d steps", res.StepsElapsed)
	}
	if res.Route == "" {
		t.Fatal("no route recorded")
	}
}

func TestCampaignRouteIsMeaningful(t *testing.T) {
	sys := buildFortress(t, 16, 0)
	s := space(t, 16)
	res, err := Campaign(sys, s, CampaignConfig{
		OmegaDirect:   2,
		OmegaIndirect: 1,
		MaxSteps:      40,
		Rerandomize:   false,
	}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compromised {
		t.Fatal("campaign failed")
	}
	switch res.Route {
	case "server-indirect", "server-launchpad", "all-proxies":
	default:
		t.Fatalf("unknown route %q", res.Route)
	}
	// The fortress's own status agrees.
	if !sys.Status().Compromised {
		t.Fatal("campaign claims compromise, system disagrees")
	}
}

func TestCampaignPOOutlivesSO(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial campaign comparison skipped in -short")
	}
	// Executable-stack validation of the §6 PO-vs-SO trend on a small χ:
	// with re-randomization the system survives longer on average.
	const chi = 24
	const trials = 8
	lifetime := func(rerandomize bool, seed uint64) uint64 {
		var total uint64
		for i := uint64(0); i < trials; i++ {
			sys := buildFortress(t, chi, 0)
			s := space(t, chi)
			res, err := Campaign(sys, s, CampaignConfig{
				OmegaDirect:   2,
				OmegaIndirect: 1,
				MaxSteps:      40,
				Rerandomize:   rerandomize,
			}, xrand.New(seed+i))
			if err != nil {
				t.Fatal(err)
			}
			total += res.StepsElapsed
			sys.Stop()
		}
		return total
	}
	so := lifetime(false, 100)
	po := lifetime(true, 200)
	if po <= so {
		t.Errorf("PO total lifetime %d ≤ SO total lifetime %d across %d trials", po, so, trials)
	}
}

func TestCampaignDetectorSlowsIndirectAttack(t *testing.T) {
	// With a strict detector, indirect probes get the attacker blocked;
	// the campaign then has to win through the proxy tier, which takes
	// longer on average (or fails within the horizon).
	sysOpen := buildFortress(t, 48, 0)
	sOpen := space(t, 48)
	open, err := Campaign(sysOpen, sOpen, CampaignConfig{
		OmegaDirect: 1, OmegaIndirect: 4, MaxSteps: 15, Rerandomize: false,
	}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sysGuard := buildFortress(t, 48, 2) // flag after 2 invalid requests
	sGuard := space(t, 48)
	guarded, err := Campaign(sysGuard, sGuard, CampaignConfig{
		OmegaDirect: 1, OmegaIndirect: 4, MaxSteps: 15, Rerandomize: false,
	}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !open.Compromised {
		t.Skip("open campaign did not finish; cannot compare")
	}
	if guarded.Compromised && guarded.StepsElapsed < open.StepsElapsed {
		t.Errorf("detector made the attack FASTER: %d vs %d steps",
			guarded.StepsElapsed, open.StepsElapsed)
	}
}
