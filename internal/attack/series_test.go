package attack

import (
	"reflect"
	"testing"
	"time"

	"fortress/internal/faults"
	"fortress/internal/fortress"
	"fortress/internal/service"
	"fortress/internal/xrand"
)

// seriesTemplate is a small, generously timed deployment so campaign
// repetitions finish fast without timing flakes under parallel load.
func seriesTemplate() fortress.Config {
	return fortress.Config{
		Servers:           2,
		Proxies:           2,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		ServerTimeout:     5 * time.Second,
	}
}

func TestCampaignSeriesValidation(t *testing.T) {
	s := space(t, 16)
	if _, err := CampaignSeries(seriesTemplate(), s, SeriesConfig{
		Campaign: CampaignConfig{OmegaDirect: 1, MaxSteps: 4},
	}, 0, xrand.New(1)); err == nil {
		t.Fatal("zero repetitions accepted")
	}
	if _, err := CampaignSeries(seriesTemplate(), s, SeriesConfig{}, 2, xrand.New(1)); err == nil {
		t.Fatal("invalid campaign config accepted")
	}
}

func TestCampaignSeriesAggregates(t *testing.T) {
	s := space(t, 16)
	res, err := CampaignSeries(seriesTemplate(), s, SeriesConfig{
		Campaign: CampaignConfig{OmegaDirect: 2, OmegaIndirect: 1, MaxSteps: 30},
		Workers:  2,
	}, 4, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 4 || len(res.Results) != 4 {
		t.Fatalf("reps = %d, results = %d, want 4", res.Reps, len(res.Results))
	}
	if res.Lifetime.N != 4 {
		t.Fatalf("lifetime summary over %d observations, want 4", res.Lifetime.N)
	}
	// χ=16 with ω=2+1 per step and a 30-step horizon: every repetition must
	// fall, and the recorded routes must account for every compromise.
	if res.Compromised != 4 {
		t.Fatalf("compromised %d/4 repetitions on a 16-key space", res.Compromised)
	}
	var routed uint64
	for route, count := range res.Routes {
		switch route {
		case "server-indirect", "server-launchpad", "all-proxies":
		default:
			t.Fatalf("unknown route %q", route)
		}
		routed += count
	}
	if routed != res.Compromised {
		t.Fatalf("routes account for %d compromises, want %d", routed, res.Compromised)
	}
}

// TestCampaignSeriesBitIdenticalAcrossWorkers is the acceptance-criteria
// contract: the merged series result — every field, including the
// floating-point lifetime summary — is bit-identical whether the
// repetitions run on 1, 2 or 8 workers.
func TestCampaignSeriesBitIdenticalAcrossWorkers(t *testing.T) {
	s := space(t, 16)
	run := func(workers int) SeriesResult {
		t.Helper()
		res, err := CampaignSeries(seriesTemplate(), s, SeriesConfig{
			Campaign: CampaignConfig{OmegaDirect: 2, OmegaIndirect: 1, MaxSteps: 24},
			Workers:  workers,
		}, 6, xrand.New(1234))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d series %+v differs from workers=1 %+v", workers, got, base)
		}
	}
}

// faultedTemplate shortens the server timeout below the failover timeout so
// that a request parked behind a severed or dead primary fails at the proxy
// on a clock that is a pure function of the schedule, never of load.
func faultedTemplate() fortress.Config {
	c := seriesTemplate()
	c.HeartbeatTimeout = 400 * time.Millisecond
	c.ServerTimeout = 150 * time.Millisecond
	return c
}

// TestCampaignSeriesWithInjectorBitIdentical extends the determinism
// contract to degraded networks: with an active fault schedule — a quorum
// cut plus a proxy outage replayed by a per-repetition injector — and
// per-step availability measurement on, the merged series result is still
// bit-identical at 1, 2 and 8 workers.
func TestCampaignSeriesWithInjectorBitIdentical(t *testing.T) {
	s := space(t, 16)
	sched := faults.Schedule{}.Append(
		faults.Partition(2, faults.ServerAddrs(2), faults.ProxyAddrs(2)),
		faults.CrashProxy(3, 1),
		faults.Heal(5, faults.ServerAddrs(2), faults.ProxyAddrs(2)),
		faults.RestartProxy(6, 1),
	)
	run := func(workers int) SeriesResult {
		t.Helper()
		res, err := CampaignSeries(faultedTemplate(), s, SeriesConfig{
			Campaign: CampaignConfig{
				OmegaDirect:         2,
				OmegaIndirect:       1,
				MaxSteps:            10,
				MeasureAvailability: true,
				HealthTimeout:       600 * time.Millisecond,
				ProbeTimeout:        2 * time.Second,
			},
			Workers: workers,
			MakeInjector: func(rep int, sys *fortress.System, rng *xrand.RNG) StepInjector {
				inj, err := faults.NewInjector(sched, sys, rng)
				if err != nil {
					t.Error(err)
					return nil
				}
				return inj
			},
		}, 4, xrand.New(321))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if base.Availability.N == 0 {
		t.Fatal("availability was not measured")
	}
	// The 3-step quorum cut must show up: no repetition can be fully
	// available unless it was compromised before the cut opened.
	for i, r := range base.Results {
		if r.ProbedSteps > 2 && r.AvailableSteps == r.ProbedSteps {
			t.Errorf("rep %d: fully available across a quorum cut (%d steps)", i, r.ProbedSteps)
		}
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d series %+v differs from workers=1 %+v", workers, got, base)
		}
	}
}

// TestCampaignSeriesRejectsSharedInjector pins the footgun: one injector is
// bound to one deployment, so the series template must not carry one.
func TestCampaignSeriesRejectsSharedInjector(t *testing.T) {
	s := space(t, 16)
	cfg := SeriesConfig{Campaign: CampaignConfig{OmegaDirect: 1, MaxSteps: 4}}
	cfg.Campaign.Injector = noopInjector{}
	if _, err := CampaignSeries(seriesTemplate(), s, cfg, 2, xrand.New(1)); err == nil {
		t.Fatal("series template with a shared injector accepted")
	}
}

type noopInjector struct{}

func (noopInjector) Advance(uint64) error { return nil }

// TestCampaignSeriesPOOutlivesSO checks the aggregated series reproduces the
// paper's headline trend on the executable stack: re-randomizing every step
// lengthens mean lifetime.
func TestCampaignSeriesPOOutlivesSO(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-repetition comparison skipped in -short")
	}
	s := space(t, 20)
	run := func(rerandomize bool) float64 {
		t.Helper()
		res, err := CampaignSeries(seriesTemplate(), s, SeriesConfig{
			Campaign: CampaignConfig{
				OmegaDirect:   2,
				OmegaIndirect: 1,
				MaxSteps:      40,
				Rerandomize:   rerandomize,
			},
			Workers: 4,
		}, 6, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return res.Lifetime.Mean
	}
	so := run(false)
	po := run(true)
	if po <= so {
		t.Errorf("PO mean lifetime %v ≤ SO mean lifetime %v across series", po, so)
	}
}
