// Package attack implements the attacker machinery of §2.1 and §4.2
// against the executable stack: the classic two-phase de-randomization
// attack over a direct connection (as in [10, 12]), and the full campaign
// against a FORTRESS deployment combining direct proxy probes, paced
// indirect server probes, and the captured-proxy launch pad.
package attack

import (
	"errors"
	"fmt"
	"math"
	"time"

	"fortress/internal/exploit"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/memlayout"
	"fortress/internal/metrics"
	"fortress/internal/netsim"
	"fortress/internal/proxy"
	"fortress/internal/workload"
	"fortress/internal/xrand"
)

// DirectResult reports a completed two-phase de-randomization attack
// against a directly accessible forking server.
type DirectResult struct {
	// ProbesUsed counts phase-1 probes (each one crashed a child).
	ProbesUsed uint64
	// Compromised reports phase-2 success.
	Compromised bool
}

// Derandomize runs the [10, 12] attack against a forking daemon the
// attacker can reach directly: probe candidate keys one by one — each
// wrong guess crashes a child, observably, and the daemon forks a fresh
// one — until a guess compromises the child.
func Derandomize(space *keyspace.Space, daemon *memlayout.ForkingDaemon, rng *xrand.RNG) (DirectResult, error) {
	guesser, err := keyspace.NewGuesser(space, rng)
	if err != nil {
		return DirectResult{}, fmt.Errorf("attack: %w", err)
	}
	var res DirectResult
	for {
		guess, ok := guesser.NextCandidate()
		if !ok {
			return res, errors.New("attack: key space exhausted without compromise")
		}
		outcome, err := daemon.DeliverExploit(guess)
		if err != nil {
			return res, fmt.Errorf("attack: deliver: %w", err)
		}
		if outcome == memlayout.ProbeCompromised {
			res.Compromised = true
			return res, nil
		}
		// ProbeCrashed: candidate eliminated, daemon forks a new child.
		res.ProbesUsed++
	}
}

// DerandomizeOverNetwork runs the same attack with the crash oracle
// realized over the network: the attacker dials the victim, delivers one
// probe, and watches whether its connection closes (victim crashed → wrong
// guess) or a reply arrives (right guess → compromised).
//
// deliver sends one exploit payload on the connection; it is the transport
// glue the caller provides (e.g. wrapping the payload in the victim's
// request format).
func DerandomizeOverNetwork(
	space *keyspace.Space,
	net *netsim.Network,
	attackerAddr, victimAddr string,
	deliver func(conn *netsim.Conn, probe []byte) error,
	rng *xrand.RNG,
) (DirectResult, error) {
	guesser, err := keyspace.NewGuesser(space, rng)
	if err != nil {
		return DirectResult{}, fmt.Errorf("attack: %w", err)
	}
	var res DirectResult
	for {
		guess, ok := guesser.NextCandidate()
		if !ok {
			return res, errors.New("attack: key space exhausted without compromise")
		}
		conn, err := dialWithRetry(net, attackerAddr, victimAddr)
		if err != nil {
			return res, fmt.Errorf("attack: dial victim: %w", err)
		}
		if err := deliver(conn, exploit.NewPayload(exploit.TierServer, guess)); err != nil {
			conn.Close()
			return res, fmt.Errorf("attack: deliver: %w", err)
		}
		// The crash oracle: victim death closes the connection before any
		// reply; survival produces a reply.
		reply, recvErr := conn.Recv()
		if recvErr == nil {
			netsim.Release(reply)
		}
		conn.Close()
		if recvErr == nil {
			res.Compromised = true
			return res, nil
		}
		res.ProbesUsed++
	}
}

// dialWithRetry dials the victim, retrying briefly: right after a crash the
// forking daemon needs a moment to bring the service back, and a real
// attacker simply reconnects until it does.
func dialWithRetry(net *netsim.Network, from, to string) (*netsim.Conn, error) {
	const (
		attempts = 500
		backoff  = time.Millisecond
	)
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial(from, to)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
	}
	return nil, lastErr
}

// --- FORTRESS campaign --------------------------------------------------

// StepInjector advances a fault-injection plan against the campaign's
// virtual clock. Campaign calls Advance(step) at the top of every unit
// time-step, before that step's probes, so an event scheduled at step t is
// in force for all of step t's traffic. faults.Injector implements it.
type StepInjector interface {
	Advance(step uint64) error
}

// CampaignConfig tunes a full attack on a FORTRESS deployment.
type CampaignConfig struct {
	// OmegaDirect is the probe budget per unit time-step for direct proxy
	// attacks (and for launch-pad server attacks once a proxy falls).
	OmegaDirect uint64
	// OmegaIndirect is the paced budget for server probes through proxies
	// (κ·ω in the model; the attacker throttles it to stay under the
	// detector threshold).
	OmegaIndirect uint64
	// MaxSteps bounds the campaign.
	MaxSteps uint64
	// Rerandomize re-randomizes the target after every step (PO) when
	// true; otherwise the system keeps its start-up keys (SO).
	Rerandomize bool
	// Injector, when non-nil, is advanced once per step with the step
	// number — the hook a fault schedule drives the network through.
	Injector StepInjector
	// MeasureAvailability makes the campaign issue one client health-check
	// request per step (before the step's probes) and count the steps in
	// which the service answered — the availability the paper's claims are
	// about, measured while the attack and any fault schedule run.
	MeasureAvailability bool
	// Workload declares the measurement workload (see internal/workload).
	// A non-zero Spec switches availability measurement on implicitly and
	// drives it: closed-loop specs issue the legacy one-probe-per-step
	// health check at the spec's read mix, open-loop specs probe each
	// (shard, read/write class) once per step and resolve every generated
	// arrival — 10⁴–10⁶ simulated clients' worth — against those outcomes,
	// charging each request a virtual latency (its seeded service-time
	// sample on success, the spec's Deadline on failure) into Latency.
	// The zero Spec falls back to workload.Closed(ReadFraction), so
	// pre-Spec configurations keep byte-identical outputs.
	Workload workload.Spec
	// ReadFraction sets the read share of the legacy closed-loop
	// availability workload when Workload is unset. Zero selects the
	// historical all-read health probe (fraction 1); a negative value
	// selects an all-write workload; values in (0,1] set the mix directly.
	//
	// Deprecated: set Workload instead — workload.Closed translates this
	// encoding; new specs use a plain [0,1] fraction.
	ReadFraction float64
	// HealthTimeout bounds each availability health check. Zero selects a
	// default generous enough that only genuine unavailability (a severed
	// quorum, a dead proxy tier) fails the check.
	HealthTimeout time.Duration
	// ProbeTimeout bounds how long the attacker waits for each probe's
	// outcome. Zero waits indefinitely — fine on a reliable network, but a
	// lossy link can swallow a probe or its reply, so campaigns under a
	// drop-rate schedule must set it.
	ProbeTimeout time.Duration
}

func (c CampaignConfig) validate() error {
	if c.MaxSteps == 0 {
		return errors.New("attack: campaign needs MaxSteps")
	}
	if c.OmegaDirect == 0 && c.OmegaIndirect == 0 {
		return errors.New("attack: campaign needs a probe budget")
	}
	return nil
}

// healthTimeout returns the configured health-check bound or its default.
func (c CampaignConfig) healthTimeout() time.Duration {
	if c.HealthTimeout > 0 {
		return c.HealthTimeout
	}
	return 2 * time.Second
}

// workloadSpec resolves the measurement workload: the configured Spec, or
// the legacy closed-loop translation of ReadFraction when none is set.
func (c CampaignConfig) workloadSpec() workload.Spec {
	if !c.Workload.IsZero() {
		return c.Workload
	}
	return workload.Closed(c.ReadFraction)
}

// measures reports whether the campaign runs a measurement workload.
func (c CampaignConfig) measures() bool {
	return c.MeasureAvailability || !c.Workload.IsZero()
}

// CampaignResult reports a campaign outcome.
type CampaignResult struct {
	// StepsElapsed is the number of whole unit time-steps completed before
	// compromise — the empirical lifetime (Definition 7).
	StepsElapsed uint64
	// Compromised reports whether the system fell within MaxSteps.
	Compromised bool
	// Route records how it fell: "server-indirect", "server-launchpad" or
	// "all-proxies".
	Route string
	// ProbedSteps and AvailableSteps report the availability measurement
	// (MeasureAvailability): of ProbedSteps health checks, AvailableSteps
	// got a doubly-signed answer. Both zero when measurement is off.
	ProbedSteps    uint64
	AvailableSteps uint64
	// ReadProbes counts how many of ProbedSteps were issued as reads; the
	// rest were writes. The realized read/write mix of the workload axis.
	ReadProbes uint64
	// ShardProbedSteps and ShardAvailableSteps break the availability
	// measurement down per replica group on a sharded deployment: each
	// step probes one ring-owned key per group (same read/write decision
	// for all of them), and a step counts toward AvailableSteps only when
	// every group answered. Nil on single-group deployments, where the
	// aggregate fields carry the whole story.
	ShardProbedSteps    []uint64
	ShardAvailableSteps []uint64
	// Requests counts the workload arrivals resolved against the step
	// probes: closed-loop resolves its one request per step against each
	// group it probed, open-loop resolves every generated arrival against
	// its owning group only. RequestsOK met their probe; ReadRequests were
	// read-class. Latency.Count always equals Requests.
	Requests     uint64
	RequestsOK   uint64
	ReadRequests uint64
	// Latency is the virtual-latency histogram over all resolved requests:
	// each sample is the request's seeded service-time draw when its
	// group's probe answered, or the workload's per-request Deadline when
	// it did not — a pure function of the seeded streams, never wall
	// clock, so it stays bit-identical at any worker count.
	Latency workload.Hist
	// ShardLatency breaks Latency down per replica group. Nil on
	// single-group deployments.
	ShardLatency []workload.Hist
}

// Availability returns AvailableSteps/ProbedSteps, or NaN when no health
// checks ran.
func (r CampaignResult) Availability() float64 {
	if r.ProbedSteps == 0 {
		return math.NaN()
	}
	return float64(r.AvailableSteps) / float64(r.ProbedSteps)
}

// ShardAvailabilities returns the per-replica-group availability fractions,
// or nil on a single-group deployment (or when measurement was off).
func (r CampaignResult) ShardAvailabilities() []float64 {
	if len(r.ShardProbedSteps) == 0 {
		return nil
	}
	out := make([]float64, len(r.ShardProbedSteps))
	for g := range out {
		if r.ShardProbedSteps[g] == 0 {
			out[g] = math.NaN()
			continue
		}
		out[g] = float64(r.ShardAvailableSteps[g]) / float64(r.ShardProbedSteps[g])
	}
	return out
}

// Campaign drives a de-randomization campaign against a live FORTRESS
// system. Each unit time-step the attacker:
//
//  1. sends OmegaDirect proxy-targeted probes (request fan-out means one
//     guess tests every live proxy's key);
//  2. sends OmegaIndirect server-targeted probes through a surviving proxy;
//  3. uses any captured proxy as a launch pad for unscreened direct server
//     probes with the full direct budget.
//
// Per-tier guessers carry eliminated-candidate knowledge across steps and
// are reset whenever the system re-randomizes — the with/without
// replacement distinction of §4.1, enacted.
func Campaign(sys *fortress.System, space *keyspace.Space, cfg CampaignConfig, rng *xrand.RNG) (CampaignResult, error) {
	if err := cfg.validate(); err != nil {
		return CampaignResult{}, err
	}
	var res CampaignResult
	// Record once, from the final result: CampaignResult is a pure function
	// of the seeded request/fault stream (the determinism suite pins it), so
	// these counters land in the registry's Stable section.
	defer func() { recordCampaign(sys.Metrics(), &res) }()
	proxyGuesser, err := keyspace.NewGuesser(space, rng.Split())
	if err != nil {
		return CampaignResult{}, err
	}
	serverGuesser, err := keyspace.NewGuesser(space, rng.Split())
	if err != nil {
		return CampaignResult{}, err
	}
	var meas *measurer
	if cfg.measures() {
		// The workload generator splits its streams from rng AFTER the two
		// guessers, and rng is never read again, so the guesser streams —
		// and with them every pre-workload result — are undisturbed.
		meas, err = newMeasurer(sys, cfg, &res, rng.Split())
		if err != nil {
			return CampaignResult{}, err
		}
	}

	for step := uint64(0); step < cfg.MaxSteps; step++ {
		// Faults first: an event scheduled at this step governs the whole
		// step, health check included.
		if cfg.Injector != nil {
			if err := cfg.Injector.Advance(step); err != nil {
				return res, err
			}
		}
		if meas != nil {
			meas.step(step)
		}
		route, err := campaignStep(sys, cfg, proxyGuesser, serverGuesser)
		if err != nil {
			return res, err
		}
		if route != "" {
			res.Compromised = true
			res.Route = route
			res.StepsElapsed = step
			return res, nil
		}
		// Period boundary: PO re-randomizes (attacker knowledge dies with
		// the keys); SO merely recovers crashed nodes with unchanged keys
		// (§4.1) — knowledge persists.
		if cfg.Rerandomize {
			if err := sys.Rerandomize(); err != nil {
				return res, err
			}
			proxyGuesser.Reset()
			serverGuesser.Reset()
		} else if err := sys.Recover(); err != nil {
			return res, err
		}
	}
	res.StepsElapsed = cfg.MaxSteps
	return res, nil
}

// measurer drives the campaign's measurement workload: the generator, the
// per-step health/class probes, and the virtual-latency accounting that
// turns probe outcomes into CampaignResult latency histograms.
type measurer struct {
	health    *proxy.Client
	gen       *workload.Gen
	spec      workload.Spec
	closed    bool
	res       *CampaignResult
	shardKeys []string // ring probe key per group; nil single-group
	owners    []int    // workload key ID -> owning group; nil single-group or closed
	readOK    []bool   // per-group probe outcomes for the current step
	writeOK   []bool
	buf       []workload.Request
}

func newMeasurer(sys *fortress.System, cfg CampaignConfig, res *CampaignResult, rng *xrand.RNG) (*measurer, error) {
	gen, err := workload.NewGen(cfg.workloadSpec(), rng)
	if err != nil {
		return nil, fmt.Errorf("attack: workload: %w", err)
	}
	health, err := sys.Client("health-probe", cfg.healthTimeout())
	if err != nil {
		return nil, fmt.Errorf("attack: health client: %w", err)
	}
	spec := gen.Spec()
	m := &measurer{
		health: health,
		gen:    gen,
		spec:   spec,
		closed: spec.Arrival == workload.ClosedLoop,
		res:    res,
	}
	if groups := sys.Groups(); groups > 1 {
		// One deterministic ring-owned key per replica group: the same
		// probe keys every repetition, so sharded availability stays a
		// pure function of the seeded streams.
		ring := sys.Ring()
		m.shardKeys = make([]string, groups)
		for g := range m.shardKeys {
			m.shardKeys[g] = ring.ProbeKey(g)
		}
		res.ShardProbedSteps = make([]uint64, groups)
		res.ShardAvailableSteps = make([]uint64, groups)
		res.ShardLatency = make([]workload.Hist, groups)
		if !m.closed {
			// Precompute each workload key's owning group once; arrivals
			// then resolve by table lookup instead of hashing per request.
			m.owners = make([]int, spec.Keys)
			for k := range m.owners {
				m.owners[k] = ring.Owner(fmt.Sprintf("wlk-%d", k))
			}
		}
	}
	if !m.closed {
		groups := max(sys.Groups(), 1)
		m.readOK = make([]bool, groups)
		m.writeOK = make([]bool, groups)
	}
	return m, nil
}

// step runs one time-step of the measurement workload against the live
// system: probe, then resolve that step's arrivals against the outcomes.
func (m *measurer) step(step uint64) {
	if m.closed {
		m.closedStep(step)
		return
	}
	m.openStep(step)
}

// closedStep is the legacy one-probe-per-step health check, byte-for-byte:
// same probe ids, same request bodies, same deterministic read/write
// threshold (the generator reproduces it), same availability accounting —
// plus the latency observation layered on top.
func (m *measurer) closedStep(step uint64) {
	m.buf = m.gen.Arrivals(step, m.buf[:0])
	req := m.buf[0]
	m.res.ProbedSteps++
	if req.Read {
		m.res.ReadProbes++
	}
	if m.shardKeys == nil {
		ok := checkHealth(m.health, step, req.Read)
		if ok {
			m.res.AvailableSteps++
		}
		m.observe(req, ok, -1)
		return
	}
	// Probe every shard with its own key; the step counts as available
	// only when every group answers, while the per-group tallies localize
	// any outage to its shard.
	allUp := true
	for g, key := range m.shardKeys {
		m.res.ShardProbedSteps[g]++
		ok := checkShardHealth(m.health, step, g, key, req.Read)
		if ok {
			m.res.ShardAvailableSteps[g]++
		} else {
			allUp = false
		}
		m.observe(req, ok, g)
	}
	if allUp {
		m.res.AvailableSteps++
	}
}

// openStep measures an open-loop workload. Real traffic stays bounded — at
// most one probe per (group, read/write class) per step, whatever the
// simulated client count — and every generated arrival resolves against its
// owning group's class outcome: service-time sample if the probe answered,
// the spec Deadline if not. Service samples were already drawn at
// generation time, so the RNG streams never depend on probe outcomes.
func (m *measurer) openStep(step uint64) {
	needRead := m.spec.ReadFraction > 0
	needWrite := m.spec.ReadFraction < 1
	m.res.ProbedSteps++
	if needRead {
		m.res.ReadProbes++
	}
	allUp := true
	for g := range m.readOK {
		key := "health"
		if m.shardKeys != nil {
			key = m.shardKeys[g]
			m.res.ShardProbedSteps[g]++
		}
		up := true
		if needRead {
			m.readOK[g] = probeClass(m.health, fmt.Sprintf("wl-%d-g%d-r", step, g), key, true, step)
			up = up && m.readOK[g]
		}
		if needWrite {
			m.writeOK[g] = probeClass(m.health, fmt.Sprintf("wl-%d-g%d-w", step, g), key, false, step)
			up = up && m.writeOK[g]
		}
		if m.shardKeys != nil && up {
			m.res.ShardAvailableSteps[g]++
		}
		allUp = allUp && up
	}
	if allUp {
		m.res.AvailableSteps++
	}
	m.buf = m.gen.Arrivals(step, m.buf[:0])
	for _, req := range m.buf {
		g := 0
		if m.owners != nil {
			g = m.owners[int(req.Key)%len(m.owners)]
		}
		ok := m.writeOK[g]
		if req.Read {
			ok = m.readOK[g]
		}
		shard := -1
		if m.shardKeys != nil {
			shard = g
		}
		m.observe(req, ok, shard)
	}
}

// observe charges one resolved request its virtual latency: the seeded
// service-time sample when its probe answered, the workload deadline when
// it did not.
func (m *measurer) observe(req workload.Request, ok bool, shard int) {
	m.res.Requests++
	lat := m.spec.Deadline
	if ok {
		m.res.RequestsOK++
		lat = req.Service
	}
	if req.Read {
		m.res.ReadRequests++
	}
	m.res.Latency.Observe(lat)
	if shard >= 0 {
		m.res.ShardLatency[shard].Observe(lat)
	}
}

// probeClass issues one open-loop class probe: a keyed get through the
// lease-aware read path, or a keyed put through the ordered write path.
func probeClass(c *proxy.Client, id, key string, read bool, step uint64) bool {
	var err error
	if read {
		_, err = c.InvokeRead(id, []byte(fmt.Sprintf(`{"op":"get","key":%q}`, key)))
	} else {
		_, err = c.Invoke(id, []byte(fmt.Sprintf(`{"op":"put","key":%q,"value":"step-%d"}`, key, step)))
	}
	return err == nil
}

// recordCampaign publishes one finished campaign's result into the system's
// registry as Stable-class counters: each value is derived from the
// CampaignResult the determinism suite already pins byte-identical across
// worker counts, so per-repetition snapshots compare equal at any -workers.
func recordCampaign(reg *metrics.Registry, res *CampaignResult) {
	if reg == nil {
		return
	}
	reg.Counter("campaign_runs_total", metrics.Stable).Inc()
	reg.Counter("campaign_steps_total", metrics.Stable).Add(res.StepsElapsed)
	reg.Counter("campaign_health_probes_total", metrics.Stable).Add(res.ProbedSteps)
	reg.Counter("campaign_read_probes_total", metrics.Stable).Add(res.ReadProbes)
	reg.Counter("campaign_write_probes_total", metrics.Stable).Add(res.ProbedSteps - res.ReadProbes)
	reg.Counter("campaign_available_steps_total", metrics.Stable).Add(res.AvailableSteps)
	for g := range res.ShardProbedSteps {
		reg.Counter(fmt.Sprintf("campaign_shard_probes_total{group=\"%d\"}", g),
			metrics.Stable).Add(res.ShardProbedSteps[g])
		reg.Counter(fmt.Sprintf("campaign_shard_available_steps_total{group=\"%d\"}", g),
			metrics.Stable).Add(res.ShardAvailableSteps[g])
	}
	if res.Requests > 0 {
		reg.Counter("workload_requests_total", metrics.Stable).Add(res.Requests)
		reg.Counter("workload_requests_ok_total", metrics.Stable).Add(res.RequestsOK)
		reg.Counter("workload_read_requests_total", metrics.Stable).Add(res.ReadRequests)
	}
	if res.Compromised {
		reg.Counter("campaign_compromises_total", metrics.Stable).Inc()
	}
}

// checkHealth issues one availability probe. Reads go through the
// lease-aware InvokeRead path (a lease-holding replica answers locally;
// without a valid lease the request falls back to the ordered path), writes
// are keyed puts through the full doubly-signed path. Any verified response —
// including a service-level "no such key" error body — counts as available;
// only transport failure (no reachable proxy, no committable server
// response) does not.
func checkHealth(c *proxy.Client, step uint64, read bool) bool {
	id := fmt.Sprintf("health-%d", step)
	var err error
	if read {
		_, err = c.InvokeRead(id, []byte(`{"op":"get","key":"health"}`))
	} else {
		_, err = c.Invoke(id, []byte(fmt.Sprintf(`{"op":"put","key":"health","value":"step-%d"}`, step)))
	}
	return err == nil
}

// checkShardHealth is checkHealth aimed at one replica group of a sharded
// deployment: the probe body carries a key the routing ring assigns to
// that group, so the proxies forward it to exactly the shard under test.
func checkShardHealth(c *proxy.Client, step uint64, group int, key string, read bool) bool {
	id := fmt.Sprintf("health-%d-g%d", step, group)
	var err error
	if read {
		_, err = c.InvokeRead(id, []byte(fmt.Sprintf(`{"op":"get","key":%q}`, key)))
	} else {
		_, err = c.Invoke(id, []byte(fmt.Sprintf(`{"op":"put","key":%q,"value":"step-%d"}`, key, step)))
	}
	return err == nil
}

// campaignStep runs one unit time-step and returns the compromise route,
// or "" if the system survived. After every crash-inducing probe the
// target's forking daemons respawn the dead process (sys.Recover), which is
// what lets an attacker sustain ω probes per step (§2.1).
func campaignStep(sys *fortress.System, cfg CampaignConfig, proxyGuesser, serverGuesser *keyspace.Guesser) (string, error) {
	// Stage 1: direct probes at the proxy tier. Request fan-out: each
	// guess is delivered to every live proxy.
	for i := uint64(0); i < cfg.OmegaDirect; i++ {
		guess, ok := proxyGuesser.NextCandidate()
		if !ok {
			break
		}
		for _, p := range sys.Proxies() {
			if p.Crashed() || p.Compromised() {
				continue
			}
			deliverProbe(sys, p, exploit.NewPayload(exploit.TierProxy, guess), cfg.ProbeTimeout)
		}
		if err := sys.Recover(); err != nil {
			return "", err
		}
	}
	if st := sys.Status(); st.ProxiesCompromised > 0 && st.Compromised {
		return "all-proxies", nil
	}

	// Stage 2: paced indirect probes at the server tier.
	for i := uint64(0); i < cfg.OmegaIndirect; i++ {
		guess, ok := serverGuesser.NextCandidate()
		if !ok {
			break
		}
		deliverIndirectProbe(sys, exploit.NewPayload(exploit.TierServer, guess), cfg.ProbeTimeout)
		if err := sys.Recover(); err != nil {
			return "", err
		}
		if sys.Status().ServersCompromised > 0 {
			return "server-indirect", nil
		}
	}

	// Stage 3: launch pad through the first captured proxy.
	for _, p := range sys.Proxies() {
		if !p.Compromised() {
			continue
		}
		for i := uint64(0); i < cfg.OmegaDirect; i++ {
			guess, ok := serverGuesser.NextCandidate()
			if !ok {
				break
			}
			_, _ = p.RawForward(0, fmt.Sprintf("lp-%d", i), exploit.NewPayload(exploit.TierServer, guess))
			if err := sys.Recover(); err != nil {
				return "", err
			}
			if sys.Status().ServersCompromised > 0 {
				return "server-launchpad", nil
			}
		}
		break // one launch pad suffices
	}

	if st := sys.Status(); st.Compromised {
		if st.ServersCompromised > 0 {
			return "server-indirect", nil
		}
		return "all-proxies", nil
	}
	return "", nil
}

// deliverProbe sends one exploit request directly to a proxy and waits for
// the outcome (reply, block or crash-closure). A positive timeout bounds
// the wait — without one, a probe whose request or reply a lossy link
// swallowed would park the campaign forever.
func deliverProbe(sys *fortress.System, p *proxy.Proxy, payload []byte, timeout time.Duration) {
	conn, err := sys.Net().Dial("attacker", p.Addr())
	if err != nil {
		return
	}
	defer conn.Close()
	if err := conn.Send(proxy.EncodeRequest("probe", payload)); err != nil {
		return
	}
	// Reply, error, closure or timeout — the outcome state is read elsewhere.
	var reply []byte
	if timeout > 0 {
		reply, err = conn.RecvTimeout(timeout)
	} else {
		reply, err = conn.Recv()
	}
	if err == nil {
		netsim.Release(reply)
	}
}

// deliverIndirectProbe sends one server-targeted exploit request through
// the first live proxy.
func deliverIndirectProbe(sys *fortress.System, payload []byte, timeout time.Duration) {
	for _, p := range sys.Proxies() {
		if p.Crashed() {
			continue
		}
		deliverProbe(sys, p, payload, timeout)
		return
	}
}
