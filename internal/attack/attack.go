// Package attack implements the attacker machinery of §2.1 and §4.2
// against the executable stack: the classic two-phase de-randomization
// attack over a direct connection (as in [10, 12]), and the full campaign
// against a FORTRESS deployment combining direct proxy probes, paced
// indirect server probes, and the captured-proxy launch pad.
package attack

import (
	"errors"
	"fmt"
	"math"
	"time"

	"fortress/internal/exploit"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/memlayout"
	"fortress/internal/metrics"
	"fortress/internal/netsim"
	"fortress/internal/proxy"
	"fortress/internal/xrand"
)

// DirectResult reports a completed two-phase de-randomization attack
// against a directly accessible forking server.
type DirectResult struct {
	// ProbesUsed counts phase-1 probes (each one crashed a child).
	ProbesUsed uint64
	// Compromised reports phase-2 success.
	Compromised bool
}

// Derandomize runs the [10, 12] attack against a forking daemon the
// attacker can reach directly: probe candidate keys one by one — each
// wrong guess crashes a child, observably, and the daemon forks a fresh
// one — until a guess compromises the child.
func Derandomize(space *keyspace.Space, daemon *memlayout.ForkingDaemon, rng *xrand.RNG) (DirectResult, error) {
	guesser, err := keyspace.NewGuesser(space, rng)
	if err != nil {
		return DirectResult{}, fmt.Errorf("attack: %w", err)
	}
	var res DirectResult
	for {
		guess, ok := guesser.NextCandidate()
		if !ok {
			return res, errors.New("attack: key space exhausted without compromise")
		}
		outcome, err := daemon.DeliverExploit(guess)
		if err != nil {
			return res, fmt.Errorf("attack: deliver: %w", err)
		}
		if outcome == memlayout.ProbeCompromised {
			res.Compromised = true
			return res, nil
		}
		// ProbeCrashed: candidate eliminated, daemon forks a new child.
		res.ProbesUsed++
	}
}

// DerandomizeOverNetwork runs the same attack with the crash oracle
// realized over the network: the attacker dials the victim, delivers one
// probe, and watches whether its connection closes (victim crashed → wrong
// guess) or a reply arrives (right guess → compromised).
//
// deliver sends one exploit payload on the connection; it is the transport
// glue the caller provides (e.g. wrapping the payload in the victim's
// request format).
func DerandomizeOverNetwork(
	space *keyspace.Space,
	net *netsim.Network,
	attackerAddr, victimAddr string,
	deliver func(conn *netsim.Conn, probe []byte) error,
	rng *xrand.RNG,
) (DirectResult, error) {
	guesser, err := keyspace.NewGuesser(space, rng)
	if err != nil {
		return DirectResult{}, fmt.Errorf("attack: %w", err)
	}
	var res DirectResult
	for {
		guess, ok := guesser.NextCandidate()
		if !ok {
			return res, errors.New("attack: key space exhausted without compromise")
		}
		conn, err := dialWithRetry(net, attackerAddr, victimAddr)
		if err != nil {
			return res, fmt.Errorf("attack: dial victim: %w", err)
		}
		if err := deliver(conn, exploit.NewPayload(exploit.TierServer, guess)); err != nil {
			conn.Close()
			return res, fmt.Errorf("attack: deliver: %w", err)
		}
		// The crash oracle: victim death closes the connection before any
		// reply; survival produces a reply.
		reply, recvErr := conn.Recv()
		if recvErr == nil {
			netsim.Release(reply)
		}
		conn.Close()
		if recvErr == nil {
			res.Compromised = true
			return res, nil
		}
		res.ProbesUsed++
	}
}

// dialWithRetry dials the victim, retrying briefly: right after a crash the
// forking daemon needs a moment to bring the service back, and a real
// attacker simply reconnects until it does.
func dialWithRetry(net *netsim.Network, from, to string) (*netsim.Conn, error) {
	const (
		attempts = 500
		backoff  = time.Millisecond
	)
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial(from, to)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
	}
	return nil, lastErr
}

// --- FORTRESS campaign --------------------------------------------------

// StepInjector advances a fault-injection plan against the campaign's
// virtual clock. Campaign calls Advance(step) at the top of every unit
// time-step, before that step's probes, so an event scheduled at step t is
// in force for all of step t's traffic. faults.Injector implements it.
type StepInjector interface {
	Advance(step uint64) error
}

// CampaignConfig tunes a full attack on a FORTRESS deployment.
type CampaignConfig struct {
	// OmegaDirect is the probe budget per unit time-step for direct proxy
	// attacks (and for launch-pad server attacks once a proxy falls).
	OmegaDirect uint64
	// OmegaIndirect is the paced budget for server probes through proxies
	// (κ·ω in the model; the attacker throttles it to stay under the
	// detector threshold).
	OmegaIndirect uint64
	// MaxSteps bounds the campaign.
	MaxSteps uint64
	// Rerandomize re-randomizes the target after every step (PO) when
	// true; otherwise the system keeps its start-up keys (SO).
	Rerandomize bool
	// Injector, when non-nil, is advanced once per step with the step
	// number — the hook a fault schedule drives the network through.
	Injector StepInjector
	// MeasureAvailability makes the campaign issue one client health-check
	// request per step (before the step's probes) and count the steps in
	// which the service answered — the availability the paper's claims are
	// about, measured while the attack and any fault schedule run.
	MeasureAvailability bool
	// ReadFraction sets the read share of the availability workload: each
	// step's health probe is a read (issued through the lease-aware
	// InvokeRead path) or a write (a keyed put through the ordered path),
	// chosen by a deterministic threshold so the realized mix tracks the
	// fraction exactly and never depends on an RNG — the workers-{1,2,8}
	// byte-identical sweep contract survives the new axis. Zero selects the
	// historical all-read health probe (fraction 1); a negative value
	// selects an all-write workload; values in (0,1] set the mix directly.
	ReadFraction float64
	// HealthTimeout bounds each availability health check. Zero selects a
	// default generous enough that only genuine unavailability (a severed
	// quorum, a dead proxy tier) fails the check.
	HealthTimeout time.Duration
	// ProbeTimeout bounds how long the attacker waits for each probe's
	// outcome. Zero waits indefinitely — fine on a reliable network, but a
	// lossy link can swallow a probe or its reply, so campaigns under a
	// drop-rate schedule must set it.
	ProbeTimeout time.Duration
}

func (c CampaignConfig) validate() error {
	if c.MaxSteps == 0 {
		return errors.New("attack: campaign needs MaxSteps")
	}
	if c.OmegaDirect == 0 && c.OmegaIndirect == 0 {
		return errors.New("attack: campaign needs a probe budget")
	}
	return nil
}

// healthTimeout returns the configured health-check bound or its default.
func (c CampaignConfig) healthTimeout() time.Duration {
	if c.HealthTimeout > 0 {
		return c.HealthTimeout
	}
	return 2 * time.Second
}

// readFraction resolves the configured read share: zero keeps the historical
// all-read probe, negative means all writes, and anything above 1 clamps.
func (c CampaignConfig) readFraction() float64 {
	switch {
	case c.ReadFraction == 0:
		return 1
	case c.ReadFraction < 0:
		return 0
	case c.ReadFraction > 1:
		return 1
	default:
		return c.ReadFraction
	}
}

// CampaignResult reports a campaign outcome.
type CampaignResult struct {
	// StepsElapsed is the number of whole unit time-steps completed before
	// compromise — the empirical lifetime (Definition 7).
	StepsElapsed uint64
	// Compromised reports whether the system fell within MaxSteps.
	Compromised bool
	// Route records how it fell: "server-indirect", "server-launchpad" or
	// "all-proxies".
	Route string
	// ProbedSteps and AvailableSteps report the availability measurement
	// (MeasureAvailability): of ProbedSteps health checks, AvailableSteps
	// got a doubly-signed answer. Both zero when measurement is off.
	ProbedSteps    uint64
	AvailableSteps uint64
	// ReadProbes counts how many of ProbedSteps were issued as reads; the
	// rest were writes. The realized read/write mix of the workload axis.
	ReadProbes uint64
	// ShardProbedSteps and ShardAvailableSteps break the availability
	// measurement down per replica group on a sharded deployment: each
	// step probes one ring-owned key per group (same read/write decision
	// for all of them), and a step counts toward AvailableSteps only when
	// every group answered. Nil on single-group deployments, where the
	// aggregate fields carry the whole story.
	ShardProbedSteps    []uint64
	ShardAvailableSteps []uint64
}

// Availability returns AvailableSteps/ProbedSteps, or NaN when no health
// checks ran.
func (r CampaignResult) Availability() float64 {
	if r.ProbedSteps == 0 {
		return math.NaN()
	}
	return float64(r.AvailableSteps) / float64(r.ProbedSteps)
}

// ShardAvailabilities returns the per-replica-group availability fractions,
// or nil on a single-group deployment (or when measurement was off).
func (r CampaignResult) ShardAvailabilities() []float64 {
	if len(r.ShardProbedSteps) == 0 {
		return nil
	}
	out := make([]float64, len(r.ShardProbedSteps))
	for g := range out {
		if r.ShardProbedSteps[g] == 0 {
			out[g] = math.NaN()
			continue
		}
		out[g] = float64(r.ShardAvailableSteps[g]) / float64(r.ShardProbedSteps[g])
	}
	return out
}

// Campaign drives a de-randomization campaign against a live FORTRESS
// system. Each unit time-step the attacker:
//
//  1. sends OmegaDirect proxy-targeted probes (request fan-out means one
//     guess tests every live proxy's key);
//  2. sends OmegaIndirect server-targeted probes through a surviving proxy;
//  3. uses any captured proxy as a launch pad for unscreened direct server
//     probes with the full direct budget.
//
// Per-tier guessers carry eliminated-candidate knowledge across steps and
// are reset whenever the system re-randomizes — the with/without
// replacement distinction of §4.1, enacted.
func Campaign(sys *fortress.System, space *keyspace.Space, cfg CampaignConfig, rng *xrand.RNG) (CampaignResult, error) {
	if err := cfg.validate(); err != nil {
		return CampaignResult{}, err
	}
	var res CampaignResult
	// Record once, from the final result: CampaignResult is a pure function
	// of the seeded request/fault stream (the determinism suite pins it), so
	// these counters land in the registry's Stable section.
	defer func() { recordCampaign(sys.Metrics(), &res) }()
	proxyGuesser, err := keyspace.NewGuesser(space, rng.Split())
	if err != nil {
		return CampaignResult{}, err
	}
	serverGuesser, err := keyspace.NewGuesser(space, rng.Split())
	if err != nil {
		return CampaignResult{}, err
	}
	var health *proxy.Client
	var shardKeys []string
	if cfg.MeasureAvailability {
		health, err = sys.Client("health-probe", cfg.healthTimeout())
		if err != nil {
			return CampaignResult{}, fmt.Errorf("attack: health client: %w", err)
		}
		if groups := sys.Groups(); groups > 1 {
			// One deterministic ring-owned key per replica group: the
			// same probe keys every repetition, so sharded availability
			// stays a pure function of the seeded streams.
			ring := sys.Ring()
			shardKeys = make([]string, groups)
			for g := range shardKeys {
				shardKeys[g] = ring.ProbeKey(g)
			}
			res.ShardProbedSteps = make([]uint64, groups)
			res.ShardAvailableSteps = make([]uint64, groups)
		}
	}

	for step := uint64(0); step < cfg.MaxSteps; step++ {
		// Faults first: an event scheduled at this step governs the whole
		// step, health check included.
		if cfg.Injector != nil {
			if err := cfg.Injector.Advance(step); err != nil {
				return res, err
			}
		}
		if health != nil {
			// Deterministic mix: issue a read iff doing so keeps the realized
			// read count at or under the target fraction of probes issued so
			// far. No RNG draw — the per-step choice is a pure function of
			// the step index, so sweeps stay byte-identical at any Workers.
			isRead := float64(res.ReadProbes) < cfg.readFraction()*float64(res.ProbedSteps+1)
			res.ProbedSteps++
			if isRead {
				res.ReadProbes++
			}
			if shardKeys == nil {
				if checkHealth(health, step, isRead) {
					res.AvailableSteps++
				}
			} else {
				// Probe every shard with its own key; the step counts as
				// available only when every group answers, while the
				// per-group tallies localize any outage to its shard.
				allUp := true
				for g, key := range shardKeys {
					res.ShardProbedSteps[g]++
					if checkShardHealth(health, step, g, key, isRead) {
						res.ShardAvailableSteps[g]++
					} else {
						allUp = false
					}
				}
				if allUp {
					res.AvailableSteps++
				}
			}
		}
		route, err := campaignStep(sys, cfg, proxyGuesser, serverGuesser)
		if err != nil {
			return res, err
		}
		if route != "" {
			res.Compromised = true
			res.Route = route
			res.StepsElapsed = step
			return res, nil
		}
		// Period boundary: PO re-randomizes (attacker knowledge dies with
		// the keys); SO merely recovers crashed nodes with unchanged keys
		// (§4.1) — knowledge persists.
		if cfg.Rerandomize {
			if err := sys.Rerandomize(); err != nil {
				return res, err
			}
			proxyGuesser.Reset()
			serverGuesser.Reset()
		} else if err := sys.Recover(); err != nil {
			return res, err
		}
	}
	res.StepsElapsed = cfg.MaxSteps
	return res, nil
}

// recordCampaign publishes one finished campaign's result into the system's
// registry as Stable-class counters: each value is derived from the
// CampaignResult the determinism suite already pins byte-identical across
// worker counts, so per-repetition snapshots compare equal at any -workers.
func recordCampaign(reg *metrics.Registry, res *CampaignResult) {
	if reg == nil {
		return
	}
	reg.Counter("campaign_runs_total", metrics.Stable).Inc()
	reg.Counter("campaign_steps_total", metrics.Stable).Add(res.StepsElapsed)
	reg.Counter("campaign_health_probes_total", metrics.Stable).Add(res.ProbedSteps)
	reg.Counter("campaign_read_probes_total", metrics.Stable).Add(res.ReadProbes)
	reg.Counter("campaign_write_probes_total", metrics.Stable).Add(res.ProbedSteps - res.ReadProbes)
	reg.Counter("campaign_available_steps_total", metrics.Stable).Add(res.AvailableSteps)
	for g := range res.ShardProbedSteps {
		reg.Counter(fmt.Sprintf("campaign_shard_probes_total{group=\"%d\"}", g),
			metrics.Stable).Add(res.ShardProbedSteps[g])
		reg.Counter(fmt.Sprintf("campaign_shard_available_steps_total{group=\"%d\"}", g),
			metrics.Stable).Add(res.ShardAvailableSteps[g])
	}
	if res.Compromised {
		reg.Counter("campaign_compromises_total", metrics.Stable).Inc()
	}
}

// checkHealth issues one availability probe. Reads go through the
// lease-aware InvokeRead path (a lease-holding replica answers locally;
// without a valid lease the request falls back to the ordered path), writes
// are keyed puts through the full doubly-signed path. Any verified response —
// including a service-level "no such key" error body — counts as available;
// only transport failure (no reachable proxy, no committable server
// response) does not.
func checkHealth(c *proxy.Client, step uint64, read bool) bool {
	id := fmt.Sprintf("health-%d", step)
	var err error
	if read {
		_, err = c.InvokeRead(id, []byte(`{"op":"get","key":"health"}`))
	} else {
		_, err = c.Invoke(id, []byte(fmt.Sprintf(`{"op":"put","key":"health","value":"step-%d"}`, step)))
	}
	return err == nil
}

// checkShardHealth is checkHealth aimed at one replica group of a sharded
// deployment: the probe body carries a key the routing ring assigns to
// that group, so the proxies forward it to exactly the shard under test.
func checkShardHealth(c *proxy.Client, step uint64, group int, key string, read bool) bool {
	id := fmt.Sprintf("health-%d-g%d", step, group)
	var err error
	if read {
		_, err = c.InvokeRead(id, []byte(fmt.Sprintf(`{"op":"get","key":%q}`, key)))
	} else {
		_, err = c.Invoke(id, []byte(fmt.Sprintf(`{"op":"put","key":%q,"value":"step-%d"}`, key, step)))
	}
	return err == nil
}

// campaignStep runs one unit time-step and returns the compromise route,
// or "" if the system survived. After every crash-inducing probe the
// target's forking daemons respawn the dead process (sys.Recover), which is
// what lets an attacker sustain ω probes per step (§2.1).
func campaignStep(sys *fortress.System, cfg CampaignConfig, proxyGuesser, serverGuesser *keyspace.Guesser) (string, error) {
	// Stage 1: direct probes at the proxy tier. Request fan-out: each
	// guess is delivered to every live proxy.
	for i := uint64(0); i < cfg.OmegaDirect; i++ {
		guess, ok := proxyGuesser.NextCandidate()
		if !ok {
			break
		}
		for _, p := range sys.Proxies() {
			if p.Crashed() || p.Compromised() {
				continue
			}
			deliverProbe(sys, p, exploit.NewPayload(exploit.TierProxy, guess), cfg.ProbeTimeout)
		}
		if err := sys.Recover(); err != nil {
			return "", err
		}
	}
	if st := sys.Status(); st.ProxiesCompromised > 0 && st.Compromised {
		return "all-proxies", nil
	}

	// Stage 2: paced indirect probes at the server tier.
	for i := uint64(0); i < cfg.OmegaIndirect; i++ {
		guess, ok := serverGuesser.NextCandidate()
		if !ok {
			break
		}
		deliverIndirectProbe(sys, exploit.NewPayload(exploit.TierServer, guess), cfg.ProbeTimeout)
		if err := sys.Recover(); err != nil {
			return "", err
		}
		if sys.Status().ServersCompromised > 0 {
			return "server-indirect", nil
		}
	}

	// Stage 3: launch pad through the first captured proxy.
	for _, p := range sys.Proxies() {
		if !p.Compromised() {
			continue
		}
		for i := uint64(0); i < cfg.OmegaDirect; i++ {
			guess, ok := serverGuesser.NextCandidate()
			if !ok {
				break
			}
			_, _ = p.RawForward(0, fmt.Sprintf("lp-%d", i), exploit.NewPayload(exploit.TierServer, guess))
			if err := sys.Recover(); err != nil {
				return "", err
			}
			if sys.Status().ServersCompromised > 0 {
				return "server-launchpad", nil
			}
		}
		break // one launch pad suffices
	}

	if st := sys.Status(); st.Compromised {
		if st.ServersCompromised > 0 {
			return "server-indirect", nil
		}
		return "all-proxies", nil
	}
	return "", nil
}

// deliverProbe sends one exploit request directly to a proxy and waits for
// the outcome (reply, block or crash-closure). A positive timeout bounds
// the wait — without one, a probe whose request or reply a lossy link
// swallowed would park the campaign forever.
func deliverProbe(sys *fortress.System, p *proxy.Proxy, payload []byte, timeout time.Duration) {
	conn, err := sys.Net().Dial("attacker", p.Addr())
	if err != nil {
		return
	}
	defer conn.Close()
	if err := conn.Send(proxy.EncodeRequest("probe", payload)); err != nil {
		return
	}
	// Reply, error, closure or timeout — the outcome state is read elsewhere.
	var reply []byte
	if timeout > 0 {
		reply, err = conn.RecvTimeout(timeout)
	} else {
		reply, err = conn.Recv()
	}
	if err == nil {
		netsim.Release(reply)
	}
}

// deliverIndirectProbe sends one server-targeted exploit request through
// the first live proxy.
func deliverIndirectProbe(sys *fortress.System, payload []byte, timeout time.Duration) {
	for _, p := range sys.Proxies() {
		if p.Crashed() {
			continue
		}
		deliverProbe(sys, p, payload, timeout)
		return
	}
}
