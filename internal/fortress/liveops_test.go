package fortress

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fortress/internal/keyspace"
	"fortress/internal/metrics"
	"fortress/internal/replica"
	"fortress/internal/replica/store"
	"fortress/internal/service"
)

// metricsTestSystem deploys a system with a fresh registry attached. A WAL
// store factory is wired when dir is non-empty, with per-server directories
// and the store's instruments labelled by server address.
func metricsTestSystem(t *testing.T, backend replica.Backend, reg *metrics.Registry, dir string) *System {
	t.Helper()
	space, err := keyspace.NewSpace(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Servers:           3,
		Proxies:           2,
		Backend:           backend,
		Space:             space,
		Seed:              7,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		ServerTimeout:     2 * time.Second,
		Metrics:           reg,
	}
	if dir != "" {
		cfg.StoreFactory = func(server int) (store.Store, error) {
			return store.Open(store.WALConfig{
				Dir:          filepath.Join(dir, fmt.Sprintf("s%d", server)),
				DisableFsync: true,
				Metrics:      reg,
				Node:         ServerAddr(server),
			})
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

// TestMetricsInstrumentCoverage pins the live-ops acceptance bar: a
// deployed system registers instruments from every layer — replication
// core, replication engine (PB or SMR), durable store, proxy tier and the
// fortress lifecycle — and well more than ten distinct families in total.
func TestMetricsInstrumentCoverage(t *testing.T) {
	regPB := metrics.New()
	sysPB := metricsTestSystem(t, replica.BackendPB, regPB, "")
	client, err := sysPB.Client("cov-client", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("w1", []byte(`{"op":"put","key":"k","value":"v"}`)); err != nil {
		t.Fatal(err)
	}

	regSMR := metrics.New()
	metricsTestSystem(t, replica.BackendSMR, regSMR, t.TempDir())

	families := map[string]bool{}
	collect := func(snap metrics.Snapshot) {
		for _, section := range []map[string]uint64{snap.Counters, snap.Timing} {
			for name := range section {
				base, _, _ := strings.Cut(name, "{")
				families[base] = true
			}
		}
		for name := range snap.Gauges {
			base, _, _ := strings.Cut(name, "{")
			families[base] = true
		}
		for name := range snap.Histograms {
			base, _, _ := strings.Cut(name, "{")
			families[base] = true
		}
	}
	collect(regPB.Snapshot())
	collect(regSMR.Snapshot())

	if len(families) < 10 {
		t.Fatalf("want >= 10 distinct instrument families, got %d: %v", len(families), families)
	}
	byLayer := map[string]bool{}
	for base := range families {
		prefix, _, _ := strings.Cut(base, "_")
		byLayer[prefix] = true
	}
	for _, layer := range []string{"core", "pb", "smr", "store", "proxy", "fortress"} {
		if !byLayer[layer] {
			t.Errorf("no %s-layer instruments registered; families: %v", layer, families)
		}
	}
	// The workload above must be visible, not just registered.
	snap := regPB.Snapshot()
	if snap.Timing[`proxy_requests_total{node="proxy-0"}`]+snap.Timing[`proxy_requests_total{node="proxy-1"}`] == 0 {
		t.Error("client request not counted by any proxy")
	}
}

// TestTraceRingWraparoundUnderChurn drives a crash/restart storm through a
// small pre-registered ring (registration is idempotent, so the system's
// own traceEvent calls land in it) and checks the ring's bound holds: the
// oldest events are evicted in order and only the most recent survive.
func TestTraceRingWraparoundUnderChurn(t *testing.T) {
	const capacity = 4
	reg := metrics.New()
	ring := reg.Ring(ServerAddr(1), capacity)
	sys := metricsTestSystem(t, replica.BackendPB, reg, "")

	const cycles = 6
	var midpoint []metrics.Event
	for i := 0; i < cycles; i++ {
		if err := sys.CrashServer(1); err != nil {
			t.Fatal(err)
		}
		if err := sys.RestartServer(1); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			midpoint = ring.Events()
		}
	}

	if got := ring.Total(); got < 2*cycles {
		t.Fatalf("ring total %d, want >= %d (every crash/restart recorded)", got, 2*cycles)
	}
	events := ring.Events()
	if len(events) != capacity {
		t.Fatalf("retained %d events, want exactly the ring capacity %d", len(events), capacity)
	}
	for i, e := range events {
		if e.Node != ServerAddr(1) {
			t.Errorf("event %d from %q, want %q", i, e.Node, ServerAddr(1))
		}
		if i > 0 && e.Time < events[i-1].Time {
			t.Errorf("events out of order: [%d].Time=%d < [%d].Time=%d", i, e.Time, i-1, events[i-1].Time)
		}
	}
	// Eviction is oldest-first: the four cycles after the midpoint snapshot
	// recorded at least eight further events through the 4-slot ring, so
	// nothing retained at the midpoint may survive to the end.
	if len(midpoint) == 0 {
		t.Fatal("no events retained at storm midpoint")
	}
	if newest := midpoint[len(midpoint)-1].Time; events[0].Time < newest {
		t.Errorf("oldest retained event (t=%d) predates the storm midpoint (t=%d); oldest events were not evicted first",
			events[0].Time, newest)
	}
}
