package fortress_test

import (
	"fmt"
	"testing"
	"time"

	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/service"
)

// newShardedSystem deploys a 2-group fortress for shard isolation tests.
func newShardedSystem(t *testing.T) *fortress.System {
	t.Helper()
	space, err := keyspace.NewSpace(16)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fortress.New(fortress.Config{
		Servers:           3,
		Proxies:           3,
		Groups:            2,
		Space:             space,
		Seed:              7,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		ServerTimeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

// TestShardCutIsolatesGroups severs group 0's server quorum from the proxy
// tier and checks the outage stays inside that shard: group 0's slice of the
// keyspace goes dark while group 1 keeps answering reads and writes.
func TestShardCutIsolatesGroups(t *testing.T) {
	sys := newShardedSystem(t)
	ring := sys.Ring()
	k0, k1 := ring.ProbeKey(0), ring.ProbeKey(1)

	client, err := sys.Client("shard-client", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	put := func(id, key string) error {
		_, err := client.Invoke(id, []byte(fmt.Sprintf(`{"op":"put","key":%q,"value":"x"}`, key)))
		return err
	}
	get := func(id, key string) error {
		_, err := client.InvokeRead(id, []byte(fmt.Sprintf(`{"op":"get","key":%q}`, key)))
		return err
	}
	if err := put("w0", k0); err != nil {
		t.Fatalf("pre-cut put group 0: %v", err)
	}
	if err := put("w1", k1); err != nil {
		t.Fatalf("pre-cut put group 1: %v", err)
	}

	// Sever a majority of group 0 (servers 0,1 — primary included) from the
	// whole proxy tier: the shard cannot commit until the cut heals.
	quorum := []string{fortress.ServerAddr(0), fortress.ServerAddr(1)}
	front := []string{fortress.ProxyAddr(0), fortress.ProxyAddr(1), fortress.ProxyAddr(2)}
	sys.Net().PartitionGroup(quorum, front)

	if err := put("w2", k0); err == nil {
		t.Error("group-0 write succeeded through a severed quorum")
	}
	if err := get("r2", k0); err == nil {
		t.Error("group-0 read succeeded through a severed quorum")
	}
	if err := put("w3", k1); err != nil {
		t.Errorf("group-1 write failed despite untouched shard: %v", err)
	}
	if err := get("r3", k1); err != nil {
		t.Errorf("group-1 read failed despite untouched shard: %v", err)
	}

	sys.Net().HealGroup(quorum, front)
	if err := put("w4", k0); err != nil {
		t.Errorf("group-0 write failed after heal: %v", err)
	}
}

// TestShardRoutingSurvivesProxyRebuild regression-tests the proxy rebuild
// path: a proxy restarted after a fault crash must come back with the same
// routing ring, or it silently falls back to forwarding every request to all
// groups — which masks shard outages (a group-0 request answered by group 1)
// and double-executes writes.
func TestShardRoutingSurvivesProxyRebuild(t *testing.T) {
	sys := newShardedSystem(t)
	ring := sys.Ring()
	k0, k1 := ring.ProbeKey(0), ring.ProbeKey(1)

	for i := 0; i < 3; i++ {
		if err := sys.CrashProxy(i); err != nil {
			t.Fatal(err)
		}
		if err := sys.RestartProxy(i); err != nil {
			t.Fatal(err)
		}
	}

	client, err := sys.Client("rebuild-client", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	quorum := []string{fortress.ServerAddr(0), fortress.ServerAddr(1)}
	front := []string{fortress.ProxyAddr(0), fortress.ProxyAddr(1), fortress.ProxyAddr(2)}
	sys.Net().PartitionGroup(quorum, front)

	// A rebuilt proxy that lost the ring would forward this to all six
	// servers and return group 1's (wrong-shard) answer instead of failing.
	if _, err := client.Invoke("w0", []byte(fmt.Sprintf(`{"op":"put","key":%q,"value":"x"}`, k0))); err == nil {
		t.Error("group-0 write through rebuilt proxies succeeded despite severed quorum")
	}
	if _, err := client.Invoke("w1", []byte(fmt.Sprintf(`{"op":"put","key":%q,"value":"x"}`, k1))); err != nil {
		t.Errorf("group-1 write through rebuilt proxies failed: %v", err)
	}
}
