package fortress

import (
	"strings"
	"testing"
	"time"

	"fortress/internal/exploit"
	"fortress/internal/keyspace"
	"fortress/internal/netsim"
	"fortress/internal/proxy"
	"fortress/internal/service"
)

const (
	hbInterval = 5 * time.Millisecond
	hbTimeout  = 50 * time.Millisecond
	srvTimeout = 2 * time.Second
)

func build(t *testing.T, chi uint64, mutate func(*Config)) *System {
	t.Helper()
	space, err := keyspace.NewSpace(chi)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Servers:           3,
		Proxies:           3,
		Space:             space,
		Seed:              7,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: hbInterval,
		HeartbeatTimeout:  hbTimeout,
		ServerTimeout:     srvTimeout,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

func TestConfigValidation(t *testing.T) {
	space, err := keyspace.NewSpace(16)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{
		Servers: 1, Proxies: 1, Space: space,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: time.Millisecond, HeartbeatTimeout: time.Millisecond,
		ServerTimeout: time.Millisecond,
	}
	muts := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.Proxies = 0 },
		func(c *Config) { c.Space = nil },
		func(c *Config) { c.ServiceFactory = nil },
		func(c *Config) { c.HeartbeatInterval = 0 },
		func(c *Config) { c.ServerTimeout = 0 },
	}
	for i, m := range muts {
		c := good
		m(&c)
		if _, err := New(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEndToEndService(t *testing.T) {
	sys := build(t, 1<<16, nil)
	client, err := sys.Client("alice", srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("w1", []byte(`{"op":"put","key":"city","value":"newcastle"}`)); err != nil {
		t.Fatal(err)
	}
	got, err := client.Invoke("r1", []byte(`{"op":"get","key":"city"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "newcastle") {
		t.Fatalf("got %s", got)
	}
}

func TestRerandomizePreservesState(t *testing.T) {
	sys := build(t, 1<<16, nil)
	client, err := sys.Client("alice", srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("w1", []byte(`{"op":"put","key":"k","value":"v1"}`)); err != nil {
		t.Fatal(err)
	}
	oldServerKey := sys.ServerKey()
	oldProxyKeys := sys.ProxyKeys()

	if err := sys.Rerandomize(); err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != 1 {
		t.Fatalf("epoch = %d", sys.Epoch())
	}
	// Fresh keys with overwhelming probability for χ=2¹⁶; assert at least
	// one changed to avoid a flaky exact-match requirement.
	changed := sys.ServerKey() != oldServerKey
	for i, k := range sys.ProxyKeys() {
		if k != oldProxyKeys[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("no randomization key changed across the epoch")
	}

	// Clients built after the epoch see the preserved state.
	client2, err := sys.Client("alice2", srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client2.Invoke("r1", []byte(`{"op":"get","key":"k"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "v1") {
		t.Fatalf("state lost across re-randomization: %s", got)
	}
}

func TestRerandomizeCleansCompromise(t *testing.T) {
	sys := build(t, 8, nil) // tiny space: compromise is easy
	// Compromise a proxy by probing its actual key.
	keys := sys.ProxyKeys()
	conn, err := sys.Net().Dial("attacker", sys.Proxies()[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(proxy.EncodeRequest("x", exploit.NewPayload(exploit.TierProxy, keys[0]))); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.RecvTimeout(srvTimeout); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if sys.Status().ProxiesCompromised != 1 {
		t.Fatal("setup: proxy not compromised")
	}
	if err := sys.Rerandomize(); err != nil {
		t.Fatal(err)
	}
	st := sys.Status()
	if st.ProxiesCompromised != 0 || st.ServersCompromised != 0 {
		t.Fatalf("compromise survived re-randomization: %+v", st)
	}
}

func TestStatusCompromiseConditions(t *testing.T) {
	sys := build(t, 8, nil)
	if sys.Status().Compromised {
		t.Fatal("fresh system compromised")
	}
	// Compromise all proxies → system compromised (route 3).
	for i, p := range sys.Proxies() {
		conn, err := sys.Net().Dial("attacker", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(proxy.EncodeRequest("x", exploit.NewPayload(exploit.TierProxy, sys.ProxyKeys()[i]))); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.RecvTimeout(srvTimeout); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	st := sys.Status()
	if st.ProxiesCompromised != 3 || !st.Compromised {
		t.Fatalf("all-proxies route not detected: %+v", st)
	}
}

func TestServerCompromiseDetected(t *testing.T) {
	sys := build(t, 8, nil)
	// Indirect probe with the real server key through a proxy.
	conn, err := sys.Net().Dial("attacker", sys.Proxies()[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(proxy.EncodeRequest("x", exploit.NewPayload(exploit.TierServer, sys.ServerKey()))); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.RecvTimeout(srvTimeout); err != nil {
		t.Fatal(err)
	}
	st := sys.Status()
	if st.ServersCompromised == 0 || !st.Compromised {
		t.Fatalf("server compromise not detected: %+v", st)
	}
}

func TestDetectorSharedAcrossEpochs(t *testing.T) {
	sys := build(t, 1<<16, func(c *Config) {
		c.DetectorWindow = time.Hour
		c.DetectorThreshold = 2
	})
	det := sys.Detector()
	if det == nil {
		t.Fatal("detector not built")
	}
	det.ObserveInvalid("mallory")
	if err := sys.Rerandomize(); err != nil {
		t.Fatal(err)
	}
	if sys.Detector() != det {
		t.Fatal("detector replaced across epochs — long-horizon logging lost")
	}
	det.ObserveInvalid("mallory")
	if !det.Flagged("mallory") {
		t.Fatal("observations across epochs not accumulated")
	}
}

func TestStopIdempotent(t *testing.T) {
	sys := build(t, 1<<16, nil)
	sys.Stop()
	sys.Stop()
	if err := sys.Rerandomize(); err == nil {
		t.Fatal("re-randomize after stop accepted")
	}
}

func TestSharedNetwork(t *testing.T) {
	net := netsim.NewNetwork()
	sys := build(t, 1<<16, func(c *Config) { c.Net = net })
	if sys.Net() != net {
		t.Fatal("system ignored provided network")
	}
}

func TestManyEpochsStable(t *testing.T) {
	sys := build(t, 1<<16, nil)
	client, err := sys.Client("alice", srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("w", []byte(`{"op":"put","key":"n","value":"42"}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sys.Rerandomize(); err != nil {
			t.Fatalf("epoch %d: %v", i+1, err)
		}
	}
	client2, err := sys.Client("bob", srvTimeout)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client2.Invoke("r", []byte(`{"op":"get","key":"n"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "42") {
		t.Fatalf("state lost after 5 epochs: %s", got)
	}
	if sys.Epoch() != 5 {
		t.Fatalf("epoch = %d", sys.Epoch())
	}
}
