// Package fortress assembles the complete FORTRESS system (§3): a
// primary-backup server tier fortified by a redundant proxy tier behind a
// trusted name server, with the proactive-obfuscation scheduler that
// re-randomizes every node at each period boundary.
//
// The paper's prescriptions implemented here:
//
//   - n_s servers and n_p proxies; clients talk only to proxies.
//   - Servers are randomized identically (one shared key), so
//     primary-to-backup state transfer needs no marshalling layer; proxies
//     are randomized with n_p distinct keys. (n_p + 1) keys are in use at
//     any time.
//   - Clients learn proxy addresses/keys and server indices/keys from the
//     read-only name server; server addresses stay hidden.
//   - Responses reach clients doubly signed: by a server (with its index)
//     and over-signed by a proxy.
//   - Rerandomize reboots every node with fresh keys: executables change,
//     attacker knowledge evaporates, service state survives via the
//     primary-backup snapshot chain.
package fortress

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fortress/internal/exploit"
	"fortress/internal/keyspace"
	"fortress/internal/memlayout"
	"fortress/internal/metrics"
	"fortress/internal/nameserver"
	"fortress/internal/netsim"
	"fortress/internal/proxy"
	"fortress/internal/replica"
	"fortress/internal/replica/pb"
	"fortress/internal/replica/smr"
	"fortress/internal/replica/store"
	"fortress/internal/service"
	"fortress/internal/shard"
	"fortress/internal/sig"
	"fortress/internal/xrand"
)

// Config describes a FORTRESS deployment.
type Config struct {
	// Servers is n_s, the server count (paper: 3). With Groups > 1 it is
	// the per-group count: the deployment boots Groups×Servers servers in
	// one global index space, group g owning indices [g·Servers,
	// (g+1)·Servers).
	Servers int
	// Proxies is n_p, the proxy count (paper: 3).
	Proxies int
	// Groups is the number of independent replica groups the service
	// keyspace is partitioned across (0 or 1 = the classic single-group
	// deployment). Each group runs its own instance of the Backend
	// protocol over its own slice of the server index space; the proxy
	// tier routes each request to the owning group via a deterministic
	// consistent-hash ring seeded from Seed, so aggregate ordering
	// throughput scales with Groups instead of capping at one
	// sequencer/primary.
	Groups int
	// Backend selects the server tier's replication engine: primary-backup
	// (the paper's fortified tier, the zero value) or state machine
	// replication. Everything else — proxies, name server, randomization,
	// fault schedules — is backend-agnostic, so sweeps can compare
	// replication styles under identical attack and failure loads.
	Backend replica.Backend
	// Space is the randomization key space (χ).
	Space *keyspace.Space
	// Seed drives all randomization draws.
	Seed uint64
	// ServiceFactory builds one fresh service instance per server per
	// epoch; state carries over via snapshots.
	ServiceFactory func() service.Service
	// DetectorWindow and DetectorThreshold configure probe-source
	// detection at the proxies; a zero window disables detection.
	DetectorWindow    time.Duration
	DetectorThreshold int
	// HeartbeatInterval/Timeout tune the PB failure detector.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// CheckpointEvery is the PB update stream's full-snapshot cadence: every
	// k-th update ships a checkpoint instead of a delta. Zero selects the
	// engine default (32); one restores the classic full-snapshot-per-update
	// stream. Ignored by the SMR backend, whose orders are always deltas by
	// construction.
	CheckpointEvery int
	// UpdateWindow bounds the per-replica resync history: the PB primary's
	// retained unacknowledged deltas and the SMR leader's catch-up log
	// suffix. Zero selects the engine defaults (256 and 512 respectively);
	// negative retains nothing, forcing every resync onto the
	// checkpoint/snapshot path.
	UpdateWindow int
	// RespCacheLimit bounds each replica's response cache (oldest-first
	// eviction past the limit), capping checkpoint, catch-up transfer and
	// on-disk snapshot size on both backends. Zero selects the engine
	// default (4096); negative retains everything.
	RespCacheLimit int
	// OutboxLimit bounds each replica's per-peer staged outbox
	// (replica/core): past the bound the oldest staged messages are shed and
	// the PB primary checkpoint-resyncs the affected backup, so a slow or
	// partitioned peer costs bounded memory instead of an unbounded backlog.
	// Zero is unbounded.
	OutboxLimit int
	// Leases enables SMR read leases: requests tagged as reads are served
	// from local replica state under heartbeat-bounded leases instead of
	// entering the order protocol, so read-mostly throughput scales with
	// replica count. Ignored by the PB backend, which has no local read
	// path.
	Leases bool
	// LeaseDuration bounds lease validity; zero selects the engine default
	// (HeartbeatTimeout/2). Must not exceed HeartbeatTimeout.
	LeaseDuration time.Duration
	// StoreFactory builds the persistent store for server i. Stores are
	// created once per server index and survive node crashes, restarts and
	// re-randomization epochs (they are reset at epoch boundaries, where
	// sequence numbering restarts): a server rebuilt over a non-empty
	// durable store recovers its state from disk instead of from a live
	// peer — which is what lets a whole-cluster blackout heal. Nil means no
	// persistence (the engines' zero-allocation in-memory default).
	StoreFactory func(server int) (store.Store, error)
	// ServerTimeout bounds proxy→server interactions.
	ServerTimeout time.Duration
	// Net is the network to deploy on; nil creates a private one.
	Net *netsim.Network
	// Metrics, when non-nil, receives instruments from every layer of the
	// deployment — replica runtimes, protocol engines, proxies, and the
	// system's own lifecycle counters and per-node trace rings. When Net is
	// nil the private network is built with drop counters on the same
	// registry; a caller-provided Net wires its own (netsim.WithMetrics).
	// Observational only: no protocol or scheduling decision reads a metric
	// back, so instrumented runs stay bit-identical to bare ones.
	Metrics *metrics.Registry
}

// groups resolves Config.Groups: the zero value means one group.
func (c Config) groups() int {
	if c.Groups < 1 {
		return 1
	}
	return c.Groups
}

// totalServers is the global server count across all groups.
func (c Config) totalServers() int { return c.groups() * c.Servers }

func (c Config) validate() error {
	switch {
	case c.Servers < 1:
		return errors.New("fortress: need at least one server")
	case c.Proxies < 1:
		return errors.New("fortress: need at least one proxy")
	case c.Space == nil:
		return errors.New("fortress: need a key space")
	case c.ServiceFactory == nil:
		return errors.New("fortress: need a service factory")
	case c.HeartbeatInterval <= 0 || c.HeartbeatTimeout <= 0 || c.ServerTimeout <= 0:
		return errors.New("fortress: need positive timings")
	case c.CheckpointEvery < 0:
		return errors.New("fortress: need a non-negative CheckpointEvery")
	case c.Backend != replica.BackendPB && c.Backend != replica.BackendSMR:
		return fmt.Errorf("fortress: unknown backend %v", c.Backend)
	}
	return nil
}

// System is a running FORTRESS deployment.
type System struct {
	cfg  Config
	net  *netsim.Network
	ns   *nameserver.NameServer
	rng  *xrand.RNG
	ring *shard.Ring

	// Signing identities are stable across epochs: re-randomization changes
	// executables, not cryptographic identity.
	serverSig []*sig.KeyPair
	proxySig  []*sig.KeyPair

	mu        sync.Mutex
	epoch     uint64
	serverKey keyspace.Key
	proxyKeys []keyspace.Key
	servers   []replica.Server
	guards    []*exploit.Guard
	proxies   []*proxy.Proxy
	detector  *proxy.Detector
	stopped   bool
	// stores holds each server's persistent store (nil entries until first
	// use, all nil without a StoreFactory). A store outlives the replica
	// objects mounted on it — that is the point.
	stores []store.Store

	// Fault-injected outages (CrashServer/CrashProxy): unlike probe crashes,
	// these model power/hardware failures, so Recover's forking-daemon
	// respawn must NOT resurrect them and a re-randomization epoch reboots
	// them into the same dead state. Only RestartServer/RestartProxy (or a
	// fault schedule's Restart event) bring them back.
	downServers map[int]bool
	downProxies map[int]bool

	// Lifecycle instruments (nil no-ops without Config.Metrics). These count
	// schedule-driven events, which are a pure function of the seeded fault
	// and attack streams — hence Stable class.
	mFaultCrashes  *metrics.Counter
	mFaultRestarts *metrics.Counter
	mProxyCrashes  *metrics.Counter
	mProxyRestarts *metrics.Counter
	mPowerFails    *metrics.Counter
	mRerandomize   *metrics.Counter
}

// New deploys a FORTRESS system and starts epoch 0.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	net := cfg.Net
	if net == nil {
		var opts []netsim.Option
		if cfg.Metrics != nil {
			opts = append(opts, netsim.WithMetrics(cfg.Metrics))
		}
		net = netsim.NewNetwork(opts...)
	}
	ns, err := nameserver.New(nameserver.ReplicationPrimaryBackup, 0)
	if err != nil {
		return nil, err
	}
	ring, err := shard.New(cfg.groups(), 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg: cfg, net: net, ns: ns, rng: xrand.New(cfg.Seed), ring: ring,
		downServers: make(map[int]bool),
		downProxies: make(map[int]bool),
		stores:      make([]store.Store, cfg.totalServers()),
	}
	if reg := cfg.Metrics; reg != nil {
		s.mFaultCrashes = reg.Counter("fortress_server_fault_crashes_total", metrics.Stable)
		s.mFaultRestarts = reg.Counter("fortress_server_fault_restarts_total", metrics.Stable)
		s.mProxyCrashes = reg.Counter("fortress_proxy_fault_crashes_total", metrics.Stable)
		s.mProxyRestarts = reg.Counter("fortress_proxy_fault_restarts_total", metrics.Stable)
		s.mPowerFails = reg.Counter("fortress_power_failures_total", metrics.Stable)
		s.mRerandomize = reg.Counter("fortress_rerandomize_total", metrics.Stable)
	}
	for i := 0; i < cfg.totalServers(); i++ {
		kp, err := sig.NewKeyPair()
		if err != nil {
			return nil, fmt.Errorf("fortress: server %d keys: %w", i, err)
		}
		s.serverSig = append(s.serverSig, kp)
	}
	for i := 0; i < cfg.Proxies; i++ {
		kp, err := sig.NewKeyPair()
		if err != nil {
			return nil, fmt.Errorf("fortress: proxy %d keys: %w", i, err)
		}
		s.proxySig = append(s.proxySig, kp)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buildEpochLocked(nil); err != nil {
		return nil, err
	}
	return s, nil
}

// traceEvent records a lifecycle event on node's trace ring (the per-node
// bounded ring the registry keys by address). Seq carries the current epoch.
// Caller holds s.mu.
func (s *System) traceEvent(kind, node string) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.Ring(node, 0).Record(kind, node, -1, s.epoch)
}

// ServerAddr returns the stable netsim address of server i. Fault schedules
// use it to aim partitions at the server tier.
func ServerAddr(i int) string { return fmt.Sprintf("fortress-server-%d", i) }

// ProxyAddr returns the stable netsim address of proxy i.
func ProxyAddr(i int) string { return fmt.Sprintf("fortress-proxy-%d", i) }

// serverAddr and proxyAddr are the internal aliases.
func serverAddr(i int) string { return ServerAddr(i) }
func proxyAddr(i int) string  { return ProxyAddr(i) }

// buildEpochLocked stands up all nodes for a new epoch, restoring each
// group's service state from snapshots (indexed by group) when given.
// Caller holds s.mu.
func (s *System) buildEpochLocked(snapshots [][]byte) error {
	// Fresh randomization keys: one shared for servers, distinct per proxy.
	s.serverKey = s.cfg.Space.Draw(s.rng)
	s.proxyKeys = make([]keyspace.Key, s.cfg.Proxies)
	for i := range s.proxyKeys {
		s.proxyKeys[i] = s.cfg.Space.Draw(s.rng)
	}
	if s.cfg.DetectorWindow > 0 {
		// The detector's log survives epochs: proxies log observations "for
		// longer periods" (§2.2), and flagged sources stay flagged.
		if s.detector == nil {
			s.detector = proxy.NewDetector(s.cfg.DetectorWindow, s.cfg.DetectorThreshold)
		}
	}

	s.servers = make([]replica.Server, s.cfg.totalServers())
	s.guards = make([]*exploit.Guard, s.cfg.totalServers())
	for i := 0; i < s.cfg.totalServers(); i++ {
		// At an epoch boundary every replica reboots together with its
		// group's snapshot, so even the SMR backend restores directly —
		// there is no live leader ahead of the group to catch up from.
		var snapshot []byte
		if g := s.groupOf(i); g < len(snapshots) {
			snapshot = snapshots[g]
		}
		if err := s.startServerLocked(i, snapshot, s.groupOf(i)*s.cfg.Servers, nil); err != nil {
			return err
		}
	}

	s.proxies = make([]*proxy.Proxy, s.cfg.Proxies)
	for i := 0; i < s.cfg.Proxies; i++ {
		p, err := proxy.New(proxy.Config{
			ID:              fmt.Sprintf("proxy-%d", i),
			Addr:            proxyAddr(i),
			Keys:            s.proxySig[i],
			NS:              s.ns,
			Net:             s.net,
			Detector:        s.detector,
			Proc:            memlayout.NewProcess(s.proxyKeys[i]),
			ServerTimeout:   s.cfg.ServerTimeout,
			Ring:            s.ring,
			ServersPerGroup: s.cfg.Servers,
			Metrics:         s.cfg.Metrics,
		})
		if err != nil {
			return fmt.Errorf("fortress: proxy %d: %w", i, err)
		}
		s.proxies[i] = p
		if err := s.ns.RegisterProxy(p.ID(), p.Addr(), p.PublicKey()); err != nil {
			return err
		}
	}
	// A fault-downed node reboots into the same outage: the epoch change
	// re-randomizes executables, it does not repair failed hardware.
	for i := range s.downServers {
		s.servers[i].Crash()
	}
	for i := range s.downProxies {
		s.proxies[i].Crash()
	}
	return nil
}

// teardownLocked stops every node of the current epoch. Caller holds s.mu.
func (s *System) teardownLocked() {
	for _, p := range s.proxies {
		p.Stop()
	}
	for _, r := range s.servers {
		r.Stop()
	}
	// Clear any crashed addresses so fresh listeners can bind.
	for i := 0; i < s.cfg.totalServers(); i++ {
		s.net.CrashAddr(serverAddr(i))
	}
	for i := 0; i < s.cfg.Proxies; i++ {
		s.net.CrashAddr(proxyAddr(i))
	}
}

// Rerandomize performs one proactive-obfuscation period boundary: take a
// state snapshot, reboot everything under fresh randomization keys, restore
// the state. Attacker control of any node is lost (§2.3, §4.1).
func (s *System) Rerandomize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	snapshots := s.snapshotsLocked()
	s.teardownLocked()
	// The new epoch restarts the engines' sequence numbering from scratch
	// (state carries over via the snapshot, not the log), so a frontier
	// left on disk would poison recovery: wipe the stores. Persistence is
	// scoped within an epoch — the window between re-randomizations.
	for _, st := range s.stores {
		if st != nil {
			if err := st.Reset(); err != nil {
				return fmt.Errorf("fortress: reset store: %w", err)
			}
		}
	}
	s.epoch++
	s.mRerandomize.Inc()
	return s.buildEpochLocked(snapshots)
}

// Recover restarts every crashed node with its CURRENT randomization key —
// the start-up-only regime of §4.1 ("nodes are simply recovered at the end
// of each unit time step"): the forking-daemon respawn that absorbs probe
// crashes without giving the defender fresh keys. Compromised nodes stay
// compromised: with an unchanged key the attacker walks straight back in.
func (s *System) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	snapshots := s.snapshotsLocked()
	for i, g := range s.guards {
		if !g.Process().Crashed() || s.downServers[i] {
			continue
		}
		if err := s.rebuildServerLocked(i, snapshots[s.groupOf(i)]); err != nil {
			return err
		}
	}
	for i, p := range s.proxies {
		if !p.Crashed() || s.downProxies[i] {
			continue
		}
		if err := s.rebuildProxyLocked(i); err != nil {
			return err
		}
	}
	return nil
}

// CrashServer fault-crashes server i: the replica is torn out of the network
// and stays down — across Recover and across re-randomization epochs — until
// RestartServer. This models a node-level outage (power, hardware, kernel
// panic), as distinct from the probe-induced process crash a forking daemon
// absorbs.
func (s *System) CrashServer(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	if i < 0 || i >= len(s.servers) {
		return fmt.Errorf("fortress: no server %d", i)
	}
	s.downServers[i] = true
	s.servers[i].Crash()
	s.mFaultCrashes.Inc()
	s.traceEvent(metrics.KindCrash, serverAddr(i))
	return nil
}

// CrashProxy fault-crashes proxy i; see CrashServer for semantics.
func (s *System) CrashProxy(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	if i < 0 || i >= len(s.proxies) {
		return fmt.Errorf("fortress: no proxy %d", i)
	}
	s.downProxies[i] = true
	s.proxies[i].Crash()
	s.mProxyCrashes.Inc()
	s.traceEvent(metrics.KindCrash, proxyAddr(i))
	return nil
}

// RestartServer ends a fault outage: server i rejoins under the current
// shared randomization key with state restored from a live peer's snapshot —
// the reconnect-and-resync idiom of a supervised tunnel process. It is a
// no-op error-free call if the server was never fault-crashed but is down
// for another reason; probe crashes remain Recover's business.
func (s *System) RestartServer(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	if i < 0 || i >= len(s.servers) {
		return fmt.Errorf("fortress: no server %d", i)
	}
	if !s.downServers[i] {
		return nil // not fault-crashed: nothing to end, and a live node stays up
	}
	delete(s.downServers, i)
	s.mFaultRestarts.Inc()
	s.traceEvent(metrics.KindRestart, serverAddr(i))
	return s.rebuildServerLocked(i, s.snapshotGroupLocked(s.groupOf(i)))
}

// CrashGroup fault-crashes every server of replica group g in index
// order: a shard-wide outage. The other groups keep serving their slices
// of the keyspace — the blast radius a sharded deployment exists to
// bound. See CrashServer for the outage semantics.
func (s *System) CrashGroup(g int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	if g < 0 || g >= s.cfg.groups() {
		return fmt.Errorf("fortress: no group %d", g)
	}
	for i := g * s.cfg.Servers; i < (g+1)*s.cfg.Servers; i++ {
		s.downServers[i] = true
		s.servers[i].Crash()
		s.mFaultCrashes.Inc()
		s.traceEvent(metrics.KindCrash, serverAddr(i))
	}
	return nil
}

// RestartGroup ends a shard-wide outage: every fault-downed server of
// group g is rebuilt in index order. See RestartServer for the rejoin
// semantics.
func (s *System) RestartGroup(g int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	if g < 0 || g >= s.cfg.groups() {
		return fmt.Errorf("fortress: no group %d", g)
	}
	for i := g * s.cfg.Servers; i < (g+1)*s.cfg.Servers; i++ {
		if !s.downServers[i] {
			continue
		}
		delete(s.downServers, i)
		s.mFaultRestarts.Inc()
		s.traceEvent(metrics.KindRestart, serverAddr(i))
		if err := s.rebuildServerLocked(i, s.snapshotGroupLocked(g)); err != nil {
			return err
		}
	}
	return nil
}

// CrashAll models a whole-cluster power loss: every server and proxy is
// fault-crashed in index order, and every durable store suffers a power
// failure — buffered writes past its last sync point are gone, making the
// fsync cadence a real durability knob. Nothing comes back until
// RestartAll (or per-node restarts).
func (s *System) CrashAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	for i := range s.servers {
		s.downServers[i] = true
		s.servers[i].Crash()
		s.mFaultCrashes.Inc()
		s.traceEvent(metrics.KindPowerFail, serverAddr(i))
	}
	for i := range s.proxies {
		s.downProxies[i] = true
		s.proxies[i].Crash()
		s.mProxyCrashes.Inc()
		s.traceEvent(metrics.KindPowerFail, proxyAddr(i))
	}
	for i, st := range s.stores {
		if pf, ok := st.(store.PowerFailer); ok {
			if err := pf.PowerFail(); err != nil {
				return fmt.Errorf("fortress: power-fail store %d: %w", i, err)
			}
		}
	}
	s.mPowerFails.Inc()
	return nil
}

// RestartAll ends a whole-cluster outage: every fault-downed server and
// proxy is rebuilt in index order. With durable stores each server recovers
// its own state from disk — there is no live donor after a blackout. With
// the in-memory default the first server comes back empty and donates its
// empty state to the rest: the cluster converges, the data is gone. That
// asymmetry is the headline the blackout preset exists to show.
func (s *System) RestartAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	for i := range s.servers {
		if !s.downServers[i] {
			continue
		}
		delete(s.downServers, i)
		s.mFaultRestarts.Inc()
		s.traceEvent(metrics.KindRestart, serverAddr(i))
		if err := s.rebuildServerLocked(i, s.snapshotGroupLocked(s.groupOf(i))); err != nil {
			return err
		}
	}
	for i := range s.proxies {
		if !s.downProxies[i] {
			continue
		}
		delete(s.downProxies, i)
		s.mProxyRestarts.Inc()
		s.traceEvent(metrics.KindRestart, proxyAddr(i))
		if err := s.rebuildProxyLocked(i); err != nil {
			return err
		}
	}
	return nil
}

// StallDisk injects d of latency into every sync point of server i's store
// (cadenced log syncs and snapshot writes), modeling a stalling disk; a
// non-positive d clears the stall. A no-op when the server's store does not
// support stalling (the in-memory default).
func (s *System) StallDisk(i int, d time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	if i < 0 || i >= len(s.stores) {
		return fmt.Errorf("fortress: no server %d", i)
	}
	if st, ok := s.stores[i].(store.Staller); ok {
		st.SetStall(d)
	}
	return nil
}

// ServerStore returns server i's persistent store, or nil without a
// StoreFactory (or before the server first started). Tests use it to
// inspect and hash on-disk state.
func (s *System) ServerStore(i int) store.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.stores) {
		return nil
	}
	return s.stores[i]
}

// RestartProxy ends a fault outage for proxy i; see RestartServer.
func (s *System) RestartProxy(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fortress: system stopped")
	}
	if i < 0 || i >= len(s.proxies) {
		return fmt.Errorf("fortress: no proxy %d", i)
	}
	if !s.downProxies[i] {
		return nil // not fault-crashed: nothing to end, and a live node stays up
	}
	delete(s.downProxies, i)
	s.mProxyRestarts.Inc()
	s.traceEvent(metrics.KindRestart, proxyAddr(i))
	return s.rebuildProxyLocked(i)
}

// rebuildServerLocked replaces server i with a fresh replica under the
// current shared key. The PB backend restores state from a live peer's
// snapshot (the next primary update carries a full snapshot anyway); the
// SMR backend instead seeds the replacement from a live peer's
// StateTransfer — a consistent (snapshot, executed-sequence, response
// cache) triple — so the node rejoins mid-history with state and sequence
// counter in lockstep, and the order protocol's own catch-up transfer
// closes whatever gap remains. A plain snapshot restore would leave the
// sequence counter at zero: a rebuilt lowest-index node would then reclaim
// the sequencer role believing the group starts over, forking the cluster.
// Caller holds s.mu.
func (s *System) rebuildServerLocked(i int, snapshot []byte) error {
	s.servers[i].Stop()
	s.net.CrashAddr(serverAddr(i))
	if s.storeHasStateLocked(i) {
		// The store outlived the crash: the engine recovers from its own
		// disk (RecoverFromStore runs inside New) and protocol catch-up
		// closes whatever gap remains — no donor snapshot or seed needed,
		// and none may exist (a blackout downs every peer at once).
		return s.startServerLocked(i, nil, i, nil)
	}
	if s.cfg.Backend == replica.BackendSMR {
		// InitialPrimary is PB-only; the seed carries the SMR join state.
		return s.startServerLocked(i, nil, i, s.smrSeedLocked(i))
	}
	// InitialPrimary i: a recovered PB node rejoins; peers re-elect.
	return s.startServerLocked(i, snapshot, i, nil)
}

// storeHasStateLocked reports whether server i sits on a durable store with
// anything to recover from. Caller holds s.mu.
func (s *System) storeHasStateLocked(i int) bool {
	st := s.stores[i]
	if st == nil || !st.Durable() {
		return false
	}
	rec, err := st.Load()
	return err == nil && !rec.Empty()
}

// smrSeed is the state a replacement SMR replica starts from.
type smrSeed struct {
	snapshot  []byte
	executed  uint64
	responses map[string][]byte
	join      bool
}

// smrSeedLocked captures a state transfer from the first live,
// uncompromised, not-fault-downed SMR peer of server i within its own
// replica group, in index order for determinism. The donor's leader view also decides the replacement's
// join posture: when the group has failed over away from index i (the
// donor follows someone else), the replacement must rejoin with an unknown
// leader and adopt the live sequencer's heartbeats — a lowest-index node
// that assumed leadership would briefly sequence concurrently with the
// failed-over leader and fork the replica states. When the donor still
// follows index i, resuming leadership at the donor's frontier is safe
// and avoids a leaderless window. When no peer qualifies (the whole tier
// is down together) the seed is empty: every replacement starts
// identically from sequence one, consistent precisely because nobody
// retains anything newer. Caller holds s.mu.
func (s *System) smrSeedLocked(i int) *smrSeed {
	g := s.groupOf(i)
	for j := g * s.cfg.Servers; j < (g+1)*s.cfg.Servers; j++ {
		srv := s.servers[j]
		if j == i || s.downServers[j] {
			continue
		}
		if g := s.guards[j]; g.Compromised() || g.Process().Crashed() {
			continue
		}
		donor, ok := srv.(*smr.Replica)
		if !ok {
			continue
		}
		snap, executed, responses, err := donor.StateTransfer()
		if err != nil {
			continue
		}
		return &smrSeed{
			snapshot:  snap,
			executed:  executed,
			responses: responses,
			join:      donor.LeaderIndex() != i,
		}
	}
	return &smrSeed{}
}

// startServerLocked builds and registers server i under the current shared
// key, restoring state from snapshot when non-nil. initialPrimary seeds the
// PB backend's starting role (the SMR backend always follows the lowest
// live index); seed, when non-nil, positions an SMR replacement mid-history
// (a nil seed is the epoch path: every replica restores the same snapshot
// and starts at sequence one together). Caller holds s.mu.
func (s *System) startServerLocked(i int, snapshot []byte, initialPrimary int, seed *smrSeed) error {
	// The replication protocol is per group: peers are the global indices
	// of server i's own group only, so each group elects and sequences
	// independently of the others.
	g := s.groupOf(i)
	peers := make(map[int]string, s.cfg.Servers)
	for j := g * s.cfg.Servers; j < (g+1)*s.cfg.Servers; j++ {
		peers[j] = serverAddr(j)
	}
	st, err := s.storeLocked(i)
	if err != nil {
		return err
	}
	svc := s.cfg.ServiceFactory()
	if snapshot != nil {
		if err := svc.Restore(snapshot); err != nil {
			return fmt.Errorf("fortress: restore server %d: %w", i, err)
		}
	}
	proc := memlayout.NewProcess(s.serverKey)
	// The guard needs the replica for crash teardown; capture via pointer
	// cell assigned after construction.
	var srv replica.Server
	guard := exploit.NewGuard(svc, exploit.TierServer, proc, func() {
		if srv != nil {
			srv.Crash()
		}
	}, nil)
	var r replica.Server
	switch s.cfg.Backend {
	case replica.BackendSMR:
		cfg := smr.Config{
			Index:             i,
			Addr:              peers[i],
			Peers:             peers,
			Service:           guard,
			Keys:              s.serverSig[i],
			Net:               s.net,
			HeartbeatInterval: s.cfg.HeartbeatInterval,
			HeartbeatTimeout:  s.cfg.HeartbeatTimeout,
			CatchupHistory:    s.cfg.UpdateWindow,
			Store:             st,
			SnapshotEvery:     s.cfg.CheckpointEvery,
			RespCacheLimit:    s.cfg.RespCacheLimit,
			Leases:            s.cfg.Leases,
			LeaseDuration:     s.cfg.LeaseDuration,
			Metrics:           s.cfg.Metrics,
		}
		if seed != nil {
			cfg.InitialSnapshot = seed.snapshot
			cfg.InitialExecuted = seed.executed
			cfg.InitialResponses = seed.responses
			cfg.JoinExisting = seed.join
		}
		r, err = smr.New(cfg)
	default:
		r, err = pb.New(pb.Config{
			Index:             i,
			Addr:              peers[i],
			Peers:             peers,
			InitialPrimary:    initialPrimary,
			Service:           guard,
			Keys:              s.serverSig[i],
			Net:               s.net,
			HeartbeatInterval: s.cfg.HeartbeatInterval,
			HeartbeatTimeout:  s.cfg.HeartbeatTimeout,
			CheckpointEvery:   s.cfg.CheckpointEvery,
			UpdateWindow:      s.cfg.UpdateWindow,
			RespCacheLimit:    s.cfg.RespCacheLimit,
			OutboxLimit:       s.cfg.OutboxLimit,
			Store:             st,
			Metrics:           s.cfg.Metrics,
		})
	}
	if err != nil {
		return fmt.Errorf("fortress: server %d: %w", i, err)
	}
	srv = r
	s.servers[i] = r
	s.guards[i] = guard
	return s.ns.RegisterServer(i, peers[i], r.PublicKey())
}

// storeLocked returns server i's persistent store, building it on first use.
// Nil (no persistence) without a StoreFactory; the engines then default to
// their in-memory no-op store. Caller holds s.mu.
func (s *System) storeLocked(i int) (store.Store, error) {
	if s.cfg.StoreFactory == nil {
		return nil, nil
	}
	if s.stores[i] == nil {
		st, err := s.cfg.StoreFactory(i)
		if err != nil {
			return nil, fmt.Errorf("fortress: store for server %d: %w", i, err)
		}
		s.stores[i] = st
	}
	return s.stores[i], nil
}

// rebuildProxyLocked replaces proxy i with a fresh instance under its
// current key. Caller holds s.mu.
func (s *System) rebuildProxyLocked(i int) error {
	s.proxies[i].Stop()
	s.net.CrashAddr(proxyAddr(i))
	p, err := proxy.New(proxy.Config{
		ID:              fmt.Sprintf("proxy-%d", i),
		Addr:            proxyAddr(i),
		Keys:            s.proxySig[i],
		NS:              s.ns,
		Net:             s.net,
		Detector:        s.detector,
		Proc:            memlayout.NewProcess(s.proxyKeys[i]),
		ServerTimeout:   s.cfg.ServerTimeout,
		Ring:            s.ring,
		ServersPerGroup: s.cfg.Servers,
		Metrics:         s.cfg.Metrics,
	})
	if err != nil {
		return fmt.Errorf("fortress: recover proxy %d: %w", i, err)
	}
	s.proxies[i] = p
	return s.ns.RegisterProxy(p.ID(), p.Addr(), p.PublicKey())
}

// snapshotGroupLocked fetches group g's service state from the group's
// first live, uncompromised server (state from a compromised node is
// untrustworthy, and a fault-downed node's in-memory state is stale).
func (s *System) snapshotGroupLocked(g int) []byte {
	for i := g * s.cfg.Servers; i < (g+1)*s.cfg.Servers; i++ {
		gd := s.guards[i]
		if gd.Compromised() || gd.Process().Crashed() || s.downServers[i] {
			continue
		}
		if snap, err := gd.Snapshot(); err == nil {
			return snap
		}
	}
	return nil
}

// snapshotsLocked fetches every group's snapshot, indexed by group.
func (s *System) snapshotsLocked() [][]byte {
	out := make([][]byte, s.cfg.groups())
	for g := range out {
		out[g] = s.snapshotGroupLocked(g)
	}
	return out
}

// groupOf maps a global server index to its replica group.
func (s *System) groupOf(i int) int { return i / s.cfg.Servers }

// Epoch returns the number of completed re-randomizations.
func (s *System) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Net returns the network the system is deployed on.
func (s *System) Net() *netsim.Network { return s.net }

// Metrics returns the registry the deployment publishes its instruments to,
// or nil when the system is uninstrumented.
func (s *System) Metrics() *metrics.Registry { return s.cfg.Metrics }

// NameServer returns the trusted directory.
func (s *System) NameServer() *nameserver.NameServer { return s.ns }

// Client builds a FORTRESS client with the given network identity.
func (s *System) Client(from string, timeout time.Duration) (*proxy.Client, error) {
	return proxy.NewClient(s.net, from, s.ns, timeout)
}

// Detector exposes the shared probe detector (nil when disabled).
func (s *System) Detector() *proxy.Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detector
}

// ServerKey returns the server tier's current shared randomization key.
// Only tests and attack simulations peek at it.
func (s *System) ServerKey() keyspace.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serverKey
}

// ProxyKeys returns the proxies' current randomization keys.
func (s *System) ProxyKeys() []keyspace.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]keyspace.Key, len(s.proxyKeys))
	copy(out, s.proxyKeys)
	return out
}

// Proxies returns the current epoch's proxies.
func (s *System) Proxies() []*proxy.Proxy {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*proxy.Proxy, len(s.proxies))
	copy(out, s.proxies)
	return out
}

// Servers returns the current epoch's server replicas behind the
// backend-neutral interface.
func (s *System) Servers() []replica.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]replica.Server, len(s.servers))
	copy(out, s.servers)
	return out
}

// Backend reports the server tier's replication engine.
func (s *System) Backend() replica.Backend { return s.cfg.Backend }

// Groups reports the number of replica groups in the deployment.
func (s *System) Groups() int { return s.cfg.groups() }

// ServersPerGroup reports the per-group server count n_s.
func (s *System) ServersPerGroup() int { return s.cfg.Servers }

// GroupOf maps a global server index to its replica group.
func (s *System) GroupOf(i int) int { return i / s.cfg.Servers }

// Ring returns the deployment's consistent-hash routing ring — the same
// function the proxies route with, so campaigns and tests can derive
// per-group keys.
func (s *System) Ring() *shard.Ring { return s.ring }

// Status summarizes the system's security state.
type Status struct {
	Epoch uint64
	// Groups is the replica-group count; server totals below span all
	// groups.
	Groups             int
	ServersCompromised int
	ServersCrashed     int
	ProxiesCompromised int
	ProxiesCrashed     int
	// ServersDown and ProxiesDown count fault-injected outages
	// (CrashServer/CrashProxy) awaiting an explicit restart — disjoint from
	// the probe-crash counts above, which Recover repairs.
	ServersDown int
	ProxiesDown int
	// Compromised applies the paper's S2 failure condition: any server
	// compromised, or every proxy compromised.
	Compromised bool
}

// Status reports the current security state.
func (s *System) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Status
	st.Epoch = s.epoch
	st.Groups = s.cfg.groups()
	for _, g := range s.guards {
		if g.Compromised() {
			st.ServersCompromised++
		}
		if g.Process().Crashed() {
			st.ServersCrashed++
		}
	}
	for _, p := range s.proxies {
		if p.Compromised() {
			st.ProxiesCompromised++
		}
		if p.Crashed() {
			st.ProxiesCrashed++
		}
	}
	st.ServersDown = len(s.downServers)
	st.ProxiesDown = len(s.downProxies)
	st.Compromised = st.ServersCompromised > 0 || st.ProxiesCompromised == len(s.proxies)
	return st
}

// Stop shuts the whole system down.
func (s *System) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	s.teardownLocked()
	// Stores are owned by the system, not the replica objects mounted on
	// them: close them last, after every writer is down.
	for _, st := range s.stores {
		if st != nil {
			_ = st.Close()
		}
	}
}
