package nameserver

import (
	"errors"
	"testing"

	"fortress/internal/sig"
)

func key(t *testing.T) []byte {
	t.Helper()
	k, err := sig.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	return k.Public()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(ReplicationSMR, -1); err == nil {
		t.Fatal("negative fault degree accepted")
	}
	ns, err := New(ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ns == nil {
		t.Fatal("nil name server")
	}
}

func TestRegisterAndSnapshot(t *testing.T) {
	ns, err := New(ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.RegisterProxy("p1", "addr-p1", key(t)); err != nil {
		t.Fatal(err)
	}
	if err := ns.RegisterProxy("p0", "addr-p0", key(t)); err != nil {
		t.Fatal(err)
	}
	if err := ns.RegisterServer(1, "addr-s1", key(t)); err != nil {
		t.Fatal(err)
	}
	if err := ns.RegisterServer(0, "addr-s0", key(t)); err != nil {
		t.Fatal(err)
	}

	view := ns.ClientSnapshot()
	if len(view.Proxies) != 2 || len(view.Servers) != 2 {
		t.Fatalf("snapshot sizes: %d proxies, %d servers", len(view.Proxies), len(view.Servers))
	}
	// Deterministic ordering.
	if view.Proxies[0].ID != "p0" || view.Proxies[1].ID != "p1" {
		t.Fatalf("proxy order: %v, %v", view.Proxies[0].ID, view.Proxies[1].ID)
	}
	if view.Servers[0].Index != 0 || view.Servers[1].Index != 1 {
		t.Fatal("server order wrong")
	}
	if view.Replication != ReplicationPrimaryBackup {
		t.Fatalf("replication = %v", view.Replication)
	}
}

func TestClientViewHidesServerAddresses(t *testing.T) {
	ns, err := New(ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.RegisterServer(0, "secret-addr", key(t)); err != nil {
		t.Fatal(err)
	}
	view := ns.ClientSnapshot()
	// ServerRecord has no address field at all; assert the visible fields.
	if view.Servers[0].Index != 0 || len(view.Servers[0].PublicKey) == 0 {
		t.Fatal("server record incomplete")
	}
	// Proxies can resolve it.
	addr, err := ns.ServerAddr(0)
	if err != nil || addr != "secret-addr" {
		t.Fatalf("ServerAddr = %q, %v", addr, err)
	}
}

func TestServerAddrNotFound(t *testing.T) {
	ns, err := New(ReplicationSMR, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.ServerAddr(3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestProxyRecordByID(t *testing.T) {
	ns, err := New(ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	pub := key(t)
	if err := ns.RegisterProxy("p", "addr", pub); err != nil {
		t.Fatal(err)
	}
	rec, err := ns.ProxyRecordByID("p")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Addr != "addr" {
		t.Fatalf("addr = %q", rec.Addr)
	}
	if _, err := ns.ProxyRecordByID("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	ns, err := New(ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := key(t)
	if err := ns.RegisterProxy("", "a", good); err == nil {
		t.Error("empty proxy id accepted")
	}
	if err := ns.RegisterProxy("p", "", good); err == nil {
		t.Error("empty proxy addr accepted")
	}
	if err := ns.RegisterProxy("p", "a", []byte{1}); err == nil {
		t.Error("short proxy key accepted")
	}
	if err := ns.RegisterServer(-1, "a", good); err == nil {
		t.Error("negative index accepted")
	}
	if err := ns.RegisterServer(0, "", good); err == nil {
		t.Error("empty server addr accepted")
	}
	if err := ns.RegisterServer(0, "a", []byte{1}); err == nil {
		t.Error("short server key accepted")
	}
}

func TestServerIndices(t *testing.T) {
	ns, err := New(ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 0, 1} {
		if err := ns.RegisterServer(i, "a", key(t)); err != nil {
			t.Fatal(err)
		}
	}
	idx := ns.ServerIndices()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("indices = %v", idx)
	}
}

func TestReplicationTypeString(t *testing.T) {
	cases := map[ReplicationType]string{
		ReplicationNone:          "none",
		ReplicationPrimaryBackup: "primary-backup",
		ReplicationSMR:           "smr",
		ReplicationType(42):      "ReplicationType(42)",
	}
	for rt, want := range cases {
		if got := rt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(rt), got, want)
		}
	}
}

func TestReRegistrationOverwrites(t *testing.T) {
	// Re-randomization epochs re-register nodes with fresh keys.
	ns, err := New(ReplicationPrimaryBackup, 0)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := key(t), key(t)
	if err := ns.RegisterProxy("p", "a", k1); err != nil {
		t.Fatal(err)
	}
	if err := ns.RegisterProxy("p", "a2", k2); err != nil {
		t.Fatal(err)
	}
	rec, err := ns.ProxyRecordByID("p")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Addr != "a2" || string(rec.PublicKey) != string(k2) {
		t.Fatal("re-registration did not overwrite")
	}
}
