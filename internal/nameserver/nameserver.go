// Package nameserver implements the trusted name server (NS) of the
// FORTRESS architecture (§3): a read-only directory through which clients
// learn proxies' addresses and public keys, servers' indices and public keys
// (but NOT server addresses — hiding servers is the point), the replication
// type of the server tier and its fault-tolerance degree.
//
// Writes happen only at trusted system-administration time (setup and
// re-randomization epochs); clients get immutable snapshots.
package nameserver

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ReplicationType describes how the server tier is replicated.
type ReplicationType int

const (
	// ReplicationNone is an unreplicated server.
	ReplicationNone ReplicationType = iota + 1
	// ReplicationPrimaryBackup is classical primary-backup.
	ReplicationPrimaryBackup
	// ReplicationSMR is state machine replication.
	ReplicationSMR
)

// String implements fmt.Stringer.
func (r ReplicationType) String() string {
	switch r {
	case ReplicationNone:
		return "none"
	case ReplicationPrimaryBackup:
		return "primary-backup"
	case ReplicationSMR:
		return "smr"
	default:
		return fmt.Sprintf("ReplicationType(%d)", int(r))
	}
}

// ErrNotFound is returned for lookups of unregistered entries.
var ErrNotFound = errors.New("nameserver: not found")

// ProxyRecord is the client-visible description of one proxy.
type ProxyRecord struct {
	ID        string
	Addr      string
	PublicKey ed25519.PublicKey
}

// ServerRecord is the client-visible description of one server: index and
// key only. Addresses are deliberately absent.
type ServerRecord struct {
	Index     int
	PublicKey ed25519.PublicKey
}

// NameServer is the trusted directory. It is safe for concurrent use.
type NameServer struct {
	mu          sync.RWMutex
	proxies     map[string]ProxyRecord
	servers     map[int]ServerRecord
	serverAddrs map[int]string // visible to proxies only, never to clients
	replication ReplicationType
	faultDegree int
}

// New creates a name server describing a server tier with the given
// replication type and fault-tolerance degree (meaningful for SMR).
func New(replication ReplicationType, faultDegree int) (*NameServer, error) {
	if faultDegree < 0 {
		return nil, fmt.Errorf("nameserver: negative fault degree %d", faultDegree)
	}
	return &NameServer{
		proxies:     make(map[string]ProxyRecord),
		servers:     make(map[int]ServerRecord),
		serverAddrs: make(map[int]string),
		replication: replication,
		faultDegree: faultDegree,
	}, nil
}

// RegisterProxy records a proxy. Administrative operation.
func (ns *NameServer) RegisterProxy(id, addr string, pub ed25519.PublicKey) error {
	if id == "" || addr == "" {
		return errors.New("nameserver: proxy id and addr required")
	}
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("nameserver: bad proxy public key length %d", len(pub))
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.proxies[id] = ProxyRecord{ID: id, Addr: addr, PublicKey: pub}
	return nil
}

// RegisterServer records a server's index, public key and (proxy-visible)
// address. Administrative operation.
func (ns *NameServer) RegisterServer(index int, addr string, pub ed25519.PublicKey) error {
	if index < 0 {
		return fmt.Errorf("nameserver: negative server index %d", index)
	}
	if addr == "" {
		return errors.New("nameserver: server addr required")
	}
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("nameserver: bad server public key length %d", len(pub))
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.servers[index] = ServerRecord{Index: index, PublicKey: pub}
	ns.serverAddrs[index] = addr
	return nil
}

// ClientView is the immutable snapshot a client may read: everything except
// server addresses.
type ClientView struct {
	Proxies     []ProxyRecord
	Servers     []ServerRecord
	Replication ReplicationType
	FaultDegree int
}

// ClientSnapshot returns the read-only view for clients, with deterministic
// ordering.
func (ns *NameServer) ClientSnapshot() ClientView {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	view := ClientView{
		Replication: ns.replication,
		FaultDegree: ns.faultDegree,
		Proxies:     make([]ProxyRecord, 0, len(ns.proxies)),
		Servers:     make([]ServerRecord, 0, len(ns.servers)),
	}
	for _, p := range ns.proxies {
		view.Proxies = append(view.Proxies, p)
	}
	sort.Slice(view.Proxies, func(i, j int) bool { return view.Proxies[i].ID < view.Proxies[j].ID })
	for _, s := range ns.servers {
		view.Servers = append(view.Servers, s)
	}
	sort.Slice(view.Servers, func(i, j int) bool { return view.Servers[i].Index < view.Servers[j].Index })
	return view
}

// ServerAddr resolves a server index to its address. Only proxies (and the
// administrator) call this; it is not part of the client view.
func (ns *NameServer) ServerAddr(index int) (string, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	addr, ok := ns.serverAddrs[index]
	if !ok {
		return "", fmt.Errorf("server %d: %w", index, ErrNotFound)
	}
	return addr, nil
}

// ServerIndices returns all registered server indices in ascending order.
func (ns *NameServer) ServerIndices() []int {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	out := make([]int, 0, len(ns.servers))
	for i := range ns.servers {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// ProxyRecordByID resolves one proxy.
func (ns *NameServer) ProxyRecordByID(id string) (ProxyRecord, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	p, ok := ns.proxies[id]
	if !ok {
		return ProxyRecord{}, fmt.Errorf("proxy %q: %w", id, ErrNotFound)
	}
	return p, nil
}
