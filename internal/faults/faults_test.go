package faults_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"fortress/internal/faults"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/netsim"
	"fortress/internal/service"
	"fortress/internal/xrand"
)

func testSystem(t *testing.T, servers, proxies int) *fortress.System {
	t.Helper()
	space, err := keyspace.NewSpace(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fortress.New(fortress.Config{
		Servers:           servers,
		Proxies:           proxies,
		Space:             space,
		Seed:              1,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
		ServerTimeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

func TestInjectorFiresInTimestampOrder(t *testing.T) {
	sys := testSystem(t, 2, 2)
	sched := faults.Schedule{}.Append(
		faults.RestartProxy(4, 1), // listed out of order: the injector sorts by At
		faults.CrashProxy(2, 1),
	)
	inj, err := faults.NewInjector(sched, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Advance(1); err != nil {
		t.Fatal(err)
	}
	if inj.Fired() != 0 || inj.Pending() != 2 {
		t.Fatalf("fired %d pending %d before any due time", inj.Fired(), inj.Pending())
	}
	if err := inj.Advance(3); err != nil {
		t.Fatal(err)
	}
	if inj.Fired() != 1 {
		t.Fatalf("fired %d at t=3, want 1", inj.Fired())
	}
	if st := sys.Status(); st.ProxiesDown != 1 || st.ProxiesCrashed != 1 {
		t.Fatalf("after crash event: %+v", st)
	}
	if err := inj.Advance(4); err != nil {
		t.Fatal(err)
	}
	if inj.Fired() != 2 || inj.Pending() != 0 {
		t.Fatalf("fired %d pending %d at t=4", inj.Fired(), inj.Pending())
	}
	if st := sys.Status(); st.ProxiesDown != 0 || st.ProxiesCrashed != 0 {
		t.Fatalf("after restart event: %+v", st)
	}
}

func TestInjectorPartitionAndHeal(t *testing.T) {
	sys := testSystem(t, 2, 2)
	servers := faults.ServerAddrs(2)
	proxies := faults.ProxyAddrs(2)
	sched := faults.Schedule{}.Append(
		faults.Partition(1, servers, proxies),
		faults.Heal(3, servers, proxies),
	)
	inj, err := faults.NewInjector(sched, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	dial := func(from, to string) error {
		conn, err := sys.Net().Dial(from, to)
		if err == nil {
			conn.Close()
		}
		return err
	}
	if err := inj.Advance(1); err != nil {
		t.Fatal(err)
	}
	if err := dial(proxies[0], servers[1]); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("dial across the cut: %v", err)
	}
	// Intra-group pairs are unaffected.
	if err := dial(servers[0], servers[1]); err != nil {
		t.Fatalf("server-to-server dial during cut: %v", err)
	}
	if err := inj.Advance(3); err != nil {
		t.Fatal(err)
	}
	if err := dial(proxies[0], servers[1]); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

// Fault outages are hardware-level: Recover's forking-daemon respawn and a
// full re-randomization epoch both leave the node down; only Restart ends
// the outage.
func TestFaultCrashSurvivesRecoverAndRerandomize(t *testing.T) {
	sys := testSystem(t, 3, 2)
	if err := sys.CrashServer(1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	if st := sys.Status(); st.ServersDown != 1 {
		t.Fatalf("after Recover: %+v", st)
	}
	if _, err := sys.Net().Dial("probe", fortress.ServerAddr(1)); err == nil {
		t.Fatal("fault-crashed server accepted a dial after Recover")
	}
	if err := sys.Rerandomize(); err != nil {
		t.Fatal(err)
	}
	if st := sys.Status(); st.ServersDown != 1 {
		t.Fatalf("after Rerandomize: %+v", st)
	}
	if _, err := sys.Net().Dial("probe", fortress.ServerAddr(1)); err == nil {
		t.Fatal("fault-crashed server accepted a dial after Rerandomize")
	}
	if err := sys.RestartServer(1); err != nil {
		t.Fatal(err)
	}
	if st := sys.Status(); st.ServersDown != 0 {
		t.Fatalf("after Restart: %+v", st)
	}
	// Restarting a node that is not fault-crashed is a harmless no-op: the
	// live replica keeps its connections instead of being rebuilt.
	before := sys.Servers()[1]
	if err := sys.RestartServer(1); err != nil {
		t.Fatal(err)
	}
	if sys.Servers()[1] != before {
		t.Fatal("no-op restart rebuilt a live server")
	}
	conn, err := sys.Net().Dial("probe", fortress.ServerAddr(1))
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	conn.Close()

	// Service still works end to end after the outage cycle.
	client, err := sys.Client("client", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("w1", []byte(`{"op":"put","key":"k","value":"v"}`)); err != nil {
		t.Fatalf("invoke after outage cycle: %v", err)
	}
}

func TestPresetsBuildForAnyShape(t *testing.T) {
	for _, p := range faults.Presets() {
		for _, shape := range []struct {
			servers, proxies int
			horizon          uint64
		}{{1, 1, 1}, {2, 2, 8}, {3, 3, 24}, {5, 4, 64}} {
			sched := p.Build(faults.Shape{Servers: shape.servers, Proxies: shape.proxies}, shape.horizon)
			for _, e := range sched.Events {
				if e.At > shape.horizon {
					t.Errorf("preset %s (shape %+v): event %s at t=%d beyond horizon",
						p.Name, shape, e.Kind, e.At)
				}
			}
		}
	}
	if _, err := faults.PresetByName("no-such-preset"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if len(faults.PresetNames()) != len(faults.Presets()) {
		t.Fatal("PresetNames out of sync with Presets")
	}
}

func TestInjectorValidation(t *testing.T) {
	sys := testSystem(t, 2, 2)
	if _, err := faults.NewInjector(faults.Schedule{}, nil, nil); err == nil {
		t.Fatal("nil system accepted")
	}
	sched := faults.Schedule{}.Append(faults.DropRate(0, 0.5))
	if _, err := faults.NewInjector(sched, sys, nil); err == nil {
		t.Fatal("drop-rate schedule without rng accepted")
	}
	if _, err := faults.NewInjector(sched, sys, xrand.New(1)); err != nil {
		t.Fatalf("drop-rate schedule with rng rejected: %v", err)
	}
	bad := faults.Schedule{}.Append(faults.CrashServer(0, 99))
	inj, err := faults.NewInjector(bad, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Advance(0); err == nil {
		t.Fatal("crash of nonexistent server did not error")
	}
}

// TestConcurrentDropRateAndRestartUnderTraffic is the race-detector workout
// for the runtime fault surface: live client traffic while one goroutine
// flips the network drop rate and another crash/restarts a proxy and a
// server. Run with -race (CI does).
func TestConcurrentDropRateAndRestartUnderTraffic(t *testing.T) {
	space, err := keyspace.NewSpace(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fortress.New(fortress.Config{
		Servers:           3,
		Proxies:           2,
		Space:             space,
		Seed:              1,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		ServerTimeout:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	client, err := sys.Client("load", 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	const iters = 25
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // live traffic; errors are expected while faults flap
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reqID := "req-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26))
			_, _ = client.Invoke(reqID, []byte(`{"op":"get","key":"k"}`))
		}
	}()
	go func() { // drop-rate flapping
		defer wg.Done()
		rng := xrand.New(42)
		for i := 0; i < iters; i++ {
			sys.Net().SetDropRate(0.2, rng)
			rng = nil // handed off; netsim owns it under dropMu now
			time.Sleep(time.Millisecond)
			sys.Net().SetDropRate(0, nil)
		}
	}()
	go func() { // node churn
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := sys.CrashProxy(1); err != nil {
				t.Error(err)
				return
			}
			if err := sys.CrashServer(2); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
			if err := sys.RestartProxy(1); err != nil {
				t.Error(err)
				return
			}
			if err := sys.RestartServer(2); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// The system must settle back to full health.
	sys.Net().SetDropRate(0, nil)
	if st := sys.Status(); st.ServersDown != 0 || st.ProxiesDown != 0 {
		t.Fatalf("outages left behind: %+v", st)
	}
	if _, err := client.Invoke("final", []byte(`{"op":"put","key":"k","value":"v"}`)); err != nil {
		t.Fatalf("invoke after churn: %v", err)
	}
}
