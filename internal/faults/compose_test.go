package faults_test

import (
	"reflect"
	"testing"

	"fortress/internal/faults"
	"fortress/internal/xrand"
)

func ats(s faults.Schedule) []uint64 {
	out := make([]uint64, len(s.Events))
	for i, e := range s.Events {
		out[i] = e.At
	}
	return out
}

func TestShiftAndSpan(t *testing.T) {
	s := faults.Schedule{}.Append(faults.HealAll(2), faults.DropRate(7, 0.5))
	if got := s.Span(); got != 8 {
		t.Fatalf("Span = %d, want 8", got)
	}
	shifted := s.Shift(10)
	if got := ats(shifted); !reflect.DeepEqual(got, []uint64{12, 17}) {
		t.Fatalf("shifted ats = %v", got)
	}
	// The input is untouched.
	if got := ats(s); !reflect.DeepEqual(got, []uint64{2, 7}) {
		t.Fatalf("Shift mutated its input: %v", got)
	}
	if got := (faults.Schedule{}).Span(); got != 0 {
		t.Fatalf("empty Span = %d", got)
	}
}

func TestConcatSequencesSpans(t *testing.T) {
	a := faults.Schedule{}.Append(faults.DropRate(0, 0.1), faults.DropRate(3, 0))
	b := faults.Schedule{}.Append(faults.HealAll(1))
	c := faults.Concat(a, b, a)
	// a spans [0,4), b shifted to start at 4 spans [4,6), a again at 6.
	want := []uint64{0, 3, 5, 6, 9}
	if got := ats(c); !reflect.DeepEqual(got, want) {
		t.Fatalf("concat ats = %v, want %v", got, want)
	}
	if got := c.Span(); got != 10 {
		t.Fatalf("concat span = %d, want 10", got)
	}
}

func TestMergeKeepsArgumentOrderOnTies(t *testing.T) {
	a := faults.Schedule{}.Append(faults.DropRate(5, 0.1))
	b := faults.Schedule{}.Append(faults.DropRate(5, 0.9), faults.HealAll(1))
	m := faults.Merge(a, b)
	if len(m.Events) != 3 {
		t.Fatalf("merged %d events", len(m.Events))
	}
	// Merge preserves argument order; the injector's stable sort then
	// keeps a's t=5 event ahead of b's.
	if m.Events[0].Rate != 0.1 || m.Events[1].Rate != 0.9 {
		t.Fatalf("merge order: %+v", m.Events)
	}
}

func TestJitterDeterministicAndOrderPreserving(t *testing.T) {
	s := faults.Schedule{}.Append(
		faults.Partition(2, []string{"a"}, []string{"b"}),
		faults.Heal(4, []string{"a"}, []string{"b"}),
		faults.HealAll(4),
		faults.DropRate(9, 0),
	)
	j1 := faults.Jitter(s, 5, xrand.New(11))
	j2 := faults.Jitter(s, 5, xrand.New(11))
	if !reflect.DeepEqual(j1, j2) {
		t.Fatal("same seed produced different jitters")
	}
	// Forward-only and order-preserving, in the stable-by-timestamp order.
	prev := uint64(0)
	for i, e := range j1.Events {
		if e.At < s.Events[i].At {
			t.Fatalf("event %d jittered backwards: %d < %d", i, e.At, s.Events[i].At)
		}
	}
	for _, e := range []int{0, 1, 2, 3} { // already timestamp-sorted here
		if j1.Events[e].At < prev {
			t.Fatalf("jitter reordered events: %v", ats(j1))
		}
		prev = j1.Events[e].At
	}
	// Zero delta or nil rng: a plain copy.
	if got := faults.Jitter(s, 0, xrand.New(1)); !reflect.DeepEqual(ats(got), ats(s)) {
		t.Fatalf("zero-delta jitter moved events: %v", ats(got))
	}
	if got := faults.Jitter(s, 3, nil); !reflect.DeepEqual(ats(got), ats(s)) {
		t.Fatalf("nil-rng jitter moved events: %v", ats(got))
	}
}

func TestJitterListingOrderIrrelevant(t *testing.T) {
	// The draw stream follows replay (timestamp) order, so listing the
	// same events differently yields the same per-event delays.
	a := faults.Schedule{}.Append(faults.HealAll(1), faults.HealAll(5))
	b := faults.Schedule{}.Append(faults.HealAll(5), faults.HealAll(1))
	ja := faults.Jitter(a, 4, xrand.New(3))
	jb := faults.Jitter(b, 4, xrand.New(3))
	find := func(s faults.Schedule, orig uint64, origSched faults.Schedule) uint64 {
		for i, e := range origSched.Events {
			if e.At == orig {
				return s.Events[i].At
			}
		}
		t.Fatalf("event at %d not found", orig)
		return 0
	}
	if find(ja, 1, a) != find(jb, 1, b) || find(ja, 5, a) != find(jb, 5, b) {
		t.Fatalf("listing order changed jitter: %v vs %v", ats(ja), ats(jb))
	}
}

func TestCompoundPresetComposes(t *testing.T) {
	p, err := faults.PresetByName("compound")
	if err != nil {
		t.Fatal(err)
	}
	s := p.Build(faults.Shape{Servers: 3, Proxies: 3}, 24)
	kinds := map[faults.EventKind]int{}
	for _, e := range s.Events {
		kinds[e.Kind]++
	}
	if kinds[faults.EvPartition] == 0 || kinds[faults.EvDropRate] == 0 || kinds[faults.EvCrash] == 0 {
		t.Fatalf("compound preset missing a disaster: %v", kinds)
	}
	if kinds[faults.EvHeal] == 0 || kinds[faults.EvRestart] == 0 {
		t.Fatalf("compound preset never recovers: %v", kinds)
	}
}
