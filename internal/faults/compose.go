package faults

import "fortress/internal/xrand"

// Schedule composition combinators: schedules are values on a shared
// virtual clock, so compound disasters — a partition while the link is
// lossy while a node is down — compose out of simple ones instead of being
// hand-written event lists. All combinators copy; the inputs are never
// mutated, so one building-block schedule can feed many compositions.

// Shift returns a copy of s with every event delayed by dt.
func (s Schedule) Shift(dt uint64) Schedule {
	out := Schedule{Events: make([]Event, len(s.Events))}
	copy(out.Events, s.Events)
	for i := range out.Events {
		out.Events[i].At += dt
	}
	return out
}

// Span returns the schedule's horizon: one past the latest event timestamp,
// or zero for an empty schedule.
func (s Schedule) Span() uint64 {
	var span uint64
	for _, e := range s.Events {
		if e.At+1 > span {
			span = e.At + 1
		}
	}
	return span
}

// Concat composes schedules sequentially: each part is shifted past the
// combined span of everything before it, so part i+1's clock starts where
// part i's horizon ended. The result's span is the sum of the parts' spans.
func Concat(parts ...Schedule) Schedule {
	var out Schedule
	var offset uint64
	for _, p := range parts {
		out.Events = append(out.Events, p.Shift(offset).Events...)
		offset += p.Span()
	}
	return out
}

// Merge overlays schedules on one clock: the union of all events. Events
// sharing a timestamp fire in argument order (the injector's sort is
// stable), so Merge(a, b) lets a's same-tick events take effect before
// b's.
func Merge(parts ...Schedule) Schedule {
	var out Schedule
	for _, p := range parts {
		out.Events = append(out.Events, p.Shift(0).Events...)
	}
	return out
}

// Jitter returns a copy of s with every event's timestamp delayed by a
// uniform draw from [0, maxDelta], drawn in timestamp order from rng —
// seeded, so a given (schedule, seed) pair jitters identically on every
// deployment and at any worker count. Delays are forward-only and
// order-preserving: an event never fires before its scheduled time, and an
// event never overtakes one that preceded it (a heal cannot jump in front
// of its partition, a restart in front of its crash) — a later event's
// jittered time is clamped up to the latest jittered time before it.
func Jitter(s Schedule, maxDelta uint64, rng *xrand.RNG) Schedule {
	out := Schedule{Events: make([]Event, len(s.Events))}
	copy(out.Events, s.Events)
	if maxDelta == 0 || rng == nil || len(out.Events) == 0 {
		return out
	}
	// Draw in the injector's replay order (stable sort by timestamp), so
	// the stream of draws an event consumes does not depend on how the
	// schedule happens to be listed.
	order := make([]int, len(out.Events))
	for i := range order {
		order[i] = i
	}
	stableSortByAt(order, out.Events)
	var floor uint64
	for _, i := range order {
		at := out.Events[i].At + rng.Uint64n(maxDelta+1)
		if at < floor {
			at = floor
		}
		out.Events[i].At = at
		floor = at
	}
	return out
}

// stableSortByAt sorts the index slice by the events' timestamps, keeping
// schedule order among equal timestamps (insertion sort: schedules are
// short and mostly sorted already).
func stableSortByAt(order []int, events []Event) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && events[order[j]].At < events[order[j-1]].At; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}
