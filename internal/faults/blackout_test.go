package faults_test

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"fortress/internal/faults"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/netsim"
	"fortress/internal/proxy"
	"fortress/internal/replica"
	"fortress/internal/replica/pb"
	"fortress/internal/replica/store"
	"fortress/internal/service"
	"fortress/internal/sim"
	"fortress/internal/xrand"
)

const (
	blackoutServers = 3
	blackoutProxies = 2
)

// walFactory roots one WAL store per server under dir. SyncEvery 1 with
// fsync disabled: every append advances the synced frontier — a power
// failure shaves nothing — without paying physical sync syscalls in CI.
func walFactory(dir string) func(int) (store.Store, error) {
	return func(server int) (store.Store, error) {
		return store.Open(store.WALConfig{
			Dir:          filepath.Join(dir, fmt.Sprintf("s%d", server)),
			SyncEvery:    1,
			DisableFsync: true,
		})
	}
}

// durableConfig is the deployment template of the blackout tests:
// fault-sweep style timings, optionally on WAL stores.
func durableConfig(backend replica.Backend, seed uint64, factory func(int) (store.Store, error)) (fortress.Config, error) {
	space, err := keyspace.NewSpace(1 << 20)
	if err != nil {
		return fortress.Config{}, err
	}
	return fortress.Config{
		Servers:           blackoutServers,
		Proxies:           blackoutProxies,
		Backend:           backend,
		Space:             space,
		Seed:              seed,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		ServerTimeout:     150 * time.Millisecond,
		StoreFactory:      factory,
	}, nil
}

// invokeRetry drives one doubly-signed request to success, retrying through
// failover and resync windows. The request ID is stable across retries, so
// the response cache makes the request execute at most once.
func invokeRetry(client *proxy.Client, id, body string, patience time.Duration) ([]byte, error) {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Invoke(id, []byte(body))
		if err == nil {
			return resp, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("invoke %s never succeeded: %w", id, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitExecuted blocks until every server's executed frontier reaches want
// exactly — the quiescing barrier that makes the on-disk journals a pure
// function of the request sequence, independent of scheduling.
func waitExecuted(sys *fortress.System, want uint64, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		done := true
		for _, srv := range sys.Servers() {
			if srv.Executed() != want {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			frontiers := make([]uint64, 0, blackoutServers)
			for _, srv := range sys.Servers() {
				frontiers = append(frontiers, srv.Executed())
			}
			return fmt.Errorf("replicas never converged to %d: frontiers %v", want, frontiers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// blackoutDriver runs the deterministic blackout mini-campaign against sys:
// sequential puts with convergence barriers, a whole-cluster power loss
// replayed through the fault scheduler, then post-recovery writes. It
// returns the number of requests executed after the restart (the frontier
// the recovered cluster converged to).
func blackoutDriver(sys *fortress.System, client *proxy.Client, durable bool) (uint64, error) {
	sched := faults.Schedule{}.Append(faults.CrashAll(1), faults.RestartAll(2))
	inj, err := faults.NewInjector(sched, sys, nil)
	if err != nil {
		return 0, err
	}
	ops := uint64(0)
	put := func(i int) error {
		body := fmt.Sprintf(`{"op":"put","key":"k","value":"v%d"}`, i)
		if _, err := invokeRetry(client, fmt.Sprintf("w%d", i), body, 10*time.Second); err != nil {
			return err
		}
		ops++
		return waitExecuted(sys, ops, 5*time.Second)
	}
	for i := 0; i < 4; i++ {
		if err := put(i); err != nil {
			return 0, err
		}
	}
	if err := inj.Advance(1); err != nil { // lights out
		return 0, err
	}
	if err := inj.Advance(2); err != nil { // power back
		return 0, err
	}
	if !durable {
		// In-memory tiers restart empty: the executed frontier starts over.
		ops = 0
	}
	for i := 4; i < 6; i++ {
		if err := put(i); err != nil {
			return 0, err
		}
	}
	return ops, nil
}

// TestBlackoutWALRecovers is the headline durability scenario on both
// backends: a whole-cluster power loss downs every server and proxy at
// once — no live donor exists — and WAL-backed replicas recover their
// state from their own disks, re-elect, and keep serving with the
// pre-blackout data intact.
func TestBlackoutWALRecovers(t *testing.T) {
	for _, backend := range []replica.Backend{replica.BackendPB, replica.BackendSMR} {
		t.Run(backend.String(), func(t *testing.T) {
			cfg, err := durableConfig(backend, 7, walFactory(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			sys, err := fortress.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sys.Stop)
			client, err := sys.Client("blackout-client", 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := blackoutDriver(sys, client, true); err != nil {
				t.Fatal(err)
			}
			got, err := invokeRetry(client, "r-final", `{"op":"get","key":"k"}`, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != `{"found":true,"value":"v5"}` {
				t.Fatalf("post-blackout read = %s, want the last pre-stop write", got)
			}
		})
	}
}

// TestBlackoutMemDocumentsDataLoss pins the other half of the comparison:
// the zero-allocation in-memory default survives the blackout as a cluster
// — it re-forms and serves — but every committed key is gone.
func TestBlackoutMemDocumentsDataLoss(t *testing.T) {
	cfg, err := durableConfig(replica.BackendPB, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fortress.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	client, err := sys.Client("blackout-mem-client", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blackoutDriver(sys, client, false); err != nil {
		t.Fatal(err)
	}
	// The post-recovery writes prove the cluster serves again; the key "k"
	// they rewrote is live, so read a pre-blackout-only key... there is
	// none: the driver reuses "k". Delete it post-recovery and verify the
	// tier holds nothing the pre-blackout epoch wrote.
	if _, err := invokeRetry(client, "d-final", `{"op":"delete","key":"k"}`, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := invokeRetry(client, "r-final", `{"op":"get","key":"k"}`, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var resp service.KVResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Found {
		t.Fatalf("in-memory tier kept data across a power loss: %s", got)
	}
}

// TestBlackoutStoreBytesDeterministicAcrossWorkers is the persistence
// determinism contract: repetitions of the whole-cluster blackout campaign,
// sharded across 1, 2 and 8 workers, leave byte-identical WAL and snapshot
// files — pinned by hashing every replica's store directory per repetition.
func TestBlackoutStoreBytesDeterministicAcrossWorkers(t *testing.T) {
	const reps = 2
	for _, backend := range []replica.Backend{replica.BackendPB, replica.BackendSMR} {
		t.Run(backend.String(), func(t *testing.T) {
			run := func(workers int) []uint64 {
				t.Helper()
				root := t.TempDir()
				rngs := sim.SplitRNGs(xrand.New(11), reps)
				hashes := make([]uint64, reps*blackoutServers)
				err := sim.ForEach(reps, workers, func(rep int) error {
					dir := filepath.Join(root, fmt.Sprintf("w%d-r%d", workers, rep))
					cfg, err := durableConfig(backend, rngs[rep].Uint64(), walFactory(dir))
					if err != nil {
						return err
					}
					cfg.Net = netsim.NewNetwork()
					sys, err := fortress.New(cfg)
					if err != nil {
						return err
					}
					defer sys.Stop()
					client, err := sys.Client(fmt.Sprintf("det-client-%d", rep), 2*time.Second)
					if err != nil {
						return err
					}
					if _, err := blackoutDriver(sys, client, true); err != nil {
						return fmt.Errorf("rep %d: %w", rep, err)
					}
					sys.Stop()
					for s := 0; s < blackoutServers; s++ {
						h, err := store.HashDir(filepath.Join(dir, fmt.Sprintf("s%d", s)))
						if err != nil {
							return err
						}
						hashes[rep*blackoutServers+s] = h
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				return hashes
			}
			base := run(1)
			for _, workers := range []int{2, 8} {
				got := run(workers)
				for i := range base {
					if got[i] != base[i] {
						t.Errorf("workers=%d rep %d server %d store hash %#x != workers=1 %#x",
							workers, i/blackoutServers, i%blackoutServers, got[i], base[i])
					}
				}
			}
		})
	}
}

// TestBackupRestartFromWALConvergesWithoutResync pins the mid-window WAL
// recovery path under the lossy preset: a PB backup crashes mid-window,
// loses deltas to both the outage and a 2% drop rate, restarts from its own
// journal at its exact stream position, and the primary closes the gap with
// retransmitted in-window deltas alone — no checkpoint resync.
func TestBackupRestartFromWALConvergesWithoutResync(t *testing.T) {
	cfg, err := durableConfig(replica.BackendPB, 7, walFactory(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fortress.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	client, err := sys.Client("lossy-restart-client", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	preset, err := faults.PresetByName("lossy")
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 8
	inj, err := faults.NewInjector(preset.Build(faults.Shape{Servers: blackoutServers, Proxies: blackoutProxies}, horizon), sys, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ops := uint64(0)
	put := func(i int) {
		t.Helper()
		body := fmt.Sprintf(`{"op":"put","key":"k","value":"v%d"}`, i)
		if _, err := invokeRetry(client, fmt.Sprintf("w%d", i), body, 15*time.Second); err != nil {
			t.Fatal(err)
		}
		ops++
	}
	waitAll := func() {
		t.Helper()
		if err := waitExecuted(sys, ops, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	put(0)
	put(1)
	waitAll()                              // backup 2's journal holds the prefix before it goes down
	if err := inj.Advance(3); err != nil { // mid-horizon: 2% drops on
		t.Fatal(err)
	}
	victim := blackoutServers - 1
	if err := sys.CrashServer(victim); err != nil {
		t.Fatal(err)
	}
	put(2)
	put(3)
	put(4) // well inside the default 256-delta retransmission window
	if err := sys.RestartServer(victim); err != nil {
		t.Fatal(err)
	}
	waitAll()                                    // the recovered backup catches up under drops
	if err := inj.Advance(horizon); err != nil { // drops off
		t.Fatal(err)
	}
	put(5)
	waitAll()

	rep, ok := sys.Servers()[victim].(*pb.Replica)
	if !ok {
		t.Fatalf("server %d is %T, want *pb.Replica", victim, sys.Servers()[victim])
	}
	if jumps := rep.CheckpointJumps(); jumps != 0 {
		t.Errorf("recovered backup needed %d checkpoint resync(s); want pure in-window delta retransmission", jumps)
	}
	got, err := invokeRetry(client, "r-final", `{"op":"get","key":"k"}`, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"found":true,"value":"v5"}` {
		t.Fatalf("post-recovery read = %s", got)
	}
}
