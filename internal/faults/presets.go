package faults

import (
	"fmt"
	"time"
)

// Preset is a named, parameterized schedule family: given a deployment shape
// (server and proxy counts) and a campaign horizon it produces the concrete
// schedule. Presets are what the FaultSweep grid and the `fortress faults`
// CLI select by name.
type Preset struct {
	// Name selects the preset on the CLI and labels sweep rows.
	Name string
	// Description is one line for CLI help.
	Description string
	// Build produces the schedule for a deployment of the given shape over
	// a campaign of horizon unit time-steps.
	Build func(servers, proxies int, horizon uint64) Schedule
}

// Presets returns the catalog, in presentation order.
func Presets() []Preset {
	return []Preset{
		{
			Name:        "none",
			Description: "pristine network — the no-faults baseline",
			Build: func(servers, proxies int, horizon uint64) Schedule {
				return Schedule{}
			},
		},
		{
			Name: "rolling-partition",
			Description: "isolate one server at a time from its peers for 2 steps, " +
				"rotating through the tier — replication and failover under a moving cut",
			Build: buildRollingPartition,
		},
		{
			Name: "quorum-partition",
			Description: "island a server quorum (majority, primary included) from the " +
				"proxy tier for the middle half of the horizon — requests cannot commit " +
				"until the cut heals",
			Build: buildQuorumPartition,
		},
		{
			Name: "proxy-outage",
			Description: "fault-crash the highest-indexed proxy for the middle half of " +
				"the horizon, then restart it — the tier shrinks and regrows",
			Build: buildProxyOutage,
		},
		{
			Name: "lossy",
			Description: "2% network-wide message drop for the middle half of the " +
				"horizon (drop sampling draws from per-directed-pair streams, so " +
				"outcomes reproduce bitwise at any worker count)",
			Build: buildLossy,
		},
		{
			Name: "blackout",
			Description: "whole-cluster power loss for the middle half of the horizon: " +
				"every server and proxy crashes at once and durable stores drop their " +
				"unsynced tail — WAL-backed deployments recover their state from disk on " +
				"restart, the in-memory default restarts empty and loses committed data",
			Build: buildBlackout,
		},
		{
			Name: "slow-disk",
			Description: "inject 20ms of synchronous storage latency on server 0's store " +
				"for the middle half of the horizon — fsync-per-append deployments feel " +
				"every write, batched-sync and in-memory ones shrug it off",
			Build: buildSlowDisk,
		},
		{
			Name: "compound",
			Description: "compound disaster, composed with Merge: the quorum cut, the " +
				"lossy window and the proxy outage all on one clock",
			Build: func(servers, proxies int, horizon uint64) Schedule {
				return Merge(
					buildQuorumPartition(servers, proxies, horizon),
					buildLossy(servers, proxies, horizon),
					buildProxyOutage(servers, proxies, horizon),
				)
			},
		},
	}
}

// buildRollingPartition isolates one server at a time from its peers.
func buildRollingPartition(servers, proxies int, horizon uint64) Schedule {
	var s Schedule
	if servers < 2 {
		return s
	}
	all := ServerAddrs(servers)
	k := 0
	for t := uint64(1); t+2 < horizon; t += 4 {
		victim := []string{all[k%servers]}
		rest := others(all, k%servers)
		s = s.Append(Partition(t, victim, rest), Heal(t+2, victim, rest))
		k++
	}
	return s
}

// buildQuorumPartition islands a server majority from the proxy tier for
// the middle half of the horizon.
func buildQuorumPartition(servers, proxies int, horizon uint64) Schedule {
	maj := servers/2 + 1
	quorum := ServerAddrs(maj)
	front := ProxyAddrs(proxies)
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		Partition(from, quorum, front),
		Heal(to, quorum, front),
	)
}

// buildProxyOutage crashes the highest-indexed proxy for the middle half of
// the horizon.
func buildProxyOutage(servers, proxies int, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		CrashProxy(from, proxies-1),
		RestartProxy(to, proxies-1),
	)
}

// buildLossy turns a 2% drop rate on for the middle half of the horizon.
func buildLossy(servers, proxies int, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		DropRate(from, 0.02),
		DropRate(to, 0),
	)
}

// buildBlackout power-fails the whole deployment for the middle half of the
// horizon.
func buildBlackout(servers, proxies int, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		CrashAll(from),
		RestartAll(to),
	)
}

// buildSlowDisk stalls server 0's store by 20ms per sync for the middle half
// of the horizon.
func buildSlowDisk(servers, proxies int, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		DiskStall(from, 0, 20*time.Millisecond),
		DiskStall(to, 0, 0),
	)
}

// middleHalf returns the [from, to) window spanning the middle half of the
// horizon, degenerating gracefully on tiny horizons.
func middleHalf(horizon uint64) (from, to uint64) {
	from, to = horizon/4, 3*horizon/4
	if to <= from {
		to = from + 1
	}
	return from, to
}

// PresetByName looks a preset up by name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("faults: unknown preset %q", name)
}

// PresetNames returns the catalog names, in presentation order.
func PresetNames() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// others returns all addresses except index i.
func others(addrs []string, i int) []string {
	out := make([]string, 0, len(addrs)-1)
	for j, a := range addrs {
		if j != i {
			out = append(out, a)
		}
	}
	return out
}
