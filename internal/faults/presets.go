package faults

import (
	"fmt"
	"time"
)

// Shape describes the deployment a preset schedule is built for.
type Shape struct {
	// Groups is the replica-group count; zero means the classic
	// single-group deployment.
	Groups int
	// Servers is the per-group server count n_s.
	Servers int
	// Proxies is the proxy count n_p.
	Proxies int
}

// groups resolves the zero value to one group.
func (s Shape) groups() int {
	if s.Groups < 1 {
		return 1
	}
	return s.Groups
}

// TotalServers is the global server count across all groups.
func (s Shape) TotalServers() int { return s.groups() * s.Servers }

// Preset is a named, parameterized schedule family: given a deployment shape
// (group, server and proxy counts) and a campaign horizon it produces the
// concrete schedule. Presets are what the FaultSweep grid and the `fortress
// faults` CLI select by name.
type Preset struct {
	// Name selects the preset on the CLI and labels sweep rows.
	Name string
	// Description is one line for CLI help.
	Description string
	// Build produces the schedule for a deployment of the given shape over
	// a campaign of horizon unit time-steps.
	Build func(shape Shape, horizon uint64) Schedule
}

// Presets returns the catalog, in presentation order.
func Presets() []Preset {
	return []Preset{
		{
			Name:        "none",
			Description: "pristine network — the no-faults baseline",
			Build: func(shape Shape, horizon uint64) Schedule {
				return Schedule{}
			},
		},
		{
			Name: "rolling-partition",
			Description: "isolate one server at a time from its peers for 2 steps, " +
				"rotating through the tier — replication and failover under a moving cut",
			Build: buildRollingPartition,
		},
		{
			Name: "quorum-partition",
			Description: "island a server quorum (majority, primary included) from the " +
				"proxy tier for the middle half of the horizon — requests cannot commit " +
				"until the cut heals",
			Build: buildQuorumPartition,
		},
		{
			Name: "proxy-outage",
			Description: "fault-crash the highest-indexed proxy for the middle half of " +
				"the horizon, then restart it — the tier shrinks and regrows",
			Build: buildProxyOutage,
		},
		{
			Name: "lossy",
			Description: "2% network-wide message drop for the middle half of the " +
				"horizon (drop sampling draws from per-directed-pair streams, so " +
				"outcomes reproduce bitwise at any worker count)",
			Build: buildLossy,
		},
		{
			Name: "blackout",
			Description: "whole-cluster power loss for the middle half of the horizon: " +
				"every server and proxy crashes at once and durable stores drop their " +
				"unsynced tail — WAL-backed deployments recover their state from disk on " +
				"restart, the in-memory default restarts empty and loses committed data",
			Build: buildBlackout,
		},
		{
			Name: "slow-disk",
			Description: "inject 20ms of synchronous storage latency on server 0's store " +
				"for the middle half of the horizon — fsync-per-append deployments feel " +
				"every write, batched-sync and in-memory ones shrug it off",
			Build: buildSlowDisk,
		},
		{
			Name: "shard-cut",
			Description: "island a quorum of the last replica group's servers from the " +
				"proxy tier for the middle half of the horizon — only that shard's slice " +
				"of the keyspace goes dark while every other group keeps committing; on " +
				"a single-group deployment it degenerates to quorum-partition",
			Build: buildShardCut,
		},
		{
			Name: "compound",
			Description: "compound disaster, composed with Merge: the quorum cut, the " +
				"lossy window and the proxy outage all on one clock",
			Build: func(shape Shape, horizon uint64) Schedule {
				return Merge(
					buildQuorumPartition(shape, horizon),
					buildLossy(shape, horizon),
					buildProxyOutage(shape, horizon),
				)
			},
		},
	}
}

// buildRollingPartition isolates one server at a time from its peers,
// rotating through the whole global index space.
func buildRollingPartition(shape Shape, horizon uint64) Schedule {
	var s Schedule
	total := shape.TotalServers()
	if total < 2 {
		return s
	}
	all := ServerAddrs(total)
	k := 0
	for t := uint64(1); t+2 < horizon; t += 4 {
		victim := []string{all[k%total]}
		rest := others(all, k%total)
		s = s.Append(Partition(t, victim, rest), Heal(t+2, victim, rest))
		k++
	}
	return s
}

// buildQuorumPartition islands a server majority — of the first group, on a
// sharded deployment — from the proxy tier for the middle half of the
// horizon.
func buildQuorumPartition(shape Shape, horizon uint64) Schedule {
	maj := shape.Servers/2 + 1
	quorum := ServerAddrs(maj)
	front := ProxyAddrs(shape.Proxies)
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		Partition(from, quorum, front),
		Heal(to, quorum, front),
	)
}

// buildProxyOutage crashes the highest-indexed proxy for the middle half of
// the horizon.
func buildProxyOutage(shape Shape, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		CrashProxy(from, shape.Proxies-1),
		RestartProxy(to, shape.Proxies-1),
	)
}

// buildLossy turns a 2% drop rate on for the middle half of the horizon.
func buildLossy(shape Shape, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		DropRate(from, 0.02),
		DropRate(to, 0),
	)
}

// buildBlackout power-fails the whole deployment for the middle half of the
// horizon.
func buildBlackout(shape Shape, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		CrashAll(from),
		RestartAll(to),
	)
}

// buildSlowDisk stalls server 0's store by 20ms per sync for the middle half
// of the horizon.
func buildSlowDisk(shape Shape, horizon uint64) Schedule {
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		DiskStall(from, 0, 20*time.Millisecond),
		DiskStall(to, 0, 0),
	)
}

// buildShardCut islands a quorum of the LAST replica group's servers from
// the proxy tier for the middle half of the horizon. The last group (rather
// than group 0, which also absorbs keyless traffic and attack probes by
// routing convention) makes the isolation claim cleanest: the cut shard's
// availability collapses while every other shard — attack pressure
// included — stays at 1.0. With one group it is exactly quorum-partition.
func buildShardCut(shape Shape, horizon uint64) Schedule {
	g := shape.groups() - 1
	maj := shape.Servers/2 + 1
	quorum := GroupServerAddrs(g, shape.Servers)[:maj]
	front := ProxyAddrs(shape.Proxies)
	from, to := middleHalf(horizon)
	return Schedule{}.Append(
		Partition(from, quorum, front),
		Heal(to, quorum, front),
	)
}

// middleHalf returns the [from, to) window spanning the middle half of the
// horizon, degenerating gracefully on tiny horizons.
func middleHalf(horizon uint64) (from, to uint64) {
	from, to = horizon/4, 3*horizon/4
	if to <= from {
		to = from + 1
	}
	return from, to
}

// PresetByName looks a preset up by name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("faults: unknown preset %q", name)
}

// PresetNames returns the catalog names, in presentation order.
func PresetNames() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// others returns all addresses except index i.
func others(addrs []string, i int) []string {
	out := make([]string, 0, len(addrs)-1)
	for j, a := range addrs {
		if j != i {
			out = append(out, a)
		}
	}
	return out
}
