// Package faults is a deterministic fault-injection scheduler for live
// FORTRESS campaigns: the machinery that finally drives netsim's
// Partition/Heal/CrashAddr/drop-rate primitives over time instead of leaving
// live campaigns to run on a pristine network.
//
// A Schedule is a declarative list of timed events — partition or heal a cut
// between two address groups, crash or restart a named node, change the
// lossy-link drop rate — stamped with a virtual time. The clock is the
// campaign's own step counter (or any other logical counter the driver
// advances: message count, repetition index), never wall time, so a given
// schedule replays bit-identically at any worker count and on any machine.
//
// An Injector binds a schedule to one deployment (a netsim.Network plus a
// fortress.System) and fires every event whose timestamp has arrived each
// time the driver calls Advance. attack.Campaign advances its injector once
// per unit time-step, before the step's probes, so an event At step t is in
// force for all of step t's traffic.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fortress/internal/fortress"
	"fortress/internal/netsim"
	"fortress/internal/xrand"
)

// NodeKind distinguishes the two crashable node tiers.
type NodeKind int

const (
	// KindServer targets a PB server replica.
	KindServer NodeKind = iota + 1
	// KindProxy targets a proxy.
	KindProxy
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindProxy:
		return "proxy"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// EventKind enumerates the fault actions a schedule can take.
type EventKind int

const (
	// EvPartition severs every cross pair between two address groups.
	EvPartition EventKind = iota + 1
	// EvHeal removes the cross-pair partitions between two address groups.
	EvHeal
	// EvHealAll removes every partition on the network.
	EvHealAll
	// EvCrash fault-crashes one node (down until an EvRestart).
	EvCrash
	// EvRestart brings a fault-crashed node back.
	EvRestart
	// EvDropRate sets the network-wide lossy-link drop probability.
	EvDropRate
	// EvCrashAll power-fails the whole deployment: every server and proxy
	// crashes and durable stores lose their unsynced write-buffer tail.
	EvCrashAll
	// EvRestartAll brings every fault-crashed node back, servers first.
	EvRestartAll
	// EvDiskStall injects synchronous storage latency on one server's store.
	EvDiskStall
	// EvCrashGroup fault-crashes every server of one replica group — a
	// shard-wide outage on a sharded deployment.
	EvCrashGroup
	// EvRestartGroup brings a fault-crashed replica group back.
	EvRestartGroup
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	case EvHealAll:
		return "heal-all"
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvDropRate:
		return "drop-rate"
	case EvCrashAll:
		return "crash-all"
	case EvRestartAll:
		return "restart-all"
	case EvDiskStall:
		return "disk-stall"
	case EvCrashGroup:
		return "crash-group"
	case EvRestartGroup:
		return "restart-group"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Target names one node by tier and index.
type Target struct {
	Kind  NodeKind
	Index int
}

// Event is one timed fault action. At is virtual time: the injector fires
// the event on the first Advance(now) with now >= At. Events sharing a
// timestamp fire in schedule order.
type Event struct {
	At   uint64
	Kind EventKind
	// A and B are the address groups of a partition/heal cut.
	A, B []string
	// Node is the crash/restart target.
	Node Target
	// Rate is the EvDropRate probability.
	Rate float64
	// Stall is the EvDiskStall injected sync latency; non-positive clears
	// a previously injected stall.
	Stall time.Duration
	// Group is the EvCrashGroup/EvRestartGroup replica-group index.
	Group int
}

// Partition returns an event severing every (a, b) cross pair at time t.
func Partition(t uint64, a, b []string) Event {
	return Event{At: t, Kind: EvPartition, A: a, B: b}
}

// Heal returns an event removing the (a, b) cross-pair partitions at time t.
func Heal(t uint64, a, b []string) Event {
	return Event{At: t, Kind: EvHeal, A: a, B: b}
}

// HealAll returns an event removing every partition at time t.
func HealAll(t uint64) Event { return Event{At: t, Kind: EvHealAll} }

// CrashServer returns an event fault-crashing server i at time t.
func CrashServer(t uint64, i int) Event {
	return Event{At: t, Kind: EvCrash, Node: Target{Kind: KindServer, Index: i}}
}

// CrashProxy returns an event fault-crashing proxy i at time t.
func CrashProxy(t uint64, i int) Event {
	return Event{At: t, Kind: EvCrash, Node: Target{Kind: KindProxy, Index: i}}
}

// RestartServer returns an event restarting fault-crashed server i at time t.
func RestartServer(t uint64, i int) Event {
	return Event{At: t, Kind: EvRestart, Node: Target{Kind: KindServer, Index: i}}
}

// RestartProxy returns an event restarting fault-crashed proxy i at time t.
func RestartProxy(t uint64, i int) Event {
	return Event{At: t, Kind: EvRestart, Node: Target{Kind: KindProxy, Index: i}}
}

// DropRate returns an event setting the lossy-link drop probability at
// time t.
func DropRate(t uint64, p float64) Event {
	return Event{At: t, Kind: EvDropRate, Rate: p}
}

// CrashAll returns an event power-failing the whole deployment at time t:
// every server and proxy crashes, and any durable store loses writes it had
// not yet synced.
func CrashAll(t uint64) Event { return Event{At: t, Kind: EvCrashAll} }

// RestartAll returns an event restarting every fault-crashed node at time t,
// servers (in index order) before proxies.
func RestartAll(t uint64) Event { return Event{At: t, Kind: EvRestartAll} }

// DiskStall returns an event injecting d of synchronous storage latency on
// server i's store at time t. A non-positive d clears the stall. The event
// is a no-op for servers without a stall-capable store (e.g. the in-memory
// default).
func DiskStall(t uint64, i int, d time.Duration) Event {
	return Event{At: t, Kind: EvDiskStall, Node: Target{Kind: KindServer, Index: i}, Stall: d}
}

// CrashGroup returns an event fault-crashing every server of replica group
// g at time t — one shard goes dark while the rest keep serving.
func CrashGroup(t uint64, g int) Event {
	return Event{At: t, Kind: EvCrashGroup, Group: g}
}

// RestartGroup returns an event restarting replica group g's fault-crashed
// servers at time t.
func RestartGroup(t uint64, g int) Event {
	return Event{At: t, Kind: EvRestartGroup, Group: g}
}

// Schedule is a declarative fault plan: events over virtual time. The zero
// value is an empty (pristine-network) schedule.
type Schedule struct {
	Events []Event
}

// Append adds events to the schedule and returns it, for fluent building.
func (s Schedule) Append(events ...Event) Schedule {
	s.Events = append(s.Events, events...)
	return s
}

// ServerAddrs returns the netsim addresses of servers [0, n) — the group
// arguments partition events aim at the server tier.
func ServerAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fortress.ServerAddr(i)
	}
	return out
}

// GroupServerAddrs returns the netsim addresses of replica group g on a
// deployment with serversPerGroup servers per group: the global indices
// [g·serversPerGroup, (g+1)·serversPerGroup) — the address group a
// shard-scoped partition aims at.
func GroupServerAddrs(g, serversPerGroup int) []string {
	out := make([]string, serversPerGroup)
	for i := range out {
		out[i] = fortress.ServerAddr(g*serversPerGroup + i)
	}
	return out
}

// ProxyAddrs returns the netsim addresses of proxies [0, n).
func ProxyAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fortress.ProxyAddr(i)
	}
	return out
}

// Injector binds a schedule to one live deployment and replays it against
// the deployment's virtual clock. It is single-driver: only the campaign
// loop calls Advance, between steps, so no locking is needed beyond what
// the network and system already do.
type Injector struct {
	events []Event // sorted stably by At
	next   int
	sys    *fortress.System
	net    *netsim.Network
	rng    *xrand.RNG
}

// NewInjector prepares sched to run against sys (events act on sys and on
// sys.Net()). rng feeds drop-rate events' sampling; it may be nil for
// schedules without EvDropRate events. The schedule is copied and stably
// sorted by timestamp, so a caller may reuse one Schedule value across many
// concurrent deployments.
func NewInjector(sched Schedule, sys *fortress.System, rng *xrand.RNG) (*Injector, error) {
	if sys == nil {
		return nil, errors.New("faults: injector needs a system")
	}
	events := make([]Event, len(sched.Events))
	copy(events, sched.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		if e.Kind == EvDropRate && e.Rate > 0 && rng == nil {
			return nil, errors.New("faults: drop-rate events need an rng")
		}
	}
	return &Injector{events: events, sys: sys, net: sys.Net(), rng: rng}, nil
}

// Advance fires, in order, every not-yet-fired event with At <= now. The
// virtual clock only moves forward; a now below an earlier call's is simply
// a no-op. It returns the first event application error.
func (in *Injector) Advance(now uint64) error {
	for in.next < len(in.events) && in.events[in.next].At <= now {
		e := in.events[in.next]
		in.next++
		if err := in.apply(e); err != nil {
			return fmt.Errorf("faults: event %d (%s at t=%d): %w", in.next-1, e.Kind, e.At, err)
		}
	}
	return nil
}

// Fired reports how many events have been applied so far.
func (in *Injector) Fired() int { return in.next }

// Pending reports how many events have not yet fired.
func (in *Injector) Pending() int { return len(in.events) - in.next }

func (in *Injector) apply(e Event) error {
	switch e.Kind {
	case EvPartition:
		in.net.PartitionGroup(e.A, e.B)
	case EvHeal:
		in.net.HealGroup(e.A, e.B)
	case EvHealAll:
		in.net.HealAll()
	case EvDropRate:
		in.net.SetDropRate(e.Rate, in.rng)
	case EvCrash:
		switch e.Node.Kind {
		case KindServer:
			return in.sys.CrashServer(e.Node.Index)
		case KindProxy:
			return in.sys.CrashProxy(e.Node.Index)
		default:
			return fmt.Errorf("crash: unknown node kind %v", e.Node.Kind)
		}
	case EvRestart:
		switch e.Node.Kind {
		case KindServer:
			return in.sys.RestartServer(e.Node.Index)
		case KindProxy:
			return in.sys.RestartProxy(e.Node.Index)
		default:
			return fmt.Errorf("restart: unknown node kind %v", e.Node.Kind)
		}
	case EvCrashAll:
		return in.sys.CrashAll()
	case EvRestartAll:
		return in.sys.RestartAll()
	case EvDiskStall:
		return in.sys.StallDisk(e.Node.Index, e.Stall)
	case EvCrashGroup:
		return in.sys.CrashGroup(e.Group)
	case EvRestartGroup:
		return in.sys.RestartGroup(e.Group)
	default:
		return fmt.Errorf("unknown event kind %v", e.Kind)
	}
	return nil
}
