package faults_test

import (
	"fmt"
	"testing"
	"time"

	"fortress/internal/attack"
	"fortress/internal/faults"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/replica"
	"fortress/internal/service"
	"fortress/internal/xrand"
)

// smrSystem deploys a FORTRESS system on the SMR backend with fault-sweep
// style timings (ServerTimeout below HeartbeatTimeout, so unavailability
// under a cut is the schedule's doing, not the failure detector's).
func smrSystem(t *testing.T, servers, proxies int) *fortress.System {
	t.Helper()
	space, err := keyspace.NewSpace(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fortress.New(fortress.Config{
		Servers:           servers,
		Proxies:           proxies,
		Backend:           replica.BackendSMR,
		Space:             space,
		Seed:              7,
		ServiceFactory:    func() service.Service { return service.NewKV() },
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		ServerTimeout:     150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

// runSMRFaultCampaign replays sched against a fresh SMR deployment under a
// proxy-probe campaign with availability measurement on (the health checks
// are the order-protocol traffic the restarted replica must catch up on),
// then waits for the crashed-and-restarted server to converge to the
// leader's executed sequence.
func runSMRFaultCampaign(t *testing.T, sched faults.Schedule, servers, proxies int, steps uint64) {
	t.Helper()
	sys := smrSystem(t, servers, proxies)
	space, err := keyspace.NewSpace(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(sched, sys, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := attack.Campaign(sys, space, attack.CampaignConfig{
		OmegaDirect:         1,
		MaxSteps:            steps,
		Injector:            inj,
		MeasureAvailability: true,
		HealthTimeout:       300 * time.Millisecond,
		ProbeTimeout:        time.Second,
	}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbedSteps != steps {
		t.Fatalf("probed %d steps, want %d", res.ProbedSteps, steps)
	}
	if inj.Pending() != 0 {
		t.Fatalf("%d schedule events never fired", inj.Pending())
	}

	// Convergence: the restarted replica pulls the leader's history through
	// the catch-up transfer; the leader executed at least the health checks.
	srvs := sys.Servers()
	deadline := time.Now().Add(5 * time.Second)
	for {
		leader, restarted := srvs[0].Executed(), srvs[servers-1].Executed()
		if leader > 0 && restarted == leader {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never converged: leader executed %d, replica %d",
				leader, restarted)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSMRCatchupUnderQuorumPartition crashes the one proxy-reachable
// server while a quorum cut islands the rest, restarts it after the heal,
// and requires it to converge to the leader's executed sequence via the
// leader-driven catch-up transfer. The schedule composes the preset with
// the outage through Merge.
func TestSMRCatchupUnderQuorumPartition(t *testing.T) {
	const (
		servers = 3
		proxies = 2
		steps   = 10
	)
	preset, err := faults.PresetByName("quorum-partition")
	if err != nil {
		t.Fatal(err)
	}
	sched := faults.Merge(
		preset.Build(faults.Shape{Servers: servers, Proxies: proxies}, steps),
		faults.Schedule{}.Append(
			faults.CrashServer(1, servers-1),
			faults.RestartServer(8, servers-1),
		),
	)
	runSMRFaultCampaign(t, sched, servers, proxies, steps)
}

// TestSMRCatchupUnderRollingPartition is the moving-cut variant: the tier
// rides the rolling partition while the highest-indexed server is down,
// then the restarted server catches up.
func TestSMRCatchupUnderRollingPartition(t *testing.T) {
	const (
		servers = 3
		proxies = 2
		steps   = 10
	)
	preset, err := faults.PresetByName("rolling-partition")
	if err != nil {
		t.Fatal(err)
	}
	sched := faults.Merge(
		preset.Build(faults.Shape{Servers: servers, Proxies: proxies}, steps),
		faults.Schedule{}.Append(
			faults.CrashServer(1, servers-1),
			faults.RestartServer(8, servers-1),
		),
	)
	runSMRFaultCampaign(t, sched, servers, proxies, steps)
}

// TestSMRQuorumPartitionStaysAvailable pins the PB-vs-SMR headline: under
// the quorum cut the PB tier cannot commit (the primary is islanded), but
// the SMR tier keeps serving — followers outside the cut forward to the
// leader over intact server-server links and answer with ordered
// responses.
func TestSMRQuorumPartitionStaysAvailable(t *testing.T) {
	const (
		servers = 3
		proxies = 2
		steps   = 8
	)
	preset, err := faults.PresetByName("quorum-partition")
	if err != nil {
		t.Fatal(err)
	}
	sys := smrSystem(t, servers, proxies)
	space, err := keyspace.NewSpace(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(preset.Build(faults.Shape{Servers: servers, Proxies: proxies}, steps), sys, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := attack.Campaign(sys, space, attack.CampaignConfig{
		OmegaDirect:         1,
		MaxSteps:            steps,
		Injector:            inj,
		MeasureAvailability: true,
		HealthTimeout:       600 * time.Millisecond,
		ProbeTimeout:        time.Second,
	}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvailableSteps != res.ProbedSteps {
		t.Fatalf("SMR lost availability under the quorum cut: %d/%d steps available (followers should relay to the leader)",
			res.AvailableSteps, res.ProbedSteps)
	}
}

// TestSMRRebuildDoesNotForkSequencer pins the fortress-rebuild seeding: a
// fault-crashed lowest-index server is rebuilt mid-history from a live
// peer's StateTransfer, so it rejoins at the group's frontier instead of
// reclaiming the sequencer role at sequence one — which would make every
// follower silently reject its orders forever (a forked cluster that still
// answers clients through the rogue leader alone).
func TestSMRRebuildDoesNotForkSequencer(t *testing.T) {
	sys := smrSystem(t, 3, 2)
	client, err := sys.Client("fork-client", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// invoke retries a request until the doubly-signed path answers —
	// failover windows make individual attempts fail with timeouts.
	invoke := func(id, body string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := client.Invoke(id, []byte(body)); err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("invoke %s never succeeded", id)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	converged := func(want uint64) {
		t.Helper()
		srvs := sys.Servers()
		deadline := time.Now().Add(5 * time.Second)
		for {
			a, b, c := srvs[0].Executed(), srvs[1].Executed(), srvs[2].Executed()
			if a >= want && a == b && b == c {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("executed sequences diverged: %d %d %d (want all >= %d)", a, b, c, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	for i := 0; i < 3; i++ {
		invoke(fmt.Sprintf("w%d", i), `{"op":"put","key":"k","value":"v1"}`)
	}
	converged(3)

	// Down the sequencer long enough for the followers to fail over.
	if err := sys.CrashServer(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // > HeartbeatTimeout: server 1 takes over
	invoke("w3", `{"op":"put","key":"k","value":"v2"}`)

	if err := sys.RestartServer(0); err != nil {
		t.Fatal(err)
	}
	invoke("w4", `{"op":"put","key":"k","value":"v3"}`)
	// Every replica — the rebuilt 0 included — must keep executing the
	// same total order.
	converged(5)
	got, err := client.Invoke("r-final", []byte(`{"op":"get","key":"k"}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"found":true,"value":"v3"}` {
		t.Fatalf("post-rebuild read = %s", got)
	}
}

// TestSMRBackendEndToEnd sanity-checks the backend swap itself: a client
// write/read through the doubly-signed proxy path against an SMR tier.
func TestSMRBackendEndToEnd(t *testing.T) {
	sys := smrSystem(t, 3, 2)
	client, err := sys.Client("smr-e2e-client", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke("w1", []byte(`{"op":"put","key":"k","value":"v"}`)); err != nil {
		t.Fatal(err)
	}
	got, err := client.Invoke("r1", []byte(`{"op":"get","key":"k"}`))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"found":true,"value":"v"}`
	if string(got) != want {
		t.Fatalf("read through SMR tier = %s, want %s", got, want)
	}
	for i, s := range sys.Servers() {
		if s.Executed() < 2 {
			t.Errorf("server %d executed %d requests, want >= 2 (every SMR replica executes)", i, s.Executed())
		}
	}
	if fmt.Sprint(sys.Backend()) != "smr" {
		t.Fatalf("Backend() = %v", sys.Backend())
	}
}
