package workload

import (
	"math"
	"reflect"
	"testing"
	"time"

	"fortress/internal/xrand"
)

func TestValidatePinnedErrors(t *testing.T) {
	// These two messages are part of the Spec API: the CLIs surface them
	// verbatim, so they are pinned here.
	if err := (Spec{Rate: -1}).Validate(); err == nil || err.Error() != "workload: negative rate" {
		t.Errorf("negative rate: err = %v", err)
	}
	for _, s := range []float64{0, -0.5} {
		if err := (Spec{KeyDist: Zipfian, ZipfS: s}).Validate(); err == nil || err.Error() != "workload: zipf s must be > 0" {
			t.Errorf("zipf s=%g: err = %v", s, err)
		}
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []Spec{
		{Clients: -1},
		{Keys: -3},
		{ReadFraction: 1.5},
		{ReadFraction: -0.1},
		{Deadline: -time.Second},
		{Arrival: Bursty, BurstFactor: 0.5},
		{BurstDuty: 2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}

func TestEveryPresetValidates(t *testing.T) {
	for _, p := range Presets() {
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("preset %s: %v", p.Spec.Name, err)
		}
		if _, err := NewGen(p.Spec, xrand.New(1)); err != nil {
			t.Errorf("preset %s gen: %v", p.Spec.Name, err)
		}
		got, err := PresetByName(p.Spec.Name)
		if err != nil || got != p.Spec {
			t.Errorf("PresetByName(%s) = %+v, %v", p.Spec.Name, got, err)
		}
	}
	if _, err := PresetByName("no-such-workload"); err == nil || err.Error() != `workload: unknown preset "no-such-workload"` {
		t.Errorf("unknown preset: err = %v", err)
	}
}

func TestClosedTranslatesLegacyEncoding(t *testing.T) {
	// Legacy CampaignConfig.ReadFraction: 0 = all reads, negative = all
	// writes, otherwise the read share (clamped at 1).
	for _, tc := range []struct{ legacy, want float64 }{
		{0, 1}, {-1, 0}, {0.95, 0.95}, {1, 1}, {2, 1},
	} {
		s := Closed(tc.legacy)
		if s.Arrival != ClosedLoop || s.ReadFraction != tc.want {
			t.Errorf("Closed(%g) = %+v, want read fraction %g", tc.legacy, s, tc.want)
		}
		if s.IsZero() {
			t.Errorf("Closed(%g) reads as the no-workload sentinel", tc.legacy)
		}
	}
	if !(Spec{}).IsZero() {
		t.Error("zero spec not IsZero")
	}
}

// TestGenDeterministic is the purity contract: two generators built from the
// same (Spec, seed) emit identical streams, for every preset.
func TestGenDeterministic(t *testing.T) {
	for _, p := range Presets() {
		a, err := NewGen(p.Spec, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewGen(p.Spec, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		for step := uint64(0); step < 32; step++ {
			ra := a.Arrivals(step, nil)
			rb := b.Arrivals(step, nil)
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("preset %s step %d: streams diverge", p.Spec.Name, step)
			}
		}
	}
}

// TestGenArrivalsOrderedWithinStep checks the event heap drains in virtual
// time order and never leaks an arrival outside its step window.
func TestGenArrivalsOrderedWithinStep(t *testing.T) {
	spec := Spec{Arrival: Poisson, Clients: 5000, Rate: 0.05}
	g, err := NewGen(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for step := uint64(0); step < 16; step++ {
		reqs := g.Arrivals(step, nil)
		prev := math.Inf(-1)
		for _, r := range reqs {
			if r.T < float64(step) || r.T >= float64(step+1) {
				t.Fatalf("step %d: arrival at t=%g outside window", step, r.T)
			}
			if r.T < prev {
				t.Fatalf("step %d: arrivals out of order", step)
			}
			prev = r.T
			if r.Service < 500*time.Microsecond {
				t.Fatalf("service draw %v below floor", r.Service)
			}
		}
	}
}

// TestPoissonRate checks the open-loop offered load: Clients·Rate arrivals
// per step in expectation, within a loose Monte-Carlo band.
func TestPoissonRate(t *testing.T) {
	spec := Spec{Arrival: Poisson, Clients: 10000, Rate: 0.02}
	g, err := NewGen(spec, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const steps = 200
	var n int
	buf := make([]Request, 0, 512)
	for step := uint64(0); step < steps; step++ {
		buf = g.Arrivals(step, buf[:0])
		n += len(buf)
	}
	perStep := float64(n) / steps
	if perStep < 180 || perStep > 220 {
		t.Errorf("offered load %g arrivals/step, want ≈200", perStep)
	}
}

// TestClientScalingFlatState pins the tentpole's O(active requests) claim
// structurally: a 10⁶-client generator holds exactly as many cohorts and
// heap entries as a 10⁴-client one, and its offered load scales 100×.
func TestClientScalingFlatState(t *testing.T) {
	small := Spec{Arrival: Poisson, Clients: 10000, Rate: 0.002}
	large := Spec{Arrival: Poisson, Clients: 1000000, Rate: 0.002}
	gs, err := NewGen(small, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	gl, err := NewGen(large, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.cohorts) != maxCohorts || len(gl.cohorts) != maxCohorts {
		t.Fatalf("cohorts: small %d, large %d, want %d each", len(gs.cohorts), len(gl.cohorts), maxCohorts)
	}
	count := func(g *Gen) int {
		var n int
		buf := make([]Request, 0, 4096)
		for step := uint64(0); step < 20; step++ {
			buf = g.Arrivals(step, buf[:0])
			n += len(buf)
		}
		return n
	}
	ns, nl := count(gs), count(gl)
	ratio := float64(nl) / float64(ns)
	if ratio < 80 || ratio > 120 {
		t.Errorf("load ratio %g for 100× clients, want ≈100 (small %d, large %d)", ratio, ns, nl)
	}
}

// TestZipfSkew checks the popularity law: key 0 dominates and low ranks
// collectively outweigh a uniform share.
func TestZipfSkew(t *testing.T) {
	spec := Spec{Arrival: Poisson, Clients: 10000, Rate: 0.05,
		KeyDist: Zipfian, Keys: 1024, ZipfS: 1.1}
	g, err := NewGen(spec, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint32]int)
	var total int
	buf := make([]Request, 0, 1024)
	for step := uint64(0); step < 64; step++ {
		buf = g.Arrivals(step, buf[:0])
		for _, r := range buf {
			counts[r.Key]++
		}
		total += len(buf)
	}
	var top16 int
	for k := uint32(0); k < 16; k++ {
		top16 += counts[k]
	}
	if frac := float64(top16) / float64(total); frac < 0.3 {
		t.Errorf("top-16 keys carry %g of traffic, want skew ≫ uniform 16/1024", frac)
	}
	for k, n := range counts {
		if n > counts[0] {
			t.Fatalf("key %d (%d hits) beats rank-0 key (%d)", k, n, counts[0])
		}
	}
}

// TestBurstyModulation checks the square wave: burst-phase steps carry more
// arrivals than off-phase steps.
func TestBurstyModulation(t *testing.T) {
	spec := Spec{Arrival: Bursty, Clients: 10000, Rate: 0.01,
		BurstFactor: 8, BurstPeriod: 8, BurstDuty: 0.25}
	g, err := NewGen(spec, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	var burst, quiet, burstSteps, quietSteps int
	buf := make([]Request, 0, 2048)
	for step := uint64(0); step < 64; step++ {
		buf = g.Arrivals(step, buf[:0])
		if step%8 < 2 { // duty 0.25 of period 8
			burst += len(buf)
			burstSteps++
		} else {
			quiet += len(buf)
			quietSteps++
		}
	}
	bRate := float64(burst) / float64(burstSteps)
	qRate := float64(quiet) / float64(quietSteps)
	if bRate < 4*qRate {
		t.Errorf("burst rate %g not ≫ quiet rate %g (factor 8 configured)", bRate, qRate)
	}
}

// TestClosedLoopMixMatchesLegacyRule pins the deterministic read/write
// threshold against the legacy campaign's per-step sequence.
func TestClosedLoopMixMatchesLegacyRule(t *testing.T) {
	g, err := NewGen(Closed(0.5), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var reads, total int
	for step := uint64(0); step < 100; step++ {
		reqs := g.Arrivals(step, nil)
		if len(reqs) != 1 {
			t.Fatalf("closed loop emitted %d requests in one step", len(reqs))
		}
		// Legacy rule: read iff realized reads < frac·(total+1).
		want := float64(reads) < 0.5*float64(total+1)
		if reqs[0].Read != want {
			t.Fatalf("step %d: read=%t, legacy rule says %t", step, reqs[0].Read, want)
		}
		total++
		if reqs[0].Read {
			reads++
		}
	}
	if reads != 50 {
		t.Errorf("realized %d reads of %d, want exact tracking", reads, total)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.P99() != 0 {
		t.Error("empty hist quantile not 0")
	}
	// 90 fast observations and 10 slow: p50 sits in the fast bucket, p99 in
	// the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	if p50 := h.P50(); p50 < 500*time.Microsecond || p50 > 1*time.Millisecond {
		t.Errorf("p50 = %v, want within the 1ms bucket", p50)
	}
	if p99 := h.P99(); p99 < 64*time.Millisecond || p99 > 128*time.Millisecond {
		t.Errorf("p99 = %v, want within the 128ms bucket", p99)
	}
	if mean := h.Mean(); mean < 5*time.Millisecond || mean > 20*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
}

// TestHistMergeOrderIndependent is what makes the campaign fold
// deterministic: merging per-repetition histograms is element-wise addition,
// so any fold order yields the same aggregate.
func TestHistMergeOrderIndependent(t *testing.T) {
	mk := func(seed uint64) Hist {
		var h Hist
		r := xrand.New(seed)
		for i := 0; i < 200; i++ {
			h.Observe(time.Duration(r.Uint64n(uint64(500 * time.Millisecond))))
		}
		return h
	}
	a, b, c := mk(1), mk(2), mk(3)
	var ab, ba Hist
	ab.Merge(a)
	ab.Merge(b)
	ab.Merge(c)
	ba.Merge(c)
	ba.Merge(b)
	ba.Merge(a)
	if ab != ba {
		t.Error("merge is order-dependent")
	}
	if ab.Count != a.Count+b.Count+c.Count {
		t.Errorf("merged count %d", ab.Count)
	}
}

// TestNewGenSplitOnly pins the stream-layout contract NewGen documents: it
// only ever Splits the parent (one split for the sample stream plus one per
// cohort), never reads it, so sibling streams laid out after the generator
// stay where the caller put them.
func TestNewGenSplitOnly(t *testing.T) {
	a, b := xrand.New(77), xrand.New(77)
	g, err := NewGen(PresetsMustSpec(t, "zipf-poisson"), a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1+len(g.cohorts); i++ {
		b.Split()
	}
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewGen read the parent stream beyond its splits")
		}
	}
}

// PresetsMustSpec fetches a preset spec or fails the test.
func PresetsMustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, err := PresetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
