// Package workload is the declarative workload surface shared by campaigns,
// the sweep grids and the CLI: a Spec says what the measurement traffic looks
// like — how many simulated clients, how their arrivals are paced (closed
// loop, Poisson, bursty, diurnal ramp), which keys they touch (uniform or
// Zipfian popularity), how much of it is reads, and the latency a request is
// charged when its shard cannot answer — and Gen turns a Spec plus a seeded
// RNG into a deterministic arrival stream.
//
// Two invariants carry the rest of the repository's contracts:
//
//   - Generator state is O(active requests), never O(clients): cohorts of
//     clients are superposed into aggregate renewal processes on a small
//     event heap, so 10⁶ simulated clients cost the same fixed state as 10⁴
//     plus the per-step arrival buffer (BenchmarkWorkloadGen pins this via
//     its bytes/client metric).
//   - Everything is a pure function of (Spec, seed): arrival times, keys,
//     the read/write mix (a deterministic threshold, like the legacy
//     campaign probe) and the per-request service-time samples. Latency is
//     virtual — a service-time draw when the owning shard answers its
//     step probe, the Spec's Deadline when it does not — never wall clock,
//     so sweeps stay bit-identical at any -workers value.
package workload

import (
	"errors"
	"fmt"
	"time"
)

// Arrival selects how request arrivals are paced.
type Arrival int

const (
	// ClosedLoop is the legacy campaign workload: exactly one in-flight
	// request per step (per shard on sharded deployments), issued when the
	// previous one completes. Clients/Rate are ignored.
	ClosedLoop Arrival = iota
	// Poisson is open-loop: each simulated client issues requests as a
	// Poisson process at Rate arrivals per step, independent of completions
	// — the open-vs-closed distinction that makes latency-under-disaster
	// visible instead of self-throttling around it.
	Poisson
	// Bursty is Poisson modulated by an on/off square wave: during the
	// burst phase (BurstDuty of every BurstPeriod steps) the rate is
	// multiplied by BurstFactor.
	Bursty
	// Diurnal is Poisson modulated by a sawtooth ramp: the rate climbs
	// from 10% to 100% of Rate over each RampPeriod steps, then resets —
	// a compressed day/night cycle.
	Diurnal
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case ClosedLoop:
		return "closed"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// KeyDist selects the key-popularity distribution.
type KeyDist int

const (
	// Uniform spreads arrivals evenly over the Keys key IDs.
	Uniform KeyDist = iota
	// Zipfian skews popularity as 1/(rank+1)^ZipfS: key 0 is the hottest.
	// Sampling is an O(log Keys) binary search over a precomputed CDF, so
	// any exponent s > 0 works (math/rand's rejection-inversion needs s>1).
	Zipfian
)

// String names the key distribution.
func (d KeyDist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	default:
		return fmt.Sprintf("keydist(%d)", int(d))
	}
}

// Spec declares a measurement workload. The zero value means "no workload
// configured" (IsZero) — consumers fall back to their legacy behaviour —
// and zero-valued individual fields select the documented defaults.
type Spec struct {
	// Name labels the spec in sweep rows and CSV; presets set it.
	Name string
	// Clients is the simulated client population (10⁴–10⁶ is the intended
	// range). No per-client state exists anywhere: clients only scale the
	// aggregate arrival rate. Ignored by ClosedLoop. Default 10000.
	Clients int
	// Arrival is the arrival process.
	Arrival Arrival
	// Rate is each client's arrival rate in requests per unit time-step
	// (open-loop processes only). Default 0.02 — 10⁴ clients then offer
	// 200 requests per step.
	Rate float64
	// BurstFactor multiplies Rate during the burst phase (Bursty only).
	// Default 8.
	BurstFactor float64
	// BurstPeriod is the on/off cycle length in steps (Bursty only).
	// Default 8.
	BurstPeriod uint64
	// BurstDuty is the fraction of each period spent bursting (Bursty
	// only). Default 0.25.
	BurstDuty float64
	// RampPeriod is the sawtooth cycle length in steps (Diurnal only).
	// Default 16.
	RampPeriod uint64
	// KeyDist is the key-popularity distribution.
	KeyDist KeyDist
	// Keys is the number of distinct key IDs. Default 1024.
	Keys int
	// ZipfS is the Zipfian exponent (Zipfian only); must be > 0.
	ZipfS float64
	// ReadFraction is the read share of the workload in [0, 1]; 0 is all
	// writes. The realized mix tracks the fraction exactly via a
	// deterministic threshold, never an RNG draw. Note this is a plain
	// fraction — the legacy CampaignConfig.ReadFraction encoding (0 means
	// all reads, negative all writes) is translated by Closed.
	ReadFraction float64
	// Deadline is the virtual latency charged to a request whose owning
	// shard fails its step probe — the per-request deadline after which an
	// open-loop client would give up. Default 250ms.
	Deadline time.Duration
}

// IsZero reports whether the spec is entirely unset — the "no workload
// configured" sentinel consumers test before falling back to legacy knobs.
func (s Spec) IsZero() bool { return s == Spec{} }

// Validate rejects nonsensical field values. It accepts zero-valued fields
// (they mean "default"); the generator validates again after defaulting.
func (s Spec) Validate() error {
	switch {
	case s.Clients < 0:
		return fmt.Errorf("workload: negative client count %d", s.Clients)
	case s.Rate < 0:
		return errors.New("workload: negative rate")
	case s.Keys < 0:
		return fmt.Errorf("workload: negative key count %d", s.Keys)
	case s.ReadFraction < 0 || s.ReadFraction > 1:
		return fmt.Errorf("workload: read fraction %g outside [0,1]", s.ReadFraction)
	case s.Deadline < 0:
		return fmt.Errorf("workload: negative deadline %v", s.Deadline)
	case s.BurstFactor < 0 || (s.Arrival == Bursty && s.BurstFactor != 0 && s.BurstFactor < 1):
		return fmt.Errorf("workload: burst factor %g must be at least 1", s.BurstFactor)
	case s.BurstDuty < 0 || s.BurstDuty > 1:
		return fmt.Errorf("workload: burst duty %g outside [0,1]", s.BurstDuty)
	}
	if s.KeyDist == Zipfian && s.ZipfS <= 0 {
		return errors.New("workload: zipf s must be > 0")
	}
	return nil
}

// withDefaults fills zero-valued fields with the documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Keys == 0 {
		s.Keys = 1024
	}
	if s.Deadline == 0 {
		s.Deadline = 250 * time.Millisecond
	}
	if s.Arrival != ClosedLoop {
		if s.Clients == 0 {
			s.Clients = 10000
		}
		if s.Rate == 0 {
			s.Rate = 0.02
		}
		if s.Arrival == Bursty {
			if s.BurstFactor == 0 {
				s.BurstFactor = 8
			}
			if s.BurstPeriod == 0 {
				s.BurstPeriod = 8
			}
			if s.BurstDuty == 0 {
				s.BurstDuty = 0.25
			}
		}
		if s.Arrival == Diurnal && s.RampPeriod == 0 {
			s.RampPeriod = 16
		}
	}
	return s
}

// Closed translates the legacy attack.CampaignConfig.ReadFraction encoding
// into a closed-loop Spec: zero keeps the historical all-read health probe,
// negative selects all writes, values above one clamp. Campaigns whose
// Workload is unset run exactly this spec, so pre-redesign configurations
// keep their byte-identical outputs.
func Closed(legacyReadFraction float64) Spec {
	frac := legacyReadFraction
	switch {
	case frac == 0:
		frac = 1
	case frac < 0:
		frac = 0
	case frac > 1:
		frac = 1
	}
	return Spec{Name: "closed", Arrival: ClosedLoop, ReadFraction: frac}
}

// Preset is a named Spec with the help text the CLIs print.
type Preset struct {
	Spec        Spec
	Description string
}

// Presets is the named-workload catalog the sweep grids and the -workload
// CLI flag select from, in a fixed order.
func Presets() []Preset {
	return []Preset{
		{
			Spec:        Spec{Name: "closed", Arrival: ClosedLoop, ReadFraction: 1},
			Description: "legacy closed loop: one all-read health probe per step per shard",
		},
		{
			Spec:        Spec{Name: "uniform-closed", Arrival: ClosedLoop, ReadFraction: 0.95},
			Description: "closed loop at a 0.95 read mix",
		},
		{
			Spec: Spec{Name: "uniform-poisson", Arrival: Poisson, Clients: 10000,
				Rate: 0.02, KeyDist: Uniform, ReadFraction: 0.95},
			Description: "10k open-loop clients, Poisson arrivals, uniform keys, 0.95 reads",
		},
		{
			Spec: Spec{Name: "zipf-poisson", Arrival: Poisson, Clients: 10000,
				Rate: 0.02, KeyDist: Zipfian, ZipfS: 1.1, ReadFraction: 0.95},
			Description: "10k open-loop clients, Poisson arrivals, Zipfian keys (s=1.1), 0.95 reads",
		},
		{
			Spec: Spec{Name: "zipf-bursty", Arrival: Bursty, Clients: 10000,
				Rate: 0.01, BurstFactor: 8, BurstPeriod: 8, BurstDuty: 0.25,
				KeyDist: Zipfian, ZipfS: 1.1, ReadFraction: 0.9},
			Description: "Zipfian keys under 8x on/off bursts (2 of every 8 steps)",
		},
		{
			Spec: Spec{Name: "diurnal-ramp", Arrival: Diurnal, Clients: 10000,
				Rate: 0.02, RampPeriod: 16, KeyDist: Zipfian, ZipfS: 0.8, ReadFraction: 0.95},
			Description: "Zipfian keys on a sawtooth 10%-100% rate ramp every 16 steps",
		},
	}
}

// PresetByName returns the named preset's Spec.
func PresetByName(name string) (Spec, error) {
	for _, p := range Presets() {
		if p.Spec.Name == name {
			return p.Spec, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown preset %q", name)
}

// PresetNames lists the preset names in catalog order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Spec.Name
	}
	return names
}
