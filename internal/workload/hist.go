package workload

import "time"

// histBounds are the fixed latency bucket upper bounds. Fixed buckets (not
// t-digest or HDR) keep Merge a plain element-wise add — the property the
// rep-order fold in attack.CampaignSeries needs for bit-identical results at
// any worker count.
var histBounds = [histBuckets - 1]time.Duration{
	125 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	4 * time.Millisecond,
	8 * time.Millisecond,
	16 * time.Millisecond,
	32 * time.Millisecond,
	64 * time.Millisecond,
	128 * time.Millisecond,
	256 * time.Millisecond,
	512 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
}

const histBuckets = 16

// Hist is a fixed-bucket latency histogram. The zero value is ready to use;
// Hist is a value type — copy and merge freely.
type Hist struct {
	Count   uint64
	Sum     time.Duration
	Buckets [histBuckets]uint64
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	h.Count++
	h.Sum += d
	for i, b := range histBounds {
		if d <= b {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[histBuckets-1]++
}

// Merge folds other into h. Order-independent, so rep-order folds commute
// with per-worker partial merges.
func (h *Hist) Merge(other Hist) {
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Mean is the average observed latency, 0 when empty.
func (h Hist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-quantile (q in (0,1]) by linear interpolation
// within the owning bucket; 0 when the histogram is empty. Samples beyond
// the last bound interpolate toward twice that bound.
func (h Hist) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var seen uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			var lo time.Duration
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := 2 * histBounds[len(histBounds)-1]
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			frac := float64(rank-seen) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += n
	}
	return 2 * histBounds[len(histBounds)-1]
}

// P50 is the median latency estimate.
func (h Hist) P50() time.Duration { return h.Quantile(0.50) }

// P99 is the 99th-percentile latency estimate.
func (h Hist) P99() time.Duration { return h.Quantile(0.99) }

// P999 is the 99.9th-percentile latency estimate.
func (h Hist) P999() time.Duration { return h.Quantile(0.999) }
