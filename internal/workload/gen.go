package workload

import (
	"math"
	"time"

	"fortress/internal/xrand"
)

// Request is one generated arrival. T is the virtual arrival time in steps
// (fractional within the step), Key the popularity-sampled key ID, Read the
// deterministic read/write class, and Service the virtual service-time
// sample the request is charged when its owning shard answers — drawn
// unconditionally at generation time so the RNG stream position never
// depends on probe outcomes.
type Request struct {
	T       float64
	Key     uint32
	Read    bool
	Service time.Duration
}

// maxCohorts bounds the generator's state: clients are folded into at most
// this many aggregated renewal processes (the superposition of n independent
// Poisson processes at rate r is one Poisson process at rate n·r), so the
// event heap holds one entry per cohort regardless of the client count.
const maxCohorts = 64

type event struct {
	t      float64
	cohort int32
}

type cohort struct {
	rng  *xrand.RNG
	rate float64 // aggregate peak rate, arrivals per step
}

// Gen generates a Spec's arrival stream from a seeded RNG. State is O(1) in
// the client count (at most maxCohorts heap entries plus the Zipf CDF); the
// only per-arrival cost is the caller's reusable buffer. Not safe for
// concurrent use — each campaign repetition owns its own Gen, exactly like
// its guesser RNGs.
type Gen struct {
	spec    Spec
	sample  *xrand.RNG // keys, service times, thinning accepts
	cohorts []cohort
	heap    []event
	zipfCDF []float64
	reads   uint64 // realized read count, for the deterministic mix threshold
	total   uint64
}

// NewGen validates and defaults spec and builds its generator. The parent
// rng is only Split from, never read, so sibling streams stay undisturbed.
func NewGen(spec Spec, rng *xrand.RNG) (*Gen, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Gen{spec: spec, sample: rng.Split()}
	if spec.KeyDist == Zipfian {
		g.zipfCDF = zipfCDF(spec.Keys, spec.ZipfS)
	}
	if spec.Arrival == ClosedLoop {
		return g, nil
	}
	n := spec.Clients
	nc := n
	if nc > maxCohorts {
		nc = maxCohorts
	}
	if nc < 1 {
		nc = 1
	}
	_, peak := g.modulation(0)
	g.cohorts = make([]cohort, nc)
	g.heap = make([]event, 0, nc)
	base, rem := n/nc, n%nc
	for i := range g.cohorts {
		clients := base
		if i < rem {
			clients++
		}
		// Split in cohort-index order so the stream layout is a pure
		// function of (spec, seed).
		c := cohort{rng: rng.Split(), rate: float64(clients) * spec.Rate * peak}
		g.cohorts[i] = c
		if c.rate > 0 {
			g.heap = append(g.heap, event{t: expDraw(c.rng) / c.rate, cohort: int32(i)})
		}
	}
	for i := len(g.heap)/2 - 1; i >= 0; i-- {
		g.siftDown(i)
	}
	return g, nil
}

// Spec returns the generator's spec with defaults applied.
func (g *Gen) Spec() Spec { return g.spec }

// Arrivals appends the requests arriving in [step, step+1) to buf and
// returns it. ClosedLoop emits exactly one request per step; open-loop
// processes drain the event heap up to the step boundary, thinning against
// the rate modulation where the process is time-varying.
func (g *Gen) Arrivals(step uint64, buf []Request) []Request {
	if g.spec.Arrival == ClosedLoop {
		return append(buf, Request{
			T:       float64(step),
			Read:    g.nextRead(),
			Service: g.serviceDraw(),
		})
	}
	limit := float64(step + 1)
	for len(g.heap) > 0 && g.heap[0].t < limit {
		ev := g.heap[0]
		c := &g.cohorts[ev.cohort]
		// Root replacement: schedule this cohort's successor in place and
		// restore the heap — no push/pop churn.
		g.heap[0].t = ev.t + expDraw(c.rng)/c.rate
		g.siftDown(0)
		if mod, peak := g.modulation(ev.t); mod < peak {
			// Lewis-Shedler thinning: the cohort runs at peak rate; keep
			// this arrival with probability mod/peak.
			if g.sample.Float64()*peak >= mod {
				continue
			}
		}
		buf = append(buf, Request{
			T:       ev.t,
			Key:     g.sampleKey(),
			Read:    g.nextRead(),
			Service: g.serviceDraw(),
		})
	}
	return buf
}

// modulation returns the rate multiplier at virtual time t and its peak
// value over all t. Poisson is flat; Bursty is an on/off square wave;
// Diurnal is a sawtooth from 10% to 100%.
func (g *Gen) modulation(t float64) (mod, peak float64) {
	switch g.spec.Arrival {
	case Bursty:
		period := float64(g.spec.BurstPeriod)
		phase := math.Mod(t, period)
		if phase < g.spec.BurstDuty*period {
			return g.spec.BurstFactor, g.spec.BurstFactor
		}
		return 1, g.spec.BurstFactor
	case Diurnal:
		period := float64(g.spec.RampPeriod)
		frac := math.Mod(t, period) / period
		return 0.1 + 0.9*frac, 1
	default:
		return 1, 1
	}
}

// nextRead classifies the next request read/write. The threshold rule —
// read iff the realized read count is still below the target fraction of
// requests so far — is RNG-free and reproduces the legacy campaign's
// per-step mix exactly in closed-loop mode.
func (g *Gen) nextRead() bool {
	isRead := float64(g.reads) < g.spec.ReadFraction*float64(g.total+1)
	g.total++
	if isRead {
		g.reads++
	}
	return isRead
}

func (g *Gen) sampleKey() uint32 {
	if g.zipfCDF != nil {
		u := g.sample.Float64()
		lo, hi := 0, len(g.zipfCDF)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if g.zipfCDF[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}
	return uint32(g.sample.Uint64n(uint64(g.spec.Keys)))
}

// serviceDraw samples the virtual in-SLO service time: a 500µs floor plus
// an exponential tail with 2ms mean.
func (g *Gen) serviceDraw() time.Duration {
	return 500*time.Microsecond + time.Duration(expDraw(g.sample)*float64(2*time.Millisecond))
}

func (g *Gen) siftDown(i int) {
	h := g.heap
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && eventLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && eventLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// eventLess orders events by time with a cohort-index tie-break so the
// drain order is total.
func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.cohort < b.cohort
}

// expDraw samples a unit-mean exponential.
func expDraw(r *xrand.RNG) float64 {
	return -math.Log(1 - r.Float64())
}

// zipfCDF precomputes the cumulative popularity weights 1/(rank+1)^s.
func zipfCDF(keys int, s float64) []float64 {
	cdf := make([]float64, keys)
	var total float64
	for i := range cdf {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}
