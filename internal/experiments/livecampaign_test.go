package experiments

import (
	"strings"
	"testing"
)

// smallLiveGrid keeps live-campaign tests fast: 2 cells, 3 reps each.
func smallLiveGrid() LiveCampaignConfig {
	return LiveCampaignConfig{
		Chi:         16,
		Reps:        3,
		Seed:        5,
		MaxSteps:    24,
		OmegaDirect: 2,
		Servers:     2,
		ProxyCounts: []int{2},
		Detectors:   []bool{false},
		Pacings:     []uint64{0, 1},
	}
}

func TestLiveCampaignGridShape(t *testing.T) {
	rows, err := LiveCampaign(smallLiveGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows for a 1×1×2 grid", len(rows))
	}
	for i, r := range rows {
		if r.Proxies != 2 || r.Detector {
			t.Fatalf("row %d carries wrong cell identity: %+v", i, r)
		}
		if r.Reps != 3 {
			t.Fatalf("row %d ran %d reps, want 3", i, r.Reps)
		}
		if r.Compromised == 0 {
			t.Fatalf("row %d: no repetition fell on a 16-key space within 24 steps", i)
		}
	}
	// Grid order: pacing sweeps fastest.
	if rows[0].OmegaIndirect != 0 || rows[1].OmegaIndirect != 1 {
		t.Fatalf("rows out of grid order: %d, %d", rows[0].OmegaIndirect, rows[1].OmegaIndirect)
	}
}

// TestLiveCampaignDeterministicAcrossWorkers: the sweep reproduces from its
// seed at any worker budget, like every other experiment sweep.
func TestLiveCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallLiveGrid()
	cfg.Workers = 1
	base, err := LiveCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	got, err := LiveCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Measurement-off rows carry NaN sentinels (ReadFrac, latency columns),
	// so reflect.DeepEqual would reject even identical sweeps; the rendered
	// CSV covers every row field and is the artifact that must reproduce.
	var a, b strings.Builder
	if err := WriteLiveCampaignCSV(&a, base); err != nil {
		t.Fatal(err)
	}
	if err := WriteLiveCampaignCSV(&b, got); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("workers=4 sweep differs from workers=1:\n%s\nvs\n%s", b.String(), a.String())
	}
}

func TestLiveCampaignIndirectOnly(t *testing.T) {
	// OmegaDirect 0 is a real configuration — an indirect-only sweep — and
	// must not be rewritten to the default direct budget.
	cfg := smallLiveGrid()
	cfg.OmegaDirect = 0
	cfg.Pacings = []uint64{2}
	rows, err := LiveCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	// All compromises must come through the server routes: with no direct
	// probes the proxy tier can never fall.
	if n := rows[0].Routes["all-proxies"]; n != 0 {
		t.Fatalf("indirect-only sweep captured proxies %d times — direct budget not honoured", n)
	}
	// A cell with no probe budget at all must surface the validation error.
	cfg.Pacings = []uint64{0}
	if _, err := LiveCampaign(cfg); err == nil {
		t.Fatal("zero total probe budget accepted")
	}
}

func TestLiveCampaignDefaultsApplied(t *testing.T) {
	cfg := LiveCampaignConfig{}.withDefaults()
	if cfg.Chi == 0 || cfg.Reps == 0 || len(cfg.ProxyCounts) == 0 ||
		len(cfg.Detectors) == 0 || len(cfg.Pacings) == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestLiveCampaignFormatAndCSV(t *testing.T) {
	rows, err := LiveCampaign(smallLiveGrid())
	if err != nil {
		t.Fatal(err)
	}
	table := FormatLiveCampaign(rows)
	if !strings.Contains(table, "proxies") || !strings.Contains(table, "meanLifetime") {
		t.Fatalf("table header missing:\n%s", table)
	}
	var b strings.Builder
	if err := WriteLiveCampaignCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("csv has %d lines for %d rows", len(lines), len(rows))
	}
	if !strings.HasPrefix(lines[0], "backend,proxies,detector,omega_indirect") {
		t.Fatalf("csv header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "pb,2,false,0,,,false,3,") {
		t.Fatalf("csv first row wrong: %s", lines[1])
	}
}
