// Package experiments regenerates the paper's evaluation artifacts: the
// Figure 1 EL-vs-α comparison, the Figure 2 EL-vs-κ sweep, and the §6
// resilience-ordering chain, plus the background [7] comparison (E4) and
// the αᵢ-growth illustration (E6). Each experiment reports rows ready for
// printing or benchmarking; EXPERIMENTS.md records the measured shapes
// against the paper's claims.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"

	"fortress/internal/model"
	"fortress/internal/sim"
	"fortress/internal/xrand"
)

// DefaultAlphas is the α grid used for Figure 1, spanning the paper's
// "realistic range" 10⁻⁵..10⁻² (§5) with three points per decade.
var DefaultAlphas = []float64{
	0.00001, 0.00002, 0.00005,
	0.0001, 0.0002, 0.0005,
	0.001, 0.002, 0.005,
	0.01,
}

// DefaultKappas is the κ grid used for Figure 2.
var DefaultKappas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

// Figure1Kappa is the indirect-attack coefficient S2PO uses in Figure 1,
// where κ is held fixed while α sweeps.
const Figure1Kappa = 0.5

// Result is one (system, parameter point) cell: the analytic EL when
// available, and the Monte-Carlo estimate when requested or required.
type Result struct {
	System   string
	Alpha    float64
	Kappa    float64
	Analytic float64 // NaN when unavailable (S2SO)
	MC       float64 // NaN when not run
	MCCI     float64
	Trials   uint64
}

// EL returns the best available lifetime: analytic if present, else MC.
func (r Result) EL() float64 {
	if !math.IsNaN(r.Analytic) {
		return r.Analytic
	}
	return r.MC
}

// Config tunes experiment execution.
type Config struct {
	// Trials is the Monte-Carlo budget per cell (0 disables MC for cells
	// that have an analytic value).
	Trials uint64
	// Seed makes runs reproducible.
	Seed uint64
	// LaunchPadFraction overrides the default λ = 0.5 when non-negative.
	LaunchPadFraction float64
	// Workers bounds the total concurrency of a sweep; 0 selects
	// runtime.GOMAXPROCS(0). The budget is split across the two fan-out
	// levels — cells run on up to Workers goroutines, and each cell's trial
	// shards get Workers/numCells (at least 1) engine workers — so a sweep
	// never schedules more than ~Workers CPU-bound goroutines in total. The
	// worker count never affects results: per-cell random streams are split
	// in a fixed order before any cell runs, and each cell's Monte-Carlo
	// goes through the deterministic sharded engine in internal/sim, so a
	// sweep is reproducible from (Seed, Trials) alone.
	Workers int
}

// DefaultConfig is the configuration the benches and CLI use.
func DefaultConfig() Config {
	return Config{Trials: 100000, Seed: 1, LaunchPadFraction: -1}
}

// simConfig is the per-cell engine configuration.
func (c Config) simConfig() sim.Config {
	return sim.Config{Workers: c.Workers}
}

func (c Config) params(alpha, kappa float64) model.Params {
	p := model.DefaultParams(alpha, kappa)
	if c.LaunchPadFraction >= 0 {
		p.LaunchPadFraction = c.LaunchPadFraction
	}
	return p
}

// evaluate fills one Result for the given system.
func evaluate(sys model.System, alpha, kappa float64, cfg Config, rng *xrand.RNG) (Result, error) {
	r := Result{System: sys.Name(), Alpha: alpha, Kappa: kappa, Analytic: math.NaN(), MC: math.NaN()}
	el, err := sys.AnalyticEL()
	switch {
	case err == nil:
		r.Analytic = el
	case errors.Is(err, model.ErrAnalyticUnavailable):
		// fall through to MC, which is then mandatory
		if cfg.Trials == 0 {
			return r, fmt.Errorf("experiments: %s requires Monte-Carlo trials", sys.Name())
		}
	default:
		return r, fmt.Errorf("experiments: %s analytic: %w", sys.Name(), err)
	}
	if cfg.Trials > 0 {
		est, err := sim.Estimator(sys, cfg.Trials, rng, cfg.simConfig())
		if err != nil {
			return r, fmt.Errorf("experiments: %s monte-carlo: %w", sys.Name(), err)
		}
		r.MC = est.EL
		r.MCCI = est.CI95
		r.Trials = est.Trials
	}
	return r, nil
}

// sweepCell is one (system, parameter point) unit of a sweep, with its
// random stream pre-split in grid order so cells can run concurrently
// without the schedule leaking into the results.
type sweepCell struct {
	sys   model.System
	alpha float64
	kappa float64
	cfg   Config
	rng   *xrand.RNG
}

// innerWorkers divides a sweep's worker budget between the cell fan-out and
// each cell's trial-shard engine: with the outer pool already `workers`
// wide, each cell gets workers/cells shard workers (at least 1), keeping
// total leaf concurrency within the budget while still filling cores when
// the grid is smaller than the machine.
func innerWorkers(workers, cells int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cells < 1 {
		cells = 1
	}
	inner := workers / cells
	if inner < 1 {
		inner = 1
	}
	return inner
}

// runCells evaluates every cell on a bounded worker pool and returns the
// results in cell order. The shard budget is divided among the cells that
// actually run Monte-Carlo — analytic-only cells finish in microseconds and
// must not dilute it.
func runCells(cells []sweepCell, workers int) ([]Result, error) {
	mcCells := 0
	for _, c := range cells {
		if c.cfg.Trials > 0 {
			mcCells++
		}
	}
	inner := innerWorkers(workers, mcCells)
	out := make([]Result, len(cells))
	err := sim.ForEach(len(cells), workers, func(i int) error {
		c := cells[i]
		cc := c.cfg
		cc.Workers = inner
		res, err := evaluate(c.sys, c.alpha, c.kappa, cc, c.rng)
		out[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure1 regenerates the paper's Figure 1: EL for the five compared
// systems across the α range, κ fixed at Figure1Kappa for S2PO. Cells fan
// out across cfg.Workers concurrently.
func Figure1(cfg Config, alphas []float64) ([]Result, error) {
	if len(alphas) == 0 {
		alphas = DefaultAlphas
	}
	rng := xrand.New(cfg.Seed)
	var cells []sweepCell
	for _, alpha := range alphas {
		p := cfg.params(alpha, Figure1Kappa)
		systems := []model.System{
			model.S0PO{P: p},
			model.S2PO{P: p},
			model.S1PO{P: p},
			model.S1SO{P: p},
			model.S0SO{P: p},
		}
		for _, sys := range systems {
			// PO systems at tiny α have hazards far below 1/trials; MC adds
			// nothing there, so spend trials only where they resolve.
			c := cfg
			if _, isPO := sys.(model.StepSystem); isPO && alpha < 0.001 {
				c.Trials = 0
			}
			cells = append(cells, sweepCell{sys, alpha, Figure1Kappa, c, rng.Split()})
		}
	}
	return runCells(cells, cfg.Workers)
}

// Figure2 regenerates the paper's Figure 2: EL of S2PO as κ varies, one
// series per α (log-scale in the paper; we emit raw values). Cells fan out
// across cfg.Workers concurrently.
func Figure2(cfg Config, alphas, kappas []float64) ([]Result, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.0001, 0.001, 0.01}
	}
	if len(kappas) == 0 {
		kappas = DefaultKappas
	}
	rng := xrand.New(cfg.Seed + 2)
	var cells []sweepCell
	for _, alpha := range alphas {
		for _, kappa := range kappas {
			p := cfg.params(alpha, kappa)
			c := cfg
			if alpha < 0.001 {
				c.Trials = 0
			}
			cells = append(cells, sweepCell{model.S2PO{P: p}, alpha, kappa, c, rng.Split()})
		}
	}
	return runCells(cells, cfg.Workers)
}

// OrderingReport is the outcome of checking the §6 summary chain
// S0PO →(κ>0) S2PO →(κ≤0.9) S1PO → S1SO → S0SO.
type OrderingReport struct {
	Alpha  float64
	Kappa  float64
	Order  []string  // systems sorted by measured EL, best first
	ELs    []float64 // matching lifetimes
	Holds  bool      // true when the paper's chain is reproduced
	Detail string
}

// OrderingChain verifies the §6 chain at the given parameter point. The
// five systems are evaluated concurrently across cfg.Workers; each system
// uses its analytic EL when available and falls back to Monte-Carlo (on its
// own pre-split random stream) otherwise.
func OrderingChain(cfg Config, alpha, kappa float64) (OrderingReport, error) {
	rng := xrand.New(cfg.Seed + 3)
	p := cfg.params(alpha, kappa)
	systems := []model.System{
		model.S0PO{P: p},
		model.S2PO{P: p},
		model.S1PO{P: p},
		model.S1SO{P: p},
		model.S0SO{P: p},
	}
	rep := OrderingReport{Alpha: alpha, Kappa: kappa}
	type cell struct {
		name string
		el   float64
	}
	mcCfg := cfg
	mcCfg.Workers = innerWorkers(cfg.Workers, len(systems))
	analyticOnly := mcCfg
	analyticOnly.Trials = 0
	rngs := sim.SplitRNGs(rng, len(systems))
	cells := make([]cell, len(systems))
	err := sim.ForEach(len(systems), cfg.Workers, func(i int) error {
		sys := systems[i]
		res, err := evaluate(sys, alpha, kappa, analyticOnly, rngs[i])
		if err != nil {
			if cfg.Trials == 0 {
				return err
			}
			res, err = evaluate(sys, alpha, kappa, mcCfg, rngs[i])
			if err != nil {
				return err
			}
		}
		cells[i] = cell{sys.Name(), res.EL()}
		return nil
	})
	if err != nil {
		return rep, err
	}
	expected := make([]string, len(cells))
	for i, c := range cells {
		expected[i] = c.name
	}
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].el > cells[j].el })
	rep.Order = make([]string, len(cells))
	rep.ELs = make([]float64, len(cells))
	for i, c := range cells {
		rep.Order[i] = c.name
		rep.ELs[i] = c.el
	}
	rep.Holds = true
	for i := range expected {
		if rep.Order[i] != expected[i] {
			rep.Holds = false
		}
	}
	if rep.Holds {
		rep.Detail = fmt.Sprintf("chain holds: %s", strings.Join(rep.Order, " → "))
	} else {
		rep.Detail = fmt.Sprintf("chain BROKEN: measured %s, expected %s",
			strings.Join(rep.Order, " → "), strings.Join(expected, " → "))
	}
	return rep, nil
}

// FortifyComparison is E4: fortified-PB-under-SO (the [7] construction)
// versus proactively recovered SMR, across κ.
type FortifyComparison struct {
	Alpha   float64
	Kappa   float64
	S2SO    float64
	S2SOCI  float64
	S0SO    float64
	Outlive bool // S2SO ≥ S0SO within CI
}

// Fortify runs E4 at one α across the κ grid. The κ cells fan out across
// cfg.Workers concurrently, each on its own pre-split random stream.
func Fortify(cfg Config, alpha float64, kappas []float64) ([]FortifyComparison, error) {
	if len(kappas) == 0 {
		kappas = DefaultKappas
	}
	trials := cfg.Trials
	if trials == 0 {
		trials = 100000
	}
	rng := xrand.New(cfg.Seed + 4)
	rngs := sim.SplitRNGs(rng, len(kappas))
	engine := sim.Config{Workers: innerWorkers(cfg.Workers, len(kappas))}
	out := make([]FortifyComparison, len(kappas))
	err := sim.ForEach(len(kappas), cfg.Workers, func(i int) error {
		kappa := kappas[i]
		p := cfg.params(alpha, kappa)
		est, err := sim.EstimateSO(model.S2SO{P: p}, trials, rngs[i], engine)
		if err != nil {
			return err
		}
		s0, err := model.S0SO{P: p}.AnalyticEL()
		if err != nil {
			return err
		}
		out[i] = FortifyComparison{
			Alpha: alpha, Kappa: kappa,
			S2SO: est.EL, S2SOCI: est.CI95, S0SO: s0,
			Outlive: est.EL+est.CI95 >= s0,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AlphaGrowthRow is E6: the per-step success probability αᵢ of an SO
// defender versus the constant α of a PO defender.
type AlphaGrowthRow struct {
	Step    int
	AlphaSO float64
	AlphaPO float64
}

// AlphaGrowth tabulates αᵢ for the first `steps` unit time-steps.
func AlphaGrowth(alpha float64, steps int) ([]AlphaGrowthRow, error) {
	p := model.DefaultParams(alpha, 0)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	omega := p.Omega()
	out := make([]AlphaGrowthRow, 0, steps)
	for i := 0; i < steps; i++ {
		remaining := float64(p.Chi) - float64(i)*float64(omega)
		ai := 1.0
		if remaining > float64(omega) {
			ai = float64(omega) / remaining
		}
		out = append(out, AlphaGrowthRow{Step: i + 1, AlphaSO: ai, AlphaPO: p.EffectiveAlpha()})
	}
	return out, nil
}

// FormatResults renders results as an aligned text table, one row per cell.
func FormatResults(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-6s %-14s %-14s %-10s\n", "system", "alpha", "kappa", "analyticEL", "mcEL", "mcCI95")
	for _, r := range results {
		analytic, mc, ci := "-", "-", "-"
		if !math.IsNaN(r.Analytic) {
			analytic = fmt.Sprintf("%.6g", r.Analytic)
		}
		if !math.IsNaN(r.MC) {
			mc = fmt.Sprintf("%.6g", r.MC)
			ci = fmt.Sprintf("%.3g", r.MCCI)
		}
		fmt.Fprintf(&b, "%-6s %-10g %-6g %-14s %-14s %-10s\n", r.System, r.Alpha, r.Kappa, analytic, mc, ci)
	}
	return b.String()
}
